"""Which objects cause the page faults — and how OASIS changes that.

Runs one application under on-touch and under OASIS and attributes every
GPU page fault to the object it landed in, using the simulator's
``fault.by_object.*`` counters.  This is the object-level view that
motivates the paper: a handful of objects dominate the fault traffic, and
fixing their policy fixes the application.

Usage::

    python examples/fault_attribution.py [app]
"""

import sys

from repro import baseline_config, get_workload, make_policy, simulate
from repro.harness.charts import bar_chart


def fault_breakdown(result, top=8):
    prefix = "fault.by_object."
    items = [
        (key[len(prefix):], value)
        for key, value in result.stats.items()
        if key.startswith(prefix)
    ]
    items.sort(key=lambda kv: -kv[1])
    return items[:top]


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "c2d"
    config = baseline_config()
    trace = get_workload(app, config)

    for policy_name in ("on_touch", "oasis"):
        result = simulate(config, trace, make_policy(policy_name))
        print(f"== {app} under {policy_name}: "
              f"{int(result.total_faults):,} faults, "
              f"{result.total_time_ns / 1e6:.1f} ms ==")
        print(bar_chart(fault_breakdown(result)))
        print()


if __name__ == "__main__":
    main()
