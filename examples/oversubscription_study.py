"""Sweep memory oversubscription and watch the policies compress.

Reproduces the Fig. 25 mechanism at example scale: as the working set
outgrows GPU memory, eviction traffic dominates and every policy's gains
over on-touch shrink — but OASIS (with its capacity guard degrading
duplication to remote mappings) stays ahead.

Usage::

    python examples/oversubscription_study.py [app] [footprint_mb]
"""

import sys

from repro import baseline_config, get_workload, make_policy, simulate
from repro.harness.charts import bar_chart

FACTORS = (None, 1.1, 1.5, 2.0)


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mm"
    footprint = float(sys.argv[2]) if len(sys.argv) > 2 else 8.0

    print(f"{app} at {footprint:.0f} MB, OASIS speedup over on-touch by "
          f"oversubscription factor:\n")
    rows = []
    for factor in FACTORS:
        config = baseline_config(oversubscription=factor)
        trace = get_workload(app, config, footprint_mb=footprint)
        baseline = simulate(config, trace, make_policy("on_touch"))
        oasis = simulate(config, trace, make_policy("oasis"))
        label = "fits" if factor is None else f"{factor:.1f}x"
        rows.append((label, oasis.speedup_over(baseline)))
        evicted = (baseline.evictions
                   + baseline.stats.get("eviction.copy_dropped", 0))
        degraded = oasis.stats.get("oasis.duplication_degraded", 0)
        print(f"  {label:>5s}: baseline evictions {int(evicted):6d}, "
              f"OASIS duplications degraded to remote {int(degraded):6d}")
    print()
    print(bar_chart(rows, reference=1.0))


if __name__ == "__main__":
    main()
