"""Quickstart: simulate one application under two page-management policies.

Runs Matrix Multiplication on the paper's 4-GPU baseline under the
default on-touch migration policy and under OASIS, then reports the
speedup and the page-management event counts behind it.

Usage::

    python examples/quickstart.py [app]

where ``app`` is any Table II abbreviation (default: mm).
"""

import sys

from repro import baseline_config, get_workload, make_policy, simulate


def main() -> None:
    app = sys.argv[1] if len(sys.argv) > 1 else "mm"
    config = baseline_config()
    trace = get_workload(app, config)

    print(f"Application: {app}")
    print(f"  objects:   {trace.n_objects}")
    print(f"  footprint: {trace.footprint_bytes / 2**20:.1f} MB")
    print(f"  phases:    {len(trace.phases)} "
          f"({sum(p.explicit for p in trace.phases)} explicit)")
    print(f"  accesses:  {trace.total_accesses:,}")
    print()

    baseline = simulate(config, trace, make_policy("on_touch"))
    oasis = simulate(config, trace, make_policy("oasis"))

    for result in (baseline, oasis):
        print(result.summary())
    print()
    print(f"OASIS speedup over on-touch: "
          f"{oasis.speedup_over(baseline):.2f}x")
    print(f"fault reduction: "
          f"{(1 - oasis.total_faults / baseline.total_faults) * 100:.0f}%")
    print(f"final PTE policy mix under OASIS: {oasis.policy_mix()}")


if __name__ == "__main__":
    main()
