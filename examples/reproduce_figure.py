"""Regenerate any table or figure of the paper from the command line.

Usage::

    python examples/reproduce_figure.py fig15
    python examples/reproduce_figure.py fig16 --apps mm,st,bfs
    python examples/reproduce_figure.py --list

Reports are printed and saved under ``results/``.
"""

import argparse
from pathlib import Path

from repro.harness import EXPERIMENTS, run_experiment

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def main() -> None:
    parser = argparse.ArgumentParser(
        description="Regenerate a table/figure of the OASIS paper."
    )
    parser.add_argument("experiment", nargs="?",
                        help="experiment id, e.g. fig15 or table2")
    parser.add_argument("--apps", default=None,
                        help="comma-separated application subset")
    parser.add_argument("--chart", action="store_true",
                        help="also render an ASCII chart of the result")
    parser.add_argument("--list", action="store_true",
                        help="list available experiments")
    args = parser.parse_args()

    if args.list or not args.experiment:
        print("available experiments:")
        for exp_id, fn in sorted(EXPERIMENTS.items()):
            doc = (fn.__doc__ or "").strip().splitlines()[0]
            print(f"  {exp_id:<8s} {doc}")
        return

    apps = (
        [a.strip() for a in args.apps.split(",") if a.strip()]
        if args.apps else None
    )
    result = run_experiment(args.experiment, apps=apps)
    print(result.render())
    if args.chart:
        from repro.harness.charts import experiment_chart

        print()
        print(experiment_chart(result))
    path = result.save(RESULTS_DIR)
    print(f"\nsaved to {path}")


if __name__ == "__main__":
    main()
