"""Characterize an application's objects the way Section IV does.

Prints, for each object: its size, its overall pattern label
(private/shared x read-only/write-only/rw-mix), the share of pages and
dynamic accesses it receives, and whether it is non-uniform — plus the
app-level page-type percentages used in Fig. 20.

Usage::

    python examples/characterize_application.py [app] [app...]
"""

import sys

from repro import baseline_config, get_workload
from repro.analysis import (
    access_share_by_object,
    classify_object,
    classify_pages,
    non_uniform_objects,
    page_type_percentages,
    pages_by_object,
)


def characterize(app: str) -> None:
    trace = get_workload(app, baseline_config())
    cls = classify_pages(trace)
    shares = access_share_by_object(trace)
    page_frac = pages_by_object(trace)

    print(f"== {app}: {trace.n_objects} objects, "
          f"{trace.footprint_bytes / 2**20:.1f} MB ==")
    print(f"{'object':<22s} {'pages':>7s} {'pattern':<22s} "
          f"{'%pages':>7s} {'%accesses':>9s}")
    shown = sorted(trace.objects, key=lambda o: -shares[o.name])[:12]
    for obj in shown:
        pattern = classify_object(trace, obj, cls)
        print(f"{obj.name:<22s} {obj.n_pages:>7d} {pattern.label:<22s} "
              f"{100 * page_frac[obj.name]:>6.1f}% "
              f"{100 * shares[obj.name]:>8.1f}%")
    if trace.n_objects > len(shown):
        print(f"... ({trace.n_objects - len(shown)} more objects)")

    nus = non_uniform_objects(trace)
    print(f"non-uniform objects: {nus or 'none'}")
    pct = page_type_percentages(trace)
    print("page types: " + ", ".join(
        f"{k} {100 * v:.0f}%" for k, v in sorted(pct.items())
    ))
    print()


def main() -> None:
    apps = sys.argv[1:] or ["mm", "st", "c2d"]
    for app in apps:
        characterize(app)


if __name__ == "__main__":
    main()
