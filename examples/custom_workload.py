"""Build a custom workload with the TraceBuilder API and race the policies.

The scenario is a two-stage pipeline with four object roles the paper's C2D characterization
motivates: a producer kernel writes a buffer partitioned across GPUs, a
consumer kernel reads it under a rotated GPU assignment (handoff), and a
parameter table is broadcast-read by everyone.  OASIS should discover a
per-object mix no uniform policy can match.
"""

from repro import TraceBuilder, baseline_config, make_policy, simulate
from repro.config import MB
from repro.workloads.patterns import (
    emit_broadcast,
    emit_partitioned,
)

N_GPUS = 4


def build_pipeline_trace():
    builder = TraceBuilder("pipeline", N_GPUS, page_size=4096, seed=42)
    buffer = builder.alloc("stage_buffer", 20 * MB)
    params = builder.alloc("parameters", 8 * MB)
    scratch = builder.alloc("scratch", 8 * MB)
    stats = builder.alloc("global_stats", 4 * MB)

    for round_no in range(4):
        builder.begin_phase(f"produce_{round_no}", explicit=True)
        emit_broadcast(builder, params, write=False, weight=160)
        # The scratch accumulator is read-modified-written each round.
        emit_partitioned(builder, scratch, write=False, weight=24)
        emit_partitioned(builder, scratch, write=True, weight=48)
        emit_partitioned(builder, buffer, write=True, weight=24)
        # Every GPU folds partial statistics into the shared accumulator
        # (an all-reduce-style write-shared object).
        emit_broadcast(builder, stats, write=True, weight=6)
        builder.end_phase()

        builder.begin_phase(f"consume_{round_no}", explicit=True)
        # Handoff: GPU g consumes what GPU g-1 produced.
        emit_partitioned(builder, buffer, write=False, weight=24, shift=1)
        builder.end_phase()
    return builder.build()


def main() -> None:
    config = baseline_config()
    trace = build_pipeline_trace()
    print(f"custom trace: {trace.n_objects} objects, "
          f"{trace.footprint_bytes / 2**20:.0f} MB, "
          f"{trace.total_records:,} records\n")

    results = {}
    for name in ("on_touch", "access_counter", "duplication", "oasis",
                 "ideal"):
        results[name] = simulate(config, trace, make_policy(name))

    baseline = results["on_touch"]
    print(f"{'policy':<16s} {'speedup':>8s} {'faults':>9s} "
          f"{'migrations':>11s} {'duplications':>13s}")
    for name, result in results.items():
        print(f"{name:<16s} {result.speedup_over(baseline):8.2f} "
              f"{int(result.total_faults):9d} {int(result.migrations):11d} "
              f"{int(result.duplications):13d}")

    best_uniform = max(
        results[n].speedup_over(baseline)
        for n in ("on_touch", "access_counter", "duplication")
    )
    oasis = results["oasis"].speedup_over(baseline)
    print(f"\nOASIS vs best uniform policy: {oasis / best_uniform:.2f}x")


if __name__ == "__main__":
    main()
