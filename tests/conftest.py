"""Shared fixtures and trace-building helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import baseline_config
from repro.workloads.base import Trace, TraceBuilder

PAGE = 4096


@pytest.fixture
def config():
    """The Table I baseline configuration."""
    return baseline_config()


def make_trace(
    objects: dict[str, int],
    phases: list[list[tuple]],
    n_gpus: int = 4,
    page_size: int = PAGE,
    explicit: list[bool] | None = None,
    seed: int = 0,
    burst: int = 4,
) -> Trace:
    """Build a small trace from a compact description.

    Args:
        objects: name -> size in pages.
        phases: one list of records per phase; each record is
            ``(gpu, object_name, page_offset, is_write)`` or
            ``(gpu, object_name, page_offset, is_write, weight)``.
        n_gpus: GPU count.
        page_size: page size in bytes.
        explicit: per-phase explicit flags (default: first True, rest
            False).
        seed: RNG seed.
        burst: interleave burst.
    """
    builder = TraceBuilder("test", n_gpus, page_size, seed=seed, burst=burst)
    handles = {
        name: builder.alloc(name, pages * page_size)
        for name, pages in objects.items()
    }
    if explicit is None:
        explicit = [i == 0 for i in range(len(phases))]
    for phase_no, records in enumerate(phases):
        builder.begin_phase(f"phase{phase_no}", explicit=explicit[phase_no])
        for record in records:
            gpu, name, offset, write = record[:4]
            weight = record[4] if len(record) > 4 else 1
            builder.emit(gpu, handles[name], offset, write, weight)
        builder.end_phase()
    return builder.build()


def sweep_records(
    gpus: range | list[int],
    name: str,
    n_pages: int,
    write: bool,
    weight: int = 1,
) -> list[tuple]:
    """Records for every listed GPU touching every page of an object."""
    return [
        (gpu, name, page, write, weight)
        for gpu in gpus
        for page in range(n_pages)
    ]


def rng(seed: int = 0) -> np.random.Generator:
    return np.random.default_rng(seed)
