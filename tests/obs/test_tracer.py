"""Tracer unit tests: spans, instants, samples, the null tracer."""

import pytest

from repro.obs import (
    EVENT_KINDS,
    NULL_TRACER,
    RecordingTracer,
    Tracer,
)


class TestNullTracer:
    def test_disabled(self):
        assert NULL_TRACER.enabled is False
        assert Tracer.enabled is False

    def test_all_hooks_are_noops(self):
        t = Tracer()
        t.begin_span("gpu0", "run", 0.0, {"a": 1})
        t.instant("gpu0", "fault", 1.0)
        t.sample("link:x", "utilization", 2.0, 0.5)
        t.end_span("gpu0", 3.0)
        t.finish(4.0)  # nothing recorded, nothing raised

    def test_recording_tracer_is_enabled(self):
        assert RecordingTracer().enabled is True


class TestSpans:
    def test_span_nesting_depth(self):
        t = RecordingTracer()
        t.begin_span("gpu0", "run", 0.0)
        t.begin_span("gpu0", "phase0", 10.0)
        t.end_span("gpu0", 25.0)
        t.end_span("gpu0", 30.0)
        inner, outer = t.spans
        assert (inner.name, inner.depth) == ("phase0", 1)
        assert (outer.name, outer.depth) == ("run", 0)
        assert inner.start_ns == 10.0 and inner.duration_ns == 15.0
        assert outer.end_ns == 30.0

    def test_stacks_are_per_track(self):
        t = RecordingTracer()
        t.begin_span("gpu0", "a", 0.0)
        t.begin_span("gpu1", "b", 0.0)
        t.end_span("gpu0", 5.0)
        t.end_span("gpu1", 7.0)
        assert {s.track: s.name for s in t.spans} == {"gpu0": "a", "gpu1": "b"}
        assert all(s.depth == 0 for s in t.spans)

    def test_end_without_open_raises(self):
        with pytest.raises(ValueError, match="no open span"):
            RecordingTracer().end_span("gpu0", 1.0)

    def test_finish_closes_everything(self):
        t = RecordingTracer()
        t.begin_span("gpu0", "run", 0.0)
        t.begin_span("gpu0", "phase", 1.0)
        t.begin_span("driver", "run", 0.0)
        assert t.open_span_count() == 3
        t.finish(9.0)
        assert t.open_span_count() == 0
        assert all(s.end_ns == 9.0 for s in t.spans)

    def test_args_frozen_sorted(self):
        t = RecordingTracer()
        t.begin_span("gpu0", "run", 0.0, {"b": 2, "a": 1})
        t.end_span("gpu0", 1.0)
        assert t.spans[0].args == (("a", 1), ("b", 2))


class TestInstants:
    def test_typed_vocabulary_enforced(self):
        t = RecordingTracer()
        with pytest.raises(ValueError, match="unknown event kind"):
            t.instant("gpu0", "explosion", 0.0)

    def test_every_known_kind_accepted(self):
        t = RecordingTracer()
        for ts, kind in enumerate(sorted(EVENT_KINDS)):
            t.instant("driver", kind, float(ts))
        assert len(t.instants) == len(EVENT_KINDS)

    def test_event_totals(self):
        t = RecordingTracer()
        t.instant("gpu0", "fault", 0.0)
        t.instant("gpu1", "fault", 1.0)
        t.instant("driver", "migrate", 2.0)
        assert t.event_totals() == {"fault": 2, "migrate": 1}


class TestIntrospection:
    def test_tracks_sorted_union(self):
        t = RecordingTracer()
        t.begin_span("gpu1", "run", 0.0)
        t.end_span("gpu1", 1.0)
        t.instant("driver", "migrate", 0.0)
        t.sample("link:x", "utilization", 1.0, 0.1)
        assert t.tracks() == ["driver", "gpu1", "link:x"]

    def test_len_counts_all_event_types(self):
        t = RecordingTracer()
        t.begin_span("gpu0", "run", 0.0)
        t.end_span("gpu0", 1.0)
        t.instant("gpu0", "fault", 0.5)
        t.sample("link:x", "utilization", 1.0, 0.5)
        assert len(t) == 3
