"""Exporter unit tests: Chrome trace schema, JSONL, Prometheus text."""

import json

import pytest

from repro.obs import (
    InstantEvent,
    MetricsRegistry,
    RecordingTracer,
    chrome_trace,
    jsonl_events,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)


def small_tracer() -> RecordingTracer:
    t = RecordingTracer()
    t.begin_span("gpu0", "run", 0.0, {"workload": "w"})
    t.begin_span("gpu0", "phase0", 0.0)
    t.instant("gpu0", "fault", 5.0, {"page": 7})
    t.instant("driver", "migrate", 6.0, {"page": 7, "gpu": 0})
    t.sample("link:nvlink:gpu0-gpu1", "utilization", 10.0, 0.5)
    t.finish(10.0)
    return t


class TestChromeTrace:
    def test_schema_valid(self):
        payload = chrome_trace(small_tracer(), {"policy": "oasis"})
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"] == {"policy": "oasis"}

    def test_track_rows_and_metadata(self):
        payload = chrome_trace(small_tracer())
        meta = [e for e in payload["traceEvents"] if e["ph"] == "M"]
        names = {
            e["tid"]: e["args"]["name"]
            for e in meta
            if e["name"] == "thread_name"
        }
        # GPU rows first, then driver, then links.
        assert names[1] == "gpu0"
        assert names[2] == "driver"
        assert names[3] == "link:nvlink:gpu0-gpu1"

    def test_ns_to_us_conversion(self):
        payload = chrome_trace(small_tracer())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        run = next(s for s in spans if s["name"] == "run")
        assert run["ts"] == 0.0 and run["dur"] == pytest.approx(0.01)

    def test_parent_precedes_child(self):
        payload = chrome_trace(small_tracer())
        spans = [e for e in payload["traceEvents"] if e["ph"] == "X"]
        assert [s["name"] for s in spans] == ["run", "phase0"]
        assert spans[0]["args"]["depth"] == 0
        assert spans[1]["args"]["depth"] == 1

    def test_instants_carry_kind_and_args(self):
        payload = chrome_trace(small_tracer())
        instants = [e for e in payload["traceEvents"] if e["ph"] == "i"]
        assert {e["name"] for e in instants} == {"fault", "migrate"}
        fault = next(e for e in instants if e["name"] == "fault")
        assert fault["args"] == {"page": 7}
        assert fault["s"] == "t"

    def test_counter_samples(self):
        payload = chrome_trace(small_tracer())
        counters = [e for e in payload["traceEvents"] if e["ph"] == "C"]
        assert len(counters) == 1
        assert counters[0]["args"] == {"utilization": 0.5}

    def test_validator_flags_violations(self):
        assert validate_chrome_trace([]) == ["top level must be a JSON object"]
        assert validate_chrome_trace({}) == ["traceEvents must be a list"]
        bad = {
            "traceEvents": [
                {"ph": "Z", "name": "x", "pid": 1, "tid": 1, "ts": 0},
                {"ph": "X", "name": "", "pid": 1, "tid": 1, "ts": 0, "dur": 1},
                {"ph": "X", "name": "x", "pid": 1, "tid": 1, "ts": -1, "dur": 1},
                {"ph": "i", "name": "nonsense", "pid": 1, "tid": 1, "ts": 0},
                {"ph": "i", "name": "fault", "ts": 0},
            ]
        }
        problems = validate_chrome_trace(bad)
        assert len(problems) == 5

    def test_write_round_trip(self, tmp_path):
        path = write_chrome_trace(tmp_path / "out.json", small_tracer())
        loaded = json.loads(path.read_text())
        assert validate_chrome_trace(loaded) == []

    def test_write_refuses_invalid(self, tmp_path):
        t = RecordingTracer()
        # Bypass instant()'s checks to hand-build a broken event.
        t.instants.append(InstantEvent(track="gpu0", kind="fault", ts_ns=-5.0))
        with pytest.raises(ValueError, match="invalid Chrome trace"):
            write_chrome_trace(tmp_path / "bad.json", t)


class TestJsonl:
    def test_lines_parse_and_order(self, tmp_path):
        path = write_jsonl(tmp_path / "events.jsonl", small_tracer())
        lines = [json.loads(l) for l in path.read_text().splitlines()]
        assert len(lines) == 5
        # gpu0 events first, then driver, then the link sample.
        assert [l["track"] for l in lines] == [
            "gpu0", "gpu0", "gpu0", "driver", "link:nvlink:gpu0-gpu1"
        ]

    def test_deterministic(self):
        a = "\n".join(jsonl_events(small_tracer()))
        b = "\n".join(jsonl_events(small_tracer()))
        assert a == b


class TestPrometheus:
    def snapshot(self):
        reg = MetricsRegistry()
        reg.inc("fault.page", 3.0)
        reg.set_gauge("link.a.utilization", 0.25)
        reg.observe("fault.latency_ns", 750.0, (500.0, 1000.0))
        return reg.snapshot()

    def test_counter_gauge_histogram_series(self):
        text = prometheus_text(self.snapshot())
        assert "# TYPE repro_fault_page_total counter" in text
        assert "repro_fault_page_total 3" in text
        assert "repro_link_a_utilization 0.25" in text
        assert 'repro_fault_latency_ns_bucket{le="500"} 0' in text
        assert 'repro_fault_latency_ns_bucket{le="1000"} 1' in text
        assert 'repro_fault_latency_ns_bucket{le="+Inf"} 1' in text
        assert "repro_fault_latency_ns_sum 750" in text
        assert "repro_fault_latency_ns_count 1" in text

    def test_byte_stable(self, tmp_path):
        a = write_prometheus(tmp_path / "a.prom", self.snapshot())
        b = write_prometheus(tmp_path / "b.prom", self.snapshot())
        assert a.read_text() == b.read_text()

    def test_custom_prefix(self):
        text = prometheus_text(self.snapshot(), prefix="oasis")
        assert "oasis_fault_page_total" in text
        assert "repro_" not in text
