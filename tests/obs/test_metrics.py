"""Metrics registry unit tests: histograms, gauges, snapshots."""

import pytest

from repro.engine import StatCounters
from repro.obs import (
    FAULT_LATENCY_BUCKETS_NS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)


class TestHistogram:
    def test_observe_buckets(self):
        h = Histogram("lat", (10.0, 100.0))
        for v in (5.0, 50.0, 500.0, 7.0):
            h.observe(v)
        assert h.total == 4
        assert h.sum == 562.0
        assert h.cumulative() == [(10.0, 2), (100.0, 3), (float("inf"), 4)]

    def test_bounds_sorted_and_distinct(self):
        assert Histogram("x", (100.0, 10.0)).bounds == (10.0, 100.0)
        with pytest.raises(ValueError, match="distinct"):
            Histogram("x", (10.0, 10.0))
        with pytest.raises(ValueError, match="at least one"):
            Histogram("x", ())

    def test_merge_requires_same_layout(self):
        a, b = Histogram("x", (1.0, 2.0)), Histogram("x", (1.0, 3.0))
        with pytest.raises(ValueError, match="layouts differ"):
            a.merge(b)

    def test_merge_sums(self):
        a, b = Histogram("x", (10.0,)), Histogram("x", (10.0,))
        a.observe(5.0)
        b.observe(15.0)
        a.merge(b)
        assert a.cumulative() == [(10.0, 1), (float("inf"), 2)]
        assert a.sum == 20.0

    def test_dict_round_trip(self):
        h = Histogram("x", FAULT_LATENCY_BUCKETS_NS)
        h.observe(750.0)
        h.observe(2e6)
        restored = Histogram.from_dict("x", h.to_dict())
        assert restored.cumulative() == h.cumulative()
        assert restored.sum == h.sum


class TestRegistry:
    def test_counters_flow_into_stat_counters(self):
        stats = StatCounters()
        reg = MetricsRegistry(stats)
        reg.inc("migration.count")
        reg.inc("migration.count", 2.0)
        assert stats["migration.count"] == 3.0
        assert reg.counter("migration.count") == 3.0

    def test_bind_stats_redirects(self):
        reg = MetricsRegistry()
        reg.inc("x")
        fresh = StatCounters()
        reg.bind_stats(fresh)
        reg.inc("y")
        assert "x" not in fresh and fresh["y"] == 1.0

    def test_gauges(self):
        reg = MetricsRegistry()
        reg.set_gauge("link.a.utilization", 0.5)
        reg.set_gauge("link.a.utilization", 0.7)
        assert reg.gauge("link.a.utilization") == 0.7
        assert reg.gauge("missing", default=-1.0) == -1.0

    def test_histogram_layout_conflict(self):
        reg = MetricsRegistry()
        reg.observe("lat", 1.0, (10.0, 20.0))
        with pytest.raises(ValueError, match="different"):
            reg.histogram("lat", (10.0, 30.0))

    def test_merge(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.inc("n")
        b.inc("n", 4.0)
        b.set_gauge("g", 1.0)
        b.observe("h", 5.0, (10.0,))
        a.merge(b)
        snap = a.snapshot()
        assert snap.counter("n") == 5.0
        assert snap.gauges["g"] == 1.0
        assert snap.histograms["h"]["count"] == 1


class TestSnapshot:
    def test_sorted_deterministic(self):
        snap = MetricsSnapshot.from_counters(
            {"z": 1.0, "a": 2.0}, gauges={"g2": 0.0, "g1": 1.0}
        )
        assert list(snap.counters) == ["a", "z"]
        assert list(snap.gauges) == ["g1", "g2"]

    def test_from_stat_counters(self):
        stats = StatCounters({"b": 2, "a": 1})
        snap = MetricsSnapshot.from_counters(stats)
        assert snap.counters == {"a": 1.0, "b": 2.0}

    def test_counter_total_group(self):
        snap = MetricsSnapshot.from_counters(
            {"fault.page": 3.0, "fault.protection": 1.0, "other": 9.0}
        )
        assert snap.counter("fault.page") == 3.0
        assert snap.counter("missing") == 0.0
        assert snap.total("fault.") == 4.0
        assert snap.group("fault") == {"page": 3.0, "protection": 1.0}

    def test_dict_round_trip(self):
        reg = MetricsRegistry()
        reg.inc("c", 2.0)
        reg.set_gauge("g", 0.25)
        reg.observe("h", 3.0, (10.0,))
        snap = reg.snapshot()
        restored = MetricsSnapshot.from_dict(snap.to_dict())
        assert restored.to_dict() == snap.to_dict()
