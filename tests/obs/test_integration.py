"""End-to-end observability tests on real simulated runs.

The acceptance bar for the subsystem: tracing off is bit-identical to a
pre-observability run, tracing on changes no result, instant-event
totals exactly match the run's StatCounters, traces are deterministic
run to run, and the Chrome export passes the schema check.
"""

import json

import pytest

from repro import make_policy, simulate
from repro.obs import (
    MetricsRegistry,
    RecordingTracer,
    chrome_trace,
    jsonl_events,
    validate_chrome_trace,
)
from tests.conftest import make_trace, sweep_records


def two_phase_trace():
    return make_trace(
        {"data": 24, "weights": 8},
        [
            sweep_records(range(4), "data", 24, write=True),
            sweep_records(range(4), "data", 24, write=False)
            + sweep_records(range(4), "weights", 8, write=False),
        ],
    )


def observed_run(config, policy="oasis", trace=None):
    trace = trace or two_phase_trace()
    tracer, metrics = RecordingTracer(), MetricsRegistry()
    result = simulate(
        config, trace, make_policy(policy), tracer=tracer, metrics=metrics
    )
    return result, tracer, metrics


class TestBitIdentity:
    @pytest.mark.parametrize("policy", ["on_touch", "oasis", "grit"])
    def test_observed_run_changes_nothing(self, config, policy):
        trace = two_phase_trace()
        plain = simulate(config, trace, make_policy(policy))
        observed, tracer, _metrics = observed_run(
            config, policy, two_phase_trace()
        )
        assert observed.total_time_ns == plain.total_time_ns
        assert observed.stats == plain.stats
        assert observed.traffic == plain.traffic
        assert [p.duration_ns for p in observed.phases] == [
            p.duration_ns for p in plain.phases
        ]
        assert len(tracer) > 0

    def test_unobserved_result_has_no_metrics_payload(self, config):
        plain = simulate(config, two_phase_trace(), make_policy("oasis"))
        assert plain.metrics is None
        assert "metrics" not in plain.to_dict()

    def test_observed_result_round_trips(self, config):
        observed, _t, _m = observed_run(config)
        assert observed.metrics is not None
        restored = type(observed).from_dict(observed.to_dict())
        assert restored.metrics == observed.metrics


class TestStatAgreement:
    """Instant-event totals must exactly match StatCounters."""

    EVENT_TO_STAT = {
        "fault": ("fault.page", "fault.protection"),
        "migrate": ("migration.count",),
        "duplicate": ("duplication.count",),
        "collapse": ("collapse.count",),
        "remote_map": ("remote_map.count",),
        "evict": ("eviction.count", "eviction.copy_dropped"),
    }

    @pytest.mark.parametrize("policy", ["on_touch", "access_counter",
                                        "duplication", "grit", "oasis"])
    def test_totals_match(self, config, policy):
        result, tracer, _m = observed_run(config, policy)
        totals = tracer.event_totals()
        for kind, stat_keys in self.EVENT_TO_STAT.items():
            expected = sum(result.stats.get(k, 0.0) for k in stat_keys)
            assert totals.get(kind, 0) == expected, kind

    def test_totals_match_under_capacity_pressure(self, config):
        config = config.replace(oversubscription=1.5)
        result, tracer, _m = observed_run(config)
        totals = tracer.event_totals()
        evictions = result.stats.get("eviction.count", 0.0) + result.stats.get(
            "eviction.copy_dropped", 0.0
        )
        assert evictions > 0
        assert totals.get("evict", 0) == evictions

    def test_fault_latency_histogram_counts_every_fault(self, config):
        result, _t, metrics = observed_run(config)
        hist = metrics.snapshot().histograms["fault.latency_ns"]
        assert hist["count"] == result.total_faults


class TestSpans:
    def test_one_phase_span_per_phase_per_gpu(self, config):
        trace = two_phase_trace()
        _result, tracer, _m = observed_run(config, trace=trace)
        n_phases = len(trace.phases)
        for gpu in range(config.n_gpus):
            spans = tracer.spans_on(f"gpu{gpu}")
            phase_spans = [s for s in spans if s.depth == 1]
            root_spans = [s for s in spans if s.depth == 0]
            assert len(phase_spans) == n_phases
            assert len(root_spans) == 1
            assert root_spans[0].name == "run"

    def test_driver_track_has_phase_spans(self, config):
        _result, tracer, _m = observed_run(config)
        assert len([s for s in tracer.spans_on("driver") if s.depth == 1]) == 2

    def test_phase_spans_tile_the_run(self, config):
        result, tracer, _m = observed_run(config)
        spans = sorted(
            (s for s in tracer.spans_on("gpu0") if s.depth == 1),
            key=lambda s: s.start_ns,
        )
        assert spans[0].start_ns == 0.0
        assert spans[-1].end_ns == result.total_time_ns
        for left, right in zip(spans, spans[1:]):
            assert right.start_ns == left.end_ns

    def test_no_spans_left_open(self, config):
        _result, tracer, _m = observed_run(config)
        assert tracer.open_span_count() == 0


class TestDeterminism:
    def test_trace_exports_are_identical_run_to_run(self, config):
        exports = []
        for _ in range(2):
            _r, tracer, _m = observed_run(config)
            payload = chrome_trace(tracer, {"workload": "t"})
            exports.append(json.dumps(payload, sort_keys=True))
        assert exports[0] == exports[1]

    def test_jsonl_identical_run_to_run(self, config):
        logs = []
        for _ in range(2):
            _r, tracer, _m = observed_run(config)
            logs.append("\n".join(jsonl_events(tracer)))
        assert logs[0] == logs[1]


class TestChromeExportOfRealRun:
    def test_schema_and_contents(self, config):
        result, tracer, _m = observed_run(config)
        payload = chrome_trace(tracer, {"workload": "test", "policy": "oasis"})
        assert validate_chrome_trace(payload) == []
        events = payload["traceEvents"]
        instants = [e for e in events if e["ph"] == "i"]
        faults = [e for e in instants if e["name"] == "fault"]
        migrates = [e for e in instants if e["name"] == "migrate"]
        assert len(faults) == result.total_faults
        assert len(migrates) == result.migrations
        # One utilization counter sample per link per non-empty phase.
        counters = [e for e in events if e["ph"] == "C"]
        assert counters, "expected per-link utilization samples"

    def test_link_tracks_present(self, config):
        _result, tracer, _m = observed_run(config)
        link_tracks = [t for t in tracer.tracks() if t.startswith("link:")]
        # 4 GPUs: 6 NVLink pairs + 4 PCIe host links.
        assert len(link_tracks) == 10


class TestFaultInjectionEvents:
    def plan(self):
        from repro.faults import FaultPlan

        return FaultPlan.from_spec(json.dumps({
            "link_faults": [
                {"phase": 1, "a": 0, "b": 1, "bandwidth_factor": 0.0}
            ],
            "migration_flakes": [
                {"phase": 1, "rate": 0.5, "gpus": [0, 1, 2, 3]}
            ],
        }))

    def test_fault_inject_and_retry_instants(self, config):
        faulted = config.replace(fault_plan=self.plan())
        result, tracer, _m = observed_run(faulted)
        totals = tracer.event_totals()
        assert totals.get("fault_inject", 0) == result.stats.get(
            "fault_inject.link_severed", 0.0
        ) + result.stats.get("fault_inject.link_degraded", 0.0)
        injected = [e for e in tracer.instants if e.kind == "fault_inject"]
        assert all(e.track == "faults" for e in injected)
        if result.stats.get("driver.migration_retries", 0.0):
            assert totals.get("retry", 0) > 0

    def test_reroute_instants_match_counter(self, config):
        faulted = config.replace(fault_plan=self.plan())
        result, tracer, _m = observed_run(faulted)
        reroutes = result.stats.get("fault_inject.reroutes", 0.0)
        if reroutes:
            # One instant per record_transfer reroute; bulk reroutes
            # collapse many messages into one instant, so the instant
            # count is a lower bound that the message counter meets.
            assert 0 < tracer.event_totals().get("reroute", 0) <= reroutes

    def test_faulted_observed_run_matches_unobserved(self, config):
        faulted = config.replace(fault_plan=self.plan())
        trace = two_phase_trace()
        plain = simulate(faulted, trace, make_policy("oasis"))
        observed, _t, _m = observed_run(faulted, trace=two_phase_trace())
        assert observed.total_time_ns == plain.total_time_ns
        assert observed.stats == plain.stats
