"""OASIS ablation-flag tests."""

from repro.core import OasisPolicy
from repro.sim.machine import Machine, simulate
from tests.conftest import make_trace, sweep_records


class TestExplicitResetFlag:
    def test_disabled_resets_skip_kernel_launches(self, config):
        records = sweep_records(range(4), "obj", 2, write=False, weight=2)
        trace = make_trace({"obj": 2}, [records, records],
                           explicit=[True, True])
        policy = OasisPolicy(explicit_resets=False)
        Machine(config, trace, policy).run()
        assert policy.controller.kernel_resets == 0


class TestPrivateFilterFlag:
    def test_disabled_filter_routes_first_touch_to_otable(self, config):
        trace = make_trace({"obj": 2}, [[(0, "obj", 0, False, 4)]])
        policy = OasisPolicy(private_filter=False)
        machine = Machine(config, trace, policy)
        result = machine.run()
        assert result.stats.get("oasis.private_fault", 0) == 0
        assert result.stats["oasis.shared_fault"] == 1

    def test_enabled_filter_skips_otable_for_first_touch(self, config):
        trace = make_trace({"obj": 2}, [[(0, "obj", 0, False, 4)]])
        policy = OasisPolicy(private_filter=True)
        result = Machine(config, trace, policy).run()
        assert result.stats["oasis.private_fault"] == 1


class TestCapacityGuardFlag:
    def _oversub_trace(self):
        records = []
        for _ in range(2):
            records += sweep_records(range(4), "ro", 16, write=False,
                                     weight=32)
        return make_trace({"ro": 16}, [records])

    def test_guard_degrades_duplication(self, config):
        config = config.replace(oversubscription=4.0)
        result = simulate(config, self._oversub_trace(),
                          OasisPolicy(capacity_guard=True))
        assert result.stats.get("oasis.duplication_degraded", 0) > 0

    def test_no_guard_duplicates_and_evicts(self, config):
        config = config.replace(oversubscription=4.0)
        result = simulate(config, self._oversub_trace(),
                          OasisPolicy(capacity_guard=False))
        assert result.stats.get("oasis.duplication_degraded", 0) == 0
        assert (result.evictions
                + result.stats.get("eviction.copy_dropped", 0)) > 0
