"""Tagged-pointer tests (Figs. 9-10)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import decode_pointer, encode_pointer, strip_tag
from repro.core.pointer import ADDRESS_MASK, config_bit
from repro.memory.address_space import ADDR_BITS


class TestEncoding:
    def test_obj_id_lands_above_bit_48(self):
        tagged = encode_pointer(0x1000, obj_id=0b1010, config=1)
        assert tagged >> (ADDR_BITS + 1) == 0b1010

    def test_config_bit_at_bit_48(self):
        assert (encode_pointer(0, 0, 1) >> ADDR_BITS) & 1 == 1
        assert (encode_pointer(0, 0, 0) >> ADDR_BITS) & 1 == 0

    def test_address_preserved(self):
        tagged = encode_pointer(0xDEADBEEF, obj_id=7, config=1)
        assert strip_tag(tagged) == 0xDEADBEEF

    def test_preexisting_upper_bits_cleared(self):
        # Fig. 10: MASK clears any pre-existing higher bits.
        dirty = (0xFF << ADDR_BITS) | 0x1234
        tagged = encode_pointer(dirty, obj_id=3, config=1)
        assert strip_tag(tagged) == 0x1234
        _, obj_id, _ = decode_pointer(tagged)
        assert obj_id == 3

    def test_obj_id_overflow_rejected(self):
        with pytest.raises(ValueError):
            encode_pointer(0, obj_id=16, config=1, obj_id_bits=4)

    def test_wide_obj_id_field(self):
        tagged = encode_pointer(0, obj_id=30000, config=0, obj_id_bits=15)
        _, obj_id, cfg = decode_pointer(tagged, obj_id_bits=15)
        assert obj_id == 30000
        assert cfg == 0

    def test_max_obj_id_bits_is_15(self):
        with pytest.raises(ValueError):
            encode_pointer(0, 0, 1, obj_id_bits=16)

    def test_bad_config_bit_rejected(self):
        with pytest.raises(ValueError):
            encode_pointer(0, 0, 2)

    def test_config_bit_helper(self):
        assert config_bit(encode_pointer(0, 5, 1)) == 1
        assert config_bit(encode_pointer(0, 5, 0)) == 0

    def test_strip_tag_is_tbi_mask(self):
        tagged = encode_pointer(ADDRESS_MASK, obj_id=15, config=1)
        assert strip_tag(tagged) == ADDRESS_MASK

    @given(
        ptr=st.integers(min_value=0, max_value=(1 << ADDR_BITS) - 1),
        obj_id=st.integers(min_value=0, max_value=15),
        config=st.integers(min_value=0, max_value=1),
    )
    def test_roundtrip(self, ptr, obj_id, config):
        tagged = encode_pointer(ptr, obj_id, config)
        address, decoded_id, decoded_cfg = decode_pointer(tagged)
        assert address == ptr
        assert decoded_id == obj_id
        assert decoded_cfg == config
        assert tagged < (1 << 64)
