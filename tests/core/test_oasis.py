"""OASIS end-to-end behavioural tests on small hand-built traces."""

from repro.core import OasisPolicy
from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run_oasis(trace, config, **config_changes):
    if config_changes:
        config = config.replace(**config_changes)
    policy = OasisPolicy()
    machine = Machine(config, trace, policy)
    result = machine.run()
    return machine, policy, result


class TestPrivateObjects:
    def test_private_pages_stay_on_touch(self, config):
        trace = make_trace(
            {"priv": 4},
            [[(g, "priv", p, True, 4) for g in range(4) for p in (g,)]],
        )
        machine, policy, result = run_oasis(trace, config)
        # Each GPU touched its own page: host PT filter says private,
        # resolved by default on-touch, never forwarded to the O-Table.
        assert result.stats["oasis.private_fault"] == 4
        assert result.stats.get("oasis.shared_fault", 0) == 0
        pt = machine.page_tables
        first = trace.first_page
        for g in range(4):
            assert pt.location(first + g) == g
            assert pt.policy(first + g) == POLICY_ON_TOUCH

    def test_private_faults_bypass_otable(self, config):
        trace = make_trace({"priv": 2}, [[(0, "priv", 0, False, 8)]])
        _, policy, _ = run_oasis(trace, config)
        assert policy.otable.hits == 0


class TestSharedReadObjects:
    def test_shared_reads_learn_duplication(self, config):
        records = sweep_records(range(4), "ro", 4, write=False, weight=8)
        trace = make_trace({"ro": 4}, [records])
        machine, policy, result = run_oasis(trace, config)
        first = trace.first_page
        # Pages migrated on first touch, then duplicated for later GPUs.
        assert result.duplications > 0
        assert machine.page_tables.policy(first) == POLICY_DUPLICATION
        # All four GPUs end up with local copies.
        assert len(machine.page_tables.copy_holders(first)) >= 2

    def test_shared_read_object_reaches_all_local(self, config):
        records = sweep_records(range(4), "ro", 2, write=False, weight=4)
        trace = make_trace({"ro": 2}, [records, records],
                           explicit=[True, False])
        machine, _, result = run_oasis(trace, config)
        # Second sweep is all local: no faults beyond the first sweep's.
        assert result.stats["access.local"] > 0
        assert result.stats.get("access.remote", 0) == 0


class TestSharedWriteObjects:
    def test_shared_writes_learn_counter(self, config):
        records = sweep_records(range(4), "rw", 4, write=True, weight=4)
        trace = make_trace({"rw": 4}, [records])
        machine, policy, result = run_oasis(trace, config)
        first = trace.first_page
        assert machine.page_tables.policy(first) == POLICY_COUNTER
        # Counter-mode pages are remote-mapped, not migrated per write.
        assert result.stats["remote_map.count"] > 0


class TestExplicitPhaseReset:
    def test_kernel_launch_resets_pf_counts(self, config):
        records = sweep_records(range(4), "obj", 2, write=False, weight=2)
        trace = make_trace({"obj": 2}, [records, records],
                           explicit=[True, True])
        _, policy, result = run_oasis(trace, config)
        assert policy.controller.kernel_resets == 2
        assert result.stats["oasis.kernel_resets"] == 2

    def test_implicit_phase_does_not_reset(self, config):
        records = sweep_records(range(4), "obj", 2, write=False, weight=2)
        trace = make_trace({"obj": 2}, [records, records],
                           explicit=[True, False])
        _, policy, _ = run_oasis(trace, config)
        assert policy.controller.kernel_resets == 1


class TestPatternChange:
    def test_object_transitions_dup_to_counter_across_phases(self, config):
        reads = sweep_records(range(4), "obj", 4, write=False, weight=4)
        writes = sweep_records(range(4), "obj", 4, write=True, weight=4)
        trace = make_trace({"obj": 4}, [reads, writes],
                           explicit=[True, True])
        machine, policy, _ = run_oasis(trace, config)
        first = trace.first_page
        # After the write phase the object's policy must be counter.
        from repro.core.otable import OTABLE_POLICY_COUNTER
        entry = policy.otable.lookup(0)
        assert entry.policy == OTABLE_POLICY_COUNTER
        assert machine.page_tables.policy(first) in (
            POLICY_COUNTER, POLICY_DUPLICATION
        )

    def test_write_to_duplicated_page_collapses(self, config):
        reads = sweep_records(range(4), "obj", 2, write=False, weight=4)
        writes = [(1, "obj", 0, True, 4)]
        trace = make_trace({"obj": 2}, [reads, writes],
                           explicit=[True, True])
        machine, _, result = run_oasis(trace, config)
        assert result.collapses >= 1
        first = trace.first_page
        assert machine.page_tables.copy_holders(first) == [1]


class TestOversubscriptionFix:
    def test_evicted_shared_page_still_treated_as_shared(self, config):
        """Section VI-D: host-resident pages with non-default policy bits
        route to the O-Table instead of being misclassified private."""
        trace = make_trace({"obj": 2}, [[(0, "obj", 0, False)]])
        machine, policy, _ = run_oasis(trace, config)
        first = trace.first_page
        pt = machine.page_tables
        # Force the page into the post-eviction state: on host, but
        # carrying duplication policy bits.
        machine.driver.evict(first)
        pt.set_policy(first, POLICY_DUPLICATION)
        shared_before = machine.stats["oasis.shared_fault"]
        cost = policy.on_fault(2, first, is_write=False)
        assert machine.stats["oasis.shared_fault"] == shared_before + 1
        assert cost > 0


class TestManyObjects:
    def test_more_objects_than_otable_entries(self, config):
        objects = {f"o{i}": 1 for i in range(20)}
        records = [
            (g, f"o{i}", 0, False, 2) for i in range(20) for g in range(2)
        ]
        trace = make_trace(objects, [records])
        _, policy, result = run_oasis(trace, config)
        assert policy.otable.evictions > 0
        assert result.total_time_ns > 0


class TestCounterModeRemoteAccess:
    def test_counter_threshold_triggers_group_migration(self, config):
        config = config.replace(access_counter_threshold=8)
        writes = [(0, "obj", p, True) for p in range(2)]
        remote = [(1, "obj", 0, True, 64), (1, "obj", 1, True, 64)]
        trace = make_trace({"obj": 2}, [writes, remote, remote],
                           explicit=[True, True, True])
        machine, _, result = run_oasis(trace, config)
        assert result.stats.get("migration.counter_triggered", 0) > 0
        first = trace.first_page
        assert machine.page_tables.location(first) == 1
