"""Property-based tests for the OASIS-InMem shadow map."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ShadowMap
from repro.core.inmem import SEGMENT_BYTES, UNMAPPED


@st.composite
def allocations(draw):
    """Non-overlapping (base, size, obj_id) triples, like a real allocator."""
    n = draw(st.integers(min_value=1, max_value=8))
    cursor = draw(st.integers(min_value=0, max_value=1 << 20))
    out = []
    for obj_id in range(n):
        cursor += draw(st.integers(min_value=0, max_value=1 << 16))
        size = draw(st.integers(min_value=1, max_value=1 << 16))
        out.append((cursor, size, obj_id))
        cursor += size
    return out


class TestShadowMapProperties:
    @settings(max_examples=60, deadline=None)
    @given(allocs=allocations())
    def test_matches_reference_segment_map(self, allocs):
        sm = ShadowMap()
        reference = {}
        for base, size, obj_id in allocs:
            sm.set_range(base, size, obj_id)
            first = base // SEGMENT_BYTES
            last = (base + size - 1) // SEGMENT_BYTES
            for seg in range(first, last + 1):
                reference[seg] = obj_id
        for base, size, obj_id in allocs:
            for vaddr in (base, base + size - 1, base + size // 2):
                assert sm.lookup(vaddr) == reference[vaddr // SEGMENT_BYTES]

    @settings(max_examples=40, deadline=None)
    @given(allocs=allocations())
    def test_clear_restores_unmapped(self, allocs):
        sm = ShadowMap()
        for base, size, obj_id in allocs:
            sm.set_range(base, size, obj_id)
        for base, size, _obj_id in allocs:
            sm.clear_range(base, size)
        for base, size, _ in allocs:
            assert sm.lookup(base) == UNMAPPED
            assert sm.lookup(base + size - 1) == UNMAPPED

    @settings(max_examples=40, deadline=None)
    @given(allocs=allocations())
    def test_entry_count_matches_segment_count(self, allocs):
        sm = ShadowMap()
        for base, size, obj_id in allocs:
            written = sm.set_range(base, size, obj_id)
            first = base // SEGMENT_BYTES
            last = (base + size - 1) // SEGMENT_BYTES
            assert written == last - first + 1

    @settings(max_examples=30, deadline=None)
    @given(allocs=allocations())
    def test_memory_accounting_monotonic(self, allocs):
        sm = ShadowMap()
        previous = sm.second_level_bytes
        for base, size, obj_id in allocs:
            sm.set_range(base, size, obj_id)
            assert sm.second_level_bytes >= previous
            previous = sm.second_level_bytes
        # Table granularity: every allocated table is 8 KB of entries.
        assert sm.second_level_bytes == sm.level2_tables * (1 << 12) * 2
