"""Object Tracker tests (Section V-B)."""

import pytest

from repro.core import ObjectTracker


class TestObjectTracker:
    def test_ids_assigned_in_allocation_order(self):
        tracker = ObjectTracker()
        objs = [tracker.malloc_managed(i * 0x10000, 4096) for i in range(3)]
        assert [o.obj_id for o in objs] == [0, 1, 2]

    def test_pointer_tagged_with_id_and_config(self):
        tracker = ObjectTracker(config_bit=1)
        obj = tracker.malloc_managed(0x4000, 4096, name="A")
        assert tracker.extract_obj_id(obj.tagged_pointer) == 0
        assert tracker.dereference(obj.tagged_pointer) == 0x4000

    def test_inmem_config_bit_zero(self):
        tracker = ObjectTracker(config_bit=0)
        obj = tracker.malloc_managed(0x4000, 4096)
        assert (obj.tagged_pointer >> 48) & 1 == 0

    def test_tag_wraps_at_field_width(self):
        tracker = ObjectTracker(obj_id_bits=4)
        objs = [tracker.malloc_managed(i * 0x10000, 4096) for i in range(17)]
        assert objs[16].obj_id == 16
        assert tracker.extract_obj_id(objs[16].tagged_pointer) == 0

    def test_free(self):
        tracker = ObjectTracker()
        obj = tracker.malloc_managed(0, 4096)
        assert tracker.live_objects == 1
        assert tracker.free(obj.obj_id)
        assert tracker.live_objects == 0
        assert not tracker.free(obj.obj_id)

    def test_object_for(self):
        tracker = ObjectTracker()
        obj = tracker.malloc_managed(0x1000, 4096, name="X")
        assert tracker.object_for(0).name == "X"
        assert tracker.object_for(99) is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            ObjectTracker().malloc_managed(0, 0)

    def test_bad_config_bit_rejected(self):
        with pytest.raises(ValueError):
            ObjectTracker(config_bit=2)
