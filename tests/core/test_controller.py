"""Object Policy Controller tests: learning, self-correction, resets.

Covers the state machine of Fig. 13(b) at the controller level.
"""

import pytest

from repro.core import ObjectPolicyController, OTable
from repro.core.otable import OTABLE_POLICY_COUNTER, OTABLE_POLICY_DUPLICATION
from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION


@pytest.fixture
def ctrl():
    return ObjectPolicyController(OTable(), reset_threshold=8)


class TestLearning:
    def test_first_write_fault_learns_counter(self, ctrl):
        # Transition (1) of Fig. 13(b): shared-write -> counter.
        assert ctrl.on_shared_fault(0, is_write=True) == POLICY_COUNTER

    def test_first_read_fault_learns_duplication(self, ctrl):
        # Transition (2): shared-read -> duplication.
        assert ctrl.on_shared_fault(0, is_write=False) == POLICY_DUPLICATION

    def test_subsequent_faults_apply_recorded_policy(self, ctrl):
        ctrl.on_shared_fault(0, is_write=True)
        # Read faults while PF count != 0 must NOT flip the policy.
        for _ in range(5):
            assert ctrl.on_shared_fault(0, is_write=False) == POLICY_COUNTER

    def test_counter_policy_sticky_on_writes(self, ctrl):
        # Transition (5): continued shared writes keep counter.
        ctrl.on_shared_fault(0, is_write=True)
        for _ in range(20):
            assert ctrl.on_shared_fault(0, is_write=True) == POLICY_COUNTER

    def test_pf_count_increments(self, ctrl):
        ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.otable.lookup(0).pf_count == 1


class TestSelfCorrection:
    def test_reset_at_threshold_relearns(self, ctrl):
        # 8 faults reach the reset threshold; the 9th re-learns.
        ctrl.on_shared_fault(0, is_write=True)
        for _ in range(7):
            ctrl.on_shared_fault(0, is_write=False)
        assert ctrl.otable.lookup(0).pf_count == 0
        assert ctrl.resets == 1
        # Transition (3): counter -> duplication on a shared read.
        assert ctrl.on_shared_fault(0, is_write=False) == POLICY_DUPLICATION

    def test_duplication_to_counter_on_write_after_reset(self, ctrl):
        # Transition (4): dup -> counter via protection (write) faults.
        ctrl.on_shared_fault(0, is_write=False)
        for _ in range(7):
            ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.on_shared_fault(0, is_write=True) == POLICY_COUNTER

    def test_stable_policy_survives_reset(self, ctrl):
        # Re-learning the same policy is harmless (paper Section VI-B1).
        for _ in range(30):
            assert ctrl.on_shared_fault(0, is_write=False) == POLICY_DUPLICATION
        assert ctrl.resets >= 3
        assert ctrl.transitions == {}

    def test_transition_counts(self, ctrl):
        ctrl.on_shared_fault(0, is_write=True)  # dup(default) -> counter
        key = (OTABLE_POLICY_DUPLICATION, OTABLE_POLICY_COUNTER)
        assert ctrl.transitions[key] == 1

    def test_threshold_4(self):
        ctrl = ObjectPolicyController(OTable(), reset_threshold=4)
        for _ in range(4):
            ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.resets == 1

    def test_invalid_threshold(self):
        with pytest.raises(ValueError):
            ObjectPolicyController(OTable(), reset_threshold=0)


class TestKernelLaunch:
    def test_kernel_launch_resets_pf_counts_only(self, ctrl):
        ctrl.on_shared_fault(0, is_write=True)
        ctrl.on_shared_fault(0, is_write=True)
        ctrl.on_kernel_launch()
        entry = ctrl.otable.lookup(0)
        assert entry.pf_count == 0
        # Policy preserved: the reset "only sets the PF count to 000".
        assert entry.policy == OTABLE_POLICY_COUNTER
        assert ctrl.kernel_resets == 1

    def test_next_fault_after_launch_relearns(self, ctrl):
        ctrl.on_shared_fault(0, is_write=True)
        ctrl.on_kernel_launch()
        assert ctrl.on_shared_fault(0, is_write=False) == POLICY_DUPLICATION


class TestObjectLifecycle:
    def test_alloc_initializes_entry(self, ctrl):
        ctrl.on_alloc(7)
        assert 7 in ctrl.otable

    def test_free_removes_entry(self, ctrl):
        ctrl.on_alloc(7)
        ctrl.on_free(7)
        assert 7 not in ctrl.otable

    def test_evicted_object_relearns_on_fault(self):
        ctrl = ObjectPolicyController(OTable(capacity=2), reset_threshold=8)
        for obj in range(3):
            ctrl.on_alloc(obj)
        # Object 0 was evicted by the LRU; a fault re-creates its entry.
        assert ctrl.on_shared_fault(0, is_write=True) == POLICY_COUNTER


class TestImplicitPhaseDetection:
    def test_reset_followed_by_flip_counts_as_detection(self):
        ctrl = ObjectPolicyController(OTable(), reset_threshold=4)
        # Learn counter, hit the threshold, then re-learn duplication.
        for _ in range(4):
            ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.resets == 1
        ctrl.on_shared_fault(0, is_write=False)
        assert ctrl.implicit_phase_detections == 1

    def test_stable_relearn_is_not_a_detection(self):
        ctrl = ObjectPolicyController(OTable(), reset_threshold=4)
        for _ in range(12):
            ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.resets >= 2
        assert ctrl.implicit_phase_detections == 0

    def test_first_learning_is_not_a_detection(self):
        ctrl = ObjectPolicyController(OTable(), reset_threshold=8)
        ctrl.on_shared_fault(0, is_write=True)
        assert ctrl.implicit_phase_detections == 0

    def test_kernel_reset_flip_is_not_implicit(self):
        ctrl = ObjectPolicyController(OTable(), reset_threshold=8)
        ctrl.on_shared_fault(0, is_write=True)
        ctrl.on_kernel_launch()
        ctrl.on_shared_fault(0, is_write=False)
        assert ctrl.implicit_phase_detections == 0
        assert ctrl.transitions  # the change itself is recorded
