"""OASIS-InMem tests: shadow map structure and overhead (Section V-F)."""

import pytest

from repro.core import OasisInMemPolicy, ShadowMap
from repro.core.inmem import LEVEL2_BITS, SEGMENT_BYTES, UNMAPPED
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


class TestShadowMap:
    def test_lookup_unmapped_returns_sentinel(self):
        assert ShadowMap().lookup(0x1234) == UNMAPPED

    def test_set_range_then_lookup(self):
        sm = ShadowMap()
        sm.set_range(0x10000, 8192, obj_id=5)
        assert sm.lookup(0x10000) == 5
        assert sm.lookup(0x10000 + 8191) == 5
        assert sm.lookup(0x10000 + 8192) == UNMAPPED

    def test_2mb_object_occupies_512_entries(self):
        # Section V-F's worked example: a 2 MB object = 512 entries.
        sm = ShadowMap()
        assert sm.set_range(0, 2 * 1024 * 1024, obj_id=1) == 512

    def test_clear_range(self):
        sm = ShadowMap()
        sm.set_range(0, 4096, obj_id=3)
        sm.clear_range(0, 4096)
        assert sm.lookup(0) == UNMAPPED

    def test_range_spanning_two_level2_tables(self):
        sm = ShadowMap()
        boundary = (1 << (LEVEL2_BITS + 12))  # first table covers 16 MB
        sm.set_range(boundary - 4096, 8192, obj_id=9)
        assert sm.lookup(boundary - 1) == 9
        assert sm.lookup(boundary) == 9
        assert sm.level2_tables == 2

    def test_first_level_is_128_mb(self):
        # Section V-F: 2^24 elements x 8-byte pointers = 128 MB.
        assert ShadowMap().first_level_bytes == 128 * 1024 * 1024

    def test_second_level_memory_accounting(self):
        # Each dynamically allocated table: 2^12 x 16-bit entries = 8 KB.
        sm = ShadowMap()
        sm.set_range(0, 4096, obj_id=0)
        assert sm.second_level_bytes == (1 << LEVEL2_BITS) * 2

    def test_64gb_footprint_overhead_matches_paper(self):
        # Section V-F: a 64 GB footprint needs 2^12 second-level tables
        # totalling 32 MB; overall overhead ~160 MB (< 0.3% of 64 GB).
        sm = ShadowMap()
        gb64 = 64 * 1024**3
        # Don't actually fill 64 GB of entries; compute from table count:
        tables_needed = gb64 // (SEGMENT_BYTES << LEVEL2_BITS)
        assert tables_needed == 1 << 12
        second_level = tables_needed * (1 << LEVEL2_BITS) * 2
        assert second_level == 32 * 1024 * 1024
        total = sm.first_level_bytes + second_level
        assert total == 160 * 1024 * 1024
        assert total / gb64 < 0.003

    def test_obj_id_overflow_rejected(self):
        with pytest.raises(ValueError):
            ShadowMap().set_range(0, 4096, obj_id=1 << 16)


class TestOasisInMemPolicy:
    def test_config_bit_is_zero(self):
        assert OasisInMemPolicy.config_bit == 0

    def test_same_decisions_as_hardware_oasis(self, config):
        from repro.core import OasisPolicy

        records = sweep_records(range(4), "ro", 4, write=False, weight=8)
        trace = make_trace({"ro": 4}, [records])
        hw = Machine(config, trace, OasisPolicy()).run()
        sw = Machine(config, trace, OasisInMemPolicy()).run()
        # Identical event counts; only metadata lookup latency differs.
        assert sw.total_faults == hw.total_faults
        assert sw.duplications == hw.duplications
        assert sw.migrations == hw.migrations
        assert sw.total_time_ns >= hw.total_time_ns

    def test_shadow_map_populated_on_alloc(self, config):
        policy = OasisInMemPolicy()
        trace = make_trace({"a": 2, "b": 2}, [[(0, "a", 0, False)]])
        Machine(config, trace, policy).run()
        base = trace.objects[1].allocation.base
        assert policy.shadow_map.lookup(base) == 1

    def test_lookup_cost_warm_vs_cold(self, config):
        policy = OasisInMemPolicy()
        records = sweep_records(range(4), "obj", 2, write=False, weight=2)
        trace = make_trace({"obj": 2}, [records])
        result = Machine(config, trace, policy).run()
        assert result.stats["inmem.cold_lines"] >= 1
        assert result.stats["inmem.lookups"] >= result.stats["inmem.cold_lines"]

    def test_otable_inmem_footprint_formula(self, config):
        # Section V-F: (4 + N) x #Obj bits.
        policy = OasisInMemPolicy()
        trace = make_trace({"a": 1, "b": 1, "c": 1}, [[(0, "a", 0, False)]])
        Machine(config, trace, policy).run()
        assert policy.otable_inmem_bytes == (4 + 16) * 3 // 8
