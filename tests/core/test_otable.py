"""O-Table tests: 12-bit entry packing and LRU management (Fig. 11)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core import OTable
from repro.core.otable import (
    ENTRY_BITS,
    OTABLE_POLICY_COUNTER,
    OTABLE_POLICY_DUPLICATION,
    pack_entry,
    unpack_entry,
)


class TestEntryPacking:
    def test_entry_is_12_bits(self):
        assert ENTRY_BITS == 12

    def test_pack_layout(self):
        # Obj_ID=0b1111, policy=1, pf=0b101, lru=0b0011
        word = pack_entry(0b1111, 1, 0b101, 0b0011)
        assert word == (0b1111 << 8) | (1 << 7) | (0b101 << 4) | 0b0011

    def test_roundtrip_corners(self):
        for fields in [(0, 0, 0, 0), (15, 1, 7, 15)]:
            assert unpack_entry(pack_entry(*fields)) == fields

    def test_field_overflow_rejected(self):
        with pytest.raises(ValueError):
            pack_entry(16, 0, 0, 0)
        with pytest.raises(ValueError):
            pack_entry(0, 2, 0, 0)
        with pytest.raises(ValueError):
            pack_entry(0, 0, 8, 0)
        with pytest.raises(ValueError):
            pack_entry(0, 0, 0, 16)

    @given(
        obj_id=st.integers(0, 15), policy=st.integers(0, 1),
        pf=st.integers(0, 7), lru=st.integers(0, 15),
    )
    def test_roundtrip_property(self, obj_id, policy, pf, lru):
        word = pack_entry(obj_id, policy, pf, lru)
        assert 0 <= word < (1 << 12)
        assert unpack_entry(word) == (obj_id, policy, pf, lru)


class TestOTable:
    def test_new_entry_defaults(self):
        table = OTable()
        entry = table.insert(3)
        assert entry.policy == OTABLE_POLICY_DUPLICATION  # "0"
        assert entry.pf_count == 0

    def test_capacity_is_16_by_default(self):
        table = OTable()
        assert table.capacity == 16
        assert table.storage_bits == 12 * 16  # 24 bytes (Section V-E)

    def test_lookup_miss_returns_none(self):
        table = OTable()
        assert table.lookup(5) is None
        assert table.misses == 1

    def test_lookup_hit(self):
        table = OTable()
        table.insert(5)
        assert table.lookup(5) is not None
        assert table.hits == 1

    def test_lru_eviction_order(self):
        table = OTable(capacity=2)
        table.insert(0)
        table.insert(1)
        table.lookup(0)  # refresh 0; 1 is LRU
        table.insert(2)
        assert 1 not in table
        assert 0 in table
        assert table.evictions == 1

    def test_insert_existing_resets(self):
        table = OTable()
        entry = table.insert(1)
        entry.policy = OTABLE_POLICY_COUNTER
        entry.pf_count = 5
        fresh = table.insert(1)
        assert fresh.policy == OTABLE_POLICY_DUPLICATION
        assert fresh.pf_count == 0
        assert len(table) == 1

    def test_lookup_or_insert_recreates_evicted(self):
        table = OTable(capacity=1)
        table.insert(0)
        table.insert(1)  # evicts 0
        entry = table.lookup_or_insert(0)
        assert entry.obj_id == 0
        assert entry.pf_count == 0

    def test_remove(self):
        table = OTable()
        table.insert(4)
        assert table.remove(4)
        assert not table.remove(4)
        assert 4 not in table

    def test_reset_all_pf_counts(self):
        table = OTable()
        for i in range(3):
            table.insert(i).pf_count = 5
        assert table.reset_all_pf_counts() == 3
        assert all(e.pf_count == 0 for e in table.entries())

    def test_packed_words_valid(self):
        table = OTable()
        for i in range(4):
            entry = table.insert(i)
            entry.pf_count = i % 8
        words = table.packed_words()
        assert len(words) == 4
        assert all(0 <= w < (1 << 12) for w in words)

    def test_zero_capacity_rejected(self):
        with pytest.raises(ValueError):
            OTable(capacity=0)

    @given(ops=st.lists(st.integers(0, 30), max_size=60))
    def test_never_exceeds_capacity(self, ops):
        table = OTable(capacity=4)
        for obj in ops:
            table.lookup_or_insert(obj)
            assert len(table) <= 4
