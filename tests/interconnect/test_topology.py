"""Topology tests."""

import pytest

from repro.config import HOST, LatencyModel
from repro.interconnect import Topology


@pytest.fixture
def topo():
    return Topology(4, LatencyModel())


class TestTopology:
    def test_link_count(self, topo):
        # 4 PCIe links + C(4,2)=6 NVLink links.
        assert len(topo.links()) == 10

    def test_gpu_pair_uses_nvlink(self, topo):
        assert topo.link(0, 1).name.startswith("nvlink")

    def test_host_link_uses_pcie(self, topo):
        assert topo.link(HOST, 2).name.startswith("pcie")

    def test_link_is_order_insensitive(self, topo):
        assert topo.link(2, 0) is topo.link(0, 2)
        assert topo.link(HOST, 1) is topo.link(1, HOST)

    def test_self_link_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.link(1, 1)

    def test_unknown_device_rejected(self, topo):
        with pytest.raises(ValueError):
            topo.link(0, 9)

    def test_record_transfer_returns_time(self, topo):
        time = topo.record_transfer(0, 1, 4096)
        assert time > 0
        assert topo.link(0, 1).bytes_transferred == 4096

    def test_nvlink_vs_pcie_byte_accounting(self, topo):
        topo.record_transfer(0, 1, 100)
        topo.record_transfer(HOST, 0, 50)
        assert topo.nvlink_bytes() == 100
        assert topo.pcie_bytes() == 50

    def test_busiest_link_time(self, topo):
        topo.record_transfer(0, 1, 3000 * 1000)
        assert topo.busiest_link_time_ns() == pytest.approx(
            3000 * 1000 / 300.0
        )

    def test_traffic_snapshot_keys(self, topo):
        snap = topo.traffic_snapshot()
        assert len(snap) == 10
        assert all(v == 0 for v in snap.values())

    def test_reset_traffic(self, topo):
        topo.record_transfer(0, 1, 100)
        topo.reset_traffic()
        assert topo.nvlink_bytes() == 0

    def test_nvlink_faster_than_pcie(self, topo):
        nv = topo.link(0, 1).transfer_time_ns(1 << 20)
        pcie = topo.link(HOST, 0).transfer_time_ns(1 << 20)
        assert nv < pcie

    def test_single_gpu_topology(self):
        topo = Topology(1, LatencyModel())
        assert len(topo.links()) == 1
        assert topo.link(HOST, 0) is not None
