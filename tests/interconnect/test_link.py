"""Link tests."""

import pytest

from repro.interconnect import Link


class TestLink:
    def test_transfer_time_includes_latency(self):
        link = Link("l", bandwidth_bytes_per_ns=100.0, latency_ns=500.0)
        assert link.transfer_time_ns(1000) == 500.0 + 10.0

    def test_record_accumulates(self):
        link = Link("l", 100.0, 0.0)
        link.record(4096)
        link.record(4096)
        assert link.bytes_transferred == 8192
        assert link.message_count == 2

    def test_busy_time(self):
        link = Link("l", 2.0, 0.0)
        link.record(100)
        assert link.busy_time_ns == 50.0

    def test_zero_bytes_is_pure_latency(self):
        link = Link("l", 1.0, 7.0)
        assert link.record(0) == 7.0

    def test_negative_bytes_rejected(self):
        link = Link("l", 1.0, 0.0)
        with pytest.raises(ValueError):
            link.transfer_time_ns(-1)

    def test_reset_traffic(self):
        link = Link("l", 1.0, 0.0)
        link.record(100)
        link.reset_traffic()
        assert link.bytes_transferred == 0
        assert link.message_count == 0

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ValueError):
            Link("l", 0.0, 0.0)

    def test_negative_latency_rejected(self):
        with pytest.raises(ValueError):
            Link("l", 1.0, -1.0)
