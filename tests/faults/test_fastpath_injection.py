"""Fast-path correctness under fault injection.

The vectorized replay must engage only for phases before the first
scheduled fault, and a run under injection must be bit-identical to the
forced per-record path — same SimulationResult, down to every float.
"""

import pytest

from repro import make_policy, simulate
from repro.faults import (
    FaultPlan,
    LinkFault,
    MigrationFlake,
    PageRetirement,
)
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records

POLICIES = ("on_touch", "access_counter", "duplication", "grit", "oasis")


def trace_4phase():
    records = sweep_records(range(4), "data", 16, False)
    writes = [(gpu, "data", page, True) for gpu in range(4)
              for page in range(0, 16, 4)]
    return make_trace(
        {"data": 16},
        [records, records + writes, records, records + writes],
    )


MIXED_PLAN = FaultPlan(
    link_faults=(LinkFault(a=0, b=1, phase=2, bandwidth_factor=0.25),),
    migration_flakes=(MigrationFlake(rate=0.3, phase=2),),
)


class TestFastPathGating:
    def test_no_plan_keeps_fast_path(self, config):
        machine = Machine(config, trace_4phase(), make_policy("on_touch"))
        assert machine._fast is not None

    def test_empty_plan_keeps_fast_path(self, config):
        machine = Machine(
            config.replace(fault_plan=FaultPlan()),
            trace_4phase(),
            make_policy("on_touch"),
        )
        assert machine._fast is not None
        assert machine.injector is None

    def test_phase_zero_fault_disables_bulk_replay(self, config):
        plan = FaultPlan(migration_flakes=(MigrationFlake(rate=0.1,
                                                          phase=0),))
        machine = Machine(
            config.replace(fault_plan=plan),
            trace_4phase(),
            make_policy("on_touch"),
        )
        assert machine._fast is None

    def test_later_fault_keeps_prefix_fast(self, config):
        machine = Machine(
            config.replace(fault_plan=MIXED_PLAN),
            trace_4phase(),
            make_policy("on_touch"),
        )
        assert machine._fast is not None  # phases 0-1 still vectorized


class TestBitIdentical:
    def test_empty_plan_matches_no_plan(self, config):
        trace = trace_4phase()
        for policy in POLICIES:
            plain = simulate(config, trace, make_policy(policy))
            empty = simulate(
                config.replace(fault_plan=FaultPlan()),
                trace,
                make_policy(policy),
            )
            assert plain.to_dict() == empty.to_dict()

    @pytest.mark.parametrize("policy", POLICIES)
    def test_injected_fast_matches_forced_slow(self, config, policy,
                                               monkeypatch):
        trace = trace_4phase()
        faulted = config.replace(fault_plan=MIXED_PLAN)
        monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
        fast = simulate(faulted, trace, make_policy(policy))
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
        slow = simulate(faulted, trace, make_policy(policy))
        assert fast.to_dict() == slow.to_dict()

    @pytest.mark.parametrize("policy", ("on_touch", "oasis"))
    def test_retirement_fast_matches_forced_slow(self, config, policy,
                                                 monkeypatch):
        trace = trace_4phase()
        plan = FaultPlan(
            page_retirements=tuple(
                PageRetirement(gpu=0, page=trace.first_page + k, phase=1)
                for k in range(4)
            ),
        )
        faulted = config.replace(fault_plan=plan)
        monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
        fast = simulate(faulted, trace, make_policy(policy))
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
        slow = simulate(faulted, trace, make_policy(policy))
        assert fast.to_dict() == slow.to_dict()

    def test_injection_actually_happened(self, config):
        trace = trace_4phase()
        faulted = simulate(
            config.replace(fault_plan=MIXED_PLAN),
            trace,
            make_policy("on_touch"),
        )
        healthy = simulate(config, trace, make_policy("on_touch"))
        summary = faulted.resilience_summary()
        assert summary  # counters present, not a silent no-op
        assert faulted.to_dict() != healthy.to_dict()


class TestResultSurface:
    def test_resilience_properties(self, config):
        trace = trace_4phase()
        plan = FaultPlan(
            migration_flakes=(MigrationFlake(rate=1.0, phase=1),),
            link_faults=(LinkFault(a=0, b=1, phase=1),),
        )
        result = simulate(
            config.replace(fault_plan=plan), trace, make_policy("on_touch")
        )
        assert result.migration_fallbacks > 0
        assert result.migration_retries > 0
        summary = result.resilience_summary()
        assert "driver.migration_fallbacks" in summary

    def test_healthy_run_summary_is_empty(self, config):
        result = simulate(config, trace_4phase(), make_policy("on_touch"))
        assert result.resilience_summary() == {}
        assert result.migration_retries == 0
        assert result.reroutes == 0
