"""Machine-invariant audit: randomized primitives + full replays."""

import pytest

from repro.faults import FaultPlan, LinkFault, MigrationFlake, audit


class TestPrimitiveAudit:
    @pytest.mark.parametrize("seed", range(4))
    def test_healthy_sequences_stay_consistent(self, seed):
        assert audit.random_primitive_audit(seed, steps=150) == []

    def test_faulted_sequences_stay_consistent(self):
        plan = FaultPlan(
            link_faults=(LinkFault(a=0, b=1, phase=0),),
            migration_flakes=(MigrationFlake(rate=0.3, phase=0),),
        )
        assert audit.random_primitive_audit(
            1, steps=150, fault_plan=plan
        ) == []

    def test_oversubscribed_sequences_stay_consistent(self):
        assert audit.random_primitive_audit(
            2, steps=150, oversubscription=2.0
        ) == []


class TestReplayAudit:
    @pytest.mark.parametrize("policy", audit.AUDIT_POLICIES)
    def test_healthy_replay(self, policy):
        assert audit.replay_audit(policy, seed=0) == []

    @pytest.mark.parametrize("policy", audit.AUDIT_POLICIES)
    def test_faulted_replay(self, policy):
        plan = FaultPlan(
            link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.2),),
            migration_flakes=(MigrationFlake(rate=0.25, phase=1),),
        )
        assert audit.replay_audit(policy, seed=0, fault_plan=plan) == []


class TestInvariantChecker:
    def test_detects_planted_corruption(self):
        from repro import make_policy
        from repro.config import baseline_config
        from repro.sim.machine import Machine

        config = baseline_config()
        trace = audit._two_phase_trace(config)
        machine = Machine(config, trace, make_policy("on_touch"))
        machine.run()
        assert audit.check_machine_invariants(machine) == []
        # Corrupt the machine behind the bookkeeping's back: wipe the
        # copy set of a GPU-owned page, leaving a dangling owner.
        from repro.config import HOST

        pt = machine.page_tables
        page = next(
            p
            for p in range(trace.first_page, trace.first_page + trace.n_pages)
            if pt.location(p) != HOST
        )
        pt._copy_mask[page - pt._first_page] = 0
        assert audit.check_machine_invariants(machine) != []


class TestRunAudit:
    def test_full_matrix_is_clean(self):
        report = audit.run_audit(seeds=(0,), steps=80)
        assert report["checks"] > 0
        assert report["violations"] == []
