"""FaultPlan construction, validation, and serialization."""

import json

import pytest

from repro import baseline_config
from repro.faults import FaultPlan, LinkFault, MigrationFlake, PageRetirement
from repro.harness.diskcache import cache_key


class TestEventValidation:
    def test_link_fault_rejects_self_loop(self):
        with pytest.raises(ValueError):
            LinkFault(a=1, b=1)

    def test_link_fault_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            LinkFault(a=0, b=1, bandwidth_factor=1.5)
        with pytest.raises(ValueError):
            LinkFault(a=0, b=1, bandwidth_factor=-0.1)

    def test_link_fault_rejects_negative_phase(self):
        with pytest.raises(ValueError):
            LinkFault(a=0, b=1, phase=-1)

    def test_severed_iff_zero_factor(self):
        assert LinkFault(a=0, b=1).severed
        assert not LinkFault(a=0, b=1, bandwidth_factor=0.5).severed

    def test_retirement_rejects_host(self):
        with pytest.raises(ValueError):
            PageRetirement(gpu=-1, page=0)

    def test_flake_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            MigrationFlake(rate=1.5)

    def test_flake_gpu_filter(self):
        flake = MigrationFlake(rate=0.1, gpus=(1, 2))
        assert flake.applies_to(1)
        assert not flake.applies_to(0)
        assert MigrationFlake(rate=0.1).applies_to(0)

    def test_plan_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            FaultPlan(max_retries=-1)


class TestPlanShape:
    def test_empty_plan(self):
        plan = FaultPlan()
        assert plan.empty
        assert plan.events == ()
        assert plan.first_fault_phase is None

    def test_first_fault_phase_is_min(self):
        plan = FaultPlan(
            link_faults=(LinkFault(a=0, b=1, phase=3),),
            migration_flakes=(MigrationFlake(rate=0.1, phase=2),),
        )
        assert plan.first_fault_phase == 2
        assert not plan.empty

    def test_lists_are_frozen_to_tuples(self):
        plan = FaultPlan(link_faults=[LinkFault(a=0, b=1)])
        assert isinstance(plan.link_faults, tuple)
        hash(plan)  # hashable end-to-end

    def test_plan_is_hashable_and_comparable(self):
        a = FaultPlan(link_faults=(LinkFault(a=0, b=1),))
        b = FaultPlan(link_faults=(LinkFault(a=0, b=1),))
        assert a == b
        assert hash(a) == hash(b)
        assert a != FaultPlan()


class TestSerialization:
    def _plan(self):
        return FaultPlan(
            link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
            page_retirements=(PageRetirement(gpu=0, page=7, phase=2),),
            migration_flakes=(MigrationFlake(rate=0.05, gpus=(2,)),),
            seed=9,
            max_retries=5,
        )

    def test_round_trip(self):
        plan = self._plan()
        assert FaultPlan.from_spec(plan.to_spec()) == plan

    def test_round_trip_through_json_string(self):
        plan = self._plan()
        assert FaultPlan.from_spec(json.dumps(plan.to_spec())) == plan

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValueError, match="unknown fault-plan keys"):
            FaultPlan.from_spec({"link_fautls": []})

    def test_non_object_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan.from_spec("[1, 2]")

    def test_digest_tracks_content(self):
        plan = self._plan()
        assert plan.digest() == self._plan().digest()
        assert plan.digest() != FaultPlan().digest()


class TestCacheKeyIntegration:
    def test_plan_changes_cache_key(self):
        base = baseline_config()
        faulted = base.replace(
            fault_plan=FaultPlan(link_faults=(LinkFault(a=0, b=1),))
        )
        plain = cache_key(base, "mm", "on_touch", 4.0, 0, {})
        injected = cache_key(faulted, "mm", "on_touch", 4.0, 0, {})
        assert plain != injected

    def test_same_plan_same_key(self):
        plan = FaultPlan(migration_flakes=(MigrationFlake(rate=0.1),))
        a = baseline_config(fault_plan=plan)
        b = baseline_config(
            fault_plan=FaultPlan(migration_flakes=(MigrationFlake(rate=0.1),))
        )
        assert (
            cache_key(a, "mm", "oasis", 4.0, 0, {})
            == cache_key(b, "mm", "oasis", 4.0, 0, {})
        )
