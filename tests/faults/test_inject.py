"""FaultInjector behavior: link events, retirements, flakes, gating."""

import pytest

from repro import make_policy
from repro.faults import (
    FaultPlan,
    LinkFault,
    MigrationFlake,
    PageRetirement,
)
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def machine_with(config, plan, *, phases=2):
    """A 4-GPU machine over a tiny trace with ``phases`` phases."""
    records = sweep_records(range(4), "data", 8, False)
    trace = make_trace({"data": 8}, [records] * phases)
    return Machine(
        config.replace(fault_plan=plan), trace, make_policy("on_touch")
    )


class TestConstruction:
    def test_empty_plan_builds_no_injector(self, config):
        machine = machine_with(config, FaultPlan())
        assert machine.injector is None

    def test_no_plan_builds_no_injector(self, config):
        machine = machine_with(config, None)
        assert machine.injector is None

    def test_injector_wired_to_driver(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1),))
        )
        assert machine.injector is not None
        assert machine.driver.injector is machine.injector

    def test_rejects_unknown_link(self, config):
        with pytest.raises(ValueError):
            machine_with(
                config, FaultPlan(link_faults=(LinkFault(a=0, b=99),))
            )

    def test_rejects_unknown_retirement_gpu(self, config):
        with pytest.raises(ValueError):
            machine_with(
                config,
                FaultPlan(page_retirements=(PageRetirement(gpu=7, page=0),)),
            )

    def test_rejects_unknown_flake_gpu(self, config):
        with pytest.raises(ValueError):
            machine_with(
                config,
                FaultPlan(
                    migration_flakes=(MigrationFlake(rate=0.1, gpus=(9,)),)
                ),
            )


class TestFastPathGate:
    def test_phases_before_first_fault_allowed(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=2),))
        )
        injector = machine.injector
        assert injector.fast_path_allowed(0)
        assert injector.fast_path_allowed(1)
        assert not injector.fast_path_allowed(2)
        assert not injector.fast_path_allowed(3)

    def test_phase_zero_fault_blocks_everything(self, config):
        machine = machine_with(
            config, FaultPlan(migration_flakes=(MigrationFlake(rate=0.1),))
        )
        assert not machine.injector.fast_path_allowed(0)


class TestLinkEvents:
    def test_sever_applies_at_scheduled_phase(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=1),))
        )
        injector = machine.injector
        injector.start_phase(0, 0.0, machine.driver)
        assert not machine.topology.link(0, 1).severed
        injector.start_phase(1, 0.0, machine.driver)
        assert machine.topology.link(0, 1).severed
        assert machine.stats["fault_inject.link_severed"] == 1

    def test_degrade_scales_bandwidth(self, config):
        machine = machine_with(
            config,
            FaultPlan(
                link_faults=(
                    LinkFault(a=0, b=1, phase=0, bandwidth_factor=0.25),
                )
            ),
        )
        link = machine.topology.link(0, 1)
        rated = link.bandwidth
        machine.injector.start_phase(0, 0.0, machine.driver)
        assert link.bandwidth == pytest.approx(rated * 0.25)
        assert machine.stats["fault_inject.link_degraded"] == 1

    def test_event_fires_once(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=0),))
        )
        machine.injector.start_phase(0, 0.0, machine.driver)
        machine.injector.start_phase(1, 0.0, machine.driver)
        assert machine.stats["fault_inject.link_severed"] == 1

    def test_severed_link_reroutes_via_host(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=0),))
        )
        machine.injector.start_phase(0, 0.0, machine.driver)
        assert machine.injector.destination_reachable(0, 1)
        machine.topology.record_transfer(0, 1, 4096)
        assert machine.stats["fault_inject.reroutes"] == 1


class TestRetirements:
    def test_retired_frame_is_tracked(self, config):
        machine = machine_with(config, _retire_plan(machine_page(config), 0))
        machine.injector.start_phase(0, 0.0, machine.driver)
        page = machine_page(config)
        assert machine.injector.is_retired(0, page)
        assert machine.capacity.is_retired(0, page)
        assert machine.stats["fault_inject.page_retired"] == 1

    def test_occupied_frame_is_relocated(self, config):
        page = machine_page(config)
        machine = machine_with(config, _retire_plan(page, 1))
        machine.driver.migrate(0, page)
        assert machine.page_tables.has_copy(0, page)
        machine.injector.start_phase(1, 0.0, machine.driver)
        assert not machine.page_tables.has_copy(0, page)
        assert machine.stats["fault_inject.retired_relocations"] == 1

    def test_gate_blocks_retired_destination(self, config):
        page = machine_page(config)
        machine = machine_with(config, _retire_plan(page, 0))
        machine.injector.start_phase(0, 0.0, machine.driver)
        verdict = machine.injector.gate_migration(0, page)
        assert not verdict.proceed
        assert verdict.reason == "retired"
        # Other GPUs are unaffected.
        assert machine.injector.gate_migration(1, page).proceed

    def test_migrate_onto_retired_frame_degrades(self, config):
        page = machine_page(config)
        machine = machine_with(config, _retire_plan(page, 0))
        machine.injector.start_phase(0, 0.0, machine.driver)
        machine.driver.migrate(0, page)
        assert not machine.page_tables.has_copy(0, page)
        assert machine.page_tables.is_mapped(0, page)  # zero-copy fallback
        assert machine.injector.is_degraded(0, page)
        assert machine.stats["driver.migration_fallbacks"] == 1
        assert machine.stats["driver.fallback_retired"] == 1


class TestFlakes:
    def test_always_failing_flake_exhausts_retries(self, config):
        plan = FaultPlan(
            migration_flakes=(MigrationFlake(rate=1.0, phase=0),),
            max_retries=3,
            backoff_base_ns=1_000.0,
        )
        machine = machine_with(config, plan)
        machine.injector.start_phase(0, 0.0, machine.driver)
        verdict = machine.injector.gate_migration(0, machine_page(config))
        assert not verdict.proceed
        assert verdict.reason == "flake"
        assert verdict.retries == 3
        # 1000 * (2**0 + 2**1 + 2**2)
        assert verdict.backoff_ns == pytest.approx(7_000.0)

    def test_flake_inactive_before_its_phase(self, config):
        plan = FaultPlan(migration_flakes=(MigrationFlake(rate=1.0, phase=1),))
        machine = machine_with(config, plan)
        machine.injector.start_phase(0, 0.0, machine.driver)
        assert machine.injector.gate_migration(0, machine_page(config)).proceed

    def test_flake_stream_is_deterministic(self, config):
        def verdicts():
            plan = FaultPlan(
                migration_flakes=(MigrationFlake(rate=0.5, phase=0),), seed=7
            )
            machine = machine_with(config, plan)
            machine.injector.start_phase(0, 0.0, machine.driver)
            page = machine_page(config)
            return [
                (v.proceed, v.retries, v.backoff_ns)
                for v in (
                    machine.injector.gate_migration(0, page)
                    for _ in range(50)
                )
            ]

        assert verdicts() == verdicts()

    def test_gpu_filter_limits_flake(self, config):
        plan = FaultPlan(
            migration_flakes=(MigrationFlake(rate=1.0, gpus=(2,)),)
        )
        machine = machine_with(config, plan)
        machine.injector.start_phase(0, 0.0, machine.driver)
        page = machine_page(config)
        assert machine.injector.gate_migration(0, page).proceed
        assert not machine.injector.gate_migration(2, page).proceed

    def test_failed_migration_degrades_then_heals(self, config):
        plan = FaultPlan(
            migration_flakes=(MigrationFlake(rate=1.0, phase=0),)
        )
        machine = machine_with(config, plan)
        machine.injector.start_phase(0, 0.0, machine.driver)
        page = machine_page(config)
        machine.driver.migrate(0, page)
        assert machine.injector.is_degraded(0, page)
        assert machine.stats["driver.fallback_flake"] == 1
        machine.injector.clear_degraded(0, page)
        assert not machine.injector.is_degraded(0, page)


class TestSummary:
    def test_summary_collects_resilience_counters(self, config):
        machine = machine_with(
            config, FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=0),))
        )
        machine.injector.start_phase(0, 0.0, machine.driver)
        summary = machine.injector.summary()
        assert summary.get("fault_inject.link_severed") == 1
        assert all(
            key.startswith(("fault_inject.", "driver.")) for key in summary
        )


def machine_page(config) -> int:
    """First page of the test trace (trace-relative retirement target)."""
    records = sweep_records(range(4), "data", 8, False)
    return make_trace({"data": 8}, [records]).first_page


def _retire_plan(page: int, phase: int) -> FaultPlan:
    return FaultPlan(
        page_retirements=(PageRetirement(gpu=0, page=page, phase=phase),)
    )
