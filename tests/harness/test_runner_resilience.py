"""Crash/timeout tolerance of the parallel runner.

These tests exercise the harness's own fault hooks
(``REPRO_HARNESS_CRASH`` / ``REPRO_HARNESS_HANG``): a worker process
hard-dies or hangs on a chosen run, and the sweep must still return one
entry per request — retried results or structured RunFailures, never an
exception.
"""

import pytest

from repro.harness import (
    RunFailure,
    cache_stats,
    clear_cache,
    configure,
    last_sweep_summary,
    run_sims_parallel,
)
from repro.harness.runner import (
    DEFAULT_RETRY_BACKOFF_MAX_S,
    _apply_runner_config,
    _backoff_delay,
    _runner_config,
    _spec_key,
)
from repro.sim.results import SimulationResult


@pytest.fixture(autouse=True)
def isolated_runner(tmp_path, monkeypatch):
    monkeypatch.delenv("REPRO_HARNESS_CRASH", raising=False)
    monkeypatch.delenv("REPRO_HARNESS_HANG", raising=False)
    monkeypatch.delenv("REPRO_HARNESS_RAISE", raising=False)
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
    clear_cache()
    configure(jobs=1, cache_dir=str(tmp_path / "cache"))
    yield
    configure(jobs=1, disk_cache=False)
    clear_cache()


SMALL = {"footprint_mb": 4.0}


class TestStatsReconciliation:
    def test_hits_plus_misses_covers_every_slot(self, config):
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "mm", "oasis", SMALL),
            (config, "i2c", "on_touch", SMALL),
            (config, "mm", "on_touch", SMALL),  # duplicate -> hit
        ]
        results = run_sims_parallel(requests, jobs=2)
        assert all(isinstance(r, SimulationResult) for r in results)
        stats = cache_stats()
        assert stats["misses"] == 3  # three distinct specs
        assert stats["hits"] == 1  # the duplicate
        assert stats["hits"] + stats["misses"] == len(requests)

    def test_precached_specs_count_as_hits(self, config):
        run_sims_parallel([(config, "mm", "on_touch", SMALL)], jobs=2)
        before = cache_stats()
        run_sims_parallel([(config, "mm", "on_touch", SMALL)], jobs=2)
        after = cache_stats()
        assert after["misses"] == before["misses"]
        assert after["hits"] == before["hits"] + 1


class TestWorkerCrash:
    def test_crashed_worker_is_retried(self, config, tmp_path, monkeypatch):
        sentinel = tmp_path / "crashed-once"
        monkeypatch.setenv(
            "REPRO_HARNESS_CRASH", f"mm:on_touch@{sentinel}"
        )
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        results = run_sims_parallel(requests, jobs=2)
        assert sentinel.exists()  # the crash really happened
        assert all(isinstance(r, SimulationResult) for r in results)
        stats = cache_stats()
        assert stats["pool_failures"] >= 1
        assert stats["hits"] + stats["misses"] == len(requests)

    def test_poisoned_run_degrades_to_serial(self, config, monkeypatch):
        # No sentinel: the run crashes its worker on *every* pool attempt.
        # Each crash is unattributable (no attempt is charged), so the
        # sweep survives by degrading to in-process serial execution,
        # where the hook is inert.
        monkeypatch.setenv("REPRO_HARNESS_CRASH", "mm:on_touch")
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        results = run_sims_parallel(
            requests, jobs=2, pool_failure_limit=1
        )
        assert all(isinstance(r, SimulationResult) for r in results)
        assert cache_stats()["pool_failures"] == 2  # limit + the last straw
        assert cache_stats()["hits"] + cache_stats()["misses"] == 2


class TestHangTimeout:
    def test_hung_run_times_out_into_failure(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_HARNESS_HANG", "mm:on_touch")
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        # pool_failure_limit high enough that the sweep never leaves pool
        # mode (serial fallback would ignore the hang hook and succeed).
        results = run_sims_parallel(
            requests,
            jobs=2,
            timeout_s=3.0,
            max_attempts=1,
            pool_failure_limit=5,
        )
        failure, success = results
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "TimeoutError"
        assert failure.app == "mm"
        assert failure.attempts == 1
        assert not failure.ok
        assert isinstance(success, SimulationResult)
        # Accounting reconciles: the failed slot is neither hit nor miss.
        stats = cache_stats()
        assert stats["hits"] + stats["misses"] == 1
        summary = last_sweep_summary()
        assert summary["ok"] == 1 and summary["failed"] == 1

class TestTransientRaise:
    def test_retryable_failure_then_success(self, config, tmp_path,
                                            monkeypatch):
        # One-shot transient OSError: the first attempt raises in the
        # worker (retryable), the retry finds the sentinel and succeeds.
        sentinel = tmp_path / "raised-once"
        monkeypatch.setenv("REPRO_HARNESS_RAISE", f"mm:on_touch@{sentinel}")
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        results = run_sims_parallel(requests, jobs=2, pool_failure_limit=5)
        assert sentinel.exists()  # the injected raise really happened
        assert all(isinstance(r, SimulationResult) for r in results)
        stats = cache_stats()
        assert stats["run_retries"] >= 1
        assert stats["pool_failures"] == 0  # worker survived the raise
        assert stats["hits"] + stats["misses"] == len(requests)

    def test_retries_exhausted_is_a_structured_failure(self, config,
                                                       monkeypatch):
        # No sentinel: every attempt raises, so the run burns through
        # max_attempts and lands as a RunFailure slot.
        monkeypatch.setenv("REPRO_HARNESS_RAISE", "mm:on_touch")
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        failure, success = run_sims_parallel(
            requests, jobs=2, max_attempts=2, pool_failure_limit=5
        )
        assert isinstance(failure, RunFailure)
        assert failure.error_type == "OSError"
        assert "injected transient failure" in failure.message
        assert failure.attempts == 2  # exhausted, not abandoned early
        assert isinstance(success, SimulationResult)
        stats = cache_stats()
        assert stats["run_retries"] == 1  # one retry before giving up
        assert stats["hits"] + stats["misses"] == 1  # the ok slot only
        summary = last_sweep_summary()
        assert summary["ok"] == 1 and summary["failed"] == 1


class TestPoolRebuildDegradation:
    def test_degraded_sweep_keeps_failure_slots_and_accounting(
        self, config, monkeypatch
    ):
        # A poisoned run crashes its worker on every pool attempt; after
        # pool_failure_limit rebuilds the sweep degrades to in-process
        # serial execution (where the crash hook is inert).  A second,
        # deterministically bad spec must still come back as its own
        # structured failure slot, not take the sweep down.
        monkeypatch.setenv("REPRO_HARNESS_CRASH", "mm:on_touch")
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "mm", "bogus_policy", SMALL),
            (config, "i2c", "on_touch", SMALL),
        ]
        results = run_sims_parallel(requests, jobs=2, pool_failure_limit=1)
        by_policy = {spec[2]: result
                     for spec, result in zip(requests, results)}
        assert isinstance(by_policy["on_touch"], SimulationResult)
        assert isinstance(by_policy["bogus_policy"], RunFailure)
        assert by_policy["bogus_policy"].error_type == "ValueError"
        assert isinstance(results[2], SimulationResult)
        stats = cache_stats()
        assert stats["pool_failures"] >= 2  # limit + the last straw
        # Two ok slots, one failure: hits+misses covers exactly the oks.
        assert stats["hits"] + stats["misses"] == 2
        summary = last_sweep_summary()
        assert summary["runs"] == 3
        assert summary["ok"] == 2 and summary["failed"] == 1


class TestRetryBackoff:
    def test_exponential_growth_capped_at_default_max(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "1.0")
        monkeypatch.delenv("REPRO_RETRY_BACKOFF_MAX_S", raising=False)
        assert _backoff_delay(1) == 1.0
        assert _backoff_delay(2) == 2.0
        assert _backoff_delay(3) == 4.0
        assert _backoff_delay(4) == DEFAULT_RETRY_BACKOFF_MAX_S
        assert _backoff_delay(30) == DEFAULT_RETRY_BACKOFF_MAX_S

    def test_cap_is_env_overridable(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "1.0")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_MAX_S", "0.5")
        assert _backoff_delay(1) == 0.5
        assert _backoff_delay(10) == 0.5

    def test_zero_base_disables_backoff(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
        assert _backoff_delay(1) == 0.0
        assert _backoff_delay(8) == 0.0

    def test_garbage_env_falls_back_to_defaults(self, monkeypatch):
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "not-a-number")
        monkeypatch.setenv("REPRO_RETRY_BACKOFF_MAX_S", "")
        assert _backoff_delay(1) == 0.05
        assert _backoff_delay(30) == DEFAULT_RETRY_BACKOFF_MAX_S


class TestFailureRendering:
    def test_failure_renders_diagnosably(self, config):
        failure = RunFailure(
            app="mm", policy="oasis", seed=3,
            error_type="TimeoutError", message="run exceeded 3.0s",
            attempts=2,
        )
        text = str(failure)
        assert "mm/oasis" in text
        assert "TimeoutError" in text
        assert "2 attempt(s)" in text


class TestWorkerConfigPassthrough:
    def test_snapshot_round_trips(self, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_CACHE_SIZE", "17")
        configure(jobs=3, cache_dir=str(tmp_path / "elsewhere"))
        snapshot = _runner_config()
        assert snapshot == {
            "jobs": 3,
            "disk_enabled": True,
            "disk_root": str(tmp_path / "elsewhere"),
            "cache_size": 17,
            "memo_enabled": False,
            "memo_dir": None,
        }
        # A spawned worker starts from defaults; applying the snapshot
        # must reproduce the parent's runner state exactly.
        monkeypatch.setenv("REPRO_RUNNER_CACHE_SIZE", "1")
        configure(jobs=1, disk_cache=False)
        _apply_runner_config(snapshot)
        assert _runner_config() == snapshot

    def test_disk_cache_disabled_round_trips(self, monkeypatch):
        monkeypatch.delenv("REPRO_RUNNER_CACHE_SIZE", raising=False)
        configure(jobs=2, disk_cache=False)
        snapshot = _runner_config()
        assert snapshot["disk_enabled"] is False
        assert snapshot["disk_root"] is None
        _apply_runner_config(snapshot)
        assert _runner_config() == snapshot

    def test_workers_see_parent_disk_cache(self, config, tmp_path):
        # The workers must write results into the parent's configured
        # store — the regression was workers falling back to defaults.
        configure(jobs=2, cache_dir=str(tmp_path / "shared"))
        run_sims_parallel([(config, "mm", "on_touch", SMALL)], jobs=2)
        store = tmp_path / "shared"
        entries = [
            p for p in store.rglob("*.json") if p.parent.name != "quarantine"
        ]
        assert entries, "worker did not write to the configured disk cache"


class TestSerialFailureIsolation:
    def test_serial_bad_spec_yields_failure_not_abort(self, config):
        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "mm", "bogus_policy", SMALL),
        ]
        good, bad = run_sims_parallel(requests, jobs=1)
        assert isinstance(good, SimulationResult)
        assert isinstance(bad, RunFailure)
        assert bad.error_type == "ValueError"

    def test_spec_key_distinguishes_kwargs(self, config):
        a = {"config": config, "app": "mm", "policy": "grit",
             "footprint_mb": 4.0, "seed": 0, "policy_kwargs": {}}
        b = dict(a, policy_kwargs={"neighbor_window": 0})
        assert _spec_key(a) != _spec_key(b)


class TestSweepSummary:
    def test_summary_shape_and_counts(self, config):
        from repro.harness import last_sweep_summary

        requests = [
            (config, "mm", "on_touch", SMALL),
            (config, "mm", "oasis", SMALL),
        ]
        run_sims_parallel(requests, jobs=2)
        summary = last_sweep_summary()
        assert summary is not None
        assert summary["runs"] == 2
        assert summary["ok"] == 2 and summary["failed"] == 0
        assert summary["cache"]["misses"] == 2
        per_run = summary["wall_clock_s"]["per_run"]
        assert set(per_run) == {"mm/on_touch@4MB", "mm/oasis@4MB"}
        assert all(t >= 0.0 for t in per_run.values())
        assert summary["wall_clock_s"]["total"] >= 0.0
        # Counters are merged from every run's metrics snapshot.
        assert summary["counters"]["fault.page"] > 0
        assert list(summary["counters"]) == sorted(summary["counters"])

    def test_warm_sweep_reports_hits(self, config):
        from repro.harness import last_sweep_summary

        requests = [(config, "mm", "on_touch", SMALL)]
        run_sims_parallel(requests, jobs=2)
        run_sims_parallel(requests, jobs=2)
        summary = last_sweep_summary()
        assert summary["cache"]["hits"] == 1
        assert summary["cache"]["misses"] == 0
