"""Experiment registry smoke tests (small app subsets for speed)."""

import pytest

from repro.harness import EXPERIMENTS, run_experiment

FAST_APPS = ["mm", "st"]


class TestRegistry:
    def test_every_paper_artifact_registered(self):
        expected = {
            "table1", "table2", "table3",
            "fig2", "fig3", "fig4", "fig5", "fig6", "fig7",
            "fig15", "fig16", "fig17", "fig18", "fig19", "fig20",
            "fig21", "fig22", "fig23", "fig24", "fig25",
        }
        assert set(EXPERIMENTS) == expected

    def test_unknown_experiment_rejected(self):
        with pytest.raises(ValueError):
            run_experiment("fig99")


class TestCharacterizationExperiments:
    def test_table1_static(self):
        result = run_experiment("table1")
        assert result.row_dict()["GPUs"][1] == 4

    def test_fig4_mt_patterns(self):
        result = run_experiment("fig4")
        rows = result.row_dict()
        assert rows["MT_Input"][2] == "shared-read-only"
        assert rows["MT_Output"][2] == "private-write-only"

    def test_fig5_object_labels(self):
        result = run_experiment("fig5")
        rows = {(r[0], r[1]): r for r in result.rows}
        assert rows[("mm", "MM_A")][2] == "shared-read-only"
        assert rows[("st", "ST_currData")][2] == "shared-rw-mix"
        assert rows[("i2c", "I2C_Output")][2] == "private-rw-mix"

    def test_fig7_alternation(self):
        result = run_experiment("fig7")
        first = result.rows[0][2].split()
        assert first[0] != first[1]  # roles alternate


class TestPerformanceExperiments:
    def test_fig2_normalization(self):
        result = run_experiment("fig2", apps=FAST_APPS)
        assert result.headers[0] == "app"
        geomean_row = result.rows[-1]
        assert geomean_row[0] == "geomean"
        assert all(v > 0 for v in geomean_row[1:])

    def test_fig15_oasis_beats_on_touch(self):
        result = run_experiment("fig15", apps=FAST_APPS)
        row = result.row_dict()["geomean"]
        oasis = row[result.headers.index("oasis")]
        assert oasis > 1.0

    def test_fig22_relative_to_grit(self):
        result = run_experiment("fig22", apps=FAST_APPS)
        assert result.rows[-1][0] == "geomean"

    def test_fig24_fault_totals(self):
        result = run_experiment("fig24", apps=FAST_APPS)
        total = result.row_dict()["total"]
        assert total[1] > 0 and total[2] > 0
