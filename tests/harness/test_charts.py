"""ASCII chart tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness.charts import bar_chart, grouped_bar_chart


class TestBarChart:
    def test_largest_value_gets_full_width(self):
        out = bar_chart([("a", 2.0), ("b", 4.0)], width=20)
        lines = out.splitlines()
        assert lines[1].count("#") == 20
        assert lines[0].count("#") == 10

    def test_labels_aligned(self):
        out = bar_chart([("short", 1.0), ("a-long-label", 2.0)])
        first, second = out.splitlines()
        assert first.index("#") == second.index("#")

    def test_values_printed(self):
        out = bar_chart([("x", 1.234)])
        assert "1.23" in out

    def test_reference_tick_rendered(self):
        out = bar_chart([("x", 0.5)], width=20, reference=1.0)
        assert "|" in out

    def test_tick_overlapping_bar_uses_plus(self):
        out = bar_chart([("x", 1.0)], width=20, reference=1.0)
        assert "+" in out

    def test_empty(self):
        assert bar_chart([]) == "(no data)"

    def test_all_zero_values(self):
        out = bar_chart([("a", 0.0)])
        assert "0.00" in out

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", -1.0)])

    def test_narrow_width_rejected(self):
        with pytest.raises(ValueError):
            bar_chart([("a", 1.0)], width=2)

    @given(
        values=st.lists(
            st.tuples(st.text(min_size=1, max_size=6,
                              alphabet="abcdefgh"),
                      st.floats(min_value=0, max_value=1e6)),
            min_size=1, max_size=10,
        )
    )
    def test_never_exceeds_width_budget(self, values):
        out = bar_chart(values, width=30)
        for line in out.splitlines():
            assert line.count("#") <= 30


class TestGroupedBarChart:
    def test_one_group_per_row(self):
        rows = [["mm", 1.0, 2.0], ["st", 1.5, 0.5]]
        out = grouped_bar_chart(rows, ["app", "a", "b"], [1, 2])
        assert "mm:" in out
        assert "st:" in out
        assert out.count("#") > 0


class TestExperimentChart:
    def test_speedup_table_charts_geomean(self):
        from repro.harness import ExperimentResult
        from repro.harness.charts import experiment_chart

        result = ExperimentResult(
            "e", "t", ["app", "oasis", "grit"],
            [["mm", 2.0, 1.5], ["geomean", 1.8, 1.4]],
        )
        out = experiment_chart(result)
        assert "oasis" in out and "grit" in out
        assert "1.80" in out

    def test_single_column_charts_rows(self):
        from repro.harness import ExperimentResult
        from repro.harness.charts import experiment_chart

        result = ExperimentResult("e", "t", ["bucket", "count"],
                                  [["<=1", 5], [">1", 10]])
        out = experiment_chart(result)
        assert "<=1" in out

    def test_non_numeric_not_chartable(self):
        from repro.harness import ExperimentResult
        from repro.harness.charts import experiment_chart

        result = ExperimentResult("e", "t", ["a", "b"], [["x", "y"]])
        assert experiment_chart(result) == "(not chartable)"
