"""Report formatting tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.harness import ExperimentResult, format_table, geomean


class TestGeomean:
    def test_simple(self):
        assert geomean([2.0, 8.0]) == pytest.approx(4.0)

    def test_singleton(self):
        assert geomean([3.0]) == pytest.approx(3.0)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            geomean([])

    def test_nonpositive_rejected(self):
        with pytest.raises(ValueError):
            geomean([1.0, 0.0])

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=20))
    def test_bounded_by_min_max(self, values):
        g = geomean(values)
        assert min(values) <= g * (1 + 1e-9)
        assert g <= max(values) * (1 + 1e-9)

    @given(st.lists(st.floats(min_value=0.01, max_value=100), min_size=1,
                    max_size=10))
    def test_scale_invariance(self, values):
        g = geomean(values)
        assert geomean([v * 2 for v in values]) == pytest.approx(2 * g)


class TestFormatTable:
    def test_columns_aligned(self):
        out = format_table(["app", "x"], [["mm", 1.5], ["bfs", 10.25]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1

    def test_float_formatting(self):
        out = format_table(["v"], [[1.23456]])
        assert "1.23" in out

    def test_empty_rows(self):
        out = format_table(["a", "b"], [])
        assert "a" in out


class TestExperimentResult:
    def test_render_contains_everything(self):
        result = ExperimentResult(
            "figX", "Title", ["a"], [["row"]],
            paper_claim="paper says", measured_claim="we measure",
            notes=["careful"],
        )
        text = result.render()
        for piece in ("figX", "Title", "row", "paper says", "we measure",
                      "careful"):
            assert piece in text

    def test_save(self, tmp_path):
        result = ExperimentResult("figY", "T", ["a"], [[1]])
        path = result.save(tmp_path)
        assert path.name == "figY.txt"
        assert "figY" in path.read_text()

    def test_row_dict(self):
        result = ExperimentResult("e", "t", ["app", "v"],
                                  [["mm", 1], ["st", 2]])
        assert result.row_dict()["st"] == ["st", 2]


class TestSerialization:
    def test_to_dict_roundtrips_through_json(self):
        import json

        result = ExperimentResult(
            "e", "t", ["app", "v"], [["mm", 1.5]],
            paper_claim="p", measured_claim="m", notes=["n"],
        )
        blob = json.dumps(result.to_dict())
        restored = json.loads(blob)
        assert restored["exp_id"] == "e"
        assert restored["rows"] == [["mm", 1.5]]
        assert restored["notes"] == ["n"]

    def test_save_writes_json_twin(self, tmp_path):
        result = ExperimentResult("figZ", "T", ["a"], [[1]])
        result.save(tmp_path)
        assert (tmp_path / "figZ.json").exists()
