"""Persistent result store + parallel runner tests."""

import json

import pytest

from repro import baseline_config
from repro.harness import cache_stats, configure, run_sim, run_sims_parallel
from repro.harness.diskcache import DiskCache, cache_key
from repro.harness.runner import _CACHE, clear_cache
from repro.sim.results import SimulationResult


@pytest.fixture(autouse=True)
def isolated_runner(tmp_path):
    """Point the runner at a throwaway disk cache; restore after."""
    clear_cache()
    configure(jobs=1, cache_dir=str(tmp_path / "cache"))
    yield
    configure(jobs=1, disk_cache=False)
    clear_cache()


SMALL = {"footprint_mb": 4.0}


class TestDiskCache:
    def test_round_trip(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        cache.store(key, result)
        loaded = cache.load(key)
        assert isinstance(loaded, SimulationResult)
        assert loaded.to_dict() == result.to_dict()
        assert cache.stats() == {
            "disk_hits": 1, "disk_misses": 0, "disk_quarantined": 0,
            "snap_hits": 0, "snap_misses": 0,
        }

    def test_miss_on_unknown_key(self, tmp_path):
        cache = DiskCache(tmp_path / "store")
        assert cache.load("0" * 64) is None
        assert cache.stats() == {
            "disk_hits": 0, "disk_misses": 1, "disk_quarantined": 0,
            "snap_hits": 0, "snap_misses": 0,
        }

    def test_corrupt_entry_is_a_miss(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        path.write_text("{not json")
        assert cache.load(key) is None

    def test_corrupt_entry_is_quarantined(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        path.write_text("{not json")
        assert cache.load(key) is None
        assert not path.exists()  # moved aside, not left to re-trip
        assert (tmp_path / "store" / "quarantine" / path.name).exists()
        assert cache.stats()["disk_quarantined"] == 1
        # A second load is a clean miss, no double quarantine.
        assert cache.load(key) is None
        assert cache.stats()["disk_quarantined"] == 1

    def test_truncated_entry_is_quarantined(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        blob = path.read_bytes()
        path.write_bytes(blob[: len(blob) // 2])  # killed mid-write
        assert cache.load(key) is None
        assert cache.stats()["disk_quarantined"] == 1

    def test_checksum_mismatch_is_quarantined(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        payload = json.loads(path.read_text())
        payload["result"]["total_time_ns"] += 1.0  # silent bit-flip
        path.write_text(json.dumps(payload))
        assert cache.load(key) is None
        assert cache.stats()["disk_quarantined"] == 1

    def test_store_heals_after_quarantine(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        path.write_text("garbage")
        assert cache.load(key) is None
        cache.store(key, result)
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_failed_quarantine_is_not_counted(self, config, tmp_path,
                                              monkeypatch):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        path = cache.store(key, result)
        path.write_text("{not json")

        def refuse(src, dst):
            raise OSError("read-only store")

        with monkeypatch.context() as m:
            m.setattr("repro.harness.diskcache.os.replace", refuse)
            assert cache.load(key) is None  # still a clean miss
            assert cache.stats()["disk_quarantined"] == 0
            assert path.exists()  # nothing actually moved aside
        # Once the store is writable again the quarantine goes through
        # and is counted exactly once.
        assert cache.load(key) is None
        assert cache.stats()["disk_quarantined"] == 1
        assert not path.exists()

    def test_key_depends_on_parameters(self, config):
        base = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        assert cache_key(config, "st", "on_touch", 4.0, 0, {}) != base
        assert cache_key(config, "mm", "oasis", 4.0, 0, {}) != base
        assert cache_key(config, "mm", "on_touch", 8.0, 0, {}) != base
        assert cache_key(config, "mm", "on_touch", 4.0, 1, {}) != base
        assert (
            cache_key(config, "mm", "on_touch", 4.0, 0, {"x": 1}) != base
        )
        other = config.replace(reset_threshold=4)
        assert cache_key(other, "mm", "on_touch", 4.0, 0, {}) != base

    def test_key_depends_on_slow_path(self, config, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
        fast = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
        slow = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        assert fast != slow

    def test_run_sim_survives_cleared_memory_cache(self, config):
        a = run_sim(config, "mm", "on_touch", **SMALL)
        clear_cache()
        b = run_sim(config, "mm", "on_touch", **SMALL)
        assert a is not b  # rebuilt from disk, not the same object
        assert a.to_dict() == b.to_dict()
        assert cache_stats()["disk_hits"] == 1


class TestCacheKeyCanonicalization:
    def test_reordered_kwargs_share_a_key(self, config):
        a = cache_key(config, "mm", "oasis", 4.0, 0, {"alpha": 1, "beta": 2})
        b = cache_key(config, "mm", "oasis", 4.0, 0, {"beta": 2, "alpha": 1})
        assert a == b

    def test_nested_and_non_string_keys_canonicalize(self, config):
        a = cache_key(config, "mm", "oasis", 4.0, 0,
                      {"weights": {2: 0.5, 1: 0.25}, "tiers": [1, 2]})
        b = cache_key(config, "mm", "oasis", 4.0, 0,
                      {"tiers": [1, 2], "weights": {1: 0.25, 2: 0.5}})
        assert a == b

    def test_set_values_are_order_independent(self, config):
        a = cache_key(config, "mm", "oasis", 4.0, 0,
                      {"gpus": {"g0", "g1", "g2"}})
        b = cache_key(config, "mm", "oasis", 4.0, 0,
                      {"gpus": {"g2", "g0", "g1"}})
        assert a == b

    def test_different_kwargs_still_differ(self, config):
        base = cache_key(config, "mm", "oasis", 4.0, 0, {"alpha": 1})
        assert cache_key(config, "mm", "oasis", 4.0, 0, {"alpha": 2}) != base
        assert cache_key(config, "mm", "oasis", 4.0, 0, {"alpha": [1]}) != base
        assert cache_key(config, "mm", "oasis", 4.0, 0, {"beta": 1}) != base

    def test_reordered_kwargs_hit_the_same_disk_entry(self, config, tmp_path):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key_a = cache_key(config, "mm", "on_touch", 4.0, 0,
                          {"x": {"b": 2, "a": 1}, "y": 3})
        cache.store(key_a, result)
        key_b = cache_key(config, "mm", "on_touch", 4.0, 0,
                          {"y": 3, "x": {"a": 1, "b": 2}})
        loaded = cache.load(key_b)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert cache.stats()["disk_hits"] == 1


class TestBoundedMemoryCache:
    def test_lru_cap_evicts_oldest(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_CACHE_SIZE", "2")
        for app in ("mm", "st", "i2c"):
            run_sim(config, app, "on_touch", **SMALL)
        stats = cache_stats()
        assert stats["size"] == 2
        assert stats["capacity"] == 2
        assert stats["evictions"] == 1
        keys = list(_CACHE)
        assert [k[1] for k in keys] == ["st", "i2c"]

    def test_hit_refreshes_recency(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_RUNNER_CACHE_SIZE", "2")
        run_sim(config, "mm", "on_touch", **SMALL)
        run_sim(config, "st", "on_touch", **SMALL)
        run_sim(config, "mm", "on_touch", **SMALL)  # refresh mm
        run_sim(config, "i2c", "on_touch", **SMALL)  # evicts st
        assert [k[1] for k in _CACHE] == ["mm", "i2c"]

    def test_cache_stats_counts(self, config):
        run_sim(config, "mm", "on_touch", **SMALL)
        run_sim(config, "mm", "on_touch", **SMALL)
        stats = cache_stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1


class TestDurableWrites:
    def test_store_fsyncs_file_and_directory(self, config, tmp_path,
                                             monkeypatch):
        import os as _os

        monkeypatch.delenv("REPRO_NO_FSYNC", raising=False)
        calls = []
        real_fsync = _os.fsync

        def counting(fd):
            calls.append(fd)
            return real_fsync(fd)

        monkeypatch.setattr("repro.harness.diskcache.os.fsync", counting)
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        calls.clear()
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        cache.store(key, result)
        assert len(calls) >= 2  # the entry's bytes and its directory

    def test_no_fsync_knob_skips_barriers(self, config, tmp_path,
                                          monkeypatch):
        monkeypatch.setenv("REPRO_NO_FSYNC", "1")

        def forbidden(fd):
            raise AssertionError("fsync called with REPRO_NO_FSYNC=1")

        monkeypatch.setattr("repro.harness.diskcache.os.fsync", forbidden)
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        cache.store(key, result)  # atomicity unaffected, barriers skipped
        loaded = cache.load(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()

    def test_interrupted_write_leaves_no_temp_litter(self, config,
                                                     tmp_path, monkeypatch):
        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})

        def refuse(src, dst):
            raise OSError("device error at rename")

        with monkeypatch.context() as m:
            m.setattr("repro.harness.diskcache.os.replace", refuse)
            with pytest.raises(OSError):
                cache.store(key, result)
        assert cache.load(key) is None  # nothing at the final path
        assert not list((tmp_path / "store").rglob(".tmp-*"))


class TestChaosHooks:
    def test_torn_result_write_is_quarantined_on_read(self, config,
                                                      tmp_path):
        from repro.chaos import ChaosInjector, ChaosPlan, TornWrite

        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        plan = ChaosPlan(torn_writes=(TornWrite("result", 0, 0.5),))
        with ChaosInjector(plan):
            path = cache.store(key, result)  # caller sees success
        assert path.exists()  # ...but only a prefix reached the disk
        assert cache.load(key) is None
        assert cache.stats()["disk_quarantined"] == 1
        cache.store(key, result)  # clean rewrite heals the entry
        assert cache.load(key) is not None

    def test_injected_write_error_propagates(self, config, tmp_path):
        from repro.chaos import ChaosInjector, ChaosPlan, IOFault

        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        plan = ChaosPlan(io_faults=(IOFault("result", 0, "write"),))
        with ChaosInjector(plan):
            with pytest.raises(OSError, match="chaos"):
                cache.store(key, result)
        assert cache.load(key) is None  # nothing at the final path

    def test_runner_tolerates_store_errors(self, config):
        from repro.chaos import ChaosInjector, ChaosPlan, IOFault

        plan = ChaosPlan(io_faults=(IOFault("result", 0, "write"),))
        with ChaosInjector(plan):
            result = run_sim(config, "mm", "on_touch", **SMALL)
        assert result is not None  # the run itself is unharmed
        assert cache_stats()["store_errors"] == 1
        assert cache_stats()["disk_hits"] == 0

    def test_injected_read_error_is_a_soft_miss(self, config, tmp_path):
        from repro.chaos import ChaosInjector, ChaosPlan, IOFault

        cache = DiskCache(tmp_path / "store")
        result = run_sim(config, "mm", "on_touch", **SMALL)
        key = cache_key(config, "mm", "on_touch", 4.0, 0, {})
        cache.store(key, result)
        plan = ChaosPlan(io_faults=(IOFault("result", 0, "read"),))
        with ChaosInjector(plan):
            assert cache.load(key) is None
        assert cache.stats()["disk_misses"] == 1
        # Transient read errors never quarantine the (healthy) entry.
        assert cache.stats()["disk_quarantined"] == 0
        assert cache.load(key) is not None

    def test_blob_bit_rot_is_quarantined(self, tmp_path):
        from repro.chaos import BlobCorrupt, ChaosInjector, ChaosPlan

        cache = DiskCache(tmp_path / "store")
        key = "a" * 64
        plan = ChaosPlan(blob_corruptions=(BlobCorrupt(0, offset=5),))
        with ChaosInjector(plan):
            cache.store_blob(key, b"snapshot-bytes")
        assert cache.load_blob(key) is None  # silent rot caught on read
        assert cache.stats()["snap_misses"] == 1
        assert cache.stats()["disk_quarantined"] == 1


class TestRunSimsParallel:
    def test_matches_serial(self, config):
        requests = [
            (config, app, policy, SMALL)
            for app in ("mm", "i2c")
            for policy in ("on_touch", "oasis")
        ]
        parallel = run_sims_parallel(requests, jobs=2)
        clear_cache()
        serial = [
            run_sim(config, app, policy, **SMALL)
            for app in ("mm", "i2c")
            for policy in ("on_touch", "oasis")
        ]
        assert len(parallel) == len(serial)
        for p, s in zip(parallel, serial):
            assert p.to_dict() == s.to_dict()

    def test_results_enter_memory_cache(self, config):
        run_sims_parallel([(config, "mm", "on_touch", SMALL)], jobs=2)
        assert run_sim(config, "mm", "on_touch", **SMALL) is not None
        assert cache_stats()["hits"] >= 1

    def test_dict_requests(self, config):
        [result] = run_sims_parallel(
            [{"config": config, "app": "mm", "policy": "on_touch",
              "footprint_mb": 4.0}],
            jobs=1,
        )
        assert result.workload == "mm"

    def test_rejects_bad_jobs(self, config):
        with pytest.raises(ValueError):
            run_sims_parallel([(config, "mm", "on_touch")], jobs=0)
