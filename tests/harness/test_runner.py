"""Cached simulation runner tests."""

import pytest

from repro import baseline_config
from repro.harness import clear_cache, run_sim, speedup_table
from repro.harness.runner import _CACHE


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_cache()
    yield
    clear_cache()


SMALL = {"footprint_mb": 4.0}


class TestRunSim:
    def test_result_cached(self, config):
        a = run_sim(config, "mm", "on_touch", **SMALL)
        b = run_sim(config, "mm", "on_touch", **SMALL)
        assert a is b
        assert len(_CACHE) == 1

    def test_distinct_configs_not_shared(self, config):
        a = run_sim(config, "mm", "on_touch", **SMALL)
        other = config.replace(reset_threshold=4)
        b = run_sim(other, "mm", "on_touch", **SMALL)
        assert a is not b

    def test_unknown_policy_rejected(self, config):
        with pytest.raises(ValueError):
            run_sim(config, "mm", "bogus")

    def test_policy_kwargs_in_key(self, config):
        a = run_sim(config, "mm", "grit", **SMALL)
        b = run_sim(config, "mm", "grit", neighbor_window=0, **SMALL)
        assert a is not b


class TestSpeedupTable:
    def test_rows_and_geomean(self, config):
        rows, geo = speedup_table(
            config, ["mm"], ["on_touch", "ideal"],
            footprint_mb={"mm": 4.0},
        )
        assert rows[0][0] == "mm"
        assert rows[-1][0] == "geomean"
        assert rows[0][1] == pytest.approx(1.0)  # on_touch vs itself
        assert geo["ideal"] >= 1.0

    def test_separate_baseline_config(self, config):
        other = config.replace(initial_placement="distributed")
        rows, _ = speedup_table(
            other, ["mm"], ["on_touch"], baseline_config=other,
            footprint_mb={"mm": 4.0},
        )
        assert rows[0][1] == pytest.approx(1.0)
