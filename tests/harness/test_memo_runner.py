"""Runner-level sweep-fast-path wiring: configure, counters, summary.

Covers the harness glue around :mod:`repro.sim.sweep`: the
``configure(memo=..., memo_dir=...)`` knobs, the ``memo`` section of
``last_sweep_summary`` on the serial and pool paths, worker-delta
merging, and the default-off posture.
"""

from __future__ import annotations

import pytest

from repro.harness import (
    cache_stats,
    clear_cache,
    configure,
    last_sweep_summary,
    memo_stats,
    publish_memo_metrics,
    run_sim,
    run_sims_parallel,
)
from repro.harness import runner
from repro.sim import SimulationResult

MEMO_APP = "c2d"  # smallest multi-phase workload
POLICIES = ("oasis", "on_touch", "grit")


@pytest.fixture(autouse=True)
def memo_off_after():
    """Restore the default memo-off posture whatever a test configures."""
    clear_cache()
    yield
    configure(memo=False, memo_dir="")
    clear_cache()


def _requests(config, policies=POLICIES):
    return [(config, MEMO_APP, policy) for policy in policies]


def test_memo_default_off(config):
    run_sims_parallel(_requests(config, ("on_touch",)), jobs=1)
    summary = last_sweep_summary()
    assert summary["memo"]["enabled"] is False
    assert memo_stats()["enabled"] is False
    assert memo_stats()["hits"] == 0


def test_serial_sweep_memo_summary(config):
    configure(memo=True)
    run_sims_parallel(_requests(config), jobs=1)
    summary = last_sweep_summary()
    memo = summary["memo"]
    assert memo["enabled"] is True
    assert memo["stores"] > 0
    assert memo["snapshot_bytes"] > 0
    # Three policies over one cohort: the two non-reference policies
    # fork off the shared lane at their first divergent decision.
    assert memo["prefix_forks"] == 2

    # A second identical sweep replays from the result cache (no new
    # simulation), so its memo delta is all zeros.
    run_sims_parallel(_requests(config), jobs=1)
    repeat = last_sweep_summary()["memo"]
    assert repeat["hits"] == 0 and repeat["stores"] == 0

    # Dropping only the result tier forces re-simulation that resumes
    # from the snapshots populated by the first sweep.
    runner._CACHE.clear()
    run_sims_parallel(_requests(config), jobs=1)
    warm = last_sweep_summary()["memo"]
    assert warm["hits"] == len(POLICIES)
    assert warm["resumed_phases"] > 0
    assert warm["stores"] == 0

    results = [run_sim(config, MEMO_APP, policy) for policy in POLICIES]
    assert all(isinstance(r, SimulationResult) for r in results)


def test_pool_sweep_ships_memo_deltas(config, tmp_path):
    """Workers return per-run deltas; the parent folds them into stats."""
    configure(memo=True, memo_dir=str(tmp_path / "memo"))
    before = memo_stats()
    run_sims_parallel(_requests(config), jobs=2)
    summary = last_sweep_summary()
    assert summary["ok"] == len(POLICIES)
    memo = summary["memo"]
    assert memo["enabled"] is True
    assert memo["stores"] > 0
    assert memo["prefix_forks"] == 2
    after = memo_stats()
    assert after["stores"] - before["stores"] == memo["stores"]
    # The shared disk tier holds the snapshots the workers stored.
    assert list((tmp_path / "memo" / "snap").rglob("*.json"))

    # A warm pool sweep resumes from the shared disk tier.
    clear_cache()
    run_sims_parallel(_requests(config), jobs=2)
    warm = last_sweep_summary()["memo"]
    assert warm["hits"] == len(POLICIES)
    assert warm["resumed_phases"] > 0


def test_memo_dir_implies_enabled(config, tmp_path):
    configure(memo_dir=str(tmp_path / "memo"))
    assert memo_stats()["enabled"] is True
    run_sims_parallel(_requests(config, ("on_touch",)), jobs=1)
    assert last_sweep_summary()["memo"]["stores"] > 0
    assert list((tmp_path / "memo" / "snap").rglob("*.json"))


def test_cache_stats_has_snap_counters():
    stats = cache_stats()
    assert "snap_hits" in stats and "snap_misses" in stats


def test_publish_memo_metrics(config):
    from repro.obs import MetricsRegistry

    configure(memo=True)
    run_sims_parallel(_requests(config, ("on_touch",)), jobs=1)
    registry = MetricsRegistry()
    publish_memo_metrics(registry)
    gauges = registry.snapshot().gauges
    assert gauges["memo.enabled"] == 1.0
    assert gauges["memo.stores"] > 0


def test_memoized_results_identical_to_cold(config):
    """End-to-end through the runner: memo on/off results are identical."""
    from repro.verify.differential import core_digest

    cold = run_sim(config, MEMO_APP, "oasis")
    cold_digest = core_digest(cold)

    configure(memo=True)
    clear_cache()
    run_sims_parallel(_requests(config, ("oasis",)), jobs=1)  # populate
    runner._CACHE.clear()
    warm = run_sim(config, MEMO_APP, "oasis")
    assert memo_stats()["hits"] >= 1
    assert core_digest(warm) == cold_digest
