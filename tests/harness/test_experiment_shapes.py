"""Cheap structural tests for experiment functions (no simulation)."""

from repro.harness.experiments import (
    ALL_POLICIES,
    DEFAULT_APPS,
    UNIFORM_POLICIES,
    _pct,
    table1,
    table2,
)
from repro.workloads import APPLICATION_ORDER


class TestConstants:
    def test_default_apps_are_the_paper_eleven(self):
        assert DEFAULT_APPS == list(APPLICATION_ORDER)
        assert len(DEFAULT_APPS) == 11

    def test_policy_lists(self):
        assert UNIFORM_POLICIES == ["access_counter", "duplication", "ideal"]
        assert set(UNIFORM_POLICIES) <= set(ALL_POLICIES)
        assert "oasis" in ALL_POLICIES
        assert "oasis_inmem" in ALL_POLICIES

    def test_pct_formatting(self):
        assert _pct(1.64) == "+64%"
        assert _pct(0.80) == "-20%"
        assert _pct(1.0) == "+0%"


class TestStaticExperiments:
    def test_table1_shape(self):
        result = table1()
        assert result.exp_id == "table1"
        assert len(result.headers) == 2
        assert len(result.rows) >= 10

    def test_table2_rows_per_app(self):
        result = table2(apps=["mm", "st"])
        assert len(result.rows) == 2
        assert result.rows[0][0] == "mm"
