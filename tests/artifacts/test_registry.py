"""Benchmark-experiment discovery and id canonicalization."""

from __future__ import annotations

import pytest

from repro.artifacts import (
    discover_experiments,
    experiment_order,
    normalize_exp_id,
)
from repro.harness import EXPERIMENTS, SEEDED_EXPERIMENTS


def test_discovery_covers_every_registry_experiment():
    # One bench_* module per registry entry: the pipeline's notion of
    # "every experiment" and the harness's must never drift apart.
    assert set(discover_experiments()) == set(EXPERIMENTS)


def test_discovery_order_is_tables_then_figures():
    order = experiment_order()
    tables = [e for e in order if e.startswith("table")]
    figures = [e for e in order if e.startswith("fig")]
    assert order == tables + figures
    assert tables == sorted(tables, key=lambda e: int(e[5:]))
    assert figures == sorted(figures, key=lambda e: int(e[3:]))


def test_discovery_metadata():
    registry = discover_experiments()
    fig2 = registry["fig2"]
    assert fig2.kind == "fig" and fig2.number == 2
    assert fig2.path.name.startswith("bench_fig02")
    assert fig2.title  # first docstring line, parsed without importing
    assert fig2.seeded == ("fig2" in SEEDED_EXPERIMENTS)
    assert registry["table1"].seeded is False


@pytest.mark.parametrize("raw, canonical", [
    ("fig02", "fig2"),
    ("fig2", "fig2"),
    ("Fig15", "fig15"),
    ("table1", "table1"),
    ("TABLE01", "table1"),
])
def test_normalize_exp_id(raw, canonical):
    assert normalize_exp_id(raw) == canonical


@pytest.mark.parametrize("raw", ["fig1", "fig99", "bogus", ""])
def test_normalize_rejects_unknown_ids(raw):
    with pytest.raises(ValueError, match="unknown experiment"):
        normalize_exp_id(raw)
