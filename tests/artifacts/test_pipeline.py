"""Reproduce-all pipeline: artifacts, resume, chaos kill, CLI wiring.

These are the PR's acceptance tests: a smoke run writes
manifest/metrics/summary with the pinned schemas, a second invocation
of the same profile performs zero new simulations, and a run killed
mid-pipeline (via the chaos injector's worker-kill hook) resumes
without re-simulating what it already journaled.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.artifacts import SMOKE_APPS, run_pipeline, write_experiments_md
from repro.chaos import ChaosInjector, ChaosPlan, ChaosWorkerKill, WorkerKill

REPO = Path(__file__).resolve().parents[2]


def _quiet(*_args, **_kwargs):
    pass


@pytest.fixture
def dirs(tmp_path):
    return {
        "artifact_root": tmp_path / "artifacts",
        "results_dir": tmp_path / "results",
        "cache_dir": tmp_path / "cache",
    }


def _run(dirs, **kwargs):
    kwargs.setdefault("only", ["fig02"])
    kwargs.setdefault("smoke", True)
    kwargs.setdefault("apps", ["mm"])
    kwargs.setdefault("log", _quiet)
    return run_pipeline(**dirs, **kwargs)


def test_smoke_run_writes_full_artifact_set(dirs):
    summary = _run(dirs)
    art = Path(summary["artifact_dir"])

    assert summary["ok"] is True
    assert summary["experiments"] == {
        "selected": 1, "run": 1, "skipped": 0, "failed": 0,
    }
    assert summary["sims_new"] > 0
    assert summary["per_experiment"]["fig2"]["ok"] is True

    manifest = json.loads((art / "manifest.json").read_text())
    for key in ("schema", "run_id", "git", "config_digest", "seeds",
                "only", "apps", "env", "experiments", "profile"):
        assert key in manifest, key
    assert manifest["experiments"] == ["fig2"]  # fig02 canonicalized
    assert manifest["profile"] == "smoke"
    assert manifest["run_id"] == summary["run_id"]
    assert len(manifest["config_digest"]) == 64

    records = [
        json.loads(line)
        for line in (art / "metrics.jsonl").read_text().splitlines()
    ]
    assert len(records) == 1
    rec = records[0]
    assert rec["exp_id"] == "fig2" and rec["seed"] == 0 and rec["ok"]
    assert rec["sims_new"] == summary["sims_new"]
    assert rec["wall_s"] > 0
    assert set(rec["cache"]) == {"hits", "misses",
                                 "disk_hits", "disk_misses"}
    assert rec["memo"]["enabled"] is True

    # Rendered report, pipeline trace and counters ride along.
    assert (art / "reports" / "fig2.txt").exists()
    assert (art / "trace.json").exists()
    assert (art / "metrics.prom").exists()

    # Consolidated perf trajectory under the results dir.
    bench_all = json.loads(
        (dirs["results_dir"] / "BENCH_all.json").read_text()
    )
    assert bench_all["pipeline"]["run_id"] == summary["run_id"]
    assert "benches" in bench_all


def test_second_invocation_does_zero_new_simulations(dirs):
    first = _run(dirs)
    assert first["sims_new"] > 0

    # Same profile again: the run resumes into the same artifact dir
    # and skips the journaled experiment outright.
    second = _run(dirs)
    assert second["artifact_dir"] == first["artifact_dir"]
    assert second["experiments"]["skipped"] == 1
    assert second["experiments"]["run"] == 0
    assert second["sims_new"] == 0

    # --fresh forces re-execution — every cell must come back from the
    # persistent result store, still with zero new simulations.
    third = _run(dirs, fresh=True)
    assert third["experiments"]["run"] == 1
    assert third["experiments"]["skipped"] == 0
    assert third["sims_new"] == 0


def test_kill_mid_run_resumes_without_resimulating(dirs):
    # Worker-kill op 1 fires on the pipeline's second experiment: fig2
    # completes and is journaled, then the orchestrator dies exactly as
    # a SIGKILL between experiments would.
    plan = ChaosPlan(worker_kills=(WorkerKill(op=1),))
    with ChaosInjector(plan):
        with pytest.raises(ChaosWorkerKill):
            _run(dirs, only=["fig2", "fig16"])

    art_dirs = list(dirs["artifact_root"].iterdir())
    assert len(art_dirs) == 1
    art = art_dirs[0]
    assert not (art / "summary.json").exists()  # run never finished
    records = [
        json.loads(line)
        for line in (art / "metrics.jsonl").read_text().splitlines()
    ]
    assert [r["exp_id"] for r in records if r["ok"]] == ["fig2"]
    fig2_sims = records[0]["sims_new"]
    assert fig2_sims > 0

    # Resume: fig2 is skipped, fig16 runs, and fig16's shared cells
    # (the on-touch baseline it has in common with fig2) come from the
    # result store — strictly fewer simulations than a cold fig16.
    summary = _run(dirs, only=["fig2", "fig16"])
    assert summary["ok"] is True
    assert summary["experiments"]["skipped"] == 1
    assert summary["experiments"]["run"] == 1
    assert summary["per_experiment"]["fig2"]["skipped"] == 1
    assert 0 < summary["per_experiment"]["fig16"]["sims_new"] < fig2_sims + 1
    assert (art / "summary.json").exists()

    # And a third pass over the same selection is pure skip.
    final = _run(dirs, only=["fig2", "fig16"])
    assert final["sims_new"] == 0
    assert final["experiments"]["skipped"] == 2


def test_failed_experiment_is_journaled_and_does_not_abort(dirs):
    # An unknown application makes the experiment raise; the pipeline
    # must journal the failure and finish (summary ok=False), not die.
    summary = _run(dirs, apps=["no_such_app"])
    assert summary["ok"] is False
    assert summary["experiments"]["failed"] == 1
    art = Path(summary["artifact_dir"])
    rec = json.loads((art / "metrics.jsonl").read_text().splitlines()[0])
    assert rec["ok"] is False
    assert rec["error"]


def test_unknown_only_id_raises(dirs):
    with pytest.raises(ValueError, match="fig99"):
        _run(dirs, only=["fig99"])


def test_seeds_rerun_seeded_experiments_only(dirs):
    # fig2 is simulation-backed (seeded); table1 is characterization
    # and must run exactly once regardless of --seeds.
    summary = _run(dirs, only=["fig2", "table1"], seeds=2)
    assert summary["per_experiment"]["fig2"]["seeds"] == [0, 1]
    assert summary["per_experiment"]["table1"]["seeds"] == [0]
    # Seed 1 builds different traces, so it really simulates again.
    assert summary["sims_new"] > 0


def test_experiments_md_generator(dirs, tmp_path):
    # Subset runs keep reports inside the artifact dir (so they never
    # clobber the canonical tables); stage one into the results dir to
    # exercise the generator contract.
    summary = _run(dirs)
    report = Path(summary["artifact_dir"]) / "reports" / "fig2.txt"
    dirs["results_dir"].mkdir(parents=True, exist_ok=True)
    (dirs["results_dir"] / "fig2.txt").write_text(report.read_text())

    out = tmp_path / "EXPERIMENTS.md"
    missing = write_experiments_md(
        results_dir=dirs["results_dir"], out_path=out,
    )
    text = out.read_text()
    assert text.startswith("<!-- Generated by")
    assert "### fig2" in text
    assert "fig2" not in missing
    assert "fig15" in missing  # no report staged for it


def test_cli_reproduce_subcommand_is_wired():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["reproduce", "--smoke", "--only", "fig02", "--seeds", "2"]
    )
    assert args.func.__name__ == "cmd_reproduce"
    assert args.smoke and args.only == "fig02" and args.seeds == 2


def test_reproduce_all_script_end_to_end(tmp_path):
    """The acceptance criterion, through the real entry point."""
    cmd = [
        sys.executable, str(REPO / "scripts" / "reproduce_all"),
        "--smoke", "--only", "fig02", "--apps", "mm",
        "--artifact-root", str(tmp_path / "artifacts"),
        "--results-dir", str(tmp_path / "results"),
        "--cache-dir", str(tmp_path / "cache"),
    ]
    first = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    assert first.returncode == 0, first.stderr
    art_dirs = list((tmp_path / "artifacts").iterdir())
    assert len(art_dirs) == 1
    summary = json.loads((art_dirs[0] / "summary.json").read_text())
    assert summary["ok"] and summary["sims_new"] > 0

    second = subprocess.run(cmd, capture_output=True, text=True, timeout=300)
    assert second.returncode == 0, second.stderr
    summary2 = json.loads((art_dirs[0] / "summary.json").read_text())
    assert summary2["sims_new"] == 0
    assert summary2["experiments"]["skipped"] == 1
    assert (tmp_path / "results" / "BENCH_all.json").exists()


def test_smoke_apps_are_registry_apps():
    from repro.workloads import APPLICATIONS

    assert set(SMOKE_APPS) <= set(APPLICATIONS)
