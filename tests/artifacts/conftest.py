"""Artifact-pipeline test fixtures: sandbox the runner's global state.

``run_pipeline`` reconfigures the process-wide harness (disk cache
directory, memo, jobs); every test here must leave the runner exactly
as the rest of the suite expects it — serial, no disk cache, no memo.
"""

from __future__ import annotations

import pytest

from repro.harness import clear_cache, configure


@pytest.fixture(autouse=True)
def _isolated_runner():
    yield
    configure(jobs=1, disk_cache=False, memo=False)
    clear_cache()
