"""Metamorphic oracles: relations that must hold whatever the numbers are."""

from __future__ import annotations

from dataclasses import replace

import pytest

from repro import baseline_config, get_workload, make_policy, simulate
from repro.verify.differential import diff_payloads, result_payload
from repro.workloads.base import TraceBuilder

REAL_POLICIES = (
    "on_touch",
    "access_counter",
    "duplication",
    "grit",
    "static_advise",
    "oasis",
    "oasis_inmem",
)


@pytest.fixture
def config():
    return baseline_config()


@pytest.mark.parametrize("app", ["i2c", "mm"])
def test_ideal_is_never_slower_than_real_policies(config, app):
    # "ideal" resolves every access locally with zero page-management
    # cost; any real policy paying faults and migrations must be >= it.
    trace = get_workload(app, config)
    floor = simulate(config, trace, make_policy("ideal")).total_time_ns
    for policy in REAL_POLICIES:
        total = simulate(config, trace, make_policy(policy)).total_time_ns
        assert total >= floor, f"{policy} beat ideal on {app}"


@pytest.mark.parametrize("policy", ["on_touch", "oasis", "access_counter"])
def test_doubling_link_bandwidth_never_hurts(config, policy):
    trace = get_workload("i2c", config)
    base = simulate(config, trace, make_policy(policy)).total_time_ns
    fat_links = baseline_config(
        latency=replace(
            config.latency,
            nvlink_bw_bytes_per_ns=config.latency.nvlink_bw_bytes_per_ns * 2,
            pcie_bw_bytes_per_ns=config.latency.pcie_bw_bytes_per_ns * 2,
        )
    )
    fast = simulate(fat_links, trace, make_policy(policy)).total_time_ns
    assert fast <= base


def _private_objects_trace(config, pages_per_gpu: int = 64):
    """Each GPU touches only its own object — nothing is ever shared."""
    builder = TraceBuilder(
        "private", config.n_gpus, config.page_size, seed=0, burst=4
    )
    objs = [
        builder.alloc(f"private{gpu}", pages_per_gpu * config.page_size)
        for gpu in range(config.n_gpus)
    ]
    builder.begin_phase("sweep", explicit=True)
    for gpu, obj in enumerate(objs):
        for page in range(pages_per_gpu):
            builder.emit(gpu, obj, page, page % 3 == 0, 1)
    builder.end_phase()
    return builder.build()


def test_oasis_degenerates_to_on_touch_without_sharing(config):
    # With zero inter-GPU sharing there are no remote accesses for the
    # object-aware machinery to act on: OASIS must reduce to first-touch
    # migration.  Everything observable may differ only in the policy
    # label and OASIS's own bookkeeping counters (stats.oasis.*).
    trace = _private_objects_trace(config)
    on_touch = simulate(config, trace, make_policy("on_touch"))
    oasis = simulate(config, trace, make_policy("oasis"))
    assert oasis.total_time_ns == on_touch.total_time_ns
    diffs = diff_payloads(result_payload(on_touch), result_payload(oasis))
    assert diffs, "policy label alone should differ"
    for line in diffs:
        assert line.startswith(("policy:", "stats.oasis.")), line
    snapshot = oasis.metrics_snapshot().counters
    assert snapshot.get("access.remote", 0) == 0
    assert snapshot.get("duplication.count", 0) == 0
