"""Phase-boundary invariant verifier: hook semantics and counter laws."""

from __future__ import annotations

import pytest

from repro import baseline_config, get_workload, make_policy, simulate
from repro.engine import StatCounters
from repro.faults import FaultPlan, LinkFault, MigrationFlake
from repro.sim.machine import Machine
from repro.verify import (
    NULL_VERIFIER,
    InvariantVerifier,
    InvariantViolation,
    check_counter_laws,
    check_machine_invariants,
    run_invariant_suite,
    verified_simulate,
)

from tests.conftest import make_trace, sweep_records


@pytest.fixture
def trace(config):
    return make_trace(
        {"a": 16, "b": 8},
        [
            sweep_records(range(4), "a", 16, False),
            sweep_records(range(4), "b", 8, True)
            + sweep_records([0, 1], "a", 8, False),
        ],
    )


def test_null_verifier_is_disabled_and_silent(config, trace):
    assert NULL_VERIFIER.enabled is False
    machine = Machine(config, trace, make_policy("on_touch"))
    assert machine.verifier is NULL_VERIFIER
    NULL_VERIFIER.after_phase(machine, 0, 0)
    NULL_VERIFIER.after_run(machine, None)
    assert NULL_VERIFIER.violations == ()


def test_verifier_checks_every_phase_boundary(config, trace):
    result, verifier = verified_simulate(config, trace, "oasis")
    assert verifier.checked_phases == len(trace.phases)
    assert verifier.violations == []
    assert result.total_time_ns > 0


def test_verified_run_is_bit_identical(config, trace):
    plain = simulate(config, trace, make_policy("oasis"))
    checked = simulate(
        config, trace, make_policy("oasis"), verifier=InvariantVerifier()
    )
    assert plain.to_dict() == checked.to_dict()


def test_verifier_does_not_disable_fast_path(config, trace):
    machine = Machine(
        config, trace, make_policy("on_touch"),
        verifier=InvariantVerifier(),
    )
    assert machine._fast is not None


@pytest.mark.parametrize("policy", ["on_touch", "oasis", "duplication",
                                    "ideal"])
def test_laws_hold_on_registry_workload(config, policy):
    trace = get_workload("i2c", config)
    _, verifier = verified_simulate(config, trace, policy)
    assert verifier.violations == []


def test_laws_hold_under_fault_plan(trace):
    plan = FaultPlan(
        link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
        migration_flakes=(MigrationFlake(rate=0.2, phase=1),),
    )
    config = baseline_config(fault_plan=plan)
    _, verifier = verified_simulate(config, trace, "oasis")
    assert verifier.violations == []


def test_laws_hold_under_oversubscription(trace):
    config = baseline_config(oversubscription=1.5)
    _, verifier = verified_simulate(config, trace, "oasis")
    assert verifier.violations == []


def test_strict_verifier_raises_on_first_violation(config, trace,
                                                   monkeypatch):
    # Mutation smoke: silently drop one install counter and the
    # resolution-accounting law must trip at the first phase boundary.
    orig = StatCounters.add

    def dropping(self, name, amount=1.0):
        if name == "migration.count":
            return
        orig(self, name, amount)

    monkeypatch.setattr(StatCounters, "add", dropping)
    with pytest.raises(InvariantViolation, match="resolution accounting"):
        verified_simulate(config, trace, "on_touch")


def test_collecting_verifier_records_instead_of_raising(config, trace,
                                                        monkeypatch):
    orig = StatCounters.add

    def dropping(self, name, amount=1.0):
        if name == "fault.page":
            return
        orig(self, name, amount)

    monkeypatch.setattr(StatCounters, "add", dropping)
    _, verifier = verified_simulate(
        config, trace, "on_touch", strict=False
    )
    assert verifier.violations
    assert any("phase 0" in v for v in verifier.violations)


def test_counter_laws_flag_negative_counter(config, trace):
    machine = Machine(config, trace, make_policy("on_touch"))
    machine.run()
    machine.stats.add("migration.count", -1e9)
    found = check_counter_laws(
        machine, replayed_accesses=trace.total_accesses
    )
    assert any("negative" in v for v in found)


def test_counter_laws_flag_fault_attribution_drift(config, trace):
    machine = Machine(config, trace, make_policy("on_touch"))
    machine.run()
    machine.stats.add("fault.by_gpu.0", 7)
    found = check_counter_laws(machine)
    assert any("fault.by_gpu" in v for v in found)


def test_structural_check_flags_tlb_incoherence(config, trace):
    machine = Machine(config, trace, make_policy("on_touch"))
    machine.run()
    # Forge a stale translation: cached in the TLB, then unmapped
    # behind its back without a shootdown.
    pt = machine.page_tables
    gpu, page = next(
        (g, p)
        for p in range(trace.first_page, trace.first_page + trace.n_pages)
        for g in range(config.n_gpus)
        if pt.is_mapped(g, p)
    )
    machine.tlbs[gpu].translate_fast(page)
    pt.unmap(gpu, page)
    found = check_machine_invariants(machine)
    assert any("TLB caches unmapped page" in v for v in found)


def test_suite_runs_green_on_small_scope():
    report = run_invariant_suite(
        apps=("i2c",), policies=("on_touch", "oasis")
    )
    assert report["violations"] == []
    # 2 policies x (healthy + fault plan + oversubscribed).
    assert report["checks"] == 6
    assert report["phases"] >= report["checks"]
