"""Differential oracle lanes: agreement on healthy code, divergence caught."""

from __future__ import annotations

import pytest

from repro import baseline_config, get_workload, make_policy, simulate
from repro.engine import StatCounters
from repro.verify.differential import (
    canonical_json,
    check_cached_vs_recomputed,
    check_fast_vs_slow,
    check_faultplan_forced_slow,
    check_serial_vs_parallel,
    check_traced_vs_untraced,
    core_digest,
    counters_digest,
    diff_payloads,
    forced_slow_path,
    result_payload,
    run_differential,
)


@pytest.fixture
def config():
    return baseline_config()


def test_core_digest_is_stable_and_content_addressed(config):
    trace = get_workload("i2c", config)
    a = simulate(config, trace, make_policy("on_touch"))
    b = simulate(config, trace, make_policy("on_touch"))
    c = simulate(config, trace, make_policy("oasis"))
    assert core_digest(a) == core_digest(b)
    assert core_digest(a) != core_digest(c)
    assert counters_digest(a) == counters_digest(b)


def test_result_payload_drops_metrics_key(config):
    from repro.obs import MetricsRegistry

    trace = get_workload("i2c", config)
    observed = simulate(
        config, trace, make_policy("on_touch"), metrics=MetricsRegistry()
    )
    assert observed.metrics is not None
    assert "metrics" not in result_payload(observed)


def test_diff_payloads_names_the_moved_counter():
    left = {"stats": {"fault.page": 10.0, "migration.count": 10.0}}
    right = {"stats": {"fault.page": 10.0, "migration.count": 9.0}}
    diffs = diff_payloads(left, right)
    assert diffs == ["stats.migration.count: 10.0 != 9.0"]


def test_canonical_json_is_order_insensitive():
    assert canonical_json({"b": 1, "a": 2}) == canonical_json(
        {"a": 2, "b": 1}
    )


def test_forced_slow_path_restores_environment(monkeypatch):
    import os

    monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
    with forced_slow_path():
        assert os.environ["REPRO_FORCE_SLOW_PATH"] == "1"
    assert "REPRO_FORCE_SLOW_PATH" not in os.environ


@pytest.mark.parametrize("policy", ["on_touch", "oasis"])
def test_fast_vs_slow_lane_agrees(config, policy):
    assert check_fast_vs_slow(config, "i2c", policy) == []


def test_cache_lane_agrees(config):
    assert check_cached_vs_recomputed(config, "i2c", "oasis") == []


def test_traced_lane_agrees(config):
    assert check_traced_vs_untraced(config, "i2c", "oasis") == []


def test_faultplan_lane_agrees(config):
    assert check_faultplan_forced_slow(config, "i2c", "oasis") == []


def test_parallel_lane_agrees(config):
    pairs = [("i2c", "on_touch"), ("i2c", "oasis")]
    assert check_serial_vs_parallel(config, pairs, jobs=2) == []


def test_runner_covers_requested_lanes():
    report = run_differential(
        apps=("i2c",),
        policies=("on_touch",),
        lanes=("fast_slow", "cache"),
    )
    assert report["pairs"] == 1
    assert report["comparisons"] == 2
    assert report["mismatches"] == []


def test_runner_rejects_unknown_lane():
    with pytest.raises(ValueError, match="unknown lanes"):
        run_differential(apps=("i2c",), lanes=("warp_drive",))


def test_mutation_smoke_fast_slow_divergence_caught(config, monkeypatch):
    # Mutation smoke: make the slow path drop remote-access counting so
    # the two paths genuinely diverge — the oracle must name the moved
    # counter, not just fail.
    from repro.sim.machine import Machine

    orig_access = Machine.access

    def skewed(self, gpu, page, is_write, weight):
        self.stats.add("access.skew_probe", weight)
        orig_access(self, gpu, page, is_write, weight)

    monkeypatch.setattr(Machine, "access", skewed)
    mismatches = check_fast_vs_slow(config, "i2c", "on_touch")
    assert mismatches
    assert any("access.skew_probe" in m for m in mismatches)


def test_mutation_smoke_counter_drop_breaks_digest(config, monkeypatch):
    trace = get_workload("i2c", config)
    healthy = simulate(config, trace, make_policy("on_touch"))

    orig = StatCounters.add

    def dropping(self, name, amount=1.0):
        if name == "migration.bytes":
            return
        orig(self, name, amount)

    monkeypatch.setattr(StatCounters, "add", dropping)
    broken = simulate(config, trace, make_policy("on_touch"))
    assert core_digest(healthy) != core_digest(broken)
    diffs = diff_payloads(result_payload(healthy), result_payload(broken))
    assert any("migration.bytes" in d for d in diffs)
