"""The fault audit now rides on the verify.invariants primitives."""

from __future__ import annotations

import repro.verify.invariants as invariants
from repro.faults import FaultPlan, LinkFault, MigrationFlake, audit


def test_audit_reexports_the_shared_checker():
    # One checker, not two: the audit's structural check IS the verify
    # package's implementation, so the two can never silently disagree.
    assert audit.check_machine_invariants is invariants.check_machine_invariants


def test_replay_audit_checks_phase_boundaries():
    # The ported replay_audit attaches an InvariantVerifier, so counter
    # laws are evaluated too — not only end-of-run structural state.
    assert audit.replay_audit("oasis") == []


def test_replay_audit_and_verified_simulate_agree():
    plan = FaultPlan(
        link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
        migration_flakes=(MigrationFlake(rate=0.2, phase=1),),
    )
    for policy in ("on_touch", "oasis"):
        assert audit.replay_audit(policy, fault_plan=plan) == []


def test_random_primitive_audit_still_green():
    assert audit.random_primitive_audit(seed=0, steps=100) == []


def test_run_audit_small_matrix_green():
    report = audit.run_audit(
        policies=("on_touch", "oasis"), seeds=(0,), steps=60
    )
    assert report["violations"] == []
    # 1 primitive + 2 replay checks per plan (4 plans), + 2 oversub.
    assert report["checks"] == 4 * 3 + 2
