"""Golden-digest regression: pinning, drift detection, named diffs."""

from __future__ import annotations

import json

import pytest

from repro import baseline_config, get_workload, make_policy, simulate
from repro.verify.golden import (
    GOLDEN_PATH,
    SCHEMA,
    check_golden,
    entry_diff,
    entry_for,
    golden_key,
    golden_matrix,
    load_golden,
    update_golden,
)


@pytest.fixture
def config():
    return baseline_config()


@pytest.fixture
def result(config):
    trace = get_workload("i2c", config)
    return simulate(config, trace, make_policy("on_touch"))


def test_golden_key_includes_seed_only_when_nonzero():
    assert golden_key("i2c", "oasis") == "i2c/oasis"
    assert golden_key("i2c", "oasis", seed=3) == "i2c/oasis#3"


def test_entry_for_shape(result):
    entry = entry_for(result)
    assert set(entry) == {"core", "total_time_ns", "phases", "counters"}
    assert len(entry["core"]) == 64
    assert entry["phases"]
    assert all(set(p) == {"name", "digest"} for p in entry["phases"])
    assert entry["counters"]["fault.page"] > 0


def test_entry_diff_names_the_moved_counter(result):
    pinned = entry_for(result)
    fresh = json.loads(json.dumps(pinned))
    fresh["counters"]["migration.count"] += 5.0
    diffs = entry_diff(pinned, fresh)
    assert any("counter migration.count" in d for d in diffs)


def test_entry_diff_names_the_moved_phase(result):
    pinned = entry_for(result)
    fresh = json.loads(json.dumps(pinned))
    fresh["phases"][0]["digest"] = "0" * 64
    name = fresh["phases"][0]["name"]
    diffs = entry_diff(pinned, fresh)
    assert any(name in d and "digest moved" in d for d in diffs)


def test_entry_diff_falls_back_to_core(result):
    entry = entry_for(result)
    assert entry_diff(entry, entry) == ["core digest moved (non-counter field)"]


def test_full_matrix_covers_registry():
    from repro import POLICY_FACTORIES
    from repro.workloads.registry import APPLICATION_ORDER

    pairs = golden_matrix()
    assert len(pairs) == len(APPLICATION_ORDER) * len(POLICY_FACTORIES)


def test_update_then_check_round_trips(tmp_path):
    path = tmp_path / "golden.json"
    summary = update_golden(
        path, apps=("i2c",), policies=("on_touch", "oasis")
    )
    assert summary["pinned"] == 2
    assert sorted(summary["added"]) == ["i2c/oasis", "i2c/on_touch"]
    assert summary["changed"] == []
    report = check_golden(path, apps=("i2c",), policies=("on_touch", "oasis"))
    assert report["checked"] == 2
    assert report["missing"] == []
    assert report["mismatches"] == []


def test_partial_update_preserves_other_entries(tmp_path):
    path = tmp_path / "golden.json"
    update_golden(path, apps=("i2c",), policies=("on_touch", "oasis"))
    summary = update_golden(path, apps=("i2c",), policies=("ideal",))
    assert summary["pinned"] == 3
    assert summary["added"] == ["i2c/ideal"]
    entries = load_golden(path)["entries"]
    assert set(entries) == {"i2c/on_touch", "i2c/oasis", "i2c/ideal"}


def test_tampered_counter_is_reported_as_drift(tmp_path):
    path = tmp_path / "golden.json"
    update_golden(path, apps=("i2c",), policies=("on_touch",))
    pinned = load_golden(path)
    entry = pinned["entries"]["i2c/on_touch"]
    entry["counters"]["fault.page"] += 1.0
    entry["core"] = "0" * 64
    path.write_text(json.dumps(pinned))
    report = check_golden(path, apps=("i2c",), policies=("on_touch",))
    assert any(
        m.startswith("i2c/on_touch: counter fault.page")
        for m in report["mismatches"]
    )


def test_missing_entry_is_reported(tmp_path):
    path = tmp_path / "golden.json"
    update_golden(path, apps=("i2c",), policies=("on_touch",))
    report = check_golden(path, apps=("i2c",), policies=("on_touch", "oasis"))
    assert report["missing"] == ["i2c/oasis"]


def test_absent_file_raises_with_guidance(tmp_path):
    with pytest.raises(FileNotFoundError):
        check_golden(tmp_path / "nope.json", apps=("i2c",),
                     policies=("on_touch",))


def test_schema_mismatch_is_rejected(tmp_path):
    path = tmp_path / "golden.json"
    path.write_text(json.dumps({"schema": SCHEMA + 1, "entries": {}}))
    with pytest.raises(ValueError, match="schema"):
        check_golden(path, apps=("i2c",), policies=("on_touch",))


def test_committed_golden_file_matches_live_model():
    # Spot-check one cheap pair against the repo's pinned file so tier-1
    # notices model drift without recomputing the whole matrix.
    if not GOLDEN_PATH.exists():
        pytest.skip("golden file not pinned yet (run make golden-update)")
    report = check_golden(apps=("i2c",), policies=("on_touch", "oasis"))
    assert report["missing"] == []
    assert report["mismatches"] == []
