"""Trace fuzzer: determinism, clean runs, and shrinking of seeded bugs."""

from __future__ import annotations

import pytest

from repro.engine import StatCounters
from repro.verify.fuzz import (
    FuzzCase,
    build_trace,
    case_config,
    case_program,
    generate_case,
    repro_command,
    run_case,
    run_fuzz,
    shrink_case,
)


def test_case_generation_is_deterministic():
    assert generate_case(7) == generate_case(7)
    assert generate_case(7) != generate_case(8)


def test_built_trace_matches_case():
    case = generate_case(3)
    trace = build_trace(case)
    assert trace.n_gpus == case.n_gpus
    assert trace.n_objects == len(case.objects)
    assert len(trace.phases) == case.n_phases
    assert trace.total_records == case.n_records


def test_healthy_cases_pass_every_oracle():
    for seed in range(10):
        case = generate_case(seed)
        assert run_case(case) is None, f"seed {seed}"


def test_run_fuzz_respects_case_count():
    report = run_fuzz(seed=0, cases=5)
    assert report["cases"] == 5
    assert report["failures"] == []


def test_run_fuzz_respects_budget():
    report = run_fuzz(seed=0, budget_s=0.0)
    assert report["cases"] == 0


@pytest.fixture
def dropped_migration_counter(monkeypatch):
    """The seeded injected bug: migration.count increments vanish."""
    orig = StatCounters.add

    def dropping(self, name, amount=1.0):
        if name == "migration.count":
            return
        orig(self, name, amount)

    monkeypatch.setattr(StatCounters, "add", dropping)


def test_fuzzer_finds_and_shrinks_seeded_bug(dropped_migration_counter):
    report = run_fuzz(seed=0, cases=10, stop_at=1)
    assert len(report["failures"]) == 1
    finding = report["failures"][0]
    # Acceptance bar: the minimal repro is at most 10 trace records.
    assert finding.n_records <= 10
    assert "resolution accounting" in finding.failure or (
        "on_touch law" in finding.failure
    )
    assert f"--seed {finding.seed}" in finding.command
    assert "TraceBuilder" in finding.program
    assert "builder.emit(" in finding.program


def test_shrunk_case_still_fails_and_is_replayable(
    dropped_migration_counter,
):
    case = generate_case(0)
    failure = run_case(case)
    assert failure is not None
    shrunk = shrink_case(case, failure)
    assert shrunk.n_records <= case.n_records
    again = run_case(shrunk)
    assert again is not None
    assert again.split(":", 1)[0] == failure.split(":", 1)[0]


def test_emitted_program_reproduces_the_violation(
    dropped_migration_counter,
):
    case = generate_case(0)
    failure = run_case(case)
    shrunk = shrink_case(case, failure)
    program = case_program(shrunk)
    # The emitted program ends in an assert on the verifier's findings;
    # executing it under the injected bug must trip that assert.
    with pytest.raises(AssertionError):
        exec(compile(program, "<fuzz-repro>", "exec"), {})


def test_repro_command_names_cli_entry():
    case = generate_case(5)
    assert repro_command(case) == (
        "PYTHONPATH=src python -m repro.cli verify --fuzz --seed 5 --cases 1"
    )


def test_fault_plan_cases_replay_clean():
    # Scan forward for generated cases that carry a fault plan and make
    # sure the oracles hold there too (reroutes, flakes, retirements).
    seen = 0
    seed = 0
    while seen < 3 and seed < 200:
        case = generate_case(seed)
        if case.fault_plan is not None:
            seen += 1
            assert run_case(case) is None, f"seed {seed}"
        seed += 1
    assert seen == 3


def test_case_config_round_trip():
    case = generate_case(11)
    config = case_config(case)
    assert config.n_gpus == case.n_gpus
    assert config.oversubscription == case.oversubscription
    assert config.fault_plan == case.fault_plan
    assert isinstance(case, FuzzCase)
