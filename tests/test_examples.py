"""Examples must at least parse and expose a main() entry point."""

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


def test_examples_exist():
    names = {p.name for p in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    functions = {
        node.name for node in ast.walk(tree)
        if isinstance(node, ast.FunctionDef)
    }
    assert "main" in functions, path.name
    # Every example is documented.
    assert ast.get_docstring(tree), path.name


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_only_public_api(path):
    """Examples should demonstrate the public surface, not internals."""
    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            root = node.module.split(".")[0]
            assert root in ("repro", "argparse", "pathlib", "sys",
                            "numpy"), (path.name, node.module)
