"""Per-tenant counter attribution: conservation against the aggregates."""

from __future__ import annotations

import pytest

from repro import make_policy
from repro.sim.machine import Machine, simulate
from repro.tenancy.accounting import TenancyAccounting
from repro.tenancy.mix import get_mix_workload, merge_traces
from tests.conftest import make_trace, sweep_records

#: Families where the tenant-namespaced counters must sum exactly to the
#: aggregate counter of the same name.  ``duplication.bytes`` is absent
#: on purpose: ``ideal_copy`` attributes tenant bytes without a matching
#: aggregate byte counter.
CONSERVED_FAMILIES = (
    "fault.page",
    "fault.protection",
    "access.local",
    "access.remote",
    "access.host",
    "migration.count",
    "migration.bytes",
    "duplication.count",
    "eviction.count",
)


def tenant_sum(counters: dict, family: str) -> float:
    return sum(
        v for k, v in counters.items()
        if k.startswith("tenant.") and k.split(".", 2)[2] == family
    )


def small_mix():
    a = make_trace(
        {"x": 8}, [sweep_records(range(4), "x", 8, False, 2)], burst=4
    )
    b = make_trace(
        {"y": 6},
        [sweep_records(range(4), "y", 6, True, 2),
         sweep_records(range(2), "y", 6, False, 1)],
        burst=4,
    )
    return merge_traces([a, b], ["a", "b"], burst=4)


class TestAccountingObject:
    def test_requires_tenant_metadata(self):
        solo = make_trace({"x": 2}, [[(0, "x", 0, False)]])
        with pytest.raises(ValueError):
            TenancyAccounting(solo)

    def test_index_of_maps_windows_and_bounds(self):
        trace = small_mix()
        acct = TenancyAccounting(trace)
        a, b = trace.tenants
        assert acct.index_of(a.first_page) == 0
        assert acct.index_of(a.last_page) == 0
        assert acct.index_of(b.first_page) == 1
        assert acct.index_of(b.last_page) == 1
        # The slack between a's last used page and b's window start is
        # unowned, as is anything outside the trace span.
        if a.last_page + 1 < b.first_page:
            assert acct.index_of(a.last_page + 1) == -1
        assert acct.index_of(trace.first_page - 1) == -1
        assert acct.index_of(trace.first_page + trace.n_pages) == -1

    def test_key_tuples_cover_every_tenant(self):
        acct = TenancyAccounting(small_mix())
        assert acct.names == ("a", "b")
        assert acct.lookup_keys == (
            "tenant.a.tlb.lookups", "tenant.b.tlb.lookups"
        )
        assert acct.busy_keys[1][3] == "tenant.b.busy_ns.gpu3"


class TestMachineAttribution:
    @pytest.mark.parametrize("policy", ["on_touch", "oasis", "grit"])
    def test_tenant_families_sum_to_aggregates(self, config, policy):
        trace = get_mix_workload("mm+bfs", footprint_mb=8, seed=0)
        result = simulate(config, trace, make_policy(policy))
        counters = result.stats
        for family in CONSERVED_FAMILIES:
            total = tenant_sum(counters, family)
            assert total == pytest.approx(counters.get(family, 0.0)), family

    def test_tlb_attribution_matches_machine_probes(self, config):
        machine = Machine(
            config, small_mix(), make_policy("on_touch")
        )
        machine.run()
        counters = machine.stats.as_dict()
        probes = sum(h.l1.hits + h.l1.misses for h in machine.tlbs)
        walks = sum(h.l2.misses for h in machine.tlbs)
        assert tenant_sum(counters, "tlb.lookups") == probes
        assert tenant_sum(counters, "tlb.walks") == walks

    def test_busy_time_brackets_the_total(self, config):
        trace = small_mix()
        result = simulate(config, trace, make_policy("on_touch"))
        for tenant in ("a", "b"):
            busiest = max(
                v for k, v in result.stats.items()
                if k.startswith(f"tenant.{tenant}.busy_ns.gpu")
            )
            assert 0 < busiest <= result.total_time_ns

    def test_multi_tenant_disables_fast_replay(self, config):
        machine = Machine(config, small_mix(), make_policy("on_touch"))
        assert machine._tenancy is not None
        assert machine._fast is None
        assert machine.driver.tenancy is machine._tenancy

    def test_single_tenant_mix_has_no_attribution(self, config):
        solo = make_trace({"x": 4}, [[(0, "x", 0, False)]])
        merged = merge_traces([solo], ["alone"])
        machine = Machine(config, merged, make_policy("on_touch"))
        assert machine._tenancy is None
        assert machine.driver.tenancy is None
        result = machine.run()
        assert not any(k.startswith("tenant.") for k in result.stats)
