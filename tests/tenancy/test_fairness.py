"""Fairness math and the shared-vs-solo integration path."""

from __future__ import annotations

import pytest

from repro.obs import MetricsRegistry
from repro.tenancy.fairness import (
    fairness_report,
    mix_fairness,
    publish_fairness_metrics,
    quartiles,
    shared_time_ns,
    tenant_counters,
    tenant_names,
    tenant_rollup,
)

SAMPLE = {
    "tenant.mm.fault.page": 10.0,
    "tenant.mm.tlb.lookups": 100.0,
    "tenant.mm.busy_ns.gpu0": 40.0,
    "tenant.mm.busy_ns.gpu1": 70.0,
    "tenant.bfs.fault.page": 4.0,
    "tenant.bfs.busy_ns.gpu0": 55.0,
    "fault.page": 14.0,
}


class TestQuartiles:
    def test_known_values(self):
        q = quartiles([1.0, 2.0, 3.0, 4.0])
        assert q == {
            "min": 1.0, "q1": 1.75, "median": 2.5, "q3": 3.25, "max": 4.0,
        }

    def test_single_value_collapses(self):
        assert quartiles([2.5]) == {
            "min": 2.5, "q1": 2.5, "median": 2.5, "q3": 2.5, "max": 2.5,
        }

    def test_order_independent(self):
        assert quartiles([3, 1, 2]) == quartiles([1, 2, 3])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            quartiles([])


class TestFairnessReport:
    def test_two_tenant_math(self):
        report = fairness_report(
            {"mm": 100.0, "bfs": 50.0}, {"mm": 150.0, "bfs": 60.0}
        )
        assert report["slowdown"] == {"mm": 1.5, "bfs": 1.2}
        assert report["weighted_speedup"] == pytest.approx(
            1 / 1.5 + 1 / 1.2
        )
        assert report["unfairness"] == pytest.approx(1.25)
        assert report["quartiles"]["min"] == 1.2
        assert report["quartiles"]["max"] == 1.5

    def test_mismatched_tenants_rejected(self):
        with pytest.raises(ValueError):
            fairness_report({"mm": 1.0}, {"bfs": 1.0})

    def test_non_positive_solo_rejected(self):
        with pytest.raises(ValueError):
            fairness_report({"mm": 0.0}, {"mm": 1.0})

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            fairness_report({}, {})


class TestCounterViews:
    def test_tenant_names(self):
        assert tenant_names(SAMPLE) == ["bfs", "mm"]
        assert tenant_names({"fault.page": 1.0}) == []

    def test_tenant_counters_groups_and_strips(self):
        grouped = tenant_counters(SAMPLE)
        assert sorted(grouped) == ["bfs", "mm"]
        assert grouped["mm"]["fault.page"] == 10.0
        assert grouped["mm"]["busy_ns.gpu1"] == 70.0
        assert "fault.page" in grouped["bfs"]
        assert all(not k.startswith("tenant.") for k in grouped["mm"])

    def test_shared_time_is_busiest_gpu(self):
        assert shared_time_ns(SAMPLE, "mm") == 70.0
        assert shared_time_ns(SAMPLE, "bfs") == 55.0
        assert shared_time_ns(SAMPLE, "nope") == 0.0

    def test_tenant_rollup(self):
        rollup = tenant_rollup(SAMPLE)
        assert rollup["mm"]["faults"] == 10.0
        assert rollup["mm"]["tlb_lookups"] == 100.0
        assert rollup["mm"]["busy_ns"] == 70.0
        assert rollup["bfs"]["migration_bytes"] == 0.0


class TestPublishMetrics:
    def test_gauges_are_published(self):
        registry = MetricsRegistry()
        report = fairness_report(
            {"mm": 100.0, "bfs": 50.0}, {"mm": 150.0, "bfs": 60.0}
        )
        report["mix"] = "mm+bfs"
        report["policy"] = "oasis"
        publish_fairness_metrics(registry, report)
        prefix = "tenancy.mm+bfs.oasis"
        assert registry.gauge(f"{prefix}.weighted_speedup") == pytest.approx(
            report["weighted_speedup"]
        )
        assert registry.gauge(f"{prefix}.unfairness") == pytest.approx(1.25)
        assert registry.gauge(f"{prefix}.slowdown.mm") == pytest.approx(1.5)
        assert registry.gauge(f"{prefix}.slowdown.bfs") == pytest.approx(1.2)


class TestMixFairness:
    def test_full_report_on_a_real_mix(self, config):
        report = mix_fairness(
            config, "mm+bfs", "on_touch", footprint_mb=8, seed=0
        )
        assert report["mix"] == "mm+bfs"
        assert report["policy"] == "on_touch"
        assert sorted(report["slowdown"]) == ["bfs", "mm"]
        assert all(s > 0 for s in report["slowdown"].values())
        assert report["weighted_speedup"] > 0
        assert report["unfairness"] >= 1.0
        assert sorted(report["tenant_counters"]) == ["bfs", "mm"]
        assert report["total_time_ns"] > 0
        for tenant in ("mm", "bfs"):
            assert report["shared_time_ns"][tenant] > 0
            assert report["solo_time_ns"][tenant] > 0

    def test_solo_app_rejected(self, config):
        with pytest.raises(ValueError):
            mix_fairness(config, "mm", "on_touch", footprint_mb=8)
