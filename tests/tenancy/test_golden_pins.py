"""One pinned fairness-matrix cell, checked in tier-1.

The full matrix lives in ``benchmarks/bench_multitenant.py`` (the
``verify-tenancy`` make target runs its smoke mode); this keeps a single
cheap cell's digests honest on every test run so drift surfaces early.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from benchmarks.bench_multitenant import (
    FOOTPRINT_MB,
    GOLDEN_PATH,
    SEED,
    cell_key,
    tenant_counters_digest,
)
from repro import make_policy, simulate
from repro.verify.differential import core_digest
from repro.workloads import get_workload

PINNED_CELL = ("i2c+st", "on_touch")


@pytest.fixture(scope="module")
def entries():
    if not GOLDEN_PATH.exists():
        pytest.skip("golden_tenancy.json not pinned yet")
    return json.loads(Path(GOLDEN_PATH).read_text())["entries"]


def test_every_pin_has_both_digests(entries):
    assert entries, "empty golden file"
    for key, pin in entries.items():
        assert set(pin) == {"core", "tenant_counters"}, key


def test_pinned_cell_digests_match(config, entries):
    mix, policy = PINNED_CELL
    key = cell_key(mix, policy)
    assert key in entries, f"{key} unpinned — run bench --update-golden"
    trace = get_workload(mix, config, footprint_mb=FOOTPRINT_MB, seed=SEED)
    result = simulate(config, trace, make_policy(policy))
    assert core_digest(result) == entries[key]["core"]
    assert (
        tenant_counters_digest(result.stats)
        == entries[key]["tenant_counters"]
    )
