"""Mix parsing, window layout, and interleaver properties."""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.tenancy.mix import (
    MAX_TENANTS,
    TenantMix,
    TenantSpec,
    _window_pages,
    build_mix_trace,
    get_mix_workload,
    merge_traces,
    parse_mix,
    trace_digest,
)
from tests.conftest import make_trace


def random_trace(seed: int, n_gpus: int = 4):
    """A small seeded trace: 1-3 objects, 1-3 phases, varied weights."""
    rng = np.random.default_rng(seed)
    n_objects = int(rng.integers(1, 4))
    objects = {
        f"o{i}": int(rng.integers(2, 24)) for i in range(n_objects)
    }
    names = list(objects)
    phases = []
    for _ in range(int(rng.integers(1, 4))):
        records = []
        for _ in range(int(rng.integers(3, 30))):
            name = names[int(rng.integers(0, n_objects))]
            records.append((
                int(rng.integers(0, n_gpus)),
                name,
                int(rng.integers(0, objects[name])),
                bool(rng.integers(0, 2)),
                int(rng.integers(1, 5)),
            ))
        phases.append(records)
    explicit = [bool(rng.integers(0, 2)) for _ in phases]
    return make_trace(objects, phases, n_gpus=n_gpus, explicit=explicit,
                      seed=seed, burst=4)


class TestParseMix:
    def test_simple_two_tenant(self):
        mix = parse_mix("mm+bfs")
        assert [t.app for t in mix.tenants] == ["mm", "bfs"]
        assert [t.name for t in mix.tenants] == ["mm", "bfs"]
        assert mix.label == "mm+bfs"

    def test_suffixes_round_trip(self):
        mix = parse_mix("mm@16#3+bfs@8")
        assert mix.tenants[0].footprint_mb == 16.0
        assert mix.tenants[0].seed == 3
        assert mix.tenants[1].footprint_mb == 8.0
        assert mix.tenants[1].seed is None
        assert parse_mix(mix.label).label == mix.label

    def test_duplicate_apps_get_distinct_names(self):
        mix = parse_mix("mm+mm+mm")
        assert [t.name for t in mix.tenants] == ["mm", "mm2", "mm3"]
        assert all(t.app == "mm" for t in mix.tenants)

    @pytest.mark.parametrize("bad", [
        "", "+", "mm+", "+bfs", "mm++bfs", "mm@x", "mm#", "m m+bfs",
        "mm+bfs+i2c+st+gups",
    ])
    def test_malformed_mixes_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_mix(bad)

    def test_tenant_mix_validation(self):
        spec = TenantSpec(name="a", app="mm")
        with pytest.raises(ValueError):
            TenantMix(tenants=())
        with pytest.raises(ValueError):
            TenantMix(tenants=(spec,) * (MAX_TENANTS + 1))
        with pytest.raises(ValueError):
            TenantMix(tenants=(spec, TenantSpec(name="a", app="bfs")))
        with pytest.raises(ValueError):
            TenantMix(tenants=(TenantSpec(name="a.b", app="mm"),))
        with pytest.raises(ValueError):
            TenantMix(tenants=(spec,), burst=0)


class TestMergeProperties:
    """Seeded property sweep over the interleaver invariants."""

    @pytest.mark.parametrize("seed", range(8))
    def test_windows_are_disjoint_and_power_of_two(self, seed):
        parts = [random_trace(seed), random_trace(seed + 100)]
        merged = merge_traces(parts, ["a", "b"], burst=4)
        window = _window_pages(parts)
        assert window & (window - 1) == 0
        a, b = merged.tenants
        assert a.first_page + a.n_pages <= b.first_page
        assert b.first_page - a.first_page == window
        assert a.n_pages == parts[0].n_pages
        assert b.n_pages == parts[1].n_pages
        assert merged.n_pages == window + parts[1].n_pages

    @pytest.mark.parametrize("seed", range(8))
    def test_record_counts_are_conserved(self, seed):
        parts = [random_trace(seed), random_trace(seed + 200)]
        merged = merge_traces(parts, ["a", "b"], burst=4)
        assert merged.total_records == sum(p.total_records for p in parts)
        for k, phase in enumerate(merged.phases):
            expect = sum(
                len(p.phases[k]) for p in parts if k < len(p.phases)
            )
            assert len(phase) == expect

    @pytest.mark.parametrize("seed", range(8))
    def test_each_tenant_stream_is_an_ordered_subsequence(self, seed):
        parts = [random_trace(seed), random_trace(seed + 300)]
        merged = merge_traces(parts, ["a", "b"], burst=4)
        shifts = [t.first_page - merged.first_page for t in merged.tenants]
        for i, part in enumerate(parts):
            for k, phase in enumerate(merged.phases):
                mask = phase.tenant == i
                if k >= len(part.phases):
                    assert not mask.any()
                    continue
                solo = part.phases[k]
                np.testing.assert_array_equal(
                    phase.page[mask] - shifts[i], solo.page
                )
                np.testing.assert_array_equal(phase.gpu[mask], solo.gpu)
                np.testing.assert_array_equal(phase.write[mask], solo.write)
                np.testing.assert_array_equal(
                    phase.weight[mask], solo.weight
                )

    @pytest.mark.parametrize("seed", range(4))
    def test_merge_is_deterministic(self, seed):
        parts = [random_trace(seed), random_trace(seed + 400)]
        once = merge_traces(parts, ["a", "b"], burst=4)
        twice = merge_traces(parts, ["a", "b"], burst=4)
        assert trace_digest(once) == trace_digest(twice)

    def test_phase_names_and_explicit_flags(self):
        a = make_trace({"x": 2}, [[(0, "x", 0, False)], [(1, "x", 1, True)]],
                       explicit=[True, False])
        b = make_trace({"y": 2}, [[(2, "y", 0, False)]], explicit=[True])
        merged = merge_traces([a, b], ["a", "b"], burst=4)
        assert merged.phases[0].name == "p0:a+b"
        assert merged.phases[0].explicit is True
        # Phase 1 only has tenant a's records; explicit follows a's flag.
        assert merged.phases[1].name == "p1:a"
        assert merged.phases[1].explicit is False

    def test_mismatched_geometry_rejected(self):
        a = make_trace({"x": 2}, [[(0, "x", 0, False)]], n_gpus=2)
        b = make_trace({"y": 2}, [[(0, "y", 0, False)]], n_gpus=4)
        with pytest.raises(ValueError):
            merge_traces([a, b], ["a", "b"])
        c = make_trace({"y": 2}, [[(0, "y", 0, False)]], n_gpus=2,
                       page_size=8192)
        with pytest.raises(ValueError):
            merge_traces([a, c], ["a", "b"])

    def test_address_space_exhaustion_raises(self):
        huge = make_trace({"x": 1 << 35}, [[(0, "x", 0, False)]])
        with pytest.raises(MemoryError):
            merge_traces([huge, huge], ["a", "b"])

    def test_single_tenant_merge_is_identity(self):
        solo = random_trace(9)
        merged = merge_traces([solo], ["alone"], burst=4)
        assert merged.tenants is None
        assert merged.name == solo.name
        assert merged.n_pages == solo.n_pages
        assert [o.name for o in merged.objects] == [
            o.name for o in solo.objects
        ]
        for ours, theirs in zip(merged.phases, solo.phases):
            assert ours.name == theirs.name
            assert ours.tenant is None
            np.testing.assert_array_equal(ours.page, theirs.page)


class TestMixBuild:
    def test_build_mix_trace_attaches_metadata(self):
        mix = parse_mix("mm+bfs")
        trace = build_mix_trace(mix, footprint_mb=8, seed=0)
        assert trace.name == "mm+bfs"
        assert len(trace.tenants) == 2
        mm, bfs = trace.tenants
        assert (mm.app, bfs.app) == ("mm", "bfs")
        # Derived tenant seeds: mix seed + tenant index.
        assert (mm.seed, bfs.seed) == (0, 1)
        assert all(o.name.startswith(("mm.", "bfs.")) for o in trace.objects)
        assert [o.obj_id for o in trace.objects] == list(
            range(len(trace.objects))
        )

    def test_explicit_seed_override(self):
        trace = build_mix_trace(parse_mix("mm#7+bfs"), footprint_mb=8,
                                seed=3)
        assert trace.tenants[0].seed == 7
        assert trace.tenants[1].seed == 4

    def test_get_mix_workload_caches_by_canonical_label(self):
        a = get_mix_workload("mm+bfs", footprint_mb=8, seed=0)
        b = get_mix_workload(" mm + bfs ", footprint_mb=8, seed=0)
        assert a is b

    def test_registry_routes_mix_names(self):
        from repro.workloads import get_workload

        trace = get_workload("mm+bfs", footprint_mb=8, seed=0)
        assert trace.tenants is not None
        assert trace is get_mix_workload("mm+bfs", footprint_mb=8, seed=0)


class TestDeterminismAcrossProcesses:
    """The interleaver must not depend on hash order or process state."""

    def _digests(self, hash_seed: str) -> str:
        code = (
            "from repro.verify.fuzz import generate_tenant_case, "
            "build_tenant_trace\n"
            "from repro.tenancy.mix import trace_digest, get_mix_workload\n"
            "print(trace_digest(build_tenant_trace("
            "generate_tenant_case(5))))\n"
            "print(trace_digest(get_mix_workload('mm+bfs', "
            "footprint_mb=8, seed=0)))\n"
        )
        env = dict(os.environ, PYTHONHASHSEED=hash_seed)
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (env.get("PYTHONPATH"), "src") if p
        )
        proc = subprocess.run(
            [sys.executable, "-c", code],
            capture_output=True, text=True, env=env, check=True,
            cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        )
        return proc.stdout

    def test_digests_stable_across_hash_seeds_and_restarts(self):
        first = self._digests("1")
        second = self._digests("271828")
        assert first == second
        assert len(first.split()) == 2
