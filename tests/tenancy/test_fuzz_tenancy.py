"""Two-tenant fuzzing: determinism, clean runs, shrinking, repro programs."""

from __future__ import annotations

import pytest

from repro.engine import StatCounters
from repro.verify.fuzz import (
    build_tenant_trace,
    generate_tenant_case,
    run_tenancy_fuzz,
    run_tenant_case,
    shrink_tenant_case,
    tenant_case_program,
    tenant_repro_command,
)


def test_case_generation_is_deterministic():
    assert generate_tenant_case(11) == generate_tenant_case(11)
    assert generate_tenant_case(11) != generate_tenant_case(12)
    case = generate_tenant_case(11)
    assert case.a.n_gpus == case.b.n_gpus
    assert case.a.records != case.b.records


def test_built_trace_is_a_two_tenant_mix():
    case = generate_tenant_case(2)
    trace = build_tenant_trace(case)
    assert len(trace.tenants) == 2
    assert trace.total_records == case.n_records
    a, b = trace.tenants
    assert a.first_page + a.n_pages <= b.first_page


def test_healthy_cases_pass_every_oracle():
    for seed in range(6):
        case = generate_tenant_case(seed)
        assert run_tenant_case(case) is None, f"seed {seed}"


def test_run_tenancy_fuzz_respects_case_count_and_budget():
    report = run_tenancy_fuzz(seed=0, cases=4)
    assert report["cases"] == 4
    assert report["failures"] == []
    assert run_tenancy_fuzz(seed=0, budget_s=0.0)["cases"] == 0


def test_repro_command_names_the_tenancy_flag():
    command = tenant_repro_command(generate_tenant_case(5))
    assert "--fuzz" in command
    assert "--tenancy" in command
    assert "--seed 5" in command


def test_case_program_is_standalone_and_replayable():
    case = generate_tenant_case(3)
    program = tenant_case_program(case)
    assert "merge_traces" in program
    assert program.count("TraceBuilder(") == 2
    namespace: dict = {}
    exec(compile(program, "<tenant-repro>", "exec"), namespace)


@pytest.fixture
def dropped_tenant_attribution(monkeypatch):
    """Seeded bug: per-tenant fault attribution silently vanishes."""
    orig = StatCounters.add

    def dropping(self, name, amount=1.0):
        if name.startswith("tenant.") and name.endswith("fault.page"):
            return
        orig(self, name, amount)

    monkeypatch.setattr(StatCounters, "add", dropping)


def test_fuzzer_finds_and_shrinks_attribution_bug(
    dropped_tenant_attribution,
):
    report = run_tenancy_fuzz(seed=0, cases=10, stop_at=1)
    assert len(report["failures"]) == 1
    finding = report["failures"][0]
    assert finding.n_records <= 20
    assert "tenan" in finding.failure or "fault" in finding.failure
    assert "--tenancy" in finding.command
    assert "merge_traces" in finding.program
    # The shrunk case still fails, and only by the original oracle.
    case = generate_tenant_case(finding.seed)
    failure = run_tenant_case(case)
    assert failure is not None
    shrunk = shrink_tenant_case(case, failure)
    assert shrunk.n_records <= case.n_records
    assert run_tenant_case(shrunk) is not None
