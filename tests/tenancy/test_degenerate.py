"""Degenerate-tenancy oracle: a one-tenant mix IS the solo run.

The full lane (every registry app x oasis/grit) runs under
``repro-oasis verify --differential --lanes tenancy``; here a cheap
subset pins the bit-identity contract in tier-1.
"""

from __future__ import annotations

import pytest

from repro import get_workload, make_policy, simulate
from repro.verify import differential
from repro.tenancy.mix import single_tenant_trace, trace_digest


def test_lane_is_registered():
    assert "tenancy" in differential.LANES
    assert differential.TENANCY_LANE_POLICIES == ("oasis", "grit")


def test_degenerate_lane_subset_matches(config):
    mismatches = differential.check_degenerate_tenancy(
        config, apps=("mm", "bfs"), policies=("oasis",), seed=0
    )
    assert mismatches == []


@pytest.mark.parametrize("app", ["mm", "bfs"])
def test_single_tenant_trace_digest_matches_solo(config, app):
    solo = get_workload(app, config, seed=0)
    mix = single_tenant_trace(app, config, seed=0)
    assert trace_digest(solo) == trace_digest(mix)
    assert mix.tenants is None


def test_single_tenant_counters_bit_identical(config):
    solo_trace = get_workload("bfs", config, seed=0)
    mix_trace = single_tenant_trace("bfs", config, seed=0)
    solo = simulate(config, solo_trace, make_policy("grit"))
    mixed = simulate(config, mix_trace, make_policy("grit"))
    assert solo.total_time_ns == mixed.total_time_ns
    assert solo.stats == mixed.stats


def test_runner_counts_tenancy_comparisons(config, monkeypatch):
    calls = {}

    def fake_check(cfg, seed=0):
        calls["seed"] = seed
        return []

    monkeypatch.setattr(
        differential, "check_degenerate_tenancy", fake_check
    )
    report = differential.run_differential(
        apps=("mm",), policies=("oasis",), seed=3, jobs=2,
        lanes=("tenancy",),
    )
    assert calls["seed"] == 3
    assert report["mismatches"] == []
    assert report["comparisons"] > 0
    assert report["lanes"] == ("tenancy",) or "tenancy" in report["lanes"]
