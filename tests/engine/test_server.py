"""SerialServer (UVM driver queue model) tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import SerialServer


class TestSerialServer:
    def test_idle_server_starts_immediately(self):
        s = SerialServer()
        assert s.submit(10.0, 5.0) == 15.0

    def test_busy_server_queues(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        # Arrives at t=2 but server busy until 10.
        assert s.submit(2.0, 5.0) == 15.0

    def test_late_arrival_after_idle_gap(self):
        s = SerialServer()
        s.submit(0.0, 1.0)
        assert s.submit(100.0, 1.0) == 101.0

    def test_busy_time_accumulates_service_only(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        s.submit(50.0, 5.0)
        assert s.busy_time == 15.0

    def test_request_count(self):
        s = SerialServer()
        for _ in range(3):
            s.submit(0.0, 1.0)
        assert s.request_count == 3

    def test_zero_service_advances_free_at(self):
        s = SerialServer()
        s.submit(5.0, 0.0)
        assert s.free_at == 5.0

    def test_negative_service_rejected(self):
        with pytest.raises(ValueError):
            SerialServer().submit(0.0, -1.0)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ValueError):
            SerialServer().submit(-1.0, 1.0)

    def test_reset(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        s.reset()
        assert s.free_at == 0.0
        assert s.busy_time == 0.0
        assert s.request_count == 0

    def test_advance_to_installs_forward_state(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        s.advance_to(25.0, 18.0, 4)
        assert s.free_at == 25.0
        assert s.busy_time == 18.0
        assert s.request_count == 5
        # Equal-value hand-back (an empty fast-path batch) is legal.
        s.advance_to(25.0, 18.0, 0)
        assert s.request_count == 5

    def test_advance_to_rejects_free_at_regression(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        with pytest.raises(ValueError, match="free_at backwards"):
            s.advance_to(5.0, 12.0, 1)
        # Rejected hand-backs must not corrupt state.
        assert s.free_at == 10.0
        assert s.busy_time == 10.0
        assert s.request_count == 1

    def test_advance_to_rejects_shrinking_busy_total(self):
        s = SerialServer()
        s.submit(0.0, 10.0)
        with pytest.raises(ValueError, match="shrinks busy_total"):
            s.advance_to(20.0, 5.0, 1)
        assert s.busy_time == 10.0

    def test_advance_to_rejects_negative_request_count(self):
        s = SerialServer()
        with pytest.raises(ValueError, match="negative n_requests"):
            s.advance_to(1.0, 1.0, -1)
        assert s.request_count == 0

    @given(
        st.lists(
            st.tuples(
                st.floats(min_value=0, max_value=1e9),
                st.floats(min_value=0, max_value=1e6),
            ),
            max_size=40,
        )
    )
    def test_completions_monotonic_and_busy_exact(self, reqs):
        s = SerialServer()
        last_done = 0.0
        for arrival, service in reqs:
            done = s.submit(arrival, service)
            assert done >= arrival + service
            assert done >= last_done
            last_done = done
        assert s.busy_time == pytest.approx(sum(r[1] for r in reqs))
