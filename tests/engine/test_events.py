"""Event queue tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.engine import Event, EventQueue


class TestEvent:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            Event(-1.0, "x")

    def test_payload_defaults_to_none(self):
        assert Event(0.0, "x").payload is None

    def test_frozen(self):
        event = Event(1.0, "x")
        with pytest.raises(AttributeError):
            event.time = 2.0


class TestEventQueue:
    def test_pop_orders_by_time(self):
        q = EventQueue()
        q.schedule(3.0, "c")
        q.schedule(1.0, "a")
        q.schedule(2.0, "b")
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_fifo_within_same_timestamp(self):
        q = EventQueue()
        for kind in "abc":
            q.schedule(5.0, kind)
        assert [q.pop().kind for _ in range(3)] == ["a", "b", "c"]

    def test_len_and_bool(self):
        q = EventQueue()
        assert not q
        assert len(q) == 0
        q.schedule(1.0, "x")
        assert q
        assert len(q) == 1

    def test_peek_does_not_remove(self):
        q = EventQueue()
        q.schedule(1.0, "x")
        assert q.peek().kind == "x"
        assert len(q) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().peek()

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_drain_returns_sorted(self):
        q = EventQueue()
        for t in (5.0, 1.0, 3.0):
            q.schedule(t, "e")
        times = [e.time for e in q.drain()]
        assert times == [1.0, 3.0, 5.0]
        assert not q

    def test_schedule_returns_event(self):
        q = EventQueue()
        event = q.schedule(2.0, "k", payload={"a": 1})
        assert event.time == 2.0
        assert event.payload == {"a": 1}

    def test_incomparable_payloads_do_not_break_ordering(self):
        q = EventQueue()
        q.schedule(1.0, "a", payload={"x": 1})
        q.schedule(1.0, "b", payload={"y": 2})
        assert q.pop().kind == "a"

    @given(st.lists(st.floats(min_value=0, max_value=1e12), max_size=50))
    def test_drain_always_sorted(self, times):
        q = EventQueue()
        for t in times:
            q.schedule(t, "e")
        drained = [e.time for e in q.drain()]
        assert drained == sorted(times)
