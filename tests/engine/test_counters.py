"""StatCounters tests."""

import pytest

from repro.engine import StatCounters


class TestStatCounters:
    def test_missing_counter_reads_zero(self):
        assert StatCounters()["nope"] == 0.0

    def test_add_default_increment(self):
        c = StatCounters()
        c.add("x")
        c.add("x")
        assert c["x"] == 2.0

    def test_add_amount(self):
        c = StatCounters()
        c.add("bytes", 4096)
        assert c["bytes"] == 4096

    def test_initial_values(self):
        c = StatCounters({"a": 1, "b": 2.5})
        assert c["a"] == 1.0
        assert c["b"] == 2.5

    def test_contains_and_len(self):
        c = StatCounters()
        c.add("x")
        assert "x" in c
        assert "y" not in c
        assert len(c) == 1

    def test_total_by_prefix(self):
        c = StatCounters({"fault.page": 3, "fault.protection": 2, "other": 9})
        assert c.total("fault.") == 5.0

    def test_group_strips_prefix(self):
        c = StatCounters({"tlb.hits": 1, "tlb.misses": 2, "x": 3})
        assert c.group("tlb") == {"hits": 1.0, "misses": 2.0}

    def test_merge_sums(self):
        a = StatCounters({"x": 1, "y": 2})
        b = StatCounters({"y": 3, "z": 4})
        a.merge(b)
        assert a.as_dict() == {"x": 1.0, "y": 5.0, "z": 4.0}

    def test_merge_rejects_disjoint_namespaces(self):
        a = StatCounters({"fault.page": 1, "fault.protection": 2})
        b = StatCounters({"tlb.hits": 3})
        with pytest.raises(ValueError, match="disjoint"):
            a.merge(b)
        # The refused merge must leave the receiver untouched.
        assert a.as_dict() == {"fault.page": 1.0, "fault.protection": 2.0}

    def test_merge_allow_disjoint_opts_in(self):
        a = StatCounters({"fault.page": 1})
        b = StatCounters({"tlb.hits": 3})
        a.merge(b, allow_disjoint=True)
        assert a.as_dict() == {"fault.page": 1.0, "tlb.hits": 3.0}

    def test_merge_overlapping_namespace_is_enough(self):
        # One shared top-level family legitimizes the whole merge.
        a = StatCounters({"fault.page": 1, "migration.count": 2})
        b = StatCounters({"fault.page": 4, "duplication.count": 8})
        a.merge(b)
        assert a.as_dict()["fault.page"] == 5.0
        assert a.as_dict()["duplication.count"] == 8.0

    def test_merge_with_empty_side_never_raises(self):
        a = StatCounters({"fault.page": 1})
        a.merge(StatCounters())
        assert a.as_dict() == {"fault.page": 1.0}
        empty = StatCounters()
        empty.merge(StatCounters({"tlb.hits": 2}))
        assert empty.as_dict() == {"tlb.hits": 2.0}

    def test_items_sorted(self):
        c = StatCounters({"b": 1, "a": 2})
        assert [k for k, _ in c.items()] == ["a", "b"]

    def test_as_dict_is_snapshot(self):
        c = StatCounters({"x": 1})
        snap = c.as_dict()
        c.add("x")
        assert snap["x"] == 1.0

    def test_iteration_independent_of_insertion_order(self):
        a = StatCounters()
        for key in ("z", "m", "a"):
            a.add(key)
        b = StatCounters()
        for key in ("a", "z", "m"):
            b.add(key)
        assert list(a) == list(b) == ["a", "m", "z"]
        assert list(a.items()) == list(b.items())
        assert list(a.as_dict()) == ["a", "m", "z"]
