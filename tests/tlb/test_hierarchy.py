"""TLB hierarchy tests."""

import pytest

from repro.config import LatencyModel, TLBConfig
from repro.tlb import TLBHierarchy


@pytest.fixture
def tlb():
    return TLBHierarchy(TLBConfig(4, 2), TLBConfig(16, 4), LatencyModel())


LAT = LatencyModel()


class TestHierarchy:
    def test_cold_access_walks(self, tlb):
        result = tlb.translate(7)
        assert result.level == "walk"
        assert result.l2_miss
        assert result.cost_ns == pytest.approx(
            LAT.l1_tlb_hit_ns + LAT.l2_tlb_ns + LAT.walk_ns
        )

    def test_second_access_hits_l1(self, tlb):
        tlb.translate(7)
        result = tlb.translate(7)
        assert result.level == "l1"
        assert result.cost_ns == LAT.l1_tlb_hit_ns
        assert not result.l2_miss

    def test_l1_eviction_falls_back_to_l2(self, tlb):
        # Fill set 0 of the 2-way L1 beyond capacity; L2 (4-way sets)
        # still holds the evicted translation.
        tlb.translate(0)
        tlb.translate(2)
        tlb.translate(4)  # evicts 0 from L1 set 0
        result = tlb.translate(0)
        assert result.level == "l2"
        assert result.cost_ns == pytest.approx(
            LAT.l1_tlb_hit_ns + LAT.l2_tlb_ns
        )

    def test_l2_hit_refills_l1(self, tlb):
        tlb.translate(0)
        tlb.translate(2)
        tlb.translate(4)
        tlb.translate(0)  # L2 hit, refills L1
        assert tlb.translate(0).level == "l1"

    def test_shootdown_clears_both_levels(self, tlb):
        tlb.translate(9)
        assert tlb.shootdown(9)
        assert tlb.translate(9).level == "walk"

    def test_shootdown_absent_returns_false(self, tlb):
        assert not tlb.shootdown(99)

    def test_flush(self, tlb):
        tlb.translate(1)
        tlb.flush()
        assert tlb.translate(1).level == "walk"

    def test_l2_miss_counter(self, tlb):
        tlb.translate(1)
        tlb.translate(1)
        tlb.translate(2)
        assert tlb.l2_misses == 2
