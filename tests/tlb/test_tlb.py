"""Set-associative TLB tests, including an LRU reference model."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import TLBConfig
from repro.tlb import SetAssociativeTLB


def make(entries=8, ways=2):
    return SetAssociativeTLB(TLBConfig(entries, ways))


class TestBasics:
    def test_miss_then_hit(self):
        tlb = make()
        assert not tlb.lookup(5)
        tlb.fill(5)
        assert tlb.lookup(5)

    def test_hit_and_miss_counters(self):
        tlb = make()
        tlb.lookup(1)
        tlb.fill(1)
        tlb.lookup(1)
        assert tlb.misses == 1
        assert tlb.hits == 1

    def test_fill_evicts_lru_within_set(self):
        tlb = make(entries=4, ways=2)  # 2 sets
        # Pages 0, 2, 4 all map to set 0.
        tlb.fill(0)
        tlb.fill(2)
        victim = tlb.fill(4)
        assert victim == 0

    def test_lookup_refreshes_lru(self):
        tlb = make(entries=4, ways=2)
        tlb.fill(0)
        tlb.fill(2)
        tlb.lookup(0)  # 0 becomes MRU; 2 is now LRU
        assert tlb.fill(4) == 2

    def test_refill_existing_is_not_eviction(self):
        tlb = make(entries=4, ways=2)
        tlb.fill(0)
        assert tlb.fill(0) is None
        assert tlb.occupancy == 1

    def test_invalidate(self):
        tlb = make()
        tlb.fill(3)
        assert tlb.invalidate(3)
        assert not tlb.invalidate(3)
        assert tlb.invalidations == 1
        assert not tlb.contains(3)

    def test_flush(self):
        tlb = make()
        for p in range(4):
            tlb.fill(p)
        tlb.flush()
        assert tlb.occupancy == 0

    def test_contains_does_not_mutate(self):
        tlb = make()
        tlb.fill(1)
        hits = tlb.hits
        assert tlb.contains(1)
        assert tlb.hits == hits

    def test_pages_map_to_sets_by_modulo(self):
        tlb = make(entries=8, ways=2)  # 4 sets
        tlb.fill(1)
        tlb.fill(5)  # same set (1 % 4 == 5 % 4)
        tlb.fill(9)
        assert not tlb.contains(1)  # evicted by 9

    def test_fully_associative_table_i_l1(self):
        # Table I: 32 entries, 32-way = fully associative.
        tlb = make(entries=32, ways=32)
        for p in range(32):
            tlb.fill(p)
        assert tlb.fill(32) == 0  # global LRU


class ReferenceLRU:
    """Brute-force per-set LRU model."""

    def __init__(self, sets, ways):
        self.sets = [[] for _ in range(sets)]
        self.ways = ways

    def lookup(self, page):
        s = self.sets[page % len(self.sets)]
        if page in s:
            s.remove(page)
            s.append(page)
            return True
        return False

    def fill(self, page):
        s = self.sets[page % len(self.sets)]
        if page in s:
            s.remove(page)
        elif len(s) >= self.ways:
            s.pop(0)
        s.append(page)

    def invalidate(self, page):
        s = self.sets[page % len(self.sets)]
        if page in s:
            s.remove(page)


class TestAgainstReference:
    @settings(max_examples=80, deadline=None)
    @given(
        ops=st.lists(
            st.tuples(
                st.sampled_from(["lookup", "fill", "invalidate"]),
                st.integers(min_value=0, max_value=30),
            ),
            max_size=120,
        )
    )
    def test_matches_reference_model(self, ops):
        tlb = make(entries=8, ways=2)
        ref = ReferenceLRU(sets=4, ways=2)
        for op, page in ops:
            if op == "lookup":
                assert tlb.lookup(page) == ref.lookup(page)
            elif op == "fill":
                tlb.fill(page)
                ref.fill(page)
            else:
                tlb.invalidate(page)
                ref.invalidate(page)
        for page in range(31):
            assert tlb.contains(page) == any(
                page in s for s in ref.sets
            )
