"""Set-associative behavior under interleaved (multi-tenant) address
spaces, plus the per-level stats conservation laws."""

from __future__ import annotations

import numpy as np
import pytest

from repro import make_policy
from repro.config import LatencyModel, TLBConfig
from repro.sim.machine import Machine
from repro.tlb import SetAssociativeTLB, TLBHierarchy
from tests.conftest import make_trace, sweep_records
from repro.tenancy.mix import merge_traces


def make(entries=8, ways=2):
    return SetAssociativeTLB(TLBConfig(entries, ways))


class TestInterleavedAddressSpaces:
    """Two tenants whose windows are set-count aligned collide per set."""

    def test_window_aligned_pages_share_sets(self):
        tlb = make(entries=8, ways=2)  # 4 sets
        window = 64  # multiple of n_sets: page and page+window collide
        tlb.fill(3)
        tlb.fill(3 + window)
        victim = tlb.fill(3 + 2 * window)
        assert victim == 3  # LRU of the shared set, not another set

    def test_cross_tenant_conflict_evictions(self):
        tlb = make(entries=8, ways=2)
        window = 64
        # Two tenants fill the shared sets to capacity without evicting
        # each other; a third working set at the same offsets evicts the
        # LRU (tenant a) from every set.
        for page in range(4):
            tlb.fill(page)
        for page in range(4):
            assert tlb.fill(window + page) is None
        assert tlb.occupancy == 8
        for page in range(4):
            assert tlb.fill(2 * window + page) == page
        for page in range(4):
            assert not tlb.contains(page)
            assert tlb.contains(window + page)
            assert tlb.contains(2 * window + page)
        assert tlb.occupancy == 8

    def test_disjoint_sets_do_not_conflict(self):
        tlb = make(entries=8, ways=2)  # 4 sets
        for page in range(4):  # one page per set: no pressure anywhere
            assert tlb.fill(page) is None
        for page in range(4):
            assert tlb.contains(page)

    def test_interleaved_streams_deterministic(self):
        rng = np.random.default_rng(7)
        pages = [
            int(rng.integers(0, 16)) + (64 if rng.integers(0, 2) else 0)
            for _ in range(200)
        ]
        a, b = make(16, 4), make(16, 4)
        for page in pages:
            if not a.lookup(page):
                a.fill(page)
            if not b.lookup(page):
                b.fill(page)
        assert (a.hits, a.misses, a.lookups) == (b.hits, b.misses, b.lookups)
        assert a.cached_pages() == b.cached_pages()


class TestStatsConservation:
    def test_single_level_lookups_partition(self):
        tlb = make(16, 4)
        rng = np.random.default_rng(0)
        for _ in range(300):
            page = int(rng.integers(0, 48))
            if not tlb.lookup(page):
                tlb.fill(page)
        assert tlb.lookups == 300
        assert tlb.hits + tlb.misses == tlb.lookups

    @pytest.mark.parametrize("seed", range(3))
    def test_hierarchy_levels_conserve(self, seed):
        tlb = TLBHierarchy(TLBConfig(4, 2), TLBConfig(16, 4), LatencyModel())
        rng = np.random.default_rng(seed)
        for _ in range(400):
            page = int(rng.integers(0, 64)) + (
                128 if rng.integers(0, 2) else 0
            )
            tlb.translate(page)
        assert tlb.l1.hits + tlb.l1.misses == tlb.l1.lookups
        assert tlb.l2.hits + tlb.l2.misses == tlb.l2.lookups
        assert tlb.l2.lookups == tlb.l1.misses
        assert tlb.l1.lookups == 400

    def test_translate_run_counts_like_translate_fast(self):
        rng = np.random.default_rng(1)
        pages = [int(rng.integers(0, 96)) for _ in range(500)]
        one = TLBHierarchy(TLBConfig(4, 2), TLBConfig(16, 4), LatencyModel())
        two = TLBHierarchy(TLBConfig(4, 2), TLBConfig(16, 4), LatencyModel())
        costs_fast = []
        walks_fast = []
        for pos, page in enumerate(pages):
            cost, walked = one.translate_fast(page)
            costs_fast.append(cost)
            if walked:
                walks_fast.append(pos)
        costs_run, walks_run = two.translate_run(pages)
        assert costs_run == costs_fast
        assert walks_run == walks_fast
        for mine, theirs in ((one.l1, two.l1), (one.l2, two.l2)):
            assert (mine.hits, mine.misses, mine.lookups) == (
                theirs.hits, theirs.misses, theirs.lookups
            )
            assert mine.hits + mine.misses == mine.lookups


class TestTenantAttribution:
    """Machine-level: TLB pressure lands on the right tenant."""

    def test_lookup_split_tracks_record_volume(self, config):
        heavy = make_trace(
            {"x": 8}, [sweep_records(range(4), "x", 8, False, 2)], burst=4
        )
        light = make_trace({"y": 4}, [[(0, "y", 0, False)]], burst=4)
        trace = merge_traces([heavy, light], ["heavy", "light"], burst=4)
        machine = Machine(config, trace, make_policy("on_touch"))
        machine.run()
        counters = machine.stats.as_dict()
        heavy_lookups = counters["tenant.heavy.tlb.lookups"]
        light_lookups = counters["tenant.light.tlb.lookups"]
        assert heavy_lookups >= heavy.total_records
        assert light_lookups >= light.total_records
        assert heavy_lookups > light_lookups
        probes = sum(h.l1.hits + h.l1.misses for h in machine.tlbs)
        assert heavy_lookups + light_lookups == probes
        for hierarchy in machine.tlbs:
            assert (
                hierarchy.l1.hits + hierarchy.l1.misses
                == hierarchy.l1.lookups
            )
            assert (
                hierarchy.l2.hits + hierarchy.l2.misses
                == hierarchy.l2.lookups
            )
            assert hierarchy.l2.lookups == hierarchy.l1.misses
