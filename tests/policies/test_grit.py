"""GRIT comparator behaviour."""

import pytest

from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.policies import GritPolicy
from repro.policies.grit import (
    METADATA_BITS_PER_PAGE,
    PA_CACHE_BYTES,
    PACache,
    PageMeta,
)
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run(trace, config, **kwargs):
    policy = GritPolicy(**kwargs)
    machine = Machine(config, trace, policy)
    return machine, policy, machine.run()


class TestPACache:
    def test_capacity_derives_from_352_bytes(self):
        assert PACache().capacity == PA_CACHE_BYTES * 8 // METADATA_BITS_PER_PAGE

    def test_hit_miss(self):
        cache = PACache(entries=2)
        assert not cache.access(1)
        assert cache.access(1)
        cache.access(2)
        cache.access(3)  # evicts 1 (LRU)
        assert not cache.access(1)

    def test_lru_refresh(self):
        cache = PACache(entries=2)
        cache.access(1)
        cache.access(2)
        cache.access(1)  # refresh
        cache.access(3)  # evicts 2
        assert cache.access(1)
        assert not cache.access(2)


class TestPageMeta:
    def test_observe_accumulates(self):
        meta = PageMeta()
        meta.observe(0, is_write=False)
        meta.observe(2, is_write=True)
        assert meta.fault_count == 2
        assert meta.read_seen and meta.write_seen
        assert meta.sharer_mask == 0b101

    def test_reset_window(self):
        meta = PageMeta()
        meta.observe(0, True)
        meta.reset_window()
        assert meta.fault_count == 0
        assert not meta.write_seen


class TestGritLearning:
    def test_four_faults_required_per_page(self, config):
        """Fault-Aware Initiator: a page's policy changes only after 4
        shared faults (Section VI-C)."""
        # Two GPUs bounce one page: each bounce is a shared fault.
        records = []
        for _ in range(3):
            records.append((0, "obj", 0, False, 2))
            records.append((1, "obj", 0, False, 2))
        trace = make_trace({"obj": 1}, [records], burst=1)
        machine, policy, _ = run(trace, config, neighbor_window=0)
        # 5 shared faults (after gpu0's first private touch): decided once.
        assert machine.page_tables.policy(trace.first_page) == POLICY_DUPLICATION

    def test_fewer_than_four_faults_stays_on_touch(self, config):
        records = [(0, "obj", 0, False, 2), (1, "obj", 0, False, 2),
                   (0, "obj", 0, False, 2)]
        trace = make_trace({"obj": 1}, [records], burst=1)
        machine, _, _ = run(trace, config, neighbor_window=0)
        # Only 2 shared faults seen: still default on-touch.
        assert machine.page_tables.policy(trace.first_page) == POLICY_ON_TOUCH

    def test_write_history_selects_counter(self, config):
        records = []
        for _ in range(4):
            records.append((0, "obj", 0, True, 2))
            records.append((1, "obj", 0, True, 2))
        trace = make_trace({"obj": 1}, [records], burst=1)
        machine, _, _ = run(trace, config, neighbor_window=0)
        assert machine.page_tables.policy(trace.first_page) == POLICY_COUNTER

    def test_neighbor_prediction_stamps_following_pages(self, config):
        records = []
        for _ in range(4):
            records.append((0, "obj", 0, False, 2))
            records.append((1, "obj", 0, False, 2))
        trace = make_trace({"obj": 8}, [records], burst=1)
        machine, policy, _ = run(trace, config, neighbor_window=4)
        first = trace.first_page
        assert policy.predictions == 4
        for offset in range(1, 5):
            assert machine.page_tables.policy(first + offset) == POLICY_DUPLICATION
        assert machine.page_tables.policy(first + 5) == POLICY_ON_TOUCH

    def test_prediction_stops_at_trace_boundary(self, config):
        records = []
        for _ in range(4):
            records.append((0, "obj", 1, False, 2))
            records.append((1, "obj", 1, False, 2))
        trace = make_trace({"obj": 2}, [records], burst=1)
        _, policy, _ = run(trace, config, neighbor_window=8)
        assert policy.predictions == 0  # page 1 is the last page

    def test_metadata_footprint_counts_touched_pages(self, config):
        records = sweep_records(range(2), "obj", 4, write=False)
        trace = make_trace({"obj": 4}, [records])
        _, policy, _ = run(trace, config)
        assert policy.metadata_bytes == len(policy._meta) * 6

    def test_pa_cache_misses_counted(self, config):
        records = sweep_records(range(2), "obj", 4, write=True, weight=2)
        trace = make_trace({"obj": 4}, [records])
        _, _, result = run(trace, config)
        assert result.stats["grit.pa_cache_miss"] >= 1

    def test_invalid_params(self):
        with pytest.raises(ValueError):
            GritPolicy(faults_per_decision=0)
        with pytest.raises(ValueError):
            GritPolicy(neighbor_window=-1)
