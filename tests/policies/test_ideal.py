"""Ideal policy behaviour (the hypothetical bound of Section IV-A)."""

from repro.policies import IdealPolicy
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run(trace, config):
    machine = Machine(config, trace, IdealPolicy())
    return machine, machine.run()


class TestIdeal:
    def test_one_fault_per_gpu_page_pair(self, config):
        records = sweep_records(range(4), "obj", 2, write=False, weight=2)
        trace = make_trace({"obj": 2}, [records, records],
                           explicit=[True, False])
        _, result = run(trace, config)
        assert result.page_faults == 8  # 4 GPUs x 2 pages, once ever

    def test_writes_never_collapse(self, config):
        reads = sweep_records(range(4), "obj", 1, write=False, weight=2)
        writes = sweep_records(range(4), "obj", 1, write=True, weight=2)
        trace = make_trace({"obj": 1}, [reads, writes],
                           explicit=[True, False])
        machine, result = run(trace, config)
        assert result.collapses == 0
        assert result.protection_faults == 0
        # All four GPUs keep writable copies simultaneously.
        pt = machine.page_tables
        assert all(pt.is_writable(g, trace.first_page) for g in range(4))

    def test_all_accesses_local_after_first(self, config):
        records = sweep_records(range(4), "obj", 2, write=True, weight=8)
        trace = make_trace({"obj": 2}, [records, records],
                           explicit=[True, False])
        _, result = run(trace, config)
        assert result.stats.get("access.remote", 0) == 0

    def test_ideal_is_lower_bound_among_policies(self, config):
        from repro import make_policy

        mixed = (
            sweep_records(range(4), "obj", 4, write=False, weight=8)
            + sweep_records(range(4), "obj", 4, write=True, weight=8)
        )
        trace = make_trace({"obj": 4}, [mixed])
        times = {}
        for name in ("on_touch", "access_counter", "duplication", "ideal"):
            times[name] = Machine(
                config, trace, make_policy(name)
            ).run().total_time_ns
        assert times["ideal"] == min(times.values())
