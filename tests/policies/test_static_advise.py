"""Static-hints (cudaMemAdvise strawman) policy tests."""

import pytest

from repro import make_policy
from repro.memory import POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.policies import StaticAdvisePolicy
from repro.sim.machine import Machine, simulate
from tests.conftest import make_trace, sweep_records


class TestHintDerivation:
    def test_read_only_object_advised_read_mostly(self, config):
        reads = sweep_records(range(4), "ro", 2, write=False, weight=4)
        writes = sweep_records(range(4), "rw", 2, write=True, weight=4)
        trace = make_trace({"ro": 2, "rw": 2}, [reads + writes])
        policy = StaticAdvisePolicy()
        Machine(config, trace, policy)
        assert policy.hints == {"ro": "read_mostly", "rw": "none"}

    def test_policy_bits_stamped_per_hint(self, config):
        reads = sweep_records(range(4), "ro", 2, write=False, weight=4)
        trace = make_trace({"ro": 2, "other": 2}, [reads])
        machine = Machine(config, trace, StaticAdvisePolicy())
        assert machine.page_tables.policy(trace.first_page) == POLICY_DUPLICATION
        assert machine.page_tables.policy(trace.first_page + 2) == POLICY_ON_TOUCH

    def test_explicit_hints_override(self, config):
        reads = sweep_records(range(4), "ro", 2, write=False, weight=4)
        trace = make_trace({"ro": 2}, [reads])
        policy = StaticAdvisePolicy(hints={"ro": "none"})
        machine = Machine(config, trace, policy)
        assert machine.page_tables.policy(trace.first_page) == POLICY_ON_TOUCH

    def test_unknown_advice_rejected(self, config):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)]])
        with pytest.raises(ValueError):
            Machine(config, trace, StaticAdvisePolicy(hints={"o": "banana"}))


class TestBehaviour:
    def test_matches_duplication_on_read_only_data(self, config):
        records = sweep_records(range(4), "ro", 4, write=False, weight=16)
        trace = make_trace({"ro": 4}, [records, records],
                           explicit=[True, False])
        advise = simulate(config, trace, make_policy("static_advise"))
        dup = simulate(config, trace, make_policy("duplication"))
        assert advise.duplications == dup.duplications
        assert advise.total_time_ns == pytest.approx(dup.total_time_ns,
                                                     rel=0.01)

    def test_wrong_hint_write_collapses(self, config):
        # Hint says read-mostly, but a write arrives anyway.
        reads = sweep_records(range(4), "o", 2, write=False, weight=4)
        trace = make_trace({"o": 2}, [reads])
        policy = StaticAdvisePolicy(hints={"o": "read_mostly"})
        machine = Machine(config, trace, policy)
        machine.run()
        # A write to the duplicated page arrives as a protection fault.
        cost = policy.on_protection_fault(1, trace.first_page)
        assert cost > 0
        assert machine.stats["advise.wrong_hint_writes"] == 1
        assert machine.page_tables.copy_holders(trace.first_page) == [1]

    def test_cannot_adapt_to_phase_changes(self, config):
        """An object read-only in phase 0 but written in phase 1 is
        rw-mix statically, so static advice gives it on-touch — losing
        the duplication benefit OASIS gets during the read phase."""
        reads = []
        for _sweep in range(4):
            reads += sweep_records(range(4), "o", 8, write=False, weight=48)
        writes = sweep_records(range(4), "o", 8, write=True, weight=8)
        trace = make_trace({"o": 8}, [reads, writes],
                           explicit=[True, True])
        policy = StaticAdvisePolicy()
        machine = Machine(config, trace, policy)
        advise_result = machine.run()
        assert policy.hints["o"] == "none"  # rw-mix over whole program
        oasis_result = simulate(config, trace, make_policy("oasis"))
        assert oasis_result.total_time_ns < advise_result.total_time_ns
