"""GRIT re-decision behaviour: policies adapt when patterns change."""

from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION
from repro.policies import GritPolicy
from repro.sim.machine import Machine
from tests.conftest import make_trace


def bounce(name, page, n, write, weight=2):
    records = []
    for _ in range(n):
        records.append((0, name, page, write, weight))
        records.append((1, name, page, write, weight))
    return records


class TestGritRedecision:
    def test_dup_page_flips_to_counter_after_writes(self, config):
        # Phase 0: read bouncing decides duplication.
        # Phase 1: write storms re-decide to counter after 4 more faults.
        trace = make_trace(
            {"o": 1},
            [bounce("o", 0, 4, write=False),
             bounce("o", 0, 6, write=True)],
            explicit=[True, True],
            burst=1,
        )
        policy = GritPolicy(neighbor_window=0)
        machine = Machine(config, trace, policy)
        machine.run()
        assert machine.page_tables.policy(trace.first_page) == POLICY_COUNTER
        assert machine.stats["grit.policy_changes"] >= 2

    def test_counter_page_can_return_to_duplication(self, config):
        config = config.replace(access_counter_threshold=4)
        trace = make_trace(
            {"o": 1},
            [bounce("o", 0, 4, write=True),
             # Counter-triggered migrations invalidate the peer's mapping,
             # so read re-faults accumulate a fresh read-only window.
             bounce("o", 0, 8, write=False, weight=8)],
            explicit=[True, True],
            burst=1,
        )
        policy = GritPolicy(neighbor_window=0)
        machine = Machine(config, trace, policy)
        machine.run()
        assert machine.page_tables.policy(trace.first_page) in (
            POLICY_DUPLICATION, POLICY_COUNTER
        )
        # The observation windows kept accumulating after the first
        # decision (metadata persists across phases).
        assert policy.meta_for(trace.first_page) is not None

    def test_grit_metadata_persists_across_phases(self, config):
        """Unlike OASIS, GRIT never resets at kernel launches — its
        learned per-page policies carry over."""
        trace = make_trace(
            {"o": 1},
            [bounce("o", 0, 4, write=False), bounce("o", 0, 1, write=False)],
            explicit=[True, True],
            burst=1,
        )
        policy = GritPolicy(neighbor_window=0)
        machine = Machine(config, trace, policy)
        machine.run()
        # Policy learned in phase 0 still applied in phase 1.
        assert machine.page_tables.policy(trace.first_page) == POLICY_DUPLICATION
