"""PolicyEngine base-class contract tests."""

import pytest

from repro.policies import OnTouchPolicy, PolicyEngine
from repro.sim.machine import Machine
from tests.conftest import make_trace


class TestBaseContract:
    def test_abstract_on_fault(self):
        with pytest.raises(TypeError):
            PolicyEngine()

    def test_default_protection_fault_raises(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]])
        policy = OnTouchPolicy()
        Machine(config, trace, policy)
        with pytest.raises(RuntimeError):
            policy.on_protection_fault(0, trace.first_page)

    def test_default_remote_access_raises(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]])
        policy = OnTouchPolicy()
        Machine(config, trace, policy)
        with pytest.raises(RuntimeError):
            policy.on_remote_access(0, trace.first_page, False, 1)

    def test_attach_exposes_components(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]])
        policy = OnTouchPolicy()
        machine = Machine(config, trace, policy)
        assert policy.machine is machine
        assert policy.driver is machine.driver
        assert policy.page_tables is machine.page_tables
        assert policy.config is machine.config
        assert policy.stats is machine.stats
