"""On-touch policy behaviour."""

from repro.memory import POLICY_ON_TOUCH
from repro.policies import OnTouchPolicy
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run(trace, config):
    machine = Machine(config, trace, OnTouchPolicy())
    return machine, machine.run()


class TestOnTouch:
    def test_every_fault_migrates(self, config):
        records = sweep_records(range(2), "obj", 4, write=False)
        trace = make_trace({"obj": 4}, [records])
        _, result = run(trace, config)
        assert result.migrations == result.page_faults
        assert result.duplications == 0

    def test_ping_pong_on_shared_pages(self, config):
        # Two GPUs alternately touching one page re-migrate it each time.
        records = []
        for _ in range(5):
            records.append((0, "obj", 0, True, 2))
            records.append((1, "obj", 0, True, 2))
        trace = make_trace({"obj": 1}, [records], burst=1)
        machine, result = run(trace, config)
        assert result.migrations >= 9  # first touch + 9 bounces

    def test_private_page_migrates_once(self, config):
        records = [(2, "obj", 0, True, 4)] * 10
        trace = make_trace({"obj": 1}, [records])
        machine, result = run(trace, config)
        assert result.migrations == 1
        assert machine.page_tables.location(trace.first_page) == 2

    def test_policy_bits_are_on_touch(self, config):
        trace = make_trace({"obj": 2}, [[(0, "obj", 0, False)]])
        machine, result = run(trace, config)
        assert result.policy_histogram == {POLICY_ON_TOUCH: 2}

    def test_subsequent_local_accesses_free_of_faults(self, config):
        records = [(0, "obj", 0, False, 16)] * 3
        trace = make_trace({"obj": 1}, [records])
        _, result = run(trace, config)
        assert result.page_faults == 1
        assert result.stats["access.local"] > 0
