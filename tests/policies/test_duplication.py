"""Duplication policy behaviour."""

from repro.config import HOST
from repro.policies import DuplicationPolicy
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run(trace, config):
    machine = Machine(config, trace, DuplicationPolicy())
    return machine, machine.run()


class TestDuplication:
    def test_read_faults_duplicate(self, config):
        records = sweep_records(range(4), "ro", 2, write=False, weight=4)
        trace = make_trace({"ro": 2}, [records])
        machine, result = run(trace, config)
        first = trace.first_page
        assert result.duplications == 8  # 2 pages x 4 GPUs
        assert sorted(machine.page_tables.copy_holders(first)) == [0, 1, 2, 3]
        assert machine.page_tables.location(first) == HOST

    def test_all_reads_local_after_duplication(self, config):
        records = sweep_records(range(4), "ro", 2, write=False, weight=4)
        trace = make_trace({"ro": 2}, [records, records],
                           explicit=[True, False])
        _, result = run(trace, config)
        assert result.stats.get("access.remote", 0) == 0
        assert result.stats.get("access.host", 0) == 0

    def test_write_to_duplicated_page_raises_protection_fault(self, config):
        reads = sweep_records(range(4), "obj", 1, write=False, weight=2)
        writes = [(0, "obj", 0, True, 2)]
        trace = make_trace({"obj": 1}, [reads, writes],
                           explicit=[True, False])
        machine, result = run(trace, config)
        assert result.protection_faults == 1
        assert result.collapses == 1
        assert machine.page_tables.copy_holders(trace.first_page) == [0]
        assert machine.page_tables.is_writable(0, trace.first_page)

    def test_write_fault_on_fresh_page_collapses_immediately(self, config):
        trace = make_trace({"obj": 1}, [[(2, "obj", 0, True, 2)]])
        machine, result = run(trace, config)
        assert result.collapses == 1
        assert result.protection_faults == 0
        assert machine.page_tables.location(trace.first_page) == 2

    def test_private_rw_page_pays_double_fault(self, config):
        """The paper's point about duplication on private rw-mix data:
        read-then-write costs a duplication fault plus a protection
        fault where on-touch pays a single migration."""
        records = [(0, "obj", 0, False, 2), (0, "obj", 0, True, 2)]
        trace = make_trace({"obj": 1}, [records], burst=1)
        _, result = run(trace, config)
        assert result.total_faults == 2
        assert result.protection_faults == 1

    def test_collapse_then_reread_duplicates_again(self, config):
        reads = sweep_records(range(2), "obj", 1, write=False, weight=2)
        writes = [(0, "obj", 0, True, 2)]
        trace = make_trace({"obj": 1}, [reads, writes, reads],
                           explicit=[True, False, False])
        _, result = run(trace, config)
        assert result.duplications >= 3
