"""Access-counter policy behaviour."""

from repro.config import HOST
from repro.policies import AccessCounterPolicy
from repro.sim.machine import Machine
from tests.conftest import make_trace, sweep_records


def run(trace, config):
    machine = Machine(config, trace, AccessCounterPolicy())
    return machine, machine.run()


class TestAccessCounter:
    def test_faults_map_remote_not_migrate(self, config):
        trace = make_trace({"obj": 2}, [[(0, "obj", 0, False, 4)]])
        machine, result = run(trace, config)
        # Data deferred on host: no migration until the threshold.
        assert result.migrations == 0
        assert result.stats["remote_map.count"] == 1
        assert machine.page_tables.location(trace.first_page) == HOST
        assert result.stats["access.host"] > 0

    def test_threshold_triggers_group_migration(self, config):
        config = config.replace(access_counter_threshold=16)
        records = [(0, "obj", p, False, 8) for p in range(4)] * 2
        trace = make_trace({"obj": 4}, [records])
        machine, result = run(trace, config)
        assert result.stats["migration.counter_triggered"] > 0
        assert machine.page_tables.location(trace.first_page) == 0

    def test_below_threshold_never_migrates(self, config):
        config = config.replace(access_counter_threshold=1000)
        records = sweep_records(range(4), "obj", 2, write=False, weight=4)
        trace = make_trace({"obj": 2}, [records])
        machine, result = run(trace, config)
        assert result.migrations == 0
        assert machine.page_tables.location(trace.first_page) == HOST

    def test_no_ping_pong_under_write_sharing(self, config):
        config = config.replace(access_counter_threshold=10_000)
        records = []
        for _ in range(5):
            records.append((0, "obj", 0, True, 2))
            records.append((1, "obj", 0, True, 2))
        trace = make_trace({"obj": 1}, [records], burst=1)
        _, result = run(trace, config)
        assert result.migrations == 0  # writes go remote, no bouncing

    def test_group_migration_migrates_cohort_pages(self, config):
        config = config.replace(access_counter_threshold=8)
        # Touch only page 0 heavily; pages 1-3 (same 64 KB group, also
        # host-resident) ride along on the group migration.
        records = [(1, "obj", 0, True, 64)] * 2
        trace = make_trace({"obj": 4}, [records])
        machine, result = run(trace, config)
        first = trace.first_page
        assert machine.page_tables.location(first) == 1
        assert result.stats["migration.counter_triggered"] >= 1

    def test_remap_after_invalidation(self, config):
        config = config.replace(access_counter_threshold=8)
        records = [
            (0, "obj", 0, True, 16),   # gpu0 counts up and migrates
            (1, "obj", 0, False, 4),   # gpu1 remote-maps to gpu0's copy
        ]
        trace = make_trace({"obj": 1}, [records], burst=1)
        machine, result = run(trace, config)
        assert machine.page_tables.is_mapped(1, trace.first_page)
        assert not machine.page_tables.has_copy(1, trace.first_page)
