"""Eviction-path tests: copy dropping, ownership transfer, writeback."""

from repro.config import HOST
from tests.uvm.test_driver import make_driver


class TestEvictFrom:
    def test_sole_holder_pays_writeback(self):
        d = make_driver()
        d.migrate(0, 0)
        pcie_before = d.stats["traffic.pcie_bytes"]
        d.evict_from(0, 0)
        assert d.page_tables.location(0) == HOST
        assert d.stats["eviction.count"] == 1
        assert d.stats["traffic.pcie_bytes"] == pcie_before + d.config.page_size

    def test_duplicate_copy_dropped_without_transfer(self):
        d = make_driver()
        d.duplicate(0, 0)
        d.duplicate(1, 0)
        bytes_before = (d.stats["traffic.pcie_bytes"]
                        + d.stats["traffic.nvlink_bytes"])
        d.evict_from(1, 0)
        after = (d.stats["traffic.pcie_bytes"]
                 + d.stats["traffic.nvlink_bytes"])
        assert after == bytes_before  # no data moved
        assert d.stats["eviction.copy_dropped"] == 1
        assert d.page_tables.copy_holders(0) == [0]
        # GPU 0's mapping is untouched.
        assert d.page_tables.is_mapped(0, 0)
        assert not d.page_tables.is_mapped(1, 0)

    def test_owner_eviction_transfers_ownership(self):
        d = make_driver()
        d.migrate(2, 0)          # GPU 2 owns the page
        d.duplicate(3, 0)        # GPU 3 holds a duplicate
        d.evict_from(2, 0)
        pt = d.page_tables
        assert pt.location(0) == 3
        assert pt.copy_holders(0) == [3]
        assert not pt.is_mapped(2, 0)
        assert pt.is_mapped(3, 0)
        pt.check_invariants()

    def test_owner_transfer_keeps_third_copies(self):
        d = make_driver()
        d.migrate(0, 0)
        d.duplicate(1, 0)
        d.duplicate(2, 0)
        d.evict_from(0, 0)
        holders = sorted(d.page_tables.copy_holders(0))
        assert holders == [1, 2]
        assert d.page_tables.location(0) in (1, 2)
        d.page_tables.check_invariants()

    def test_evict_from_non_holder_rejected(self):
        import pytest

        d = make_driver()
        d.migrate(0, 0)
        with pytest.raises(ValueError):
            d.evict_from(1, 0)

    def test_eviction_frees_capacity(self):
        d = make_driver(capacity_pages=4)
        d.duplicate(0, 0)
        d.duplicate(1, 0)
        d.evict_from(1, 0)
        assert d.capacity.resident_count(1) == 0
        assert d.capacity.resident_count(0) == 1

    def test_evicted_page_refaults_cleanly(self):
        d = make_driver()
        d.migrate(0, 0)
        d.evict_from(0, 0)
        d.migrate(1, 0)
        assert d.page_tables.location(0) == 1
        d.page_tables.check_invariants()
