"""UVM driver primitive tests: migrate / duplicate / collapse / evict."""

from repro.config import HOST, SystemConfig
from repro.engine import StatCounters
from repro.interconnect import Topology
from repro.memory import AccessCounterFile, CapacityManager, PageTables
from repro.tlb import TLBHierarchy
from repro.uvm import UVMDriver

N_PAGES = 8
N_GPUS = 4


def make_driver(capacity_pages=None, placement="host"):
    config = SystemConfig()
    pt = PageTables(N_PAGES, N_GPUS, initial_placement=placement)
    tlbs = [
        TLBHierarchy(config.l1_tlb, config.l2_tlb, config.latency)
        for _ in range(N_GPUS)
    ]
    driver = UVMDriver(
        config=config,
        page_tables=pt,
        topology=Topology(N_GPUS, config.latency),
        tlbs=tlbs,
        capacity=CapacityManager(N_GPUS, capacity_pages),
        counters=AccessCounterFile(N_GPUS, config.pages_per_counter_group,
                                   config.access_counter_threshold),
        stats=StatCounters(),
    )
    return driver


class TestMigrate:
    def test_first_touch_from_host(self):
        d = make_driver()
        cost = d.migrate(1, 0)
        assert cost > 0
        assert d.page_tables.location(0) == 1
        assert d.page_tables.is_writable(1, 0)
        assert d.stats["migration.count"] == 1
        # Data moved over PCIe.
        assert d.stats["traffic.pcie_bytes"] == d.config.page_size

    def test_gpu_to_gpu_migration_unmaps_previous_owner(self):
        d = make_driver()
        d.migrate(0, 0)
        d.migrate(2, 0)
        assert d.page_tables.location(0) == 2
        assert not d.page_tables.is_mapped(0, 0)
        assert d.stats["shootdown.count"] == 1
        assert d.stats["traffic.nvlink_bytes"] == d.config.page_size

    def test_migration_shoots_down_tlbs(self):
        d = make_driver()
        d.migrate(0, 0)
        d.tlbs[0].translate(0)
        d.migrate(1, 0)
        assert d.tlbs[0].translate(0).level == "walk"

    def test_migration_resets_group_counters(self):
        d = make_driver()
        d.migrate(0, 0)
        d.counters.record_remote(1, 0)
        d.migrate(1, 0)
        assert d.counters.count(1, 0) == 0

    def test_remigration_to_holder_skips_transfer(self):
        d = make_driver()
        d.migrate(0, 0)
        before = d.stats["traffic.pcie_bytes"]
        d.page_tables.unmap(0, 0)
        d.migrate(0, 0)
        assert d.stats["traffic.pcie_bytes"] == before


class TestDuplicate:
    def test_duplicate_from_host_keeps_host_owner(self):
        d = make_driver()
        d.duplicate(0, 0)
        assert d.page_tables.location(0) == HOST
        assert d.page_tables.has_copy(0, 0)
        assert not d.page_tables.is_writable(0, 0)

    def test_second_duplicate_copies_from_gpu_not_host(self):
        d = make_driver()
        d.duplicate(0, 0)
        nv_before = d.stats["traffic.nvlink_bytes"]
        d.duplicate(1, 0)
        assert d.stats["traffic.nvlink_bytes"] == nv_before + d.config.page_size

    def test_duplicate_demotes_writer(self):
        d = make_driver()
        d.migrate(0, 0)  # GPU 0 writable owner
        d.duplicate(1, 0)
        assert not d.page_tables.is_writable(0, 0)
        assert d.page_tables.is_mapped(0, 0)  # still mapped, read-only
        assert d.stats["duplication.demotions"] == 1

    def test_duplicate_remap_for_existing_holder(self):
        d = make_driver()
        d.duplicate(0, 0)
        d.page_tables.unmap(0, 0)
        cost = d.duplicate(0, 0)
        assert cost == d.config.latency.pte_update_ns
        assert d.stats["duplication.remap"] == 1
        assert d.stats["duplication.count"] == 1  # no new copy


class TestCollapse:
    def test_collapse_invalidates_all_duplicates(self):
        d = make_driver()
        for gpu in range(3):
            d.duplicate(gpu, 0)
        d.collapse(3, 0)
        pt = d.page_tables
        assert pt.location(0) == 3
        assert pt.copy_holders(0) == [3]
        assert pt.is_writable(3, 0)
        for gpu in range(3):
            assert not pt.is_mapped(gpu, 0)

    def test_collapse_cost_scales_with_copies(self):
        d1 = make_driver()
        d1.duplicate(0, 0)
        cost_one = d1.collapse(3, 0)

        d3 = make_driver()
        for gpu in range(3):
            d3.duplicate(gpu, 0)
        cost_three = d3.collapse(3, 0)
        assert cost_three > cost_one

    def test_collapse_by_existing_holder_skips_transfer(self):
        d = make_driver()
        d.duplicate(0, 0)
        d.duplicate(1, 0)
        bytes_before = d.stats["traffic.nvlink_bytes"]
        d.collapse(0, 0)
        assert d.stats["traffic.nvlink_bytes"] == bytes_before
        assert d.page_tables.is_writable(0, 0)

    def test_collapse_on_exclusive_page_has_no_copy_overhead(self):
        d = make_driver()
        cost = d.collapse(0, 0)  # from host, no duplicates anywhere
        assert d.stats["collapse.invalidated_copies"] == 0
        assert cost < d.config.latency.collapse_overhead_ns + 2000


class TestMapRemote:
    def test_map_remote_leaves_data_in_place(self):
        d = make_driver()
        d.migrate(0, 0)
        cost = d.map_remote(1, 0)
        assert cost == d.config.latency.pte_update_ns
        assert d.page_tables.location(0) == 0
        assert d.page_tables.is_mapped(1, 0)
        assert not d.page_tables.has_copy(1, 0)


class TestEvict:
    def test_evict_returns_page_to_host(self):
        d = make_driver()
        d.migrate(0, 0)
        d.evict(0)
        assert d.page_tables.location(0) == HOST
        assert not d.page_tables.is_mapped(0, 0)
        assert d.stats["eviction.count"] == 1

    def test_evict_preserves_policy_bits(self):
        from repro.memory import POLICY_DUPLICATION

        d = make_driver()
        d.migrate(0, 0)
        d.page_tables.set_policy(0, POLICY_DUPLICATION)
        d.evict(0)
        assert d.page_tables.policy(0) == POLICY_DUPLICATION

    def test_capacity_pressure_triggers_eviction_on_migrate(self):
        d = make_driver(capacity_pages=2)
        for page in range(3):
            d.migrate(0, page)
        assert d.stats["eviction.count"] == 1
        assert d.page_tables.location(0) == HOST  # LRU page evicted
        assert d.capacity.resident_count(0) == 2

    def test_eviction_protects_incoming_page(self):
        d = make_driver(capacity_pages=1)
        d.migrate(0, 0)
        d.migrate(0, 1)
        assert d.page_tables.location(1) == 0
        assert d.page_tables.location(0) == HOST


class TestIdealCopy:
    def test_ideal_copy_multiple_writers(self):
        config = SystemConfig()
        pt = PageTables(N_PAGES, N_GPUS, coherent=False)
        d = make_driver()
        d.page_tables = pt
        d.ideal_copy(0, 0)
        d.ideal_copy(1, 0)
        assert pt.is_writable(0, 0)
        assert pt.is_writable(1, 0)
        pt.check_invariants()

    def test_ideal_copy_charges_once_per_gpu(self):
        pt = PageTables(N_PAGES, N_GPUS, coherent=False)
        d = make_driver()
        d.page_tables = pt
        first = d.ideal_copy(0, 0)
        second = d.ideal_copy(0, 0)
        assert second < first
