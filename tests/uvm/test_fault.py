"""Fault taxonomy tests."""

import pytest

from repro.uvm import FaultKind, PageFault
from repro.uvm.fault import ERROR_CODE_W_BIT


class TestPageFault:
    def test_write_fault_sets_w_bit(self):
        fault = PageFault(gpu=0, page=1, is_write=True)
        assert fault.w_bit
        assert fault.error_code & ERROR_CODE_W_BIT

    def test_read_fault_clears_w_bit(self):
        fault = PageFault(gpu=0, page=1, is_write=False)
        assert not fault.w_bit
        assert fault.error_code == 0

    def test_default_kind_is_page(self):
        assert PageFault(0, 1, False).kind is FaultKind.PAGE

    def test_protection_fault_must_be_write(self):
        with pytest.raises(ValueError):
            PageFault(0, 1, is_write=False, kind=FaultKind.PROTECTION)

    def test_protection_write_fault_valid(self):
        fault = PageFault(0, 1, is_write=True, kind=FaultKind.PROTECTION)
        assert fault.kind is FaultKind.PROTECTION
        assert fault.w_bit

    def test_frozen(self):
        fault = PageFault(0, 1, False)
        with pytest.raises(AttributeError):
            fault.gpu = 2
