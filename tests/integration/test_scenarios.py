"""Scenario tests pinning the paper's qualitative claims on small traces."""

from repro import make_policy
from repro.sim.machine import Machine, simulate
from tests.conftest import make_trace, sweep_records


class TestObjectLifecycle:
    def test_freed_object_removed_from_otable(self, config):
        trace = make_trace({"a": 2, "b": 2}, [
            sweep_records(range(2), "a", 2, write=False),
            sweep_records(range(2), "b", 2, write=False),
        ])
        trace.objects[0].free_phase = 0  # free "a" after phase 0
        policy = make_policy("oasis")
        Machine(config, trace, policy).run()
        assert 0 not in policy.otable
        assert policy.tracker.live_objects == 1

    def test_alloc_in_later_phase_registers_then(self, config):
        trace = make_trace({"a": 2, "b": 2}, [
            [(0, "a", 0, False)],
            [(0, "b", 0, False)],
        ])
        trace.objects[1].alloc_phase = 1
        seen = []

        from repro.core import OasisPolicy

        class Spy(OasisPolicy):
            def on_alloc(self, obj):
                seen.append((obj.name, len(seen)))
                super().on_alloc(obj)

        Machine(config, trace, Spy()).run()
        assert [name for name, _ in seen] == ["a", "b"]


class TestPhaseChangeAdaptation:
    """The C2D story: producer/consumer handoff across explicit phases.

    OASIS re-learns each object once per phase; GRIT needs four faults
    per page, so on phase-heavy handoff patterns OASIS services far
    fewer learning faults (the Fig. 24 effect)."""

    def _handoff_trace(self, n_cycles=6, pages=24):
        phases = []
        for cycle in range(n_cycles):
            write_phase = [
                (g, "buf", (g * pages // 4) + p, True, 48)
                for g in range(4) for p in range(pages // 4)
            ]
            read_phase = [
                ((g + 1) % 4, "buf", (g * pages // 4) + p, False, 96)
                for g in range(4) for p in range(pages // 4)
            ]
            phases.extend([write_phase, read_phase])
        return make_trace({"buf": pages}, phases,
                          explicit=[True] * (2 * n_cycles))

    def test_oasis_competitive_with_grit_on_handoff(self, config):
        trace = self._handoff_trace()
        oasis = simulate(config, trace, make_policy("oasis"))
        grit = simulate(config, trace, make_policy("grit"))
        assert oasis.total_time_ns <= grit.total_time_ns * 1.05

    def test_oasis_relearns_per_phase_not_per_page(self, config):
        """GRIT needs four faults per *page* to change a policy; OASIS
        resolves each phase change with one O-Table decision."""
        trace = self._handoff_trace()
        policy = make_policy("oasis")
        Machine(config, trace, policy).run()
        # One learning decision per (re)learned phase, not per page:
        # far fewer decisions than pages x phases.
        pages = trace.objects[0].n_pages
        n_phases = len(trace.phases)
        assert policy.controller.decisions < pages * n_phases / 4


class TestStateDiagramEndToEnd:
    """Fig. 13(b) transitions driven through real simulation."""

    def test_read_only_object_settles_on_duplication(self, config):
        phases = [
            sweep_records(range(4), "o", 4, write=False, weight=8)
            for _ in range(4)
        ]
        trace = make_trace({"o": 4}, phases,
                           explicit=[True, False, False, False])
        policy = make_policy("oasis")
        machine = Machine(config, trace, policy)
        machine.run()
        from repro.core.otable import OTABLE_POLICY_DUPLICATION
        assert policy.otable.lookup(0).policy == OTABLE_POLICY_DUPLICATION

    def test_write_object_settles_on_counter(self, config):
        phases = [
            sweep_records(range(4), "o", 4, write=True, weight=8)
            for _ in range(4)
        ]
        trace = make_trace({"o": 4}, phases,
                           explicit=[True, False, False, False])
        policy = make_policy("oasis")
        Machine(config, trace, policy).run()
        from repro.core.otable import OTABLE_POLICY_COUNTER
        assert policy.otable.lookup(0).policy == OTABLE_POLICY_COUNTER

    def test_read_to_write_transition_flips_policy(self, config):
        reads = sweep_records(range(4), "o", 4, write=False, weight=8)
        writes = sweep_records(range(4), "o", 4, write=True, weight=8)
        trace = make_trace(
            {"o": 4},
            [reads, writes, writes],
            explicit=[True, True, False],
        )
        policy = make_policy("oasis")
        Machine(config, trace, policy).run()
        from repro.core.otable import (
            OTABLE_POLICY_COUNTER,
            OTABLE_POLICY_DUPLICATION,
        )
        key = (OTABLE_POLICY_DUPLICATION, OTABLE_POLICY_COUNTER)
        assert policy.controller.transitions.get(key, 0) >= 1


class TestInterleavingMatters:
    def test_finer_interleaving_increases_on_touch_ping_pong(self, config):
        def trace_with_burst(burst):
            records = []
            for _sweep in range(4):
                records += sweep_records(range(4), "o", 8, write=True,
                                         weight=4)
            return make_trace({"o": 8}, [records], burst=burst)

        fine = simulate(config, trace_with_burst(1), make_policy("on_touch"))
        coarse = simulate(config, trace_with_burst(64),
                          make_policy("on_touch"))
        assert fine.migrations >= coarse.migrations


class TestStaticAdviseVsOasisScenario:
    def test_oasis_beats_static_hints_on_phase_changing_object(self, config):
        """The Related Work argument, end to end: a buffer that is
        heavily read-shared in one phase and rewritten in the next is
        rw-mix to static analysis (no advice), while OASIS re-learns
        duplication for every read phase."""
        reads = []
        for _sweep in range(3):
            reads += sweep_records(range(4), "buf", 8, write=False,
                                   weight=64)
        writes = [(g, "buf", g * 2 + p, True, 16)
                  for g in range(4) for p in range(2)]
        trace = make_trace({"buf": 8}, [reads, writes, reads],
                           explicit=[True, True, True])
        advise = simulate(config, trace, make_policy("static_advise"))
        oasis = simulate(config, trace, make_policy("oasis"))
        assert oasis.total_time_ns < advise.total_time_ns
        assert oasis.duplications > 0
