"""End-to-end integration tests: policies compete on synthetic scenarios
whose winners the paper predicts (Observation 3), plus cross-policy
consistency checks on real (small) application traces."""

import pytest

from repro import baseline_config, make_policy, simulate
from repro.sim.machine import Machine
from repro.workloads import get_workload
from tests.conftest import make_trace, sweep_records


def times_for(trace, config, policies):
    return {
        name: simulate(config, trace, make_policy(name)).total_time_ns
        for name in policies
    }


UNIFORM = ["on_touch", "access_counter", "duplication"]


class TestObservation3:
    """Different objects prefer specific policies."""

    def test_private_object_prefers_on_touch(self, config):
        # Heavily reused private data: on-touch migrates once; the
        # counter policy strands it behind the threshold.
        records = []
        for sweep in range(3):
            for g in range(4):
                for p in range(8):
                    records.append((g, "priv", g * 8 + p, sweep > 0, 64))
        trace = make_trace({"priv": 32}, [records])
        t = times_for(trace, config, UNIFORM)
        assert t["on_touch"] < t["access_counter"]
        assert t["on_touch"] <= t["duplication"] * 1.05

    def test_shared_read_only_prefers_duplication(self, config):
        records = []
        for _sweep in range(4):
            records += sweep_records(range(4), "ro", 16, write=False,
                                     weight=64)
        trace = make_trace({"ro": 16}, [records])
        t = times_for(trace, config, UNIFORM)
        assert t["duplication"] == min(t.values())

    def test_shared_write_prefers_counter(self, config):
        records = []
        for _sweep in range(4):
            records += sweep_records(range(4), "rw", 16, write=True,
                                     weight=8)
        trace = make_trace({"rw": 16}, [records])
        t = times_for(trace, config, UNIFORM)
        assert t["access_counter"] == min(t.values())

    def test_oasis_tracks_the_best_uniform_policy(self, config):
        """On a mixed workload OASIS should approach the per-object best."""
        records = []
        for _sweep in range(3):
            records += sweep_records(range(4), "ro", 8, write=False,
                                     weight=64)
            records += sweep_records(range(4), "rw", 8, write=True, weight=8)
            records += [(g, "priv", g * 2 + p, True, 64)
                        for g in range(4) for p in range(2)]
        trace = make_trace({"ro": 8, "rw": 8, "priv": 8}, [records])
        t = times_for(trace, config, UNIFORM + ["oasis", "ideal"])
        assert t["oasis"] <= min(t[p] for p in UNIFORM)
        assert t["ideal"] <= t["oasis"]


class TestCrossPolicyConsistency:
    """Identical traces must produce consistent bookkeeping everywhere."""

    POLICIES = ["on_touch", "access_counter", "duplication", "ideal",
                "grit", "oasis", "oasis_inmem"]

    @pytest.mark.parametrize("app", ["mm", "st", "bfs"])
    def test_total_accesses_preserved(self, app, config):
        trace = get_workload(app, config, footprint_mb=4)
        for name in self.POLICIES:
            result = simulate(config, trace, make_policy(name))
            replayed = (
                result.stats.get("access.local", 0)
                + result.stats.get("access.remote", 0)
                + result.stats.get("access.host", 0)
                + result.page_faults  # faulting access itself
            )
            assert replayed == trace.total_accesses, name

    @pytest.mark.parametrize("app", ["mm", "st"])
    def test_page_table_invariants_after_run(self, app, config):
        trace = get_workload(app, config, footprint_mb=4)
        for name in self.POLICIES:
            machine = Machine(config, trace, make_policy(name))
            machine.run()
            machine.page_tables.check_invariants()

    def test_determinism(self, config):
        trace = get_workload("bfs", config, footprint_mb=4)
        a = simulate(config, trace, make_policy("oasis"))
        b = simulate(config, trace, make_policy("oasis"))
        assert a.total_time_ns == b.total_time_ns
        assert a.stats == b.stats


class TestOversubscriptionEndToEnd:
    def test_evictions_occur_and_oasis_stays_competitive(self, config):
        config = config.replace(oversubscription=1.5)
        trace = get_workload("mm", config, footprint_mb=8)
        on_touch = simulate(config, trace, make_policy("on_touch"))
        oasis = simulate(config, trace, make_policy("oasis"))
        assert on_touch.evictions > 0
        # Gains are compressed under oversubscription (Fig. 25); OASIS
        # must at least not thrash itself below the baseline.
        assert oasis.speedup_over(on_touch) > 0.95

    def test_capacity_guard_degrades_duplication(self, config):
        config = config.replace(oversubscription=1.5)
        trace = get_workload("mm", config, footprint_mb=8)
        result = simulate(config, trace, make_policy("oasis"))
        assert result.stats.get("oasis.duplication_degraded", 0) > 0

    def test_oasis_wins_on_counter_friendly_app(self, config):
        config = config.replace(oversubscription=1.5)
        trace = get_workload("bfs", config, footprint_mb=8)
        on_touch = simulate(config, trace, make_policy("on_touch"))
        oasis = simulate(config, trace, make_policy("oasis"))
        assert oasis.speedup_over(on_touch) > 1.0


class TestGpuCountScaling:
    @pytest.mark.parametrize("n_gpus", [2, 8])
    def test_policies_run_at_other_gpu_counts(self, n_gpus):
        config = baseline_config(n_gpus=n_gpus)
        trace = get_workload("mm", config, footprint_mb=8)
        for name in ("on_touch", "oasis"):
            result = simulate(config, trace, make_policy(name))
            assert result.total_time_ns > 0
            assert result.n_gpus == n_gpus


class TestLargePagesEndToEnd:
    def test_all_policies_run_with_2mb_pages(self):
        from repro.config import PAGE_SIZE_2M

        config = baseline_config(page_size=PAGE_SIZE_2M)
        trace = get_workload("mm", config)
        for name in ("on_touch", "access_counter", "duplication", "oasis"):
            result = simulate(config, trace, make_policy(name))
            assert result.total_time_ns > 0
