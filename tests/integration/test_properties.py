"""Property-based integration tests: random traces through every policy.

For arbitrary (small) traces, every policy must conserve the access
stream, keep the page tables structurally sound, keep TLBs consistent
with the page tables, and stay deterministic.  The Ideal policy must be
within a whisker of the fastest.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import baseline_config, make_policy
from repro.sim.machine import Machine
from tests.conftest import make_trace

POLICIES = ["on_touch", "access_counter", "duplication", "ideal", "grit",
            "oasis", "oasis_inmem"]

N_OBJECTS = 3
PAGES_PER_OBJECT = 4


@st.composite
def random_traces(draw):
    n_phases = draw(st.integers(min_value=1, max_value=3))
    phases = []
    for _ in range(n_phases):
        n_records = draw(st.integers(min_value=0, max_value=25))
        records = [
            (
                draw(st.integers(0, 3)),
                f"o{draw(st.integers(0, N_OBJECTS - 1))}",
                draw(st.integers(0, PAGES_PER_OBJECT - 1)),
                draw(st.booleans()),
                draw(st.integers(1, 20)),
            )
            for _ in range(n_records)
        ]
        phases.append(records)
    explicit = [i == 0 or draw(st.booleans()) for i in range(n_phases)]
    return make_trace(
        {f"o{i}": PAGES_PER_OBJECT for i in range(N_OBJECTS)},
        phases,
        explicit=explicit,
        burst=draw(st.integers(1, 8)),
    )


@settings(max_examples=25, deadline=None)
@given(trace=random_traces())
def test_all_policies_sound_on_random_traces(trace):
    config = baseline_config(
        # Small counter threshold so counter-mode migrations also happen
        # on tiny traces.
        access_counter_threshold=16,
    )
    times = {}
    for name in POLICIES:
        machine = Machine(config, trace, make_policy(name))
        result = machine.run()
        times[name] = result.total_time_ns

        # 1. Access conservation: every access was replayed somewhere.
        replayed = (
            result.stats.get("access.local", 0)
            + result.stats.get("access.remote", 0)
            + result.stats.get("access.host", 0)
            + result.page_faults
        )
        assert replayed == trace.total_accesses, name

        # 2. Structural page-table invariants.
        machine.page_tables.check_invariants()

        # 3. TLBs never cache an unmapped translation.
        for gpu in range(config.n_gpus):
            tlb = machine.tlbs[gpu]
            for page in range(trace.first_page,
                              trace.first_page + trace.n_pages):
                if tlb.l1.contains(page) or tlb.l2.contains(page):
                    assert machine.page_tables.is_mapped(gpu, page), (
                        name, gpu, page
                    )

        # 4. Non-negative, finite time.
        assert times[name] >= 0

    # 5. Ideal bounds the policies that, like it, move data on every
    # first touch.  (Deferral-based policies can legitimately beat it on
    # ultra-sparse traces: a page accessed once is cheaper to read
    # remotely than to copy.)
    if trace.total_records:
        assert times["ideal"] <= times["on_touch"] * 1.05
        assert times["ideal"] <= times["duplication"] * 1.05


@settings(max_examples=10, deadline=None)
@given(trace=random_traces())
def test_oasis_deterministic_on_random_traces(trace):
    config = baseline_config()
    a = Machine(config, trace, make_policy("oasis")).run()
    b = Machine(config, trace, make_policy("oasis")).run()
    assert a.total_time_ns == b.total_time_ns
    assert a.stats == b.stats
    assert a.policy_histogram == b.policy_histogram
