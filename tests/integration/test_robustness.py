"""Robustness: corrupted inputs and degenerate configurations."""

import numpy as np
import pytest

from repro import baseline_config, make_policy, simulate
from repro.sim.machine import Machine
from repro.workloads.base import PhaseTrace
from tests.conftest import make_trace


class TestCorruptedTraces:
    def test_record_outside_tracked_range_fails_loudly(self, config):
        trace = make_trace({"o": 2}, [[(0, "o", 0, False)]])
        bogus = PhaseTrace(
            name="bogus", explicit=False,
            gpu=np.array([0], dtype=np.uint8),
            page=np.array([trace.first_page + 10_000], dtype=np.int64),
            write=np.array([0], dtype=np.uint8),
            weight=np.array([1], dtype=np.int64),
        )
        trace.phases.append(bogus)
        with pytest.raises(IndexError):
            simulate(config, trace, make_policy("on_touch"))

    def test_gpu_id_out_of_range_fails_loudly(self, config):
        trace = make_trace({"o": 2}, [[(0, "o", 0, False)]])
        bogus = PhaseTrace(
            name="bogus", explicit=False,
            gpu=np.array([9], dtype=np.uint8),
            page=np.array([trace.first_page], dtype=np.int64),
            write=np.array([0], dtype=np.uint8),
            weight=np.array([1], dtype=np.int64),
        )
        trace.phases.append(bogus)
        with pytest.raises(IndexError):
            simulate(config, trace, make_policy("on_touch"))


class TestDegenerateShapes:
    def test_empty_phase_runs(self, config):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)], []])
        result = simulate(config, trace, make_policy("oasis"))
        assert len(result.phases) == 2
        assert result.phases[1].duration_ns == 0.0

    def test_trace_with_untouched_objects(self, config):
        trace = make_trace({"used": 1, "ghost": 64},
                           [[(0, "used", 0, True)]])
        result = simulate(config, trace, make_policy("oasis"))
        assert result.total_faults == 1

    def test_single_gpu_system(self):
        config = baseline_config(n_gpus=1)
        trace = make_trace({"o": 4}, [[(0, "o", p, True) for p in range(4)]],
                           n_gpus=1)
        for name in ("on_touch", "access_counter", "duplication", "oasis"):
            result = simulate(config, trace, make_policy(name))
            assert result.total_time_ns > 0
            # Nothing is ever shared with one GPU: no duplicate copy is
            # ever invalidated (duplication's write faults still resolve
            # through the collapse primitive, but find no copies).
            assert result.stats.get("collapse.invalidated_copies", 0) == 0
            assert result.duplications == 0

    def test_sixteen_gpus(self):
        config = baseline_config(n_gpus=16)
        records = [(g, "o", g, True) for g in range(16)]
        trace = make_trace({"o": 16}, [records], n_gpus=16)
        result = simulate(config, trace, make_policy("oasis"))
        assert result.page_faults == 16

    def test_weight_one_records(self, config):
        trace = make_trace({"o": 2}, [[(0, "o", 0, False, 1)] * 5])
        result = simulate(config, trace, make_policy("oasis"))
        assert result.page_faults == 1
        assert result.stats["access.local"] == 4

    def test_tiny_otable(self, config):
        config = config.replace(otable_entries=1)
        records = [
            (g, name, 0, False)
            for name in ("a", "b", "c")
            for g in range(2)
        ]
        trace = make_trace({"a": 1, "b": 1, "c": 1}, [records])
        policy = make_policy("oasis")
        Machine(config, trace, policy).run()
        assert policy.otable.capacity == 1
        assert policy.otable.evictions > 0

    def test_extreme_oversubscription(self, config):
        config = config.replace(oversubscription=8.0)
        records = [(0, "o", p, True) for p in range(32)] * 2
        trace = make_trace({"o": 32}, [records])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.evictions > 0
        assert result.total_time_ns > 0

    def test_reset_threshold_one(self, config):
        # Threshold 1: every shared fault re-learns; must not crash or
        # loop, just behave like per-fault learning.
        config = config.replace(reset_threshold=1)
        records = [(g, "o", 0, g % 2 == 0) for g in range(4)] * 4
        trace = make_trace({"o": 1}, [records], burst=1)
        result = simulate(config, trace, make_policy("oasis"))
        assert result.total_time_ns > 0
