"""Public-API surface tests."""

import pytest

import repro


class TestPublicAPI:
    def test_version(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_policy_factory_names(self):
        assert set(repro.POLICY_FACTORIES) == {
            "on_touch", "access_counter", "duplication", "ideal", "grit",
            "static_advise", "oasis", "oasis_inmem",
        }

    def test_make_policy_instances(self):
        for name, factory in repro.POLICY_FACTORIES.items():
            policy = repro.make_policy(name)
            assert isinstance(policy, factory)
            assert policy.name == name

    def test_make_policy_unknown(self):
        with pytest.raises(ValueError, match="unknown policy"):
            repro.make_policy("nope")

    def test_make_policy_kwargs(self):
        policy = repro.make_policy("grit", neighbor_window=2)
        assert policy.neighbor_window == 2

    def test_quickstart_docstring_flow(self):
        config = repro.baseline_config()
        trace = repro.get_workload("mm", config, footprint_mb=4)
        result = repro.simulate(config, trace, repro.make_policy("oasis"))
        baseline = repro.simulate(
            config, trace, repro.make_policy("on_touch")
        )
        assert result.speedup_over(baseline) > 0

    def test_config_replace(self):
        config = repro.baseline_config()
        changed = config.replace(n_gpus=8)
        assert changed.n_gpus == 8
        assert config.n_gpus == 4

    def test_config_validation(self):
        with pytest.raises(ValueError):
            repro.SystemConfig(n_gpus=0)
        with pytest.raises(ValueError):
            repro.SystemConfig(page_size=3000)
        with pytest.raises(ValueError):
            repro.SystemConfig(initial_placement="moon")
        with pytest.raises(ValueError):
            repro.SystemConfig(oversubscription=-1.0)

    def test_counter_group_adjusts_to_large_pages(self):
        from repro.config import PAGE_SIZE_2M

        config = repro.SystemConfig(page_size=PAGE_SIZE_2M)
        assert config.pages_per_counter_group == 1

    def test_devices_tuple(self):
        config = repro.baseline_config()
        assert config.devices == (repro.HOST, 0, 1, 2, 3)
