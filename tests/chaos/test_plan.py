"""ChaosPlan construction, serialization and injector determinism."""

import pytest

from repro.chaos import (
    BlobCorrupt,
    ChaosInjector,
    ChaosPlan,
    ChaosWorkerKill,
    DispatchDelay,
    IOFault,
    TornWrite,
    WorkerKill,
)


class TestPlan:
    def test_spec_round_trip(self):
        plan = ChaosPlan(
            torn_writes=(TornWrite("result", 3, 0.25),),
            io_faults=(IOFault("journal", 0, "write"),
                       IOFault("blob", 2, "read")),
            blob_corruptions=(BlobCorrupt(1, offset=7),),
            worker_kills=(WorkerKill(4),),
            dispatch_delays=(DispatchDelay(0, 0.01),),
            seed=42,
        )
        again = ChaosPlan.from_spec(plan.to_spec())
        assert again == plan
        assert again.digest() == plan.digest()
        assert len(plan.events) == 6
        assert not plan.empty
        assert ChaosPlan().empty

    def test_from_spec_rejects_unknown_keys(self):
        with pytest.raises(ValueError, match="unknown chaos-plan keys"):
            ChaosPlan.from_spec({"torn_reads": []})

    def test_event_validation(self):
        with pytest.raises(ValueError, match="unknown category"):
            TornWrite("cache", 0)
        with pytest.raises(ValueError, match="fraction"):
            TornWrite("result", 0, fraction=1.0)
        with pytest.raises(ValueError, match="non-negative"):
            IOFault("result", -1)
        with pytest.raises(ValueError, match="read.*write"):
            IOFault("result", 0, where="append")
        with pytest.raises(ValueError, match="delay_s"):
            DispatchDelay(0, delay_s=-0.1)

    def test_random_is_deterministic(self):
        a = ChaosPlan.random(7, ops_horizon=8)
        b = ChaosPlan.random(7, ops_horizon=8)
        assert a == b
        assert a.digest() == b.digest()
        assert a != ChaosPlan.random(8, ops_horizon=8)
        # Every generated event stays inside the horizon.
        assert all(event.op < 8 for event in a.events)
        # The generator honors the requested intensity.
        assert len(a.worker_kills) == 2
        assert len(a.torn_writes) == 2


class TestInjector:
    def test_ops_are_counted_per_category(self):
        plan = ChaosPlan(io_faults=(IOFault("result", 1, "write"),))
        injector = ChaosInjector(plan)
        assert injector.write_fault("result", None) is None  # op 0
        fault = injector.write_fault("result", None)  # op 1: armed
        assert fault is not None and fault.mode == "oserror"
        # Other categories keep their own counters.
        assert injector.write_fault("journal", None) is None
        report = injector.report()
        assert report["ops"]["result_writes"] == 2
        assert report["ops"]["journal_writes"] == 1
        assert report["events_fired"]["io_faults"] == 1

    def test_read_fault_raises_only_at_target(self):
        plan = ChaosPlan(io_faults=(IOFault("blob", 1, "read"),))
        injector = ChaosInjector(plan)
        injector.read_fault("blob", None)  # op 0: clean
        with pytest.raises(OSError, match="chaos"):
            injector.read_fault("blob", None)  # op 1
        injector.read_fault("blob", None)  # op 2: clean again

    def test_worker_kill_is_an_oserror(self):
        plan = ChaosPlan(worker_kills=(WorkerKill(0),))
        injector = ChaosInjector(plan)
        with pytest.raises(ChaosWorkerKill) as err:
            injector.run_fault("mm", "oasis")
        assert isinstance(err.value, OSError)  # retryable by the pool
        injector.run_fault("mm", "oasis")  # op 1: clean

    def test_install_is_exclusive_and_restores(self):
        from repro.harness import diskcache, runner
        from repro.serve import journal

        plan = ChaosPlan()
        with ChaosInjector(plan) as injector:
            assert diskcache._CHAOS is injector
            assert journal._CHAOS is injector
            assert runner._CHAOS is injector
            with pytest.raises(RuntimeError, match="already installed"):
                ChaosInjector(plan).install()
        assert diskcache._CHAOS is None
        assert journal._CHAOS is None
        assert runner._CHAOS is None

    def test_report_shape(self):
        plan = ChaosPlan.random(3, ops_horizon=4)
        report = ChaosInjector(plan).report()
        assert report["plan"] == plan.digest()
        assert report["events_planned"] == len(plan.events)
        assert set(report["events_fired"]) == {
            "torn_writes", "io_faults", "blob_corruptions",
            "worker_kills", "dispatch_delays",
        }
        assert report["ops"]["runs"] == 0
        assert report["ops"]["dispatches"] == 0
