"""Bounded kill-restart-recover soak: the tentpole acceptance test.

Three cycles against one shared journal + disk cache, each cycle a
seeded chaos plan, a mid-queue crash and a chaos-free recovery.  The
assertions are the two soak invariants: no acked job is ever lost, and
every served result is bit-identical to the pinned golden entry.

``mm`` only (the cheapest workload) keeps the whole soak well inside
the CI budget; ``repro-oasis chaos`` runs the heavier default burst.
"""

import pytest

from repro.chaos import run_soak


@pytest.fixture(autouse=True)
def fast_io(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FSYNC", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")


def test_soak_three_cycles_no_loss_bit_identical(tmp_path):
    report = run_soak(
        tmp_path / "journal",
        tmp_path / "cache",
        cycles=3,
        seed=0,
        apps=("mm",),
        policies=("oasis", "on_touch"),
    )
    assert report["lost"] == []
    assert report["mismatched"] == []
    assert report["unrecovered_failures"] == []
    assert report["ok"] is True
    assert report["acked"] + report["refused"] == 6
    assert len(report["per_cycle"]) == 3
    # The soak is only meaningful if chaos actually happened: across the
    # three seeded plans at least one infrastructure fault must fire.
    fired = sum(
        sum(cycle["chaos"]["events_fired"].values())
        for cycle in report["per_cycle"]
    )
    assert fired > 0
    # Later cycles recover earlier cycles' results straight from the
    # disk cache — the journal + cache survive every crash.
    recoveries = [c["recovery"] for c in report["per_cycle"]]
    assert any(r.get("recovered_cached", 0) > 0 for r in recoveries)


def test_soak_rejects_bad_cycles(tmp_path):
    with pytest.raises(ValueError, match="cycles"):
        run_soak(tmp_path / "j", tmp_path / "c", cycles=0)
