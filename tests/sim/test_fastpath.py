"""Fast-path replay determinism: bulk replay must be bit-identical.

The vectorized replayer (:mod:`repro.sim.fastpath`) promises that every
observable of a run — stats, traffic, clocks, TLB counters, per-phase
timings — is byte-for-byte what the per-record path produces.  These
tests hold it to that across every application and the policies with
bulk fault lanes, plus the supporting bulk primitives (``translate_run``,
the page-table numpy mirrors, the lexsort interleaver).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import baseline_config, get_workload, make_policy, simulate
from repro.config import SystemConfig
from repro.sim.fastpath import force_slow_path
from repro.sim.machine import Machine
from repro.tlb import TLBHierarchy
from repro.workloads import APPLICATION_ORDER
from repro.workloads.base import TraceBuilder

ALL_APPS = list(APPLICATION_ORDER)
POLICIES = ["on_touch", "duplication", "access_counter", "oasis", "grit"]

#: Small but fault-rich footprint; keeps 55 paired runs affordable.
FOOTPRINT_MB = 3.0


def run_pair(app: str, policy: str, monkeypatch, config=None):
    """One run on each path; returns (fast, slow) result dicts."""
    config = config or baseline_config()
    trace = get_workload(app, config, footprint_mb=FOOTPRINT_MB)
    monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
    fast = simulate(config, trace, make_policy(policy))
    monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
    slow = simulate(config, trace, make_policy(policy))
    return fast, slow


class TestForceSlowPath:
    def test_env_toggle(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
        assert not force_slow_path()
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
        assert force_slow_path()
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "0")
        assert not force_slow_path()

    def test_slow_path_disables_replayer(self, config, monkeypatch):
        monkeypatch.setenv("REPRO_FORCE_SLOW_PATH", "1")
        trace = get_workload("mm", config, footprint_mb=FOOTPRINT_MB)
        machine = Machine(config, trace, make_policy("on_touch"))
        assert machine._fast is None

    def test_capacity_manager_disables_replayer(self, monkeypatch):
        monkeypatch.delenv("REPRO_FORCE_SLOW_PATH", raising=False)
        config = baseline_config(oversubscription=1.5)
        trace = get_workload("mm", config, footprint_mb=FOOTPRINT_MB)
        machine = Machine(config, trace, make_policy("on_touch"))
        assert machine._fast is None


class TestDeterminism:
    @pytest.mark.parametrize("app", ALL_APPS)
    @pytest.mark.parametrize("policy", POLICIES)
    def test_fast_path_is_bit_identical(self, app, policy, monkeypatch):
        fast, slow = run_pair(app, policy, monkeypatch)
        assert fast.total_time_ns == slow.total_time_ns
        assert fast.stats == slow.stats
        assert fast.traffic == slow.traffic
        assert fast.policy_histogram == slow.policy_histogram
        assert fast.l2_miss_policy_counts == slow.l2_miss_policy_counts
        assert fast.to_dict() == slow.to_dict()

    def test_distributed_placement_identical(self, monkeypatch):
        config = baseline_config(initial_placement="distributed")
        fast, slow = run_pair("mm", "on_touch", monkeypatch, config=config)
        assert fast.to_dict() == slow.to_dict()


class TestTranslateRun:
    def test_matches_translate_fast(self, config):
        rng = np.random.default_rng(11)
        pages = rng.integers(0, 4000, size=3000).tolist()
        a = TLBHierarchy(config.l1_tlb, config.l2_tlb, config.latency)
        b = TLBHierarchy(config.l1_tlb, config.l2_tlb, config.latency)
        costs_run, walk_positions = a.translate_run(pages)
        costs_ref = []
        walk_ref = []
        for pos, page in enumerate(pages):
            cost, l2_miss = b.translate_fast(page)
            costs_ref.append(cost)
            if l2_miss:
                walk_ref.append(pos)
        assert costs_run == costs_ref
        assert walk_positions == walk_ref
        for lvl_a, lvl_b in ((a.l1, b.l1), (a.l2, b.l2)):
            assert lvl_a.hits == lvl_b.hits
            assert lvl_a.misses == lvl_b.misses
            assert lvl_a._sets == lvl_b._sets


class TestPageTableMirrors:
    def test_bulk_views_track_mutations(self, config):
        trace = get_workload("mm", config, footprint_mb=FOOTPRINT_MB)
        machine = Machine(config, trace, make_policy("on_touch"))
        machine.run()
        pt = machine.page_tables
        views = pt.bulk_views()
        base = trace.first_page
        rng = np.random.default_rng(5)
        for page in rng.integers(base, base + trace.n_pages, size=200).tolist():
            idx = page - base
            owner = pt.location(page)
            assert views["owner"][idx] == owner
            for gpu in range(config.n_gpus):
                bit = 1 << gpu
                assert bool(views["copies"][idx] & bit) == pt.has_copy(gpu, page)
                assert bool(views["mapped"][idx] & bit) == pt.is_mapped(gpu, page)
                assert bool(views["writable"][idx] & bit) == pt.is_writable(
                    gpu, page
                )


class TestInterleaver:
    def test_burst_round_robin_order(self):
        b = TraceBuilder("t", n_gpus=2, page_size=4096, burst=2)
        obj = b.alloc("A", 16 * 4096)
        b.begin_phase("p")
        for offset in range(4):
            b.emit(0, obj, offset, write=False)
        for offset in range(4):
            b.emit(1, obj, offset + 4, write=True)
        phase = b.end_phase()
        assert phase.gpu.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]
        assert phase.page.tolist() == [
            obj.first_page + off for off in (0, 1, 4, 5, 2, 3, 6, 7)
        ]
        assert phase.write.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_uneven_streams_drain_in_rounds(self):
        b = TraceBuilder("t", n_gpus=3, page_size=4096, burst=2)
        obj = b.alloc("A", 32 * 4096)
        b.begin_phase("p")
        b.emit_block(0, obj, np.arange(5), write=False)
        b.emit(2, obj, 10, write=True)
        phase = b.end_phase()
        # Round 0: gpu0's first burst, gpu2's only record; round 1 and 2
        # drain gpu0's remainder.
        assert phase.gpu.tolist() == [0, 0, 2, 0, 0, 0]

    def test_mixed_emit_and_emit_block_keep_stream_order(self):
        b = TraceBuilder("t", n_gpus=1, page_size=4096, burst=8)
        obj = b.alloc("A", 16 * 4096)
        b.begin_phase("p")
        b.emit(0, obj, 0, write=False, weight=3)
        b.emit_block(0, obj, np.array([1, 2]), write=True, weight=2)
        b.emit(0, obj, 3, write=False)
        phase = b.end_phase()
        assert phase.page.tolist() == [
            obj.first_page + off for off in (0, 1, 2, 3)
        ]
        assert phase.write.tolist() == [0, 1, 1, 0]
        assert phase.weight.tolist() == [3, 2, 2, 1]
