"""Focused tests of the analytical timing model."""

import pytest

from repro import baseline_config, make_policy
from repro.config import LatencyModel
from repro.sim.machine import simulate
from tests.conftest import make_trace


class TestComputeFloor:
    def test_compute_cost_charged_per_access(self):
        lat = LatencyModel(compute_ns_per_access=1000.0)
        config = baseline_config().replace(latency=lat)
        trace = make_trace({"o": 1}, [[(0, "o", 0, False, 100)]])
        result = simulate(config, trace, make_policy("on_touch"))
        # 100 accesses x 1000 ns of compute must appear in the GPU time.
        assert result.phases[0].gpu_busy_ns >= 100 * 1000.0

    def test_zero_compute_still_positive_time(self):
        lat = LatencyModel(compute_ns_per_access=0.0)
        config = baseline_config().replace(latency=lat)
        trace = make_trace({"o": 1}, [[(0, "o", 0, False, 10)]])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.total_time_ns > 0


class TestDriverSerialization:
    def test_concurrent_faults_queue_behind_driver(self):
        # Four GPUs faulting on distinct pages at t=0 serialize through
        # the single-server driver: total driver busy = 4 x per-fault.
        trace = make_trace(
            {"o": 4},
            [[(g, "o", g, True, 1) for g in range(4)]],
            burst=1,
        )
        config = baseline_config()
        result = simulate(config, trace, make_policy("on_touch"))
        lat = config.latency
        expected_min = 4 * lat.fault_driver_occupancy_ns
        assert result.phases[0].driver_busy_ns >= expected_min

    def test_driver_can_be_the_phase_bottleneck(self):
        # Fault-storm: many pages, one access each, tiny compute.
        lat = LatencyModel(compute_ns_per_access=0.0,
                           fault_driver_occupancy_ns=100_000.0)
        config = baseline_config().replace(latency=lat)
        records = [(g, "o", g * 8 + p, True, 1)
                   for g in range(4) for p in range(8)]
        trace = make_trace({"o": 32}, [records])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.phases[0].bottleneck == "driver"


class TestLinkBound:
    def test_link_time_tracks_migration_bytes(self):
        config = baseline_config()
        records = [(0, "o", p, True, 1) for p in range(64)]
        trace = make_trace({"o": 64}, [records])
        result = simulate(config, trace, make_policy("on_touch"))
        # 64 pages moved from host over PCIe.
        expected = 64 * 4096
        assert result.traffic["pcie:host-gpu0"] == expected

    def test_remote_accesses_produce_link_traffic(self):
        config = baseline_config(access_counter_threshold=10**9)
        records = [(0, "o", 0, True, 4), (1, "o", 0, False, 100)]
        trace = make_trace({"o": 1}, [records], burst=1)
        result = simulate(config, trace, make_policy("access_counter"))
        # GPU1's reads of GPU0-resident... data stays on host under the
        # uniform counter policy, so the traffic crosses PCIe.
        assert result.stats["access.host"] > 0
        assert result.traffic["pcie:host-gpu1"] > 0


class TestFaultStallScaling:
    def test_fault_parallelism_reduces_stall(self):
        records = [(0, "o", p, True, 1) for p in range(32)]
        trace = make_trace({"o": 32}, [records])
        fast = baseline_config().replace(
            latency=LatencyModel(fault_parallelism=8.0)
        )
        slow = baseline_config().replace(
            latency=LatencyModel(fault_parallelism=1.0)
        )
        t_fast = simulate(fast, trace, make_policy("on_touch")).total_time_ns
        t_slow = simulate(slow, trace, make_policy("on_touch")).total_time_ns
        assert t_fast < t_slow


class TestPhaseBarrier:
    def test_clocks_synchronize_between_phases(self):
        # GPU 0 does lots of work in phase 0; GPU 1 works in phase 1.
        # Phase durations must be the max over GPUs, not overlapping.
        p0 = [(0, "o", 0, False, 10_000)]
        p1 = [(1, "o", 1, False, 10_000)]
        trace = make_trace({"o": 2}, [p0, p1])
        config = baseline_config()
        result = simulate(config, trace, make_policy("on_touch"))
        d0 = result.phases[0].duration_ns
        d1 = result.phases[1].duration_ns
        # Both phases carry their own work (no hiding behind the barrier).
        assert d0 > 0 and d1 > 0
        assert result.total_time_ns == pytest.approx(d0 + d1)
