"""SimulationResult tests."""

import pytest

from repro.sim.results import PhaseResult, SimulationResult


def make_result(time=100.0, stats=None, hist=None, l2=None):
    return SimulationResult(
        workload="w", policy="p", n_gpus=4, page_size=4096,
        total_time_ns=time,
        phases=[PhaseResult("k", True, time, time, time / 2, time / 4)],
        stats=stats or {},
        traffic={},
        policy_histogram=hist or {},
        l2_miss_policy_counts=l2 or {},
    )


class TestSimulationResult:
    def test_speedup_over(self):
        fast = make_result(time=50.0)
        slow = make_result(time=100.0)
        assert fast.speedup_over(slow) == 2.0
        assert slow.speedup_over(fast) == 0.5

    def test_speedup_degenerate_rejected(self):
        with pytest.raises(ValueError):
            make_result(time=0.0).speedup_over(make_result())

    def test_fault_accounting(self):
        r = make_result(stats={"fault.page": 10, "fault.protection": 3})
        assert r.page_faults == 10
        assert r.protection_faults == 3
        assert r.total_faults == 13

    def test_event_properties_default_zero(self):
        r = make_result()
        assert r.migrations == 0
        assert r.duplications == 0
        assert r.collapses == 0
        assert r.evictions == 0

    def test_policy_mix(self):
        r = make_result(hist={0b00: 3, 0b11: 1})
        mix = r.policy_mix()
        assert mix["on_touch"] == 0.75
        assert mix["duplication"] == 0.25

    def test_policy_mix_empty(self):
        assert make_result().policy_mix() == {}

    def test_l2_miss_policy_mix(self):
        r = make_result(l2={"on_touch": 1, "duplication": 3})
        assert r.l2_miss_policy_mix() == {
            "on_touch": 0.25, "duplication": 0.75
        }

    def test_phase_bottleneck(self):
        phase = PhaseResult("k", True, 10.0, 10.0, 2.0, 1.0)
        assert phase.bottleneck == "gpu"
        phase = PhaseResult("k", True, 10.0, 1.0, 10.0, 2.0)
        assert phase.bottleneck == "driver"

    def test_phase_bottleneck_tie_break(self):
        # Ties resolve gpu > driver > link so the label is deterministic.
        phase = PhaseResult("k", True, 10.0, 5.0, 5.0, 5.0)
        assert phase.bottleneck == "gpu"
        phase = PhaseResult("k", True, 10.0, 1.0, 5.0, 5.0)
        assert phase.bottleneck == "driver"
        phase = PhaseResult("k", True, 10.0, 1.0, 2.0, 5.0)
        assert phase.bottleneck == "link"

    def test_summary_mentions_workload_and_policy(self):
        line = make_result().summary()
        assert "w" in line and "p" in line


class TestSerializationToDict:
    def test_result_to_dict_json_safe(self):
        import json

        r = make_result(stats={"fault.page": 1}, hist={0: 2},
                        l2={"on_touch": 3})
        blob = json.loads(json.dumps(r.to_dict()))
        assert blob["workload"] == "w"
        assert blob["stats"]["fault.page"] == 1
        assert blob["policy_histogram"]["0"] == 2
        assert len(blob["phases"]) == 1
