"""Machine access-path and timing tests."""

import pytest

from repro import make_policy
from repro.sim.machine import Machine, simulate
from tests.conftest import make_trace, sweep_records


class TestConstruction:
    def test_gpu_count_mismatch_rejected(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]], n_gpus=2)
        with pytest.raises(ValueError):
            Machine(config, trace, make_policy("on_touch"))

    def test_page_size_mismatch_rejected(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]],
                           page_size=8192)
        with pytest.raises(ValueError):
            Machine(config, trace, make_policy("on_touch"))

    def test_object_map(self, config):
        trace = make_trace({"a": 2, "b": 3}, [[(0, "a", 0, False)]])
        machine = Machine(config, trace, make_policy("on_touch"))
        first = trace.first_page
        assert machine.object_id_of(first) == 0
        assert machine.object_id_of(first + 1) == 0
        assert machine.object_id_of(first + 2) == 1
        assert machine.tracks_page(first + 4)
        assert not machine.tracks_page(first + 5)
        assert not machine.tracks_page(first - 1)

    def test_incoherent_tables_for_ideal(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False)]])
        machine = Machine(config, trace, make_policy("ideal"))
        assert machine.page_tables._coherent is False


class TestTiming:
    def test_time_is_positive_and_finite(self, config):
        trace = make_trace({"obj": 4},
                           [sweep_records(range(4), "obj", 4, False, 4)])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.total_time_ns > 0

    def test_total_is_sum_of_phases(self, config):
        records = sweep_records(range(2), "obj", 2, False, 2)
        trace = make_trace({"obj": 2}, [records, records])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.total_time_ns == pytest.approx(
            sum(p.duration_ns for p in result.phases)
        )

    def test_phase_duration_covers_every_resource(self, config):
        records = sweep_records(range(4), "obj", 4, False, 8)
        trace = make_trace({"obj": 4}, [records])
        result = simulate(config, trace, make_policy("on_touch"))
        phase = result.phases[0]
        assert phase.duration_ns == pytest.approx(max(
            phase.gpu_busy_ns, phase.driver_busy_ns, phase.link_busy_ns
        ))

    def test_more_weight_takes_longer(self, config):
        light = make_trace({"obj": 2}, [[(0, "obj", 0, False, 1)]])
        heavy = make_trace({"obj": 2}, [[(0, "obj", 0, False, 1000)]])
        t_light = simulate(config, light, make_policy("on_touch")).total_time_ns
        t_heavy = simulate(config, heavy, make_policy("on_touch")).total_time_ns
        assert t_heavy > t_light

    def test_remote_accesses_slower_than_local(self, config):
        config = config.replace(access_counter_threshold=10**9)
        records = [(0, "obj", 0, False, 500)] * 4
        local = make_trace({"obj": 1}, [records])
        t_local = simulate(config, local, make_policy("on_touch")).total_time_ns
        t_remote = simulate(config, local, make_policy("access_counter")).total_time_ns
        assert t_remote > t_local


class TestAccessSemantics:
    def test_faulting_record_charges_remaining_weight(self, config):
        trace = make_trace({"obj": 1}, [[(0, "obj", 0, False, 10)]])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.stats["access.local"] == 9  # 1 fault + 9 local

    def test_l2_miss_policy_attribution(self, config):
        records = sweep_records(range(2), "obj", 2, False, 2)
        trace = make_trace({"obj": 2}, [records])
        result = simulate(config, trace, make_policy("duplication"))
        mix = result.l2_miss_policy_mix()
        assert mix.get("duplication", 0) == 1.0

    def test_alloc_callbacks_fire_once(self, config):
        calls = []

        from repro.policies import OnTouchPolicy

        class Spy(OnTouchPolicy):
            def on_alloc(self, obj):
                calls.append(obj.name)

        trace = make_trace({"a": 1, "b": 1}, [[(0, "a", 0, False)]])
        Machine(config, trace, Spy()).run()
        assert calls == ["a", "b"]

    def test_phase_callbacks(self, config):
        phases_seen = []

        from repro.policies import OnTouchPolicy

        class Spy(OnTouchPolicy):
            def on_phase_start(self, index, phase):
                phases_seen.append((index, phase.explicit))

        records = [(0, "obj", 0, False)]
        trace = make_trace({"obj": 1}, [records, records, records],
                           explicit=[True, False, True])
        Machine(config, trace, Spy()).run()
        assert phases_seen == [(0, True), (1, False), (2, True)]


class TestOversubscription:
    def test_capacity_derived_from_factor(self, config):
        config = config.replace(oversubscription=2.0)
        trace = make_trace({"obj": 16}, [[(0, "obj", 0, False)]])
        machine = Machine(config, trace, make_policy("on_touch"))
        # 16 pages / (4 GPUs * 2.0) = 2 pages per GPU.
        assert machine.capacity.capacity_pages == 2

    def test_oversubscription_causes_evictions(self, config):
        config = config.replace(oversubscription=2.0)
        records = [(0, "obj", p, True, 2) for p in range(16)]
        trace = make_trace({"obj": 16}, [records])
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.evictions > 0

    def test_no_capacity_modelling_by_default(self, config):
        trace = make_trace({"obj": 16}, [[(0, "obj", 0, False)]])
        machine = Machine(config, trace, make_policy("on_touch"))
        assert not machine.capacity.enabled


class TestDistributedPlacement:
    def test_pages_start_on_gpus(self, config):
        config = config.replace(initial_placement="distributed")
        trace = make_trace({"obj": 8}, [[(0, "obj", 0, False)]])
        machine = Machine(config, trace, make_policy("on_touch"))
        locations = {
            machine.page_tables.location(trace.first_page + p)
            for p in range(8)
        }
        assert locations == {0, 1, 2, 3}


class TestPerGpuFaultAccounting:
    def test_faults_attributed_to_the_faulting_gpu(self, config):
        records = [(0, "obj", 0, True), (2, "obj", 1, True),
                   (2, "obj", 2, True)]
        trace = make_trace({"obj": 3}, [records], burst=1)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.stats["fault.by_gpu.0"] == 1
        assert result.stats["fault.by_gpu.2"] == 2
        assert result.stats.get("fault.by_gpu.1", 0) == 0

    def test_per_gpu_counts_sum_to_total(self, config):
        records = sweep_records(range(4), "obj", 4, write=True, weight=2)
        trace = make_trace({"obj": 4}, [records])
        result = simulate(config, trace, make_policy("duplication"))
        per_gpu = sum(
            result.stats.get(f"fault.by_gpu.{g}", 0) for g in range(4)
        )
        assert per_gpu == result.total_faults


class TestPerObjectFaultAccounting:
    def test_faults_attributed_to_objects(self, config):
        records = [(0, "hot", 0, True), (1, "hot", 0, True),
                   (0, "cold", 0, False)]
        trace = make_trace({"hot": 1, "cold": 1}, [records], burst=1)
        result = simulate(config, trace, make_policy("on_touch"))
        assert result.stats["fault.by_object.hot"] == 2
        assert result.stats["fault.by_object.cold"] == 1

    def test_object_fault_totals_match(self, config):
        records = sweep_records(range(2), "a", 2, write=True)
        records += sweep_records(range(2), "b", 2, write=False)
        trace = make_trace({"a": 2, "b": 2}, [records])
        result = simulate(config, trace, make_policy("oasis"))
        by_object = sum(
            v for k, v in result.stats.items()
            if k.startswith("fault.by_object.")
        )
        assert by_object == result.total_faults
