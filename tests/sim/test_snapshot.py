"""Snapshot round-trip determinism and corruption handling.

The sweep fast path (``repro.sim.snapshot`` + ``repro.sim.sweep``)
promises that a run resumed from a phase-boundary snapshot is
byte-identical to a cold replay.  These tests hold it to that across
the full workload registry against the pinned golden digests, and prove
that a corrupted snapshot is quarantined and silently degrades to cold
replay instead of crashing or corrupting the result.
"""

from __future__ import annotations

import json

import pytest

from repro import make_policy
from repro.config import baseline_config
from repro.harness.diskcache import DiskCache
from repro.sim.machine import simulate
from repro.sim.snapshot import (
    MAX_SNAPSHOTS,
    phase_digest,
    snapshot_boundaries,
    trace_prefix_chain,
)
from repro.sim.sweep import PhaseMemo
from repro.verify.golden import GOLDEN_PATH, entry_for, golden_key
from repro.workloads import APPLICATION_ORDER, get_workload

POLICIES = ("oasis", "on_touch")


@pytest.fixture(scope="module")
def golden_entries():
    with open(GOLDEN_PATH) as fh:
        return json.load(fh)["entries"]


@pytest.fixture(scope="module")
def config():
    return baseline_config()


def _run(config, trace, app, policy, memo):
    session = memo.session(config, app, policy, seed=0)
    return simulate(config, trace, make_policy(policy), memo=session)


@pytest.mark.parametrize("app", APPLICATION_ORDER)
@pytest.mark.parametrize("policy", POLICIES)
def test_snapshot_round_trip_matches_golden(
    app, policy, config, golden_entries
):
    """Populate-then-warm must reproduce the pinned digests exactly.

    The warm run resumes from a restored snapshot (on multi-phase
    apps), so agreement with the golden entry proves the full
    serialize → restore → resume loop is byte-identical: same core
    digest, same per-phase digests, same counters.
    """
    pinned = golden_entries[golden_key(app, policy)]
    trace = get_workload(app, config, seed=0)
    memo = PhaseMemo()
    populate = _run(config, trace, app, policy, memo)
    warm = _run(config, trace, app, policy, memo)
    multi_phase = len(trace.phases) >= 2
    if multi_phase:
        assert memo.hits == 1, "warm run never resumed from a snapshot"
        assert memo.stores > 0
    for label, result in (("populate", populate), ("warm", warm)):
        entry = entry_for(result)
        assert entry["core"] == pinned["core"], f"{label} core drifted"
        assert entry["phases"] == pinned["phases"], (
            f"{label} per-phase digests drifted"
        )


def test_corrupt_snapshot_quarantined_and_cold_fallback(config, tmp_path):
    """Damaged snapshots degrade to re-simulation, never to bad data."""
    app, policy = "c2d", "oasis"
    trace = get_workload(app, config, seed=0)
    cold = entry_for(
        simulate(config, trace, make_policy(policy))
    )

    disk = DiskCache(tmp_path / "memo")
    memo = PhaseMemo(disk=disk)
    _run(config, trace, app, policy, memo)
    assert memo.stores > 0
    blobs = sorted((tmp_path / "memo" / "snap").rglob("*.json"))
    assert len(blobs) == memo.stores

    # Corrupt every stored snapshot two ways: garbage bytes (fails the
    # disk layer's checksum) and a checksum-valid record whose blob is
    # not a valid snapshot (fails the snapshot layer's validation).
    import base64
    import hashlib

    for i, path in enumerate(blobs):
        if i % 2 == 0:
            path.write_text("{ not json")
        else:
            bogus = b"\x80\x05not-a-snapshot"
            path.write_text(json.dumps({
                "key": path.stem,
                "simulator_version": 1,
                "checksum": hashlib.sha256(bogus).hexdigest(),
                "blob": base64.b64encode(bogus).decode("ascii"),
            }))
    memo.clear()  # drop the in-memory tier so the disk copies are probed

    warm = _run(config, trace, app, policy, memo)
    assert entry_for(warm) == cold, "fallback replay diverged from cold"
    assert memo.hits == 0 and memo.corrupt > 0
    quarantined = list((tmp_path / "memo" / "quarantine").glob("*.json"))
    assert quarantined, "corrupt snapshots were not quarantined"
    # The fallback run re-stored good snapshots under the same keys, so
    # a third run resumes again and still agrees.
    third = _run(config, trace, app, policy, memo)
    assert memo.hits == 1
    assert entry_for(third) == cold


def test_blob_write_errors_degrade_to_memory_tier(config, tmp_path):
    """OSError mid-write in the blob tier never kills a simulation.

    The snapshot stays in the memory tier (counted in ``io_errors``),
    the run completes bit-identically, and a warm run still resumes.
    """
    app, policy = "c2d", "oasis"
    trace = get_workload(app, config, seed=0)
    cold = entry_for(simulate(config, trace, make_policy(policy)))

    class FullDisk(DiskCache):
        def store_blob(self, key, blob):
            raise OSError("no space left on device")

    memo = PhaseMemo(disk=FullDisk(tmp_path / "memo"))
    first = _run(config, trace, app, policy, memo)
    assert entry_for(first) == cold
    assert memo.stores > 0
    assert memo.io_errors == memo.stores  # every disk write failed
    assert memo.stats()["io_errors"] == memo.io_errors
    assert not list((tmp_path / "memo").rglob("*.json"))
    # The snapshots survived in the memory tier: still a warm resume.
    warm = _run(config, trace, app, policy, memo)
    assert memo.hits == 1
    assert entry_for(warm) == cold
    memo.clear()
    assert memo.io_errors == 0


def test_snapshot_boundaries_striding():
    assert snapshot_boundaries(0) == ()
    assert snapshot_boundaries(1) == ()
    assert snapshot_boundaries(2) == (0,)
    # All interior boundaries when they fit the cap.
    assert snapshot_boundaries(9) == tuple(range(8))
    # Long traces stride, keep the deepest, and respect the cap.
    for n in (129, 128, 158, 500):
        bounds = snapshot_boundaries(n)
        assert len(bounds) <= MAX_SNAPSHOTS
        assert bounds[-1] == n - 2, "deepest interior boundary not kept"
        assert all(0 <= b < n - 1 for b in bounds)


def test_trace_prefix_chain_is_cached_and_positional(config):
    trace = get_workload("c2d", config, seed=0)
    chain = trace_prefix_chain(trace)
    assert len(chain) == len(trace.phases) + 1
    assert chain is trace_prefix_chain(trace)  # cached on the trace
    # Same phase content at a different position yields a different
    # prefix digest (the chain is rolling, not positional-blind).
    assert len(set(chain)) == len(chain)
    # Per-phase digests are cached too.
    assert phase_digest(trace.phases[0]) == trace.phases[0]._memo_digest


def test_lane_fork_accounting(config):
    """Policy variants share the cohort lane until their decisions split."""
    app = "c2d"
    trace = get_workload(app, config, seed=0)
    memo = PhaseMemo()
    for policy in ("oasis", "on_touch", "grit"):
        _run(config, trace, app, policy, memo)
    report = memo.lanes.report()
    assert report["cohorts"] == 1
    assert report["runs"] == 3
    # Two non-reference policies diverged from the oasis reference lane.
    assert report["prefix_forks"] == 2
    (cohort,) = report["by_cohort"].values()
    assert cohort["reference"] == "oasis"
    for label, run in cohort["runs"].items():
        assert run["phases"] == len(trace.phases)
        if label != "oasis":
            assert run["forked"]
            assert run["shared_prefix"] < len(trace.phases)
