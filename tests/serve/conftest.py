"""Fixtures for the simulation-service suite.

The HTTP tests drive a real :class:`ServeHttpServer` on an ephemeral
port, hosted by a background event-loop thread; the pure-service tests
use :func:`asyncio.run` directly inside each test.  Every test runs
with the disk cache off and a cold in-process cache so "number of cache
misses" equals "number of simulations actually performed".
"""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.harness import clear_cache, configure
from repro.serve import SimulationService
from repro.serve.http import ServeHttpServer


@pytest.fixture(autouse=True)
def isolated_runner(monkeypatch):
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
    configure(jobs=1, disk_cache=False)
    clear_cache()
    yield
    configure(jobs=1, disk_cache=False)
    clear_cache()


class ServerThread:
    """A live service + HTTP server on a background event loop."""

    def __init__(self, **service_kwargs) -> None:
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="serve-test-loop", daemon=True
        )
        self.thread.start()
        self.service = SimulationService(**service_kwargs)
        self.server = ServeHttpServer(self.service, port=0)
        self.run(self.server.start())
        self.port = self.server.port

    def run(self, coro, timeout: float = 120.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def close(self) -> None:
        self.run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


@pytest.fixture
def server():
    sut = ServerThread(jobs=1)
    yield sut
    sut.close()


@pytest.fixture
def full_server():
    """A server whose admission control rejects everything."""
    sut = ServerThread(jobs=1, max_pending=0)
    yield sut
    sut.close()
