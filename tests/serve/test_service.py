"""SimulationService core: single-flight, lanes, deadlines, backpressure."""

import asyncio

import pytest

from repro import baseline_config, get_workload
from repro.harness import cache_stats, run_sim
from repro.obs import chrome_trace, validate_chrome_trace
from repro.serve import AdmissionError, JobFailed, SimulationService
from repro.sim import SimulationResult

SMALL = {"app": "mm", "policy": "on_touch", "footprint_mb": 4.0}


def run(coro):
    return asyncio.run(coro)


class TestSingleFlight:
    def test_identical_burst_is_one_simulation(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            jobs = [await service.submit(dict(SMALL)) for _ in range(64)]
            results = await asyncio.gather(*(job.wait() for job in jobs))
            await service.stop()
            return service, jobs, results

        service, jobs, results = run(main())
        assert len({job.id for job in jobs}) == 1  # all attached to one job
        assert cache_stats()["misses"] == 1  # exactly one simulation
        assert all(r is results[0] for r in results)  # one shared result
        stats = service.stats()
        assert stats["submitted"] == 64
        assert stats["deduped"] == 63
        assert stats["completed"] == 1

    def test_distinct_specs_do_not_coalesce(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            a = await service.submit(dict(SMALL))
            b = await service.submit(dict(SMALL, seed=1))
            await asyncio.gather(a.wait(), b.wait())
            await service.stop()
            return a, b

        a, b = run(main())
        assert a.id != b.id
        assert a.key != b.key
        assert cache_stats()["misses"] == 2

    def test_after_completion_new_submissions_hit_cache(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            first = await service.submit(dict(SMALL))
            await first.wait()
            second = await service.submit(dict(SMALL))
            await second.wait()
            await service.stop()
            return first, second

        first, second = run(main())
        # The key left the single-flight table, so a later identical
        # request is a new job — served from the warm cache, not re-run.
        assert first.id != second.id
        assert cache_stats()["misses"] == 1
        assert cache_stats()["hits"] >= 1


class TestAdmissionControl:
    def test_full_queue_rejects_with_retry_hint(self):
        async def main():
            service = SimulationService(jobs=1, max_pending=2)
            await service.start(dispatch=False)
            await service.submit(dict(SMALL))
            await service.submit(dict(SMALL, seed=1))
            with pytest.raises(AdmissionError) as err:
                await service.submit(dict(SMALL, seed=2))
            rejected = err.value
            # Identical requests still coalesce while the queue is full.
            attached = await service.submit(dict(SMALL))
            await service.stop()
            return service, rejected, attached

        service, rejected, attached = run(main())
        assert rejected.retry_after_s > 0
        assert attached.waiters == 2
        stats = service.stats()
        assert stats["rejected"] == 1
        assert stats["deduped"] == 1

    def test_bad_specs_rejected_before_queueing(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            with pytest.raises(ValueError, match="unknown app"):
                await service.submit({"app": "nope", "policy": "oasis"})
            with pytest.raises(ValueError, match="unknown policy"):
                await service.submit({"app": "mm", "policy": "nope"})
            with pytest.raises(ValueError, match="unknown lane"):
                await service.submit(dict(SMALL), lane="warp")
            with pytest.raises(ValueError, match="unknown spec field"):
                await service.submit(dict(SMALL, bogus=1))
            await service.stop()
            return service.stats()

        stats = run(main())
        assert stats["submitted"] == 0


class TestPriorityAndDeadlines:
    def test_lanes_dispatch_in_priority_order(self):
        async def main():
            service = SimulationService(jobs=1, batch_max=1)
            await service.start(dispatch=False)
            bulk = await service.submit(dict(SMALL, seed=3), lane="bulk")
            batch = await service.submit(dict(SMALL, seed=2), lane="batch")
            inter = await service.submit(
                dict(SMALL, seed=1), lane="interactive"
            )
            service.resume()
            await asyncio.gather(bulk.wait(), batch.wait(), inter.wait())
            await service.stop()
            order = [
                dict(e.args)["job"]
                for e in service.tracer.instants
                if e.kind == "serve_dispatch"
            ]
            return order, inter.id, batch.id, bulk.id

        order, inter_id, batch_id, bulk_id = run(main())
        assert order == [inter_id, batch_id, bulk_id]

    def test_expired_deadline_fails_instead_of_running(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start(dispatch=False)
            job = await service.submit(dict(SMALL), deadline_s=0.01)
            await asyncio.sleep(0.05)
            service.resume()
            with pytest.raises(JobFailed) as err:
                await job.wait()
            await service.stop()
            return service, job, err.value

        service, job, failed = run(main())
        assert failed.failure["error_type"] == "DeadlineExceeded"
        assert job.status == "failed"
        assert service.stats()["failed"] == 1
        assert cache_stats()["misses"] == 0  # never simulated

    def test_stop_fails_queued_jobs(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start(dispatch=False)
            job = await service.submit(dict(SMALL))
            await service.stop()
            with pytest.raises(JobFailed) as err:
                await job.wait()
            return err.value

        failed = run(main())
        assert failed.failure["error_type"] == "ServiceStopped"


class TestFailurePaths:
    def test_run_failure_maps_to_job_failure(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            job = await service.submit(
                dict(SMALL, policy_kwargs={"bogus_kwarg": 1})
            )
            with pytest.raises(JobFailed) as err:
                await job.wait()
            ok = await service.submit(dict(SMALL))
            result = await ok.wait()
            await service.stop()
            return service, job, err.value, result

        service, job, failed, result = run(main())
        assert failed.failure["error_type"] == "TypeError"
        assert job.describe()["failure"]["error_type"] == "TypeError"
        # The failure poisons only its own job; the service keeps serving.
        assert isinstance(result, SimulationResult)
        assert service.stats()["failed"] == 1
        assert service.stats()["completed"] == 1


class TestVerifiedAndBitIdentical:
    def test_served_result_matches_direct_and_verified_run(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            job = await service.submit(dict(SMALL))
            result = await job.wait()
            await service.stop()
            return result

        served = run(main())
        config = baseline_config()
        direct = run_sim(config, "mm", "on_touch", footprint_mb=4.0)
        assert served.to_dict() == direct.to_dict()

        from repro.verify import verified_simulate

        trace = get_workload("mm", config, footprint_mb=4.0)
        verified, verifier = verified_simulate(config, trace, "on_touch")
        assert not verifier.violations
        assert served.to_dict() == verified.to_dict()


class TestObservability:
    def test_lifecycle_events_stream_and_trace(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            queue = service.subscribe()
            job = await service.submit(dict(SMALL))
            await service.submit(dict(SMALL))  # dedup event
            await job.wait()
            events = []
            while not queue.empty():
                events.append(queue.get_nowait())
            service.unsubscribe(queue)
            await service.stop()
            return service, job, events

        service, job, events = run(main())
        kinds = [e["kind"] for e in events]
        assert kinds == [
            "serve_submit", "serve_dedup", "serve_dispatch", "serve_done"
        ]
        assert all(e["ts_ns"] >= 0 for e in events)
        done = events[-1]
        assert done["job"] == job.id
        assert done["waiters"] == 2
        # The tracer is the event source: the same lifecycle is on the
        # "serve" track and exports as a valid Chrome trace.
        assert [e.kind for e in service.tracer.instants] == kinds
        assert validate_chrome_trace(chrome_trace(service.tracer)) == []

    def test_prometheus_exposes_service_and_sim_metrics(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start()
            job = await service.submit(dict(SMALL))
            await job.wait()
            await service.stop()
            return service

        service = run(main())
        text = service.prometheus()
        assert "repro_serve_submitted_total 1" in text
        assert "repro_serve_completed_total 1" in text
        assert "repro_serve_queue_depth 0" in text
        assert 'repro_serve_latency_ms_bucket{le="+Inf"} 1' in text
        # Simulation counters accumulated from the dispatched batch.
        assert "repro_sim_fault_page_total" in text
        snap = service.sim_snapshot()
        assert snap.counter("fault.page") > 0

    def test_healthz_stats_shape(self):
        async def main():
            service = SimulationService(jobs=2, max_pending=7)
            await service.start()
            stats = service.stats()
            await service.stop()
            return stats

        stats = run(main())
        assert stats["status"] == "ok"
        assert stats["max_pending"] == 7
        assert stats["jobs"] == 2
        assert stats["uptime_s"] >= 0.0


class TestWedgeHealthFields:
    """The /healthz fields the cluster heartbeat's wedge detection
    reads: journal segment count and oldest-unresolved-job age."""

    def test_stats_without_journal(self):
        async def main():
            service = SimulationService(jobs=1, name="solo")
            await service.start()
            stats = service.stats()
            await service.stop()
            return stats

        stats = run(main())
        assert stats["worker"] == "solo"
        assert stats["journal_segments"] == 0
        assert stats["oldest_unresolved_age_s"] is None

    def test_journal_segments_counted(self, tmp_path):
        async def main():
            service = SimulationService(
                jobs=1, journal_dir=str(tmp_path / "journal")
            )
            await service.start()
            job = await service.submit(dict(SMALL))
            await job.wait()
            stats = service.stats()
            await service.stop()
            return stats

        stats = run(main())
        assert stats["journal_segments"] >= 1

    def test_oldest_unresolved_age_tracks_queued_jobs(self):
        async def main():
            service = SimulationService(jobs=1)
            await service.start(dispatch=False)
            assert service.oldest_unresolved_age_s() is None
            await service.submit(dict(SMALL))
            await asyncio.sleep(0.05)
            await service.submit(dict(SMALL, seed=1))
            age = service.oldest_unresolved_age_s()
            stats = service.stats()
            await service.stop()
            return age, stats

        age, stats = run(main())
        # The *oldest* job's age, not the newest's.
        assert age is not None and age >= 0.05
        assert stats["oldest_unresolved_age_s"] is not None
