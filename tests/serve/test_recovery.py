"""Crash recovery, graceful drain and the worker-pool circuit breaker."""

import asyncio

import pytest

from repro.chaos import ChaosInjector, ChaosPlan, IOFault
from repro.harness import cache_stats, configure
from repro.serve import AdmissionError, JobFailed, SimulationService
from repro.sim import SimulationResult

SMALL = {"app": "mm", "policy": "on_touch", "footprint_mb": 4.0}


def run(coro):
    return asyncio.run(coro)


@pytest.fixture(autouse=True)
def fast_fsync(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FSYNC", "1")


class TestRecovery:
    def test_crash_requeues_acked_unfinished_jobs(self, tmp_path):
        journal_dir = str(tmp_path / "journal")

        async def crash():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start(dispatch=False)  # accepted, never run
            a = await service.submit(dict(SMALL))
            b = await service.submit(dict(SMALL, seed=1))
            await service.abandon()
            return a.id, b.id

        async def recover():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            jobs = {
                job_id: service.job(job_id) for job_id in (a_id, b_id)
            }
            results = {
                job_id: await job.wait() for job_id, job in jobs.items()
            }
            recovery = dict(service._recovery)
            fresh = await service.submit(dict(SMALL, seed=2))
            await fresh.wait()
            await service.stop()
            return service, recovery, results, fresh

        a_id, b_id = run(crash())
        service, recovery, results, fresh = run(recover())
        assert recovery["recovered_requeued"] == 2
        assert recovery["recovered_cached"] == 0
        assert all(
            isinstance(r, SimulationResult) for r in results.values()
        )
        # Job-id allocation continues past everything the journal named.
        assert fresh.id not in (a_id, b_id)
        assert service.stats()["recovery"]["recovered_requeued"] == 2

    def test_completed_jobs_recover_from_cache_without_resimulation(
        self, tmp_path
    ):
        journal_dir = str(tmp_path / "journal")
        configure(jobs=1, cache_dir=str(tmp_path / "cache"))

        async def serve_and_crash():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            job = await service.submit(dict(SMALL))
            await job.wait()
            await service.abandon()
            return job.id

        async def recover():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            job = service.job(job_id)
            result = await job.wait()
            recovery = dict(service._recovery)
            await service.stop()
            return recovery, result

        job_id = run(serve_and_crash())
        from repro.harness import clear_cache
        clear_cache()  # new-process simulation: memory gone, disk stays
        recovery, result = run(recover())
        assert recovery["recovered_cached"] == 1
        assert recovery["recovered_requeued"] == 0
        assert isinstance(result, SimulationResult)
        # Zero re-simulation: the recovered result came from the disk
        # cache, not a fresh run.
        assert cache_stats()["misses"] == 0

    def test_served_failure_is_rematerialized_not_retried(self, tmp_path):
        journal_dir = str(tmp_path / "journal")

        async def serve_and_crash():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            job = await service.submit(
                dict(SMALL, policy_kwargs={"bogus_kwarg": 1})
            )
            with pytest.raises(JobFailed):
                await job.wait()
            await service.abandon()
            return job.id

        async def recover():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            job = service.job(job_id)
            with pytest.raises(JobFailed) as err:
                await job.wait()
            recovery = dict(service._recovery)
            await service.stop()
            return recovery, err.value

        job_id = run(serve_and_crash())
        from repro.harness import clear_cache
        clear_cache()
        recovery, failure = run(recover())
        assert recovery["recovered_failed"] == 1
        assert failure.failure["error_type"] == "TypeError"
        # The failure was *served* before the crash; recovery must not
        # burn simulations re-deriving it.
        assert cache_stats()["misses"] == 0

    def test_clean_stop_keeps_queued_jobs_live(self, tmp_path):
        journal_dir = str(tmp_path / "journal")

        async def stop_with_queue():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start(dispatch=False)
            job = await service.submit(dict(SMALL))
            await service.stop()
            return job

        async def recover():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            recovered = service.job(job.id)
            result = await recovered.wait()
            await service.stop()
            return result

        job = run(stop_with_queue())
        # The stopping incarnation failed the job for its waiters...
        with pytest.raises(JobFailed):
            job.future.result()
        # ...but the acked work itself survives the restart.
        assert isinstance(run(recover()), SimulationResult)

    def test_journal_append_failure_refuses_the_job(self, tmp_path):
        plan = ChaosPlan(io_faults=(IOFault("journal", 0, "write"),))

        async def main():
            service = SimulationService(
                jobs=1, journal_dir=str(tmp_path / "journal")
            )
            await service.start(dispatch=False)
            with ChaosInjector(plan):
                with pytest.raises(AdmissionError, match="journal"):
                    await service.submit(dict(SMALL))
                ok = await service.submit(dict(SMALL, seed=1))
            stats = service.stats()
            await service.stop()
            return stats, ok

        stats, ok = run(main())
        assert stats["journal"]["errors"] == 1
        assert stats["rejected"] == 1
        assert stats["submitted"] == 2
        assert ok.status == "queued" or ok.status == "failed"


class TestDrain:
    def test_drain_finishes_queued_work_and_refuses_new(self, tmp_path):
        async def main():
            service = SimulationService(
                jobs=1, journal_dir=str(tmp_path / "journal")
            )
            await service.start()
            job = await service.submit(dict(SMALL))
            drain_task = asyncio.create_task(service.drain())
            await asyncio.sleep(0)  # let the drain flag land
            with pytest.raises(AdmissionError, match="draining"):
                await service.submit(dict(SMALL, seed=1))
            drained = await drain_task
            return service, job, drained

        service, job, drained = run(main())
        assert drained is True
        assert job.status == "done"
        assert service.stats()["status"] == "stopped"

    def test_drain_timeout_leaves_jobs_journaled(self, tmp_path):
        journal_dir = str(tmp_path / "journal")

        async def main():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start(dispatch=False)  # nothing will run
            job = await service.submit(dict(SMALL))
            drained = await service.drain(timeout_s=0.05)
            return job, drained

        async def recover():
            service = SimulationService(jobs=1, journal_dir=journal_dir)
            await service.start()
            recovered = service.job(job.id)
            result = await recovered.wait()
            await service.stop()
            return result

        job, drained = run(main())
        assert drained is False
        assert isinstance(run(recover()), SimulationResult)


class TestCircuitBreaker:
    def test_consecutive_failures_open_then_probe_closes(self):
        async def main():
            service = SimulationService(
                jobs=1, batch_max=1,
                breaker_threshold=2, breaker_cooldown_s=0.05,
            )
            await service.start()
            bad = [
                await service.submit(
                    dict(SMALL, seed=i, policy_kwargs={"bogus_kwarg": 1})
                )
                for i in range(2)
            ]
            for job in bad:
                with pytest.raises(JobFailed):
                    await job.wait()
            opened = service.stats()["breaker"]
            # The cooldown expires, a half-open probe succeeds, the
            # breaker closes and normal service resumes.
            good = await service.submit(dict(SMALL))
            result = await good.wait()
            closed = service.stats()["breaker"]
            await service.stop()
            return opened, closed, result

        opened, closed, result = run(main())
        assert opened["state"] == "open"
        assert opened["opens"] == 1
        assert closed["state"] == "closed"
        assert closed["consecutive_failures"] == 0
        assert isinstance(result, SimulationResult)

    def test_breaker_ignores_deadline_expiry(self):
        async def main():
            service = SimulationService(jobs=1, breaker_threshold=1)
            await service.start(dispatch=False)
            job = await service.submit(dict(SMALL), deadline_s=0.0)
            await asyncio.sleep(0.01)
            service.resume()
            with pytest.raises(JobFailed):
                await job.wait()
            stats = service.stats()["breaker"]
            await service.stop()
            return stats

        stats = run(main())
        # An expired deadline says nothing about pool health.
        assert stats["state"] == "closed"
        assert stats["opens"] == 0
