"""ServeClient: the synchronous client against a live server."""

import threading
import time

import pytest

from repro import baseline_config
from repro.harness import run_sim
from repro.serve.client import (
    ClientError,
    JobFailedError,
    ServeClient,
    ServerBusy,
)
from repro.sim import SimulationResult


def client_for(sut) -> ServeClient:
    return ServeClient(port=sut.port, timeout_s=120.0)


def test_submit_round_trips_a_simulation_result(server):
    client = client_for(server)
    served = client.submit("mm", "on_touch", footprint_mb=4.0)
    assert isinstance(served, SimulationResult)
    direct = run_sim(baseline_config(), "mm", "on_touch", footprint_mb=4.0)
    assert served.to_dict() == direct.to_dict()


def test_server_busy_carries_retry_hint(full_server):
    client = client_for(full_server)
    with pytest.raises(ServerBusy) as err:
        client.submit("mm", "on_touch", footprint_mb=4.0)
    assert err.value.status == 429
    assert err.value.retry_after_s > 0


def test_failed_job_raises_with_structured_failure(server):
    client = client_for(server)
    with pytest.raises(JobFailedError) as err:
        client.submit("mm", "on_touch", footprint_mb=4.0,
                      policy_kwargs={"bogus_kwarg": 1})
    assert err.value.failure["error_type"] == "TypeError"


def test_malformed_spec_raises_client_error(server):
    client = client_for(server)
    with pytest.raises(ClientError) as err:
        client.submit("mm", "nope", footprint_mb=4.0)
    assert err.value.status == 400
    assert not isinstance(err.value, (ServerBusy, JobFailedError))


def test_nowait_and_poll(server):
    client = client_for(server)
    job = client.submit_nowait("mm", "on_touch", footprint_mb=4.0)
    assert job["status"] in ("queued", "running")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        payload = client.job(job["id"])
        if payload["job"]["status"] == "done":
            break
        time.sleep(0.05)
    else:
        raise AssertionError("job never completed")
    assert payload["result"]["total_time_ns"] > 0


def test_health_and_metrics_text(server):
    client = client_for(server)
    client.submit("mm", "on_touch", footprint_mb=4.0)
    health = client.health()
    assert health["status"] == "ok"
    assert health["completed"] == 1
    text = client.metrics_text()
    assert "repro_serve_completed_total 1" in text
    assert 'repro_serve_latency_ms_bucket{le="+Inf"} 1' in text


def test_event_stream_over_http(server):
    client = client_for(server)
    collected = []

    def consume():
        for event in client.events(limit=3):
            collected.append(event)

    consumer = threading.Thread(target=consume, daemon=True)
    consumer.start()
    # Wait for the stream's subscription to land before submitting so
    # the lifecycle events have somewhere to go.
    deadline = time.monotonic() + 10
    while time.monotonic() < deadline:
        if server.service.stats()["status"] == "ok" and (
            server.run(_subscriber_count(server.service)) == 1
        ):
            break
        time.sleep(0.02)
    client.submit("mm", "on_touch", footprint_mb=4.0)
    consumer.join(timeout=60)
    assert not consumer.is_alive()
    assert [e["kind"] for e in collected] == [
        "serve_submit", "serve_dispatch", "serve_done"
    ]


async def _subscriber_count(service) -> int:
    return len(service._subscribers)

def test_503_maps_to_server_busy_with_hint_preserved(monkeypatch):
    """An intermediary's 503 (the cluster router shedding) must raise
    the same ServerBusy as a worker's own 429, hint intact."""
    client = ServeClient(port=1)

    def fake_request(method, path, body=None):
        return 503, {"retry-after": "3.5"}, b'{"error": "cluster full"}'

    monkeypatch.setattr(client, "_request", fake_request)
    with pytest.raises(ServerBusy) as err:
        client.submit("mm", "on_touch", footprint_mb=4.0)
    assert err.value.status == 503
    assert err.value.retry_after_s == 3.5


def test_call_with_retry_honors_hints_then_succeeds():
    from repro.serve.client import call_with_retry

    sleeps: list[float] = []
    calls = {"n": 0}

    def flaky():
        calls["n"] += 1
        if calls["n"] <= 2:
            raise ServerBusy(429, "busy", retry_after_s=2.5)
        return "ok"

    assert call_with_retry(flaky, attempts=4, sleep=sleeps.append) == "ok"
    assert calls["n"] == 3
    assert sleeps == [2.5, 2.5]


def test_call_with_retry_clamps_hint_and_reraises():
    from repro.serve.client import call_with_retry

    sleeps: list[float] = []

    def always_busy():
        raise ServerBusy(503, "still busy", retry_after_s=999.0)

    with pytest.raises(ServerBusy) as err:
        call_with_retry(always_busy, attempts=3, max_sleep_s=0.5,
                        sleep=sleeps.append)
    assert err.value.retry_after_s == 999.0  # the hint survives
    assert sleeps == [0.5, 0.5]              # but the waits are bounded


def test_call_with_retry_does_not_retry_failures():
    from repro.serve.client import call_with_retry

    calls = {"n": 0}

    def broken():
        calls["n"] += 1
        raise JobFailedError(500, {"error_type": "RuntimeError",
                                   "message": "sim blew up"})

    with pytest.raises(JobFailedError):
        call_with_retry(broken, attempts=4, sleep=lambda _s: None)
    assert calls["n"] == 1
