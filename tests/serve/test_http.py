"""ServeHttpServer: routes, status codes and payload shapes over TCP."""

import json
import time
from http.client import HTTPConnection

from repro import baseline_config
from repro.harness import run_sim

SMALL = {"app": "mm", "policy": "on_touch", "footprint_mb": 4.0}


def raw(port, method, path, body=None):
    conn = HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        data = None
        headers = {}
        if body is not None:
            data = body if isinstance(body, bytes) else json.dumps(body).encode()
            headers["Content-Type"] = "application/json"
        conn.request(method, path, body=data, headers=headers)
        response = conn.getresponse()
        payload = response.read()
        out_headers = {k.lower(): v for k, v in response.getheaders()}
    finally:
        conn.close()
    return response.status, out_headers, payload


def test_healthz(server):
    status, headers, body = raw(server.port, "GET", "/healthz")
    assert status == 200
    assert headers["content-type"] == "application/json"
    assert headers["connection"] == "close"
    payload = json.loads(body)
    assert payload["status"] == "ok"
    assert payload["queue_depth"] == 0


def test_metrics_is_prometheus_text(server):
    raw(server.port, "POST", "/submit", SMALL)
    status, headers, body = raw(server.port, "GET", "/metrics")
    assert status == 200
    assert headers["content-type"].startswith("text/plain")
    text = body.decode()
    assert "repro_serve_submitted_total 1" in text
    assert "repro_serve_completed_total 1" in text
    assert "repro_sim_fault_page_total" in text


def test_submit_waits_and_returns_result(server):
    status, _headers, body = raw(server.port, "POST", "/submit", SMALL)
    assert status == 200
    payload = json.loads(body)
    assert payload["job"]["status"] == "done"
    direct = run_sim(baseline_config(), "mm", "on_touch", footprint_mb=4.0)
    assert payload["result"] == direct.to_dict()


def test_submit_nowait_then_poll(server):
    status, _headers, body = raw(
        server.port, "POST", "/submit", dict(SMALL, wait=False)
    )
    assert status == 202
    job = json.loads(body)["job"]
    assert job["status"] in ("queued", "running")
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        status, _headers, body = raw(server.port, "GET", f"/jobs/{job['id']}")
        assert status == 200
        payload = json.loads(body)
        if payload["job"]["status"] == "done":
            break
        time.sleep(0.05)
    else:
        raise AssertionError("job never completed")
    assert "result" in payload
    assert payload["result"]["total_time_ns"] > 0


def test_backpressure_maps_to_429(full_server):
    status, headers, body = raw(full_server.port, "POST", "/submit", SMALL)
    assert status == 429
    assert float(headers["retry-after"]) > 0
    assert "queue full" in json.loads(body)["error"]


def test_failed_run_maps_to_500_with_structured_failure(server):
    spec = dict(SMALL, policy_kwargs={"bogus_kwarg": 1})
    status, _headers, body = raw(server.port, "POST", "/submit", spec)
    assert status == 500
    payload = json.loads(body)
    assert payload["failure"]["error_type"] == "TypeError"
    assert payload["job"]["status"] == "failed"


def test_bad_requests(server):
    status, _h, body = raw(server.port, "POST", "/submit",
                           {"app": "mm", "policy": "nope"})
    assert status == 400
    assert "unknown policy" in json.loads(body)["error"]

    status, _h, _b = raw(server.port, "POST", "/submit", b"{not json")
    assert status == 400

    status, _h, _b = raw(server.port, "GET", "/jobs/job-999")
    assert status == 404

    status, _h, _b = raw(server.port, "GET", "/no/such/route")
    assert status == 404

    status, _h, _b = raw(server.port, "DELETE", "/healthz")
    assert status == 405


def test_stats_route_includes_metrics_snapshot(server):
    raw(server.port, "POST", "/submit", SMALL)
    status, _headers, body = raw(server.port, "GET", "/stats")
    assert status == 200
    payload = json.loads(body)
    assert payload["service"]["completed"] == 1
    assert payload["metrics"]["counters"]["serve.completed"] == 1
    assert payload["sim_counters"]["fault.page"] > 0
