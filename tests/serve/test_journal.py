"""JobJournal: durable appends, checksummed replay, rotation, compaction."""

import json

import pytest

from repro.chaos import ChaosInjector, ChaosPlan, IOFault, TornWrite
from repro.serve import JobJournal, JournalError


def test_append_replay_round_trip(tmp_path):
    with JobJournal(tmp_path) as journal:
        journal.append("accepted", {"job_id": "job-1", "key": "k1"})
        journal.append("dispatched", {"job_id": "job-1", "key": "k1"})
        journal.append("accepted", {"job_id": "job-2", "key": "k2"})
        journal.append("done", {"job_id": "job-1", "key": "k1"})
        replay = journal.replay()
    assert replay.records == 4
    assert replay.torn == 0
    assert replay.last_seq == 4
    assert replay.jobs["job-1"]["kind"] == "done"
    assert replay.jobs["job-2"]["kind"] == "accepted"
    # Later records merge into the accepted payload, never replace it.
    assert replay.jobs["job-1"]["data"]["key"] == "k1"
    assert replay.live_jobs().keys() == {"job-2"}


def test_unknown_kind_rejected(tmp_path):
    with JobJournal(tmp_path) as journal:
        with pytest.raises(ValueError, match="unknown record kind"):
            journal.append("retried", {"job_id": "job-1"})


def test_tampered_record_is_skipped_and_counted(tmp_path):
    with JobJournal(tmp_path) as journal:
        journal.append("accepted", {"job_id": "job-1", "key": "k1"})
        journal.append("accepted", {"job_id": "job-2", "key": "k2"})
    segment = next(tmp_path.glob("journal-*.jsonl"))
    lines = segment.read_text().splitlines()
    record = json.loads(lines[0])
    record["data"]["key"] = "evil"  # crc now wrong
    lines[0] = json.dumps(record, sort_keys=True)
    segment.write_text("\n".join(lines) + "\n")
    replay = JobJournal(tmp_path).replay()
    assert replay.torn == 1
    assert list(replay.jobs) == ["job-2"]


def test_torn_tail_is_skipped(tmp_path):
    with JobJournal(tmp_path) as journal:
        journal.append("accepted", {"job_id": "job-1", "key": "k1"})
    segment = next(tmp_path.glob("journal-*.jsonl"))
    with segment.open("a") as fh:
        fh.write('{"v": 1, "seq": 2, "kind": "accepted", "da')
    reopened = JobJournal(tmp_path)
    replay = reopened.replay()
    assert replay.records == 1
    assert replay.torn == 1
    # The torn tail never held an acked record, so the sequence resumes
    # from the last *valid* record.
    assert reopened.append("done", {"job_id": "job-1", "key": "k1"}) == 2


def test_rotation_bounds_segment_size(tmp_path):
    journal = JobJournal(tmp_path, segment_max_records=2)
    for i in range(5):
        journal.append("accepted", {"job_id": f"job-{i}", "key": f"k{i}"})
    journal.close()
    segments = sorted(tmp_path.glob("journal-*.jsonl"))
    assert len(segments) == 3
    assert journal.stats()["rotations"] == 2
    assert all(
        len(p.read_text().splitlines()) <= 2 for p in segments
    )
    replay = JobJournal(tmp_path).replay()
    assert replay.records == 5


def test_compaction_keeps_only_live_records(tmp_path):
    journal = JobJournal(tmp_path, segment_max_records=2)
    for i in range(6):
        journal.append("accepted", {"job_id": f"job-{i}", "key": f"k{i}"})
        if i < 4:
            journal.append("done", {"job_id": f"job-{i}", "key": f"k{i}"})
    live = [
        ("accepted", {"job_id": "job-4", "key": "k4"}),
        ("accepted", {"job_id": "job-5", "key": "k5"}),
    ]
    removed = journal.compact(live)
    assert removed >= 1
    assert len(list(tmp_path.glob("journal-*.jsonl"))) == 1
    replay = journal.replay()
    assert set(replay.jobs) == {"job-4", "job-5"}
    # The compacted journal still accepts appends.
    journal.append("done", {"job_id": "job-4", "key": "k4"})
    journal.close()
    assert JobJournal(tmp_path).replay().jobs["job-4"]["kind"] == "done"


def test_reopen_continues_sequence(tmp_path):
    with JobJournal(tmp_path) as journal:
        first = journal.append("accepted", {"job_id": "job-1", "key": "k"})
    with JobJournal(tmp_path) as journal:
        second = journal.append("done", {"job_id": "job-1", "key": "k"})
    assert (first, second) == (1, 2)


def test_no_fsync_knob(tmp_path, monkeypatch):
    from repro.harness.diskcache import fsync_enabled

    monkeypatch.delenv("REPRO_NO_FSYNC", raising=False)
    assert fsync_enabled()
    monkeypatch.setenv("REPRO_NO_FSYNC", "0")
    assert fsync_enabled()
    monkeypatch.setenv("REPRO_NO_FSYNC", "1")
    assert not fsync_enabled()
    with JobJournal(tmp_path) as journal:  # appends still work
        journal.append("accepted", {"job_id": "job-1", "key": "k"})


class TestChaosAppends:
    def test_injected_io_error_raises_journal_error(self, tmp_path):
        plan = ChaosPlan(io_faults=(IOFault("journal", 0, "write"),))
        with JobJournal(tmp_path) as journal, ChaosInjector(plan):
            with pytest.raises(JournalError):
                journal.append("accepted", {"job_id": "job-1", "key": "k"})
            # The next append (op 1, unfaulted) succeeds at seq 1: the
            # failed append never consumed a sequence number.
            assert journal.append(
                "accepted", {"job_id": "job-2", "key": "k2"}
            ) == 1

    def test_torn_append_raises_and_replay_skips_prefix(self, tmp_path):
        plan = ChaosPlan(torn_writes=(TornWrite("journal", 0, 0.4),))
        with JobJournal(tmp_path) as journal, ChaosInjector(plan):
            with pytest.raises(JournalError, match="torn"):
                journal.append("accepted", {"job_id": "job-1", "key": "k"})
            journal.append("accepted", {"job_id": "job-2", "key": "k2"})
        replay = JobJournal(tmp_path).replay()
        # The torn prefix is on disk but can never replay as state.
        assert replay.torn == 1
        assert list(replay.jobs) == ["job-2"]
