"""Hardware access-counter tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import AccessCounterFile


def make(threshold=256, group=16, gpus=4):
    return AccessCounterFile(n_gpus=gpus, pages_per_group=group,
                             threshold=threshold)


class TestAccessCounterFile:
    def test_counts_accumulate_within_group(self):
        c = make(threshold=10)
        for page in range(16):  # all one group
            c.record_remote(0, page)
        # 16 accesses with threshold 10: tripped once at the 10th, counter
        # restarted, 6 left.
        assert c.count(0, 0) == 6

    def test_threshold_trip_resets(self):
        c = make(threshold=3)
        assert not c.record_remote(1, 0)
        assert not c.record_remote(1, 0)
        assert c.record_remote(1, 0)
        assert c.count(1, 0) == 0

    def test_counters_per_gpu_independent(self):
        c = make(threshold=5)
        c.record_remote(0, 0)
        c.record_remote(0, 0)
        assert c.count(1, 0) == 0

    def test_counters_per_group_independent(self):
        c = make(threshold=5, group=4)
        c.record_remote(0, 0)
        assert c.count(0, 4) == 0  # page 4 is in group 1

    def test_group_of(self):
        c = make(group=16)
        assert c.group_of(0) == 0
        assert c.group_of(15) == 0
        assert c.group_of(16) == 1

    def test_reset_group_clears_all_gpus(self):
        c = make(threshold=100)
        c.record_remote(0, 3)
        c.record_remote(1, 3)
        c.reset_group(3)
        assert c.count(0, 3) == 0
        assert c.count(1, 3) == 0

    def test_reset_all(self):
        c = make(threshold=100)
        c.record_remote(0, 0)
        c.record_remote(1, 40)
        c.reset_all()
        assert c.active_counters == 0

    def test_bulk_trip(self):
        c = make(threshold=256)
        assert not c.record_remote_bulk(0, 0, 255)
        assert c.record_remote_bulk(0, 0, 1)
        assert c.count(0, 0) == 0

    def test_bulk_weight_validation(self):
        with pytest.raises(ValueError):
            make().record_remote_bulk(0, 0, 0)

    def test_single_page_groups(self):
        c = make(group=1, threshold=2)
        c.record_remote(0, 5)
        assert c.count(0, 5) == 1
        assert c.count(0, 6) == 0

    @given(
        weights=st.lists(st.integers(min_value=1, max_value=300), max_size=20),
        threshold=st.integers(min_value=1, max_value=256),
    )
    def test_bulk_equivalent_to_singles_until_trip(self, weights, threshold):
        bulk = make(threshold=threshold)
        single = make(threshold=threshold)
        for w in weights:
            tripped_bulk = bulk.record_remote_bulk(0, 0, w)
            tripped_single = False
            for _ in range(w):
                if single.record_remote(0, 0):
                    tripped_single = True
                    break
            assert tripped_bulk == tripped_single
            if tripped_bulk:
                # After a trip the caller migrates and resets; emulate.
                bulk.reset_group(0)
                single.reset_group(0)
            else:
                assert bulk.count(0, 0) == single.count(0, 0)
