"""Virtual allocator and physical address-range tests."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import HOST
from repro.memory import DeviceAddressMap, VirtualAllocator


class TestVirtualAllocator:
    def test_allocations_are_page_aligned(self):
        alloc = VirtualAllocator(4096)
        a = alloc.alloc(5000)
        assert a.base % 4096 == 0
        assert a.n_pages == 2

    def test_sequential_allocations_disjoint(self):
        alloc = VirtualAllocator(4096)
        a = alloc.alloc(4096 * 3)
        b = alloc.alloc(100)
        assert a.end <= b.base

    def test_find_locates_containing_allocation(self):
        alloc = VirtualAllocator(4096)
        a = alloc.alloc(4096 * 2)
        b = alloc.alloc(4096)
        assert alloc.find(a.base + 4097) is a
        assert alloc.find(b.base) is b
        assert alloc.find(b.end) is None

    def test_zero_size_rejected(self):
        with pytest.raises(ValueError):
            VirtualAllocator(4096).alloc(0)

    def test_non_power_of_two_page_rejected(self):
        with pytest.raises(ValueError):
            VirtualAllocator(3000)

    def test_total_pages(self):
        alloc = VirtualAllocator(4096)
        alloc.alloc(4096)
        alloc.alloc(4096 * 2)
        assert alloc.total_pages == 3

    def test_allocation_page_range(self):
        alloc = VirtualAllocator(4096)
        a = alloc.alloc(4096 * 4)
        pages = list(a.pages())
        assert len(pages) == 4
        assert pages[0] == a.first_page
        assert pages[-1] == a.last_page

    def test_exhaustion_raises(self):
        alloc = VirtualAllocator(4096)
        with pytest.raises(MemoryError):
            alloc.alloc(1 << 48)

    @given(sizes=st.lists(st.integers(min_value=1, max_value=10**7),
                          min_size=1, max_size=30))
    def test_allocations_never_overlap(self, sizes):
        alloc = VirtualAllocator(4096)
        allocations = [alloc.alloc(s) for s in sizes]
        for first, second in zip(allocations, allocations[1:]):
            assert first.end <= second.base
        # find() agrees with containment for every base address.
        for a in allocations:
            assert alloc.find(a.base) is a


class TestDeviceAddressMap:
    def test_ranges_disjoint_and_invertible(self):
        m = DeviceAddressMap(n_gpus=4, bytes_per_device=1 << 20)
        seen = set()
        for dev in (HOST, 0, 1, 2, 3):
            base = m.range_base(dev)
            assert base not in seen
            seen.add(base)
            assert m.device_of(base) == dev
            assert m.device_of(base + (1 << 20) - 1) == dev

    def test_is_host(self):
        m = DeviceAddressMap(n_gpus=2, bytes_per_device=4096)
        assert m.is_host(m.range_base(HOST))
        assert not m.is_host(m.range_base(1))

    def test_physical_address_offset(self):
        m = DeviceAddressMap(n_gpus=1, bytes_per_device=4096)
        pa = m.physical_address(0, 100)
        assert m.device_of(pa) == 0

    def test_offset_out_of_range(self):
        m = DeviceAddressMap(n_gpus=1, bytes_per_device=4096)
        with pytest.raises(ValueError):
            m.physical_address(0, 4096)

    def test_unknown_device_rejected(self):
        m = DeviceAddressMap(n_gpus=2, bytes_per_device=4096)
        with pytest.raises(ValueError):
            m.range_base(5)

    def test_address_beyond_all_ranges_rejected(self):
        m = DeviceAddressMap(n_gpus=1, bytes_per_device=4096)
        with pytest.raises(ValueError):
            m.device_of(4096 * 2)
