"""PageTables state-machine tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import HOST
from repro.memory import PageTables, POLICY_COUNTER, POLICY_ON_TOUCH


@pytest.fixture
def pt():
    return PageTables(n_pages=8, n_gpus=4)


class TestInitialPlacement:
    def test_host_placement(self):
        pt = PageTables(4, 2, initial_placement="host")
        assert all(pt.location(p) == HOST for p in range(4))
        assert all(not pt.copy_holders(p) for p in range(4))

    def test_distributed_placement_round_robin(self):
        pt = PageTables(4, 2, initial_placement="distributed")
        assert [pt.location(p) for p in range(4)] == [0, 1, 0, 1]
        for p in range(4):
            assert pt.copy_holders(p) == [pt.location(p)]

    def test_distributed_respects_first_page(self):
        pt = PageTables(4, 4, initial_placement="distributed", first_page=2)
        assert pt.location(2) == 2 % 4

    def test_bad_placement_rejected(self):
        with pytest.raises(ValueError):
            PageTables(1, 1, initial_placement="banana")


class TestMappings:
    def test_map_local_requires_copy(self, pt):
        with pytest.raises(ValueError):
            pt.map_local(0, 0, writable=True)

    def test_exclusive_then_map_local(self, pt):
        pt.set_exclusive(0, 1)
        pt.map_local(1, 0, writable=True)
        assert pt.is_mapped(1, 0)
        assert pt.is_writable(1, 0)
        assert pt.location(0) == 1

    def test_map_remote_rejected_for_local_holder(self, pt):
        pt.set_exclusive(0, 1)
        with pytest.raises(ValueError):
            pt.map_remote(1, 0)

    def test_map_remote_is_read_write_capable_but_not_writable_flag(self, pt):
        pt.set_exclusive(0, 1)
        pt.map_remote(2, 0)
        assert pt.is_mapped(2, 0)
        assert not pt.is_writable(2, 0)
        assert not pt.has_copy(2, 0)

    def test_unmap_returns_whether_mapped(self, pt):
        pt.set_exclusive(0, 0)
        pt.map_local(0, 0, writable=True)
        assert pt.unmap(0, 0)
        assert not pt.unmap(0, 0)
        assert not pt.is_writable(0, 0)

    def test_unmap_all_except_returns_victims(self, pt):
        pt.set_exclusive(3, 0)
        pt.map_local(0, 3, writable=False)
        pt.map_remote(1, 3)
        pt.map_remote(2, 3)
        victims = pt.unmap_all_except(3, keep=0)
        assert sorted(victims) == [1, 2]
        assert pt.is_mapped(0, 3)
        assert not pt.is_mapped(1, 3)

    def test_unmap_all(self, pt):
        pt.set_exclusive(0, 2)
        pt.map_local(2, 0, writable=True)
        victims = pt.unmap_all_except(0, keep=None)
        assert victims == [2]
        assert pt.mapped_gpus(0) == []

    def test_page_outside_range_rejected(self, pt):
        with pytest.raises(IndexError):
            pt.location(100)


class TestDuplication:
    def test_add_copy_clears_writers(self, pt):
        pt.set_exclusive(0, 0)
        pt.map_local(0, 0, writable=True)
        pt.add_copy(1, 0)
        assert not pt.is_writable(0, 0)
        assert pt.is_duplicated(0)
        assert sorted(pt.copy_holders(0)) == [0, 1]

    def test_host_owner_plus_gpu_copy_is_duplicated(self, pt):
        pt.add_copy(2, 5)
        assert pt.location(5) == HOST
        assert pt.is_duplicated(5)

    def test_single_gpu_owner_not_duplicated(self, pt):
        pt.set_exclusive(0, 1)
        assert not pt.is_duplicated(0)

    def test_drop_copy(self, pt):
        pt.set_exclusive(0, 0)
        pt.add_copy(1, 0)
        pt.drop_copy(1, 0)
        assert pt.copy_holders(0) == [0]

    def test_drop_owner_copy_rejected(self, pt):
        pt.set_exclusive(0, 0)
        with pytest.raises(ValueError):
            pt.drop_copy(0, 0)

    def test_set_exclusive_drops_other_copies(self, pt):
        pt.add_copy(0, 0)
        pt.add_copy(1, 0)
        pt.set_exclusive(0, 2)
        assert pt.copy_holders(0) == [2]


class TestPolicyBits:
    def test_default_on_touch(self, pt):
        assert pt.policy(0) == POLICY_ON_TOUCH

    def test_set_policy(self, pt):
        pt.set_policy(3, POLICY_COUNTER)
        assert pt.policy(3) == POLICY_COUNTER

    def test_set_policy_range(self, pt):
        pt.set_policy_range(2, 3, POLICY_COUNTER)
        assert [pt.policy(p) for p in range(8)] == [
            0, 0, 1, 1, 1, 0, 0, 0
        ]

    def test_policy_range_overflow_rejected(self, pt):
        with pytest.raises(IndexError):
            pt.set_policy_range(6, 5, POLICY_COUNTER)

    def test_policy_histogram(self, pt):
        pt.set_policy_range(0, 4, POLICY_COUNTER)
        assert pt.policy_histogram() == {POLICY_COUNTER: 4, POLICY_ON_TOUCH: 4}


class TestIncoherentMode:
    def test_multiple_writers_allowed(self):
        pt = PageTables(2, 2, coherent=False)
        pt.add_copy(0, 0)
        pt.map_local(0, 0, writable=True)
        pt.add_copy(1, 0)
        pt.map_local(1, 0, writable=True)
        assert pt.is_writable(0, 0)
        assert pt.is_writable(1, 0)
        pt.check_invariants()


@st.composite
def pt_operations(draw):
    """Random but structurally valid operation sequences."""
    ops = []
    for _ in range(draw(st.integers(min_value=0, max_value=40))):
        kind = draw(st.sampled_from(
            ["migrate", "duplicate", "collapse", "unmap", "remote"]
        ))
        ops.append((kind, draw(st.integers(0, 3)), draw(st.integers(0, 5))))
    return ops


class TestInvariantsUnderRandomOps:
    @settings(max_examples=60, deadline=None)
    @given(ops=pt_operations())
    def test_invariants_hold(self, ops):
        pt = PageTables(n_pages=6, n_gpus=4)
        for kind, gpu, page in ops:
            if kind == "migrate":
                pt.unmap_all_except(page, keep=None)
                pt.set_exclusive(page, gpu)
                pt.map_local(gpu, page, writable=True)
            elif kind == "duplicate":
                pt.add_copy(gpu, page)
                pt.map_local(gpu, page, writable=False)
            elif kind == "collapse":
                pt.unmap_all_except(page, keep=gpu)
                pt.set_exclusive(page, gpu)
                pt.map_local(gpu, page, writable=True)
            elif kind == "unmap":
                pt.unmap(gpu, page)
            elif kind == "remote":
                if not pt.has_copy(gpu, page):
                    pt.map_remote(gpu, page)
            pt.check_invariants()
