"""PTE policy-bit encoding tests (Fig. 12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.memory import (
    POLICY_COUNTER,
    POLICY_DUPLICATION,
    POLICY_ON_TOUCH,
    AccessType,
    policy_name,
)
from repro.memory.page import pte_decode, pte_encode


class TestPolicyBits:
    def test_encoding_values_match_paper(self):
        # Section V-C: "00" on-touch, "01" counter, "11" duplication.
        assert POLICY_ON_TOUCH == 0b00
        assert POLICY_COUNTER == 0b01
        assert POLICY_DUPLICATION == 0b11

    def test_policy_names(self):
        assert policy_name(POLICY_ON_TOUCH) == "on_touch"
        assert policy_name(POLICY_COUNTER) == "access_counter"
        assert policy_name(POLICY_DUPLICATION) == "duplication"

    def test_reserved_encoding_rejected(self):
        with pytest.raises(ValueError):
            policy_name(0b10)


class TestAccessType:
    def test_write_flag(self):
        assert AccessType.WRITE.is_write
        assert not AccessType.READ.is_write


class TestPTEWord:
    def test_policy_bits_live_in_bits_10_9(self):
        word = pte_encode(pfn=0, policy_bits=POLICY_DUPLICATION, valid=True,
                          writable=False)
        assert (word >> 9) & 0b11 == POLICY_DUPLICATION

    def test_pfn_lives_in_bits_51_12(self):
        word = pte_encode(pfn=0x123456, policy_bits=0, valid=True,
                          writable=True)
        assert (word >> 12) & ((1 << 40) - 1) == 0x123456

    def test_roundtrip(self):
        word = pte_encode(pfn=99, policy_bits=POLICY_COUNTER, valid=True,
                          writable=True)
        assert pte_decode(word) == (99, POLICY_COUNTER, True, True)

    def test_pfn_overflow_rejected(self):
        with pytest.raises(ValueError):
            pte_encode(pfn=1 << 40, policy_bits=0, valid=True, writable=False)

    def test_invalid_policy_rejected(self):
        with pytest.raises(ValueError):
            pte_encode(pfn=0, policy_bits=0b10, valid=True, writable=False)

    @given(
        pfn=st.integers(min_value=0, max_value=(1 << 40) - 1),
        policy=st.sampled_from(
            [POLICY_ON_TOUCH, POLICY_COUNTER, POLICY_DUPLICATION]
        ),
        valid=st.booleans(),
        writable=st.booleans(),
    )
    def test_roundtrip_property(self, pfn, policy, valid, writable):
        word = pte_encode(pfn, policy, valid, writable)
        assert pte_decode(word) == (pfn, policy, valid, writable)
        assert word < (1 << 64)
