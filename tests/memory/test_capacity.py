"""CapacityManager (oversubscription LRU) tests."""

import pytest

from repro.memory import CapacityManager


class TestCapacityManager:
    def test_disabled_when_capacity_none(self):
        c = CapacityManager(2, None)
        assert not c.enabled
        c.note_resident(0, 1)
        assert not c.needs_eviction(0)

    def test_needs_eviction_above_capacity(self):
        c = CapacityManager(1, 2)
        c.note_resident(0, 1)
        c.note_resident(0, 2)
        assert not c.needs_eviction(0)
        c.note_resident(0, 3)
        assert c.needs_eviction(0)

    def test_victim_is_lru(self):
        c = CapacityManager(1, 2)
        for page in (10, 11, 12):
            c.note_resident(0, page)
        assert c.pick_victim(0) == 10

    def test_access_refreshes_recency(self):
        c = CapacityManager(1, 2)
        c.note_resident(0, 1)
        c.note_resident(0, 2)
        c.note_access(0, 1)
        assert c.pick_victim(0) == 2

    def test_access_to_absent_page_is_noop(self):
        c = CapacityManager(1, 2)
        c.note_access(0, 99)
        assert c.resident_count(0) == 0

    def test_protect_skips_page(self):
        c = CapacityManager(1, 1)
        c.note_resident(0, 1)
        c.note_resident(0, 2)
        assert c.pick_victim(0, protect=1) == 2

    def test_no_victim_raises(self):
        c = CapacityManager(1, 1)
        c.note_resident(0, 7)
        with pytest.raises(LookupError):
            c.pick_victim(0, protect=7)

    def test_note_released(self):
        c = CapacityManager(1, 4)
        c.note_resident(0, 1)
        c.note_released(0, 1)
        assert c.resident_count(0) == 0
        assert not c.is_resident(0, 1)

    def test_per_gpu_isolation(self):
        c = CapacityManager(2, 1)
        c.note_resident(0, 1)
        c.note_resident(1, 2)
        assert c.resident_count(0) == 1
        assert c.resident_count(1) == 1

    def test_re_residence_moves_to_mru(self):
        c = CapacityManager(1, 8)
        c.note_resident(0, 1)
        c.note_resident(0, 2)
        c.note_resident(0, 1)
        assert c.pick_victim(0) == 2

    def test_reset(self):
        c = CapacityManager(1, 4)
        c.note_resident(0, 1)
        c.reset()
        assert c.resident_count(0) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            CapacityManager(1, 0)


class ReferenceLRU:
    """Brute-force LRU residency model."""

    def __init__(self):
        self.order = []

    def resident(self, page):
        if page in self.order:
            self.order.remove(page)
        self.order.append(page)

    def access(self, page):
        if page in self.order:
            self.order.remove(page)
            self.order.append(page)

    def release(self, page):
        if page in self.order:
            self.order.remove(page)


class TestAgainstReferenceLRU:
    def test_random_op_sequences_match(self):
        from hypothesis import given, settings
        from hypothesis import strategies as st

        @settings(max_examples=60, deadline=None)
        @given(ops=st.lists(
            st.tuples(st.sampled_from(["resident", "access", "release"]),
                      st.integers(0, 9)),
            max_size=60,
        ))
        def run(ops):
            manager = CapacityManager(1, 100)
            reference = ReferenceLRU()
            for op, page in ops:
                if op == "resident":
                    manager.note_resident(0, page)
                    reference.resident(page)
                elif op == "access":
                    manager.note_access(0, page)
                    reference.access(page)
                else:
                    manager.note_released(0, page)
                    reference.release(page)
                assert manager.resident_count(0) == len(reference.order)
                if reference.order:
                    assert manager.pick_victim(0) == reference.order[0]

        run()
