"""Documentation consistency: referenced paths and ids must exist."""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent

DOCS = [ROOT / "README.md", ROOT / "DESIGN.md",
        ROOT / "docs" / "MODEL.md", ROOT / "docs" / "PAPER_MAP.md"]


class TestDocsExist:
    def test_required_documents_present(self):
        for doc in DOCS:
            assert doc.exists(), doc
        assert (ROOT / "pyproject.toml").exists()

    def test_design_confirms_paper_identity(self):
        text = (ROOT / "DESIGN.md").read_text()
        assert "HPCA 2025" in text
        assert "OASIS" in text


class TestReferencedPathsExist:
    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_backticked_repo_paths_exist(self, doc):
        text = doc.read_text()
        missing = []
        for match in re.finditer(r"`((?:src|tests|benchmarks|examples|docs)"
                                 r"/[^`\s]+\.(?:py|md))`", text):
            path = ROOT / match.group(1)
            if not path.exists():
                missing.append(match.group(1))
        assert not missing, f"{doc.name} references missing paths: {missing}"

    @pytest.mark.parametrize("doc", DOCS, ids=lambda p: p.name)
    def test_backticked_modules_importable(self, doc):
        import importlib

        text = doc.read_text()
        failures = []
        for match in set(re.findall(r"`(repro(?:\.[a-z_]+)+)`", text)):
            try:
                importlib.import_module(match)
            except ImportError:
                # Might be an attribute reference like repro.config.foo.
                module, _, attr = match.rpartition(".")
                try:
                    mod = importlib.import_module(module)
                except ImportError:
                    failures.append(match)
                    continue
                if not hasattr(mod, attr):
                    failures.append(match)
        assert not failures, f"{doc.name}: unimportable {failures}"


class TestExperimentIdsInDocs:
    def test_design_lists_every_experiment(self):
        from repro.harness import EXPERIMENTS

        text = (ROOT / "DESIGN.md").read_text()
        for exp_id in EXPERIMENTS:
            if exp_id.startswith("fig"):
                # Experiment ids appear as bench targets in the index.
                number = exp_id[3:]
                assert (f"fig{number}" in text
                        or f"fig{int(number):02d}" in text), exp_id
