"""Every registry workload conforms to its Table II row, seeds 0-4.

Three properties per (application, seed):

* the built trace has exactly the object count Table II documents;
* its allocated footprint matches the Table II/III figure for 4 GPUs
  (within a small rounding tolerance — builders size objects in whole
  pages);
* every access in every phase lands inside a declared object's
  allocation — no builder ever touches stray pages.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import baseline_config
from repro.workloads.registry import APPLICATION_ORDER, APPLICATIONS, get_workload

MB = 1024 * 1024
SEEDS = range(5)

#: Builders size objects in whole pages and split footprints across
#: odd object counts, so allow a small relative slack around Table II.
FOOTPRINT_TOLERANCE = 0.05


@pytest.fixture(scope="module")
def config():
    return baseline_config()


@pytest.mark.parametrize("app", APPLICATION_ORDER)
@pytest.mark.parametrize("seed", SEEDS)
def test_object_count_matches_table2(config, app, seed):
    trace = get_workload(app, config, seed=seed)
    assert trace.n_objects == APPLICATIONS[app].n_objects


@pytest.mark.parametrize("app", APPLICATION_ORDER)
def test_footprint_matches_table2(config, app):
    trace = get_workload(app, config)
    documented = APPLICATIONS[app].footprint_for(config.n_gpus) * MB
    ratio = trace.footprint_bytes / documented
    assert abs(ratio - 1.0) <= FOOTPRINT_TOLERANCE, (
        f"{app}: {trace.footprint_bytes} bytes vs Table II "
        f"{documented} (ratio {ratio:.4f})"
    )


@pytest.mark.parametrize("app", APPLICATION_ORDER)
@pytest.mark.parametrize("seed", SEEDS)
def test_phases_only_touch_declared_objects(config, app, seed):
    trace = get_workload(app, config, seed=seed)
    # Union of declared allocations, as an array of valid page numbers.
    valid = np.concatenate(
        [np.arange(o.first_page, o.last_page + 1) for o in trace.objects]
    )
    for phase in trace.phases:
        if not len(phase):
            continue
        touched = np.unique(phase.page)
        stray = touched[~np.isin(touched, valid)]
        assert stray.size == 0, (
            f"{app} seed={seed} phase {phase.name!r} touches pages "
            f"outside every object: {stray[:5].tolist()}"
        )
        assert np.all(
            (phase.gpu >= 0) & (phase.gpu < trace.n_gpus)
        ), f"{app} phase {phase.name!r} has out-of-range GPU ids"


@pytest.mark.parametrize("app", APPLICATION_ORDER)
def test_object_of_page_agrees_with_allocations(config, app):
    trace = get_workload(app, config)
    for obj in trace.objects:
        assert trace.object_of_page(obj.first_page) is obj
        assert trace.object_of_page(obj.last_page) is obj
    assert trace.object_of_page(trace.first_page - 1) is None
