"""Application registry tests: Table II / Table III invariants."""

import pytest

from repro.config import MB, baseline_config
from repro.workloads import APPLICATION_ORDER, APPLICATIONS, get_workload

#: Relative tolerance on built footprints vs the paper's (rounded) MB.
FOOTPRINT_TOL = 0.03


class TestRegistryMetadata:
    def test_eleven_applications(self):
        assert len(APPLICATIONS) == 11
        assert set(APPLICATION_ORDER) == set(APPLICATIONS)

    def test_unknown_app_rejected(self):
        with pytest.raises(ValueError):
            get_workload("nope")

    def test_case_insensitive(self):
        assert get_workload("MM").name == "mm"

    def test_footprint_for_unknown_gpu_count_picks_nearest(self):
        info = APPLICATIONS["mm"]
        assert info.footprint_for(6) in (info.footprint_mb[4],
                                         info.footprint_mb[8])

    def test_suites_match_table2(self):
        assert APPLICATIONS["bfs"].suite == "SHOC"
        assert APPLICATIONS["mm"].suite == "AMDAPPSDK"
        assert APPLICATIONS["pr"].suite == "Hetero-Mark"
        assert APPLICATIONS["lenet"].suite == "DNN-Mark"

    def test_patterns_match_table2(self):
        assert APPLICATIONS["bfs"].pattern == "random"
        assert APPLICATIONS["pr"].pattern == "random"
        for app in ("c2d", "st", "lenet", "vgg16", "resnet18"):
            assert APPLICATIONS[app].pattern == "adjacent"
        for app in ("fft", "i2c", "mm", "mt"):
            assert APPLICATIONS[app].pattern == "scatter-gather"


@pytest.mark.parametrize("app", APPLICATION_ORDER)
class TestTable2Invariants:
    def test_object_count_matches_paper(self, app):
        trace = get_workload(app, baseline_config())
        assert trace.n_objects == APPLICATIONS[app].n_objects

    def test_footprint_matches_paper(self, app):
        trace = get_workload(app, baseline_config())
        target = APPLICATIONS[app].footprint_for(4) * MB
        assert abs(trace.footprint_bytes - target) / target < FOOTPRINT_TOL

    def test_trace_structure_sound(self, app):
        trace = get_workload(app, baseline_config())
        assert trace.n_gpus == 4
        assert len(trace.phases) >= 1
        assert trace.phases[0].explicit  # first kernel launch
        assert trace.total_records > 0
        # Every record's page belongs to some object.
        for phase in trace.phases[:2]:
            pages = phase.page
            if len(pages):
                assert pages.min() >= trace.first_page
                assert pages.max() <= trace.first_page + trace.n_pages - 1


@pytest.mark.parametrize("n_gpus", [8, 16])
@pytest.mark.parametrize("app", ["bfs", "mm", "st", "lenet"])
class TestTable3Scaling:
    def test_scaled_footprints(self, app, n_gpus):
        trace = get_workload(app, n_gpus=n_gpus)
        target = APPLICATIONS[app].footprint_for(n_gpus) * MB
        assert abs(trace.footprint_bytes - target) / target < FOOTPRINT_TOL
        assert trace.n_gpus == n_gpus
        assert trace.n_objects == APPLICATIONS[app].n_objects


class TestCaching:
    def test_same_parameters_return_same_trace(self):
        a = get_workload("mm")
        b = get_workload("mm")
        assert a is b

    def test_different_seed_rebuilds(self):
        a = get_workload("bfs", seed=0)
        b = get_workload("bfs", seed=1)
        assert a is not b


class TestSpecialConfigurations:
    def test_2mb_pages_build(self):
        from repro.config import PAGE_SIZE_2M

        trace = get_workload("mm", page_size=PAGE_SIZE_2M)
        assert trace.page_size == PAGE_SIZE_2M
        assert trace.total_records > 0

    def test_footprint_override(self):
        trace = get_workload("mm", footprint_mb=64)
        assert abs(trace.footprint_bytes - 64 * MB) / (64 * MB) < FOOTPRINT_TOL

    def test_explicit_phase_counts(self):
        lenet = get_workload("lenet")
        assert sum(p.explicit for p in lenet.phases) == 129  # Section VI-A
        c2d = get_workload("c2d")
        assert sum(p.explicit for p in c2d.phases) == 8
        st = get_workload("st")
        assert sum(p.explicit for p in st.phases) == 1
        assert sum(not p.explicit for p in st.phases) == 19
