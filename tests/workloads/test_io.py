"""Trace serialization tests."""

import numpy as np
import pytest

from repro import baseline_config, make_policy, simulate
from repro.workloads import get_workload
from repro.workloads.io import load_trace, save_trace
from tests.conftest import make_trace


class TestRoundtrip:
    def test_structure_preserved(self, tmp_path):
        trace = make_trace(
            {"a": 3, "b": 2},
            [[(0, "a", 0, False, 5), (1, "b", 1, True, 2)], []],
            explicit=[True, False],
        )
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded.name == trace.name
        assert loaded.n_gpus == trace.n_gpus
        assert loaded.page_size == trace.page_size
        assert loaded.first_page == trace.first_page
        assert loaded.n_pages == trace.n_pages
        assert [o.name for o in loaded.objects] == ["a", "b"]
        assert loaded.objects[0].n_pages == 3
        assert [p.name for p in loaded.phases] == ["phase0", "phase1"]
        assert loaded.phases[0].explicit
        assert not loaded.phases[1].explicit

    def test_records_preserved_exactly(self, tmp_path):
        trace = get_workload("mm", baseline_config(), footprint_mb=4)
        loaded = load_trace(save_trace(trace, tmp_path / "mm.npz"))
        for original, restored in zip(trace.phases, loaded.phases):
            assert np.array_equal(original.gpu, restored.gpu)
            assert np.array_equal(original.page, restored.page)
            assert np.array_equal(original.write, restored.write)
            assert np.array_equal(original.weight, restored.weight)

    def test_simulation_identical_on_loaded_trace(self, tmp_path):
        config = baseline_config()
        trace = get_workload("st", config, footprint_mb=4)
        loaded = load_trace(save_trace(trace, tmp_path / "st.npz"))
        a = simulate(config, trace, make_policy("oasis"))
        b = simulate(config, loaded, make_policy("oasis"))
        assert a.total_time_ns == b.total_time_ns
        assert a.stats == b.stats

    def test_free_phase_preserved(self, tmp_path):
        trace = make_trace({"a": 1}, [[(0, "a", 0, False)]])
        trace.objects[0].free_phase = 0
        loaded = load_trace(save_trace(trace, tmp_path / "t.npz"))
        assert loaded.objects[0].free_phase == 0

    def test_version_check(self, tmp_path):
        import json

        trace = make_trace({"a": 1}, [[(0, "a", 0, False)]])
        path = save_trace(trace, tmp_path / "t.npz")
        # Corrupt the version field.
        data = dict(np.load(path))
        meta = json.loads(bytes(data["meta"]).decode())
        meta["version"] = 99
        data["meta"] = np.frombuffer(json.dumps(meta).encode(),
                                     dtype=np.uint8)
        with open(path, "wb") as handle:
            np.savez_compressed(handle, **data)
        with pytest.raises(ValueError, match="version"):
            load_trace(path)
