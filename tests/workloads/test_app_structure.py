"""Structural checks of individual application models."""

import pytest

from repro.config import baseline_config
from repro.workloads import get_workload


def names_of(trace):
    return [o.name for o in trace.objects]


class TestC2DStructure:
    def test_pipeline_phases_in_order(self):
        trace = get_workload("c2d", baseline_config())
        names = [p.name for p in trace.phases]
        assert names[0] == "setup"
        assert names[1:4] == ["im2col_l0", "gemm_l0", "transpose_l0"]
        assert names[4:7] == ["im2col_l1", "gemm_l1", "transpose_l1"]
        assert names[-1] == "readback"

    def test_figure6_objects_present(self):
        trace = get_workload("c2d", baseline_config())
        for name in ("C2D_Input", "C2D_Weights", "Im2col_Output",
                     "GEMM_Output", "MT_Output"):
            assert name in names_of(trace)


class TestFFTStructure:
    def test_two_objects_only(self):
        trace = get_workload("fft", baseline_config())
        assert names_of(trace) == ["FFT_Data", "FFT_Twiddle"]

    def test_stages_are_implicit_after_first(self):
        trace = get_workload("fft", baseline_config())
        assert trace.phases[0].explicit
        assert all(not p.explicit for p in trace.phases[1:])


class TestSwapApps:
    @pytest.mark.parametrize("app,obj_a,obj_b", [
        ("st", "ST_currData", "ST_newData"),
        ("pr", "PR_RankA", "PR_RankB"),
        ("bfs", "BFS_Frontier", "BFS_NewFrontier"),
    ])
    def test_buffers_alternate_roles(self, app, obj_a, obj_b):
        from repro.analysis import classify_object

        trace = get_workload(app, baseline_config())
        a = next(o for o in trace.objects if o.name == obj_a)
        pat0 = classify_object(trace, a, phases=[0]).rw
        pat1 = classify_object(trace, a, phases=[1]).rw
        assert pat0 != pat1, (app, pat0, pat1)


class TestMTStructure:
    def test_single_explicit_phase(self):
        trace = get_workload("mt", baseline_config())
        assert len(trace.phases) == 1
        assert trace.phases[0].explicit

    def test_input_and_output_similar_size(self):
        trace = get_workload("mt", baseline_config())
        objs = {o.name: o for o in trace.objects}
        ratio = objs["MT_Input"].n_pages / objs["MT_Output"].n_pages
        assert 0.95 < ratio < 1.05


class TestSeedStability:
    @pytest.mark.parametrize("app", ["bfs", "pr", "fft"])
    def test_same_seed_same_trace(self, app):
        a = get_workload(app, baseline_config(), seed=3)
        b = get_workload(app, baseline_config(), seed=3)
        assert a is b  # cached

    def test_different_seeds_differ_for_random_apps(self):
        import numpy as np

        a = get_workload("bfs", baseline_config(), seed=0)
        b = get_workload("bfs", baseline_config(), seed=1)
        assert not np.array_equal(a.phases[0].page, b.phases[0].page)
