"""DNN workload-model tests."""

import pytest

from repro.workloads.dnn import LENET, RESNET18, VGG16, build_dnn


class TestModelSpecs:
    def test_lenet_object_arithmetic(self):
        # 7 layers x 16-object template + 3 globals = 115 (Table II).
        assert len(LENET.layers) == 7
        assert len(LENET.template) == 16
        assert LENET.n_objects == 115

    def test_vgg16_object_arithmetic(self):
        # 21 layers x 11 + 9 globals = 240.
        assert len(VGG16.layers) == 21
        assert len(VGG16.template) == 11
        assert VGG16.n_objects == 240

    def test_resnet18_object_arithmetic(self):
        # 26 layers x 10 + 3 globals = 263.
        assert len(RESNET18.layers) == 26
        assert len(RESNET18.template) == 10
        assert RESNET18.n_objects == 263

    def test_lenet_phase_arithmetic(self):
        # 9 minibatches x (7 fwd + 7 bwd) + 3 setup = 129 (Section VI-A).
        assert LENET.n_explicit_phases == 129


class TestBuiltTraces:
    @pytest.mark.parametrize("spec", [LENET], ids=["lenet"])
    def test_phase_count_matches_spec(self, spec):
        trace = build_dnn(spec, footprint_mb=12)
        assert len(trace.phases) == spec.n_explicit_phases
        assert all(p.explicit for p in trace.phases)

    def test_forward_backward_ordering(self):
        trace = build_dnn(LENET, footprint_mb=12)
        names = [p.name for p in trace.phases]
        # After the setup phases: forward layers ascend, backward descend.
        assert names[3] == "fwd_b0_l0"
        assert names[9] == "fwd_b0_l6"
        assert names[10] == "bwd_b0_l6"
        assert names[16] == "bwd_b0_l0"

    def test_every_layer_object_allocated_once(self):
        trace = build_dnn(LENET, footprint_mb=12)
        names = [o.name for o in trace.objects]
        assert len(names) == len(set(names))
        assert "conv1_W" in names
        assert "fc1_dW" in names

    def test_weights_read_by_all_gpus_each_minibatch(self):
        trace = build_dnn(LENET, footprint_mb=12)
        weights = next(o for o in trace.objects if o.name == "conv1_W")
        fwd_phases = [p for p in trace.phases if p.name.startswith("fwd_b")
                      and p.name.endswith("_l0")]
        assert len(fwd_phases) == LENET.minibatches
        for phase in fwd_phases:
            pages = set(phase.page.tolist())
            assert weights.first_page in pages

    def test_footprint_scales(self):
        small = build_dnn(LENET, footprint_mb=12)
        large = build_dnn(LENET, footprint_mb=24)
        assert large.footprint_bytes > 1.5 * small.footprint_bytes

    def test_respects_gpu_count(self):
        trace = build_dnn(LENET, n_gpus=8, footprint_mb=12)
        assert trace.n_gpus == 8
        gpus = set()
        for phase in trace.phases[:10]:
            gpus.update(phase.gpu.tolist())
        assert len(gpus) == 8
