"""TraceBuilder and trace-structure tests."""

import numpy as np
import pytest

from repro.workloads.base import TraceBuilder


def builder(**kwargs):
    defaults = dict(name="t", n_gpus=2, page_size=4096, seed=0, burst=2)
    defaults.update(kwargs)
    return TraceBuilder(**defaults)


class TestAllocation:
    def test_obj_ids_sequential(self):
        b = builder()
        a = b.alloc("a", 4096)
        c = b.alloc("c", 4096)
        assert (a.obj_id, c.obj_id) == (0, 1)

    def test_alloc_phase_tracks_completed_phases(self):
        b = builder()
        first = b.alloc("first", 4096)
        b.begin_phase("p0")
        b.end_phase()
        late = b.alloc("late", 4096)
        assert first.alloc_phase == 0
        assert late.alloc_phase == 1

    def test_free_marks_phase(self):
        b = builder()
        obj = b.alloc("a", 4096)
        b.begin_phase("p0")
        b.end_phase()
        b.free(obj)
        assert obj.free_phase == 1

    def test_build_requires_objects(self):
        with pytest.raises(RuntimeError):
            builder().build()


class TestEmission:
    def test_emit_bounds_checked(self):
        b = builder()
        obj = b.alloc("a", 4096 * 2)
        b.begin_phase("p")
        with pytest.raises(IndexError):
            b.emit(0, obj, 2, False)

    def test_emit_outside_phase_rejected(self):
        b = builder()
        obj = b.alloc("a", 4096)
        with pytest.raises(RuntimeError):
            b.emit(0, obj, 0, False)

    def test_zero_weight_rejected(self):
        b = builder()
        obj = b.alloc("a", 4096)
        b.begin_phase("p")
        with pytest.raises(ValueError):
            b.emit(0, obj, 0, False, weight=0)

    def test_emit_block_empty_is_noop(self):
        b = builder()
        obj = b.alloc("a", 4096)
        b.begin_phase("p")
        b.emit_block(0, obj, np.array([], dtype=np.int64), write=False)
        phase = b.end_phase()
        assert len(phase) == 0

    def test_nested_phase_rejected(self):
        b = builder()
        b.alloc("a", 4096)
        b.begin_phase("p")
        with pytest.raises(RuntimeError):
            b.begin_phase("q")

    def test_build_with_open_phase_rejected(self):
        b = builder()
        b.alloc("a", 4096)
        b.begin_phase("p")
        with pytest.raises(RuntimeError):
            b.build()


class TestInterleaving:
    def test_burst_round_robin(self):
        b = builder(burst=2)
        obj = b.alloc("a", 4096 * 8)
        b.begin_phase("p")
        for p in range(4):
            b.emit(0, obj, p, False)
        for p in range(4):
            b.emit(1, obj, p, False)
        phase = b.end_phase()
        assert phase.gpu.tolist() == [0, 0, 1, 1, 0, 0, 1, 1]

    def test_uneven_streams_drain_fully(self):
        b = builder(burst=3)
        obj = b.alloc("a", 4096 * 8)
        b.begin_phase("p")
        b.emit(0, obj, 0, False)
        for p in range(5):
            b.emit(1, obj, p, True)
        phase = b.end_phase()
        assert len(phase) == 6
        assert sorted(phase.gpu.tolist()) == [0, 1, 1, 1, 1, 1]


class TestWeightScaling:
    def test_weight_scale_is_one_at_4k(self):
        b = builder()
        obj = b.alloc("a", 4096 * 4)
        assert b.weight_scale(obj) == 1

    def test_weight_scale_grows_with_page_size(self):
        b = builder(page_size=2 * 1024 * 1024)
        obj = b.alloc("a", 8 * 1024 * 1024)
        assert b.weight_scale(obj) == 512

    def test_weight_scale_capped_by_object_density(self):
        # A 64 KB object on one 2 MB page only stands for 16 4K-units.
        b = builder(page_size=2 * 1024 * 1024)
        obj = b.alloc("a", 64 * 1024)
        assert b.weight_scale(obj) == 16


class TestTrace:
    def test_footprint_counts_page_rounded_sizes(self):
        b = builder()
        b.alloc("a", 5000)  # 2 pages
        b.begin_phase("p")
        b.end_phase()
        trace = b.build()
        assert trace.footprint_bytes == 2 * 4096

    def test_object_of_page(self):
        b = builder()
        a = b.alloc("a", 4096 * 2)
        c = b.alloc("c", 4096 * 3)
        b.begin_phase("p")
        b.end_phase()
        trace = b.build()
        assert trace.object_of_page(a.first_page).name == "a"
        assert trace.object_of_page(c.first_page + 2).name == "c"
        assert trace.object_of_page(c.last_page + 1) is None

    def test_total_accesses_sums_weights(self):
        b = builder()
        obj = b.alloc("a", 4096)
        b.begin_phase("p")
        b.emit(0, obj, 0, False, weight=7)
        b.emit(1, obj, 0, True, weight=3)
        b.end_phase()
        trace = b.build()
        assert trace.total_accesses == 10
        assert trace.total_records == 2
