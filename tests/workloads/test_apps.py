"""Per-application characterization invariants (Section IV observations)."""

import pytest

from repro.analysis import (
    classify_object,
    classify_pages,
    page_type_percentages,
)
from repro.config import PAGE_SIZE_2M, baseline_config
from repro.workloads import get_workload


def patterns_of(app, **kwargs):
    trace = get_workload(app, baseline_config(), **kwargs)
    cls = classify_pages(trace)
    return trace, {
        obj.name: classify_object(trace, obj, cls) for obj in trace.objects
    }


class TestMT:
    def test_input_read_only_output_write_only(self):
        _, pats = patterns_of("mt")
        assert pats["MT_Input"].rw == "read-only"
        assert pats["MT_Output"].rw == "write-only"

    def test_input_shared_output_private(self):
        _, pats = patterns_of("mt")
        assert pats["MT_Input"].sharing == "shared"
        assert pats["MT_Output"].sharing == "private"


class TestMM:
    def test_inputs_shared_read_only(self):
        _, pats = patterns_of("mm")
        assert pats["MM_A"].label == "shared-read-only"
        assert pats["MM_B"].label == "shared-read-only"

    def test_output_private_rw(self):
        _, pats = patterns_of("mm")
        assert pats["MM_C"].label == "private-rw-mix"


class TestI2C:
    def test_output_private_and_dominant(self):
        trace, pats = patterns_of("i2c")
        assert pats["I2C_Output"].sharing == "private"
        from repro.analysis import access_share_by_object

        shares = access_share_by_object(trace)
        assert shares["I2C_Output"] > 0.6  # paper: ~75%


class TestST:
    def test_data_objects_shared_rw_mix_overall(self):
        _, pats = patterns_of("st")
        assert pats["ST_currData"].label == "shared-rw-mix"
        assert pats["ST_newData"].label == "shared-rw-mix"

    def test_per_iteration_roles_alternate(self):
        trace = get_workload("st", baseline_config())
        curr = next(o for o in trace.objects if o.name == "ST_currData")
        iter0 = classify_object(trace, curr, phases=[0])
        iter1 = classify_object(trace, curr, phases=[1])
        assert iter0.rw == "read-only"
        assert iter1.rw == "write-only"


class TestC2D:
    def test_handoff_objects_shared_overall_private_per_phase(self):
        trace = get_workload("c2d", baseline_config())
        im2col = next(o for o in trace.objects if o.name == "Im2col_Output")
        overall = classify_object(trace, im2col)
        assert overall.sharing == "shared"
        assert overall.rw == "rw-mix"
        # Phase 1 (im2col_l0): written privately.
        in_phase = classify_object(trace, im2col, phases=[1])
        assert in_phase.label == "private-write-only"

    def test_weights_shared_read_only_in_gemm(self):
        trace = get_workload("c2d", baseline_config())
        weights = next(o for o in trace.objects if o.name == "C2D_Weights")
        gemm = classify_object(trace, weights, phases=[2])
        assert gemm.label == "shared-read-only"


class TestDNN:
    @pytest.mark.parametrize("app", ["lenet"])
    def test_weights_broadcast_gradients_write_shared(self, app):
        trace = get_workload(app, baseline_config())
        cls = classify_pages(trace)
        weights = next(o for o in trace.objects if o.name.endswith("conv1_W"))
        grads = next(o for o in trace.objects if o.name.endswith("conv1_dW"))
        w_pat = classify_object(trace, weights, cls)
        g_pat = classify_object(trace, grads, cls)
        assert w_pat.sharing == "shared"
        assert g_pat.sharing == "shared"
        assert g_pat.rw in ("write-only", "rw-mix")

    def test_activations_private(self):
        trace = get_workload("lenet", baseline_config())
        cls = classify_pages(trace)
        top = next(o for o in trace.objects if o.name.endswith("conv1_top"))
        assert classify_object(trace, top, cls).sharing == "private"


class TestObservation2:
    """Pages within an object typically share the object's pattern."""

    @pytest.mark.parametrize(
        "app", ["bfs", "fft", "i2c", "mm", "mt", "pr", "st"]
    )
    def test_single_explicit_phase_apps_mostly_uniform(self, app):
        trace = get_workload(app, baseline_config())
        cls = classify_pages(trace)
        non_uniform = [
            obj.name for obj in trace.objects
            if classify_object(trace, obj, cls).is_non_uniform
        ]
        # The paper finds 2 of 26 objects non-uniform across these apps;
        # allow a small number here too.
        assert len(non_uniform) <= 2, non_uniform


class TestLargePageCoarsening:
    """Section VI-B4: 2 MB pages convert private pages to shared."""

    @pytest.mark.parametrize("app", ["mm", "c2d", "lenet"])
    def test_shared_fraction_grows(self, app):
        # (ST is excluded: its 4 KB pages are already ~100% shared, so
        # coarsening cannot increase the fraction further.)
        small = page_type_percentages(get_workload(app, page_size=4096))
        large = page_type_percentages(
            get_workload(app, page_size=PAGE_SIZE_2M)
        )
        assert large["shared"] >= small["shared"]

    def test_rw_mix_fraction_grows_for_lenet(self):
        small = page_type_percentages(get_workload("lenet", page_size=4096))
        large = page_type_percentages(
            get_workload("lenet", page_size=PAGE_SIZE_2M)
        )
        assert large["rw-mix"] >= small["rw-mix"]
