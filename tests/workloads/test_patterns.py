"""Access-pattern primitive tests."""

import numpy as np
import pytest

from repro.workloads.base import TraceBuilder
from repro.workloads.patterns import (
    band_offsets,
    emit_broadcast,
    emit_gather,
    emit_halo,
    emit_owner_init,
    emit_partitioned,
    emit_random,
)


def setup(pages=16, n_gpus=4, page_size=4096):
    b = TraceBuilder("t", n_gpus, page_size, seed=1, burst=4)
    obj = b.alloc("obj", pages * page_size)
    b.begin_phase("p")
    return b, obj


def touched_by(phase, n_gpus):
    """page -> set of GPUs, split by read/write."""
    readers, writers = {}, {}
    for gpu, page, write, _w in zip(
        phase.gpu.tolist(), phase.page.tolist(), phase.write.tolist(),
        phase.weight.tolist(),
    ):
        target = writers if write else readers
        target.setdefault(page, set()).add(gpu)
    return readers, writers


class TestBandOffsets:
    def test_bands_cover_object_exactly_at_4k(self):
        b, obj = setup(pages=16)
        pages = np.concatenate([band_offsets(obj, 4, i) for i in range(4)])
        assert sorted(set(pages.tolist())) == list(range(16))

    def test_bands_nearly_disjoint_at_4k(self):
        b, obj = setup(pages=16)
        bands = [set(band_offsets(obj, 4, i).tolist()) for i in range(4)]
        overlap = sum(len(bands[i] & bands[i + 1]) for i in range(3))
        assert overlap == 0

    def test_bands_overlap_with_large_pages(self):
        b = TraceBuilder("t", 4, 2 * 1024 * 1024, seed=0)
        obj = b.alloc("obj", 3 * 2 * 1024 * 1024)  # 3 pages, 4 bands
        bands = [set(band_offsets(obj, 4, i).tolist()) for i in range(4)]
        assert bands[0] & bands[1]  # boundary page shared

    def test_tiny_object_single_page_all_bands(self):
        b = TraceBuilder("t", 4, 2 * 1024 * 1024, seed=0)
        obj = b.alloc("obj", 4096)
        for band in range(4):
            assert band_offsets(obj, 4, band).tolist() == [0]

    def test_band_out_of_range(self):
        b, obj = setup()
        with pytest.raises(ValueError):
            band_offsets(obj, 4, 4)


class TestEmitters:
    def test_partitioned_pages_private(self):
        b, obj = setup(pages=16)
        emit_partitioned(b, obj, write=True, weight=2)
        readers, writers = touched_by(b.end_phase(), 4)
        assert all(len(gpus) == 1 for gpus in writers.values())
        assert len(writers) == 16

    def test_partitioned_shift_rotates_ownership(self):
        b, obj = setup(pages=16)
        emit_partitioned(b, obj, write=True, weight=1, shift=1)
        _, writers = touched_by(b.end_phase(), 4)
        # Band 0 (pages 0-3) is written by GPU 3 under shift=1.
        assert writers[obj.first_page] == {3}

    def test_broadcast_touches_everything_by_everyone(self):
        b, obj = setup(pages=8)
        emit_broadcast(b, obj, write=False, weight=1)
        readers, _ = touched_by(b.end_phase(), 4)
        assert all(gpus == {0, 1, 2, 3} for gpus in readers.values())
        assert len(readers) == 8

    def test_halo_shares_boundary_pages(self):
        b, obj = setup(pages=16)
        emit_halo(b, obj, write=False, weight=1, halo_pages=1)
        readers, _ = touched_by(b.end_phase(), 4)
        # Page 3 (end of band 0) also read by GPU 1.
        assert readers[obj.first_page + 3] == {0, 1}
        # Interior page 1 private.
        assert readers[obj.first_page + 1] == {0}

    def test_periodic_halo_wraps(self):
        b, obj = setup(pages=16)
        emit_halo(b, obj, write=False, weight=1, halo_pages=1, periodic=True)
        readers, _ = touched_by(b.end_phase(), 4)
        # GPU 0 also reads the last page of GPU 3's band.
        assert 0 in readers[obj.first_page + 15]

    def test_gather_samples_all_bands(self):
        b, obj = setup(pages=32)
        emit_gather(b, obj, write=False, weight=1, fraction=1.0, rng=b.rng)
        readers, _ = touched_by(b.end_phase(), 4)
        assert all(gpus == {0, 1, 2, 3} for gpus in readers.values())

    def test_gather_fraction_bounds(self):
        b, obj = setup()
        with pytest.raises(ValueError):
            emit_gather(b, obj, write=False, weight=1, fraction=0.0,
                        rng=b.rng)

    def test_random_respects_write_ratio(self):
        b, obj = setup(pages=100)
        emit_random(b, obj, weight=1, fraction=1.0, write_ratio=0.3,
                    rng=b.rng)
        phase = b.end_phase()
        writes = int(phase.write.sum())
        assert writes == 4 * 30  # 30% of 100 pages per GPU

    def test_random_write_ratio_bounds(self):
        b, obj = setup()
        with pytest.raises(ValueError):
            emit_random(b, obj, weight=1, fraction=0.5, write_ratio=1.5,
                        rng=b.rng)

    def test_owner_init_single_gpu_writes_all(self):
        b, obj = setup(pages=8)
        emit_owner_init(b, obj, weight=1, gpu=2)
        _, writers = touched_by(b.end_phase(), 4)
        assert all(gpus == {2} for gpus in writers.values())
        assert len(writers) == 8

    def test_halo_negative_rejected(self):
        b, obj = setup()
        with pytest.raises(ValueError):
            emit_halo(b, obj, write=False, weight=1, halo_pages=-1)
