"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "oasis" in out
        assert "fig15" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "nope"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSimulate:
    def test_default_policies(self, capsys):
        assert main(["simulate", "mm", "--footprint-mb", "4"]) == 0
        out = capsys.readouterr().out
        assert "on_touch" in out
        assert "oasis" in out

    def test_explicit_policy_list(self, capsys):
        assert main([
            "simulate", "mm", "--footprint-mb", "4",
            "--policy", "on_touch", "--policy", "duplication",
        ]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out

    def test_config_flags(self, capsys):
        assert main([
            "simulate", "mm", "--footprint-mb", "4", "--gpus", "2",
            "--distributed", "--reset-threshold", "4",
            "--policy", "oasis",
        ]) == 0


class TestCharacterize:
    def test_characterize_prints_objects(self, capsys):
        assert main(["characterize", "mt"]) == 0
        out = capsys.readouterr().out
        assert "MT_Input" in out
        assert "shared-read-only" in out


class TestExperiment:
    def test_experiment_runs_and_saves(self, capsys, tmp_path):
        assert main(["experiment", "table1", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Baseline multi-GPU configuration" in out
        assert (tmp_path / "table1.txt").exists()


class TestSweep:
    def test_sweep_prints_speedup_table(self, capsys):
        assert main([
            "sweep", "--apps", "mm", "--footprint-mb", "4",
            "--policy", "on_touch", "--policy", "ideal",
        ]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out
        assert "ideal" in out

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--policy", "bogus"])


class TestTrace:
    def test_trace_writes_valid_chrome_trace(self, capsys, tmp_path):
        import json

        from repro.obs import validate_chrome_trace

        out_path = tmp_path / "mm.trace.json"
        assert main([
            "trace", "mm", "--policy", "oasis", "--footprint-mb", "4",
            "--out", str(out_path),
        ]) == 0
        payload = json.loads(out_path.read_text())
        assert validate_chrome_trace(payload) == []
        assert payload["otherData"]["workload"] == "mm"
        assert payload["otherData"]["policy"] == "oasis"
        printed = capsys.readouterr().out
        assert str(out_path) in printed

    def test_trace_optional_sidecar_outputs(self, tmp_path):
        import json

        jsonl = tmp_path / "events.jsonl"
        prom = tmp_path / "run.prom"
        assert main([
            "trace", "mm", "--policy", "on_touch", "--footprint-mb", "4",
            "--out", str(tmp_path / "t.json"),
            "--jsonl", str(jsonl), "--metrics-out", str(prom),
        ]) == 0
        lines = jsonl.read_text().splitlines()
        assert lines and all(json.loads(l)["track"] for l in lines)
        assert "repro_fault_page_total" in prom.read_text()

    def test_trace_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "mm", "--policy", "bogus"])


class TestObservedSimulate:
    def test_simulate_trace_flag_writes_per_policy_files(self, tmp_path):
        base = tmp_path / "sim.trace.json"
        assert main([
            "simulate", "mm", "--footprint-mb", "4",
            "--policy", "on_touch", "--policy", "oasis",
            "--trace", str(base),
        ]) == 0
        assert (tmp_path / "sim.trace.on_touch.json").exists()
        assert (tmp_path / "sim.trace.oasis.json").exists()

    def test_simulate_metrics_out_single_policy(self, tmp_path):
        prom = tmp_path / "run.prom"
        assert main([
            "simulate", "mm", "--footprint-mb", "4",
            "--policy", "oasis", "--metrics-out", str(prom),
        ]) == 0
        assert "repro_migration_count_total" in prom.read_text()
