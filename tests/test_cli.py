"""CLI tests."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "bfs" in out
        assert "oasis" in out
        assert "fig15" in out

    def test_unknown_app_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "nope"])

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])

    def test_command_required(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestSimulate:
    def test_default_policies(self, capsys):
        assert main(["simulate", "mm", "--footprint-mb", "4"]) == 0
        out = capsys.readouterr().out
        assert "on_touch" in out
        assert "oasis" in out

    def test_explicit_policy_list(self, capsys):
        assert main([
            "simulate", "mm", "--footprint-mb", "4",
            "--policy", "on_touch", "--policy", "duplication",
        ]) == 0
        out = capsys.readouterr().out
        assert "duplication" in out

    def test_config_flags(self, capsys):
        assert main([
            "simulate", "mm", "--footprint-mb", "4", "--gpus", "2",
            "--distributed", "--reset-threshold", "4",
            "--policy", "oasis",
        ]) == 0


class TestCharacterize:
    def test_characterize_prints_objects(self, capsys):
        assert main(["characterize", "mt"]) == 0
        out = capsys.readouterr().out
        assert "MT_Input" in out
        assert "shared-read-only" in out


class TestExperiment:
    def test_experiment_runs_and_saves(self, capsys, tmp_path):
        assert main(["experiment", "table1", "--save", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Baseline multi-GPU configuration" in out
        assert (tmp_path / "table1.txt").exists()


class TestSweep:
    def test_sweep_prints_speedup_table(self, capsys):
        assert main([
            "sweep", "--apps", "mm", "--footprint-mb", "4",
            "--policy", "on_touch", "--policy", "ideal",
        ]) == 0
        out = capsys.readouterr().out
        assert "geomean" in out
        assert "ideal" in out

    def test_sweep_rejects_unknown_policy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["sweep", "--policy", "bogus"])
