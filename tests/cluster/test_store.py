"""SharedResultStore: the bounded LRU over the shared disk tier."""

from __future__ import annotations

import json

import pytest

from repro.harness.diskcache import DiskCache, SharedResultStore


@pytest.fixture
def store(tmp_path):
    return SharedResultStore(tmp_path / "shared", capacity=4)


def test_round_trip_and_lru_hit(store, canned_result):
    assert store.load("k" * 64) is None
    assert store.stats()["misses"] == 1
    assert store.store("k" * 64, canned_result)
    loaded = store.load("k" * 64)
    assert loaded is not None
    assert loaded.to_dict() == canned_result.to_dict()
    # Write-through populated the LRU, so the load never touched disk.
    stats = store.stats()
    assert stats["lru_hits"] == 1
    assert stats["shared_hits"] == 0


def test_cross_instance_shared_tier(tmp_path, canned_result):
    writer = SharedResultStore(tmp_path / "shared")
    writer.store("a" * 64, canned_result)
    reader = SharedResultStore(tmp_path / "shared")
    loaded = reader.load("a" * 64)
    assert loaded is not None
    assert loaded.to_dict() == canned_result.to_dict()
    stats = reader.stats()
    assert stats["shared_hits"] == 1 and stats["lru_hits"] == 0
    # Promotion: the second read is an LRU hit.
    reader.load("a" * 64)
    assert reader.stats()["lru_hits"] == 1


def test_lru_eviction_is_bounded(store, canned_result):
    keys = [f"{i:02d}" + "e" * 62 for i in range(6)]
    for key in keys:
        store.store(key, canned_result)
    stats = store.stats()
    assert stats["lru_size"] == 4
    assert stats["evictions"] == 2
    # Evicted entries still load from the shared disk tier.
    assert store.load(keys[0]) is not None
    assert store.stats()["shared_hits"] == 1


def test_remember_is_lru_only(store, canned_result):
    store.remember("b" * 64, canned_result)
    assert store.load("b" * 64) is not None
    assert not store.disk.has("b" * 64)
    assert store.stats()["stores"] == 0


def test_contains_checks_both_tiers(tmp_path, canned_result):
    store = SharedResultStore(tmp_path / "shared", capacity=2)
    assert not store.contains("c" * 64)
    store.remember("c" * 64, canned_result)
    assert store.contains("c" * 64)          # LRU only
    store.store("d" * 64, canned_result)
    fresh = SharedResultStore(tmp_path / "shared")
    assert fresh.contains("d" * 64)          # disk only


def test_corrupt_shared_entry_degrades_to_miss(store, canned_result):
    store.store("f" * 64, canned_result)
    path = store.disk._path("f" * 64)
    payload = json.loads(path.read_text())
    payload["result"]["total_time_ns"] = 123456789  # break the checksum
    path.write_text(json.dumps(payload))
    fresh = SharedResultStore(store.root, capacity=4)
    assert fresh.load("f" * 64) is None
    assert fresh.stats()["misses"] == 1
    assert fresh.disk.quarantined == 1
    assert (store.root / "quarantine").exists()


def test_diskcache_has(tmp_path, canned_result):
    cache = DiskCache(tmp_path / "plain")
    assert not cache.has("a" * 64)
    cache.store("a" * 64, canned_result)
    assert cache.has("a" * 64)
