"""Router logic against protocol stubs: routing, shedding, failover,
single-flight, and journal stealing — no subprocesses, no simulations."""

from __future__ import annotations

import threading
import time

import pytest

from repro import baseline_config
from repro.chaos import ChaosPlan, ClusterChaos
from repro.chaos.plan import WorkerKill
from repro.harness.diskcache import cache_key
from repro.serve.client import ServeClient, ServerBusy
from repro.serve.journal import JobJournal

from tests.cluster.conftest import RouterThread, StubWorker


@pytest.fixture
def sut(tmp_path):
    router = RouterThread(tmp_path)
    yield router
    router.close()


def _client(sut, timeout_s: float = 30.0) -> ServeClient:
    return ServeClient("127.0.0.1", sut.port, timeout_s=timeout_s)


def _spec(i: int) -> dict:
    return {"app": "mm", "policy": "on_touch", "footprint_mb": float(i + 1)}


def test_routing_affinity_matches_ring(sut, canned_result):
    stubs = {name: StubWorker(canned_result.to_dict())
             for name in ("w0", "w1")}
    try:
        for name, stub in stubs.items():
            sut.register(name, stub.url)
        client = _client(sut)
        expected: dict[str, int] = {"w0": 0, "w1": 0}
        for i in range(8):
            routed = client.post("/route", _spec(i))["worker"]
            expected[routed] += 1
            result = client.submit("mm", "on_touch",
                                   footprint_mb=float(i + 1))
            assert result.total_time_ns == canned_result.total_time_ns
        assert {name: stub.count() for name, stub in stubs.items()} \
            == expected
        assert expected["w0"] > 0 and expected["w1"] > 0
    finally:
        for stub in stubs.values():
            stub.close()


def test_repeat_submission_served_from_store_not_worker(sut, canned_result):
    stub = StubWorker(canned_result.to_dict())
    try:
        sut.register("w0", stub.url)
        client = _client(sut)
        client.submit("mm", "on_touch", footprint_mb=4.0)
        client.submit("mm", "on_touch", footprint_mb=4.0)
        assert stub.count() == 1
        assert client.health()["cache_hits"] == 1.0
    finally:
        stub.close()


def test_worker_busy_retry_after_preserved_end_to_end(sut, canned_result):
    """A worker 429's hint survives the router hop as a 503 hint."""
    stub = StubWorker(canned_result.to_dict(), mode="busy",
                      retry_after_s=7.5)
    try:
        sut.register("w0", stub.url)
        with pytest.raises(ServerBusy) as busy:
            _client(sut).submit("mm", "on_touch", footprint_mb=4.0)
        assert busy.value.status == 503
        assert busy.value.retry_after_s == 7.5
    finally:
        stub.close()


def test_router_single_flight_collapses_waiters(sut, canned_result):
    stub = StubWorker(canned_result.to_dict(), mode="slow")
    try:
        sut.register("w0", stub.url)
        results, errors = [], []

        def submit():
            try:
                results.append(_client(sut).submit(
                    "mm", "on_touch", footprint_mb=4.0
                ))
            except Exception as exc:  # noqa: BLE001 - collected for assert
                errors.append(exc)

        threads = [threading.Thread(target=submit) for _ in range(8)]
        for t in threads:
            t.start()
        deadline = time.monotonic() + 10
        while sut.router.stats()["deduped"] < 7:
            assert time.monotonic() < deadline, "waiters never attached"
            time.sleep(0.01)
        stub.release.set()
        for t in threads:
            t.join(timeout=30)
        assert not errors
        assert len(results) == 8
        assert stub.count() == 1
        assert {r.total_time_ns for r in results} \
            == {canned_result.total_time_ns}
    finally:
        stub.close()


def test_lane_shedding_spares_interactive(sut, canned_result):
    """With the forwarding window nearly full, bulk is shed (503 with a
    hint) while interactive still gets through."""
    stub = StubWorker(canned_result.to_dict(), mode="slow")
    occupiers: list[threading.Thread] = []
    try:
        sut.router.max_inflight = 4   # bulk window = 2, batch = 3
        sut.register("w0", stub.url)

        def occupy(i: int):
            _client(sut, timeout_s=60).submit(
                "mm", "on_touch", footprint_mb=float(10 + i), lane="bulk"
            )

        occupiers = [threading.Thread(target=occupy, args=(i,))
                     for i in range(2)]
        for t in occupiers:
            t.start()
        deadline = time.monotonic() + 10
        while sut.router.stats()["forwarding"] < 2:
            assert time.monotonic() < deadline, "occupiers never forwarded"
            time.sleep(0.01)

        with pytest.raises(ServerBusy) as shed:
            _client(sut).submit("mm", "on_touch", footprint_mb=99.0,
                                lane="bulk")
        assert shed.value.retry_after_s > 0

        done = threading.Event()

        def interactive():
            _client(sut, timeout_s=60).submit(
                "mm", "on_touch", footprint_mb=77.0, lane="interactive"
            )
            done.set()

        t = threading.Thread(target=interactive)
        t.start()
        stub.release.set()
        assert done.wait(timeout=30), "interactive was wrongly shed"
        t.join(timeout=10)
        stats = sut.router.stats()
        assert stats["shed"] == 1.0
    finally:
        stub.release.set()
        for t in occupiers:
            t.join(timeout=30)
        stub.close()


def test_dead_worker_failover_and_ring_removal(tmp_path, canned_result):
    """A forward into a dead worker fails over to the ring's next owner
    and removes the corpse from the ring.  The heartbeat is slowed to a
    crawl so only the forward path can discover the death."""
    sut = RouterThread(tmp_path, heartbeat_interval_s=60.0)
    live = StubWorker(canned_result.to_dict())
    dead = StubWorker(canned_result.to_dict())
    try:
        sut.register("alive", live.url)
        sut.register("corpse", dead.url)
        dead.close()  # connection refused from now on
        client = _client(sut)
        # Drive requests until one routes to the corpse.
        hit_corpse = False
        for i in range(32):
            routed = client.post("/route", _spec(i))["worker"]
            result = client.submit("mm", "on_touch",
                                   footprint_mb=float(i + 1))
            assert result.total_time_ns == canned_result.total_time_ns
            if routed == "corpse":
                hit_corpse = True
                break
        assert hit_corpse, "no key routed to the corpse in 32 tries"
        stats = sut.router.stats()
        assert stats["workers_died"] == 1.0
        assert not stats["workers"]["corpse"]["alive"]
        assert stats["ring"]["nodes"] == ["alive"]
    finally:
        live.close()
        sut.close()


def test_heartbeat_declares_dead_and_steals_journal(sut, tmp_path,
                                                    canned_result):
    """A worker that stops answering health checks loses its journaled
    live jobs to the rest of the cluster; terminal jobs are not stolen
    and the dead journal is compacted (ownership handoff)."""
    config = baseline_config()
    journal_dir = tmp_path / "journal-corpse"
    live_spec = {"app": "mm", "policy": "on_touch", "footprint_mb": 3.0,
                 "seed": 0, "policy_kwargs": {}, "config_kwargs": {}}
    live_key = cache_key(config, "mm", "on_touch", 3.0, 0, {})
    with JobJournal(journal_dir) as journal:
        journal.append("accepted", {
            "job_id": "job-1", "spec": live_spec, "key": live_key,
            "lane": "interactive",
        })
        journal.append("accepted", {
            "job_id": "job-2", "spec": dict(live_spec, footprint_mb=5.0),
            "key": cache_key(config, "mm", "on_touch", 5.0, 0, {}),
            "lane": "batch",
        })
        journal.append("done", {"job_id": "job-2"})

    survivor = StubWorker(canned_result.to_dict())
    dead = StubWorker(canned_result.to_dict())
    try:
        sut.register("survivor", survivor.url)
        sut.register("corpse", dead.url, str(journal_dir))
        dead.close()
        deadline = time.monotonic() + 15
        while sut.router.stats()["stolen"] < 1:
            assert time.monotonic() < deadline, "steal never happened"
            time.sleep(0.05)
        # Only the live job was re-homed, with its lane preserved.
        assert survivor.count() == 1
        forwarded = survivor.submissions[0]
        assert forwarded["footprint_mb"] == 3.0
        assert forwarded["lane"] == "interactive"
        assert forwarded["wait"] is False
        # Handoff: the dead journal no longer owns any live job.
        with JobJournal(journal_dir) as journal:
            assert journal.replay().live_jobs() == {}
    finally:
        survivor.close()
        dead.close()


def test_cluster_chaos_kills_routed_worker(sut, canned_result):
    """The ClusterChaos hook kills exactly the worker the op-indexed
    forward was routed to."""
    stub = StubWorker(canned_result.to_dict())
    killed: list[str] = []
    try:
        sut.register("w0", stub.url)
        plan = ChaosPlan(worker_kills=(WorkerKill(op=1),))
        with ClusterChaos(plan, killed.append) as chaos:
            client = _client(sut)
            client.submit("mm", "on_touch", footprint_mb=1.0)  # op 0
            client.submit("mm", "on_touch", footprint_mb=2.0)  # op 1: kill
            client.submit("mm", "on_touch", footprint_mb=3.0)  # op 2
            report = chaos.report()
        assert killed == ["w0"]
        assert report["forwards_seen"] == 3
        assert report["kills_fired"] == {"w0": 1}
    finally:
        stub.close()


def test_register_revives_and_rejoins_ring(sut, canned_result):
    stub = StubWorker(canned_result.to_dict())
    replacement = StubWorker(canned_result.to_dict())
    try:
        sut.register("w0", stub.url)
        stub.close()
        client = _client(sut)
        # Kill discovery via a failed forward; ring is now empty, so
        # admission control (503) applies rather than a hang.
        with pytest.raises(ServerBusy):
            client.submit("mm", "on_touch", footprint_mb=4.0)
        assert sut.router.stats()["ring"]["nodes"] == []
        sut.register("w0", replacement.url)
        assert client.submit(
            "mm", "on_touch", footprint_mb=6.0
        ).total_time_ns == canned_result.total_time_ns
        assert sut.router.stats()["workers"]["w0"]["alive"]
    finally:
        stub.close()
        replacement.close()
