"""Consistent-hash ring properties the cluster depends on.

The satellite coverage ISSUE 8 asks for: deterministic placement
across processes (different ``PYTHONHASHSEED``), minimal remapping on
join/leave (< 2/N of keys move), and dedup-preserving routing under
the seeded Zipf traffic mix the serve bench uses.
"""

from __future__ import annotations

import json
import random
import subprocess
import sys
from pathlib import Path

import pytest

from repro import baseline_config
from repro.cluster.ring import EmptyRingError, HashRing, ring_hash
from repro.harness.diskcache import cache_key

KEYS = [f"key-{i:04d}" for i in range(2000)]


def test_owner_is_stable_within_process():
    ring = HashRing(["w0", "w1", "w2"])
    owners = {k: ring.owner(k) for k in KEYS}
    assert owners == {k: ring.owner(k) for k in KEYS}


def test_deterministic_placement_across_processes(tmp_path):
    """Two interpreters with different hash seeds agree on every owner."""
    script = tmp_path / "owners.py"
    script.write_text(
        "import json, sys\n"
        "from repro.cluster.ring import HashRing\n"
        "ring = HashRing(['w0', 'w1', 'w2', 'w3'])\n"
        "keys = [f'key-{i:04d}' for i in range(500)]\n"
        "json.dump({k: ring.owner(k) for k in keys}, sys.stdout)\n"
    )
    src = str(Path(__file__).resolve().parents[2] / "src")
    outputs = []
    for hash_seed in ("0", "12345"):
        proc = subprocess.run(
            [sys.executable, str(script)],
            env={"PYTHONPATH": src, "PYTHONHASHSEED": hash_seed,
                 "PATH": "/usr/bin:/bin"},
            capture_output=True, text=True, check=True,
        )
        outputs.append(json.loads(proc.stdout))
    assert outputs[0] == outputs[1]
    local = HashRing(["w0", "w1", "w2", "w3"])
    assert outputs[0] == {k: local.owner(k) for k in outputs[0]}


@pytest.mark.parametrize("n", [2, 4, 8])
def test_join_moves_less_than_2_over_n(n):
    ring = HashRing([f"w{i}" for i in range(n)])
    before = {k: ring.owner(k) for k in KEYS}
    ring.add("joiner")
    moved = [k for k in KEYS if ring.owner(k) != before[k]]
    # Expected move fraction is 1/(n+1); anything >= 2/(n+1) means the
    # ring is reshuffling keys it has no business touching.
    assert len(moved) / len(KEYS) < 2 / (n + 1)
    # Every moved key moved *to* the joiner, never between old nodes.
    assert all(ring.owner(k) == "joiner" for k in moved)


@pytest.mark.parametrize("n", [2, 4, 8])
def test_leave_moves_less_than_2_over_n(n):
    ring = HashRing([f"w{i}" for i in range(n)])
    before = {k: ring.owner(k) for k in KEYS}
    ring.remove("w0")
    moved = [k for k in KEYS if ring.owner(k) != before[k]]
    assert len(moved) / len(KEYS) < 2 / n
    # Only the leaver's keys moved; everyone else kept their affinity.
    assert all(before[k] == "w0" for k in moved)
    assert all(ring.owner(k) == before[k]
               for k in KEYS if before[k] != "w0")


def test_rejoin_restores_placement():
    ring = HashRing(["w0", "w1", "w2"])
    before = {k: ring.owner(k) for k in KEYS}
    ring.remove("w1")
    ring.add("w1")
    assert before == {k: ring.owner(k) for k in KEYS}


def test_spread_is_balanced():
    ring = HashRing([f"w{i}" for i in range(4)])
    spread = ring.spread(KEYS)
    fair = len(KEYS) / 4
    assert set(spread) == {f"w{i}" for i in range(4)}
    for count in spread.values():
        assert 0.5 * fair < count < 2.0 * fair


def test_lookup_failover_order():
    ring = HashRing(["w0", "w1", "w2"])
    order = ring.lookup("some-key", n=3)
    assert len(order) == 3
    assert len(set(order)) == 3
    assert order[0] == ring.owner("some-key")
    # Asking for more nodes than exist returns them all, once each.
    assert sorted(ring.lookup("some-key", n=10)) == ["w0", "w1", "w2"]


def test_empty_ring_raises():
    ring = HashRing()
    with pytest.raises(EmptyRingError):
        ring.owner("anything")
    ring.add("w0")
    assert ring.owner("anything") == "w0"
    ring.remove("w0")
    with pytest.raises(EmptyRingError):
        ring.lookup("anything")


def test_ring_hash_matches_sha256_prefix():
    assert ring_hash("abc") == int.from_bytes(
        __import__("hashlib").sha256(b"abc").digest()[:8], "big"
    )


def _zipf_cache_keys(seed: int = 20240, requests: int = 400) -> list[str]:
    """The seeded Zipf mixed-traffic key stream from ``bench_serve``."""
    config = baseline_config()
    apps = ("mm", "st", "i2c")
    policies = ("on_touch", "oasis", "access_counter")
    pool = [
        (app, policy, footprint, seed_)
        for app in apps for policy in policies
        for footprint in (4.0, 8.0) for seed_ in (0, 1)
    ]
    rng = random.Random(seed)
    rng.shuffle(pool)
    weights = [1.0 / (i + 1) for i in range(len(pool))]
    picks = rng.choices(pool, weights=weights, k=requests)
    return [
        cache_key(config, app, policy, footprint, seed_, {})
        for app, policy, footprint, seed_ in picks
    ]


def test_zipf_mix_routing_preserves_dedup():
    """Identical requests in the Zipf mix always share one owner, so
    worker-side single-flight sees the same collapse a single node
    would."""
    stream = _zipf_cache_keys()
    ring = HashRing(["w0", "w1", "w2", "w3"])
    placements: dict[str, set[str]] = {}
    for key in stream:
        placements.setdefault(key, set()).add(ring.owner(key))
    # Dedup-preserving: one owner per distinct key, ever.
    assert all(len(owners) == 1 for owners in placements.values())
    # And the dedup *rate* is unchanged by clustering: the number of
    # distinct (key, owner) pairs equals the number of distinct keys.
    pairs = {(k, next(iter(v))) for k, v in placements.items()}
    assert len(pairs) == len(placements)
    # The hot keys spread over several workers rather than one.
    owners_used = {next(iter(v)) for v in placements.values()}
    assert len(owners_used) >= 3
