"""End-to-end cluster tests: real router, real serve subprocesses.

One module-scoped 2-worker :class:`LocalCluster` backs every test; the
specs are chosen so no two tests share a cache key.  These are the
acceptance checks ISSUE 8 names: a 64-identical burst costs exactly one
simulation cluster-wide, served results are bit-identical to a direct
:func:`repro.harness.run_sim`, and a worker killed mid-burst loses zero
acknowledged jobs.
"""

from __future__ import annotations

import json
import os
import threading
import time

import pytest

from repro import baseline_config
from repro.cluster import LocalCluster
from repro.harness import run_sim
from repro.harness.diskcache import SharedResultStore, cache_key
from repro.serve.client import ServeClient


def _result_files(cluster: LocalCluster) -> int:
    return len(list(cluster.cache_dir.glob("[0-9a-f][0-9a-f]/*.json")))


@pytest.fixture(scope="module")
def cluster(tmp_path_factory):
    os.environ["REPRO_NO_FSYNC"] = "1"
    state_dir = tmp_path_factory.mktemp("cluster-state")
    with LocalCluster(workers=2, state_dir=state_dir) as running:
        yield running


def test_workers_registered_with_journals(cluster):
    stats = cluster.client().health()
    assert sorted(stats["workers"]) == ["w0", "w1"]
    for name, worker in stats["workers"].items():
        assert worker["alive"]
        assert worker["journal_dir"] == str(cluster.journal_root / name)
    assert sorted(stats["ring"]["nodes"]) == ["w0", "w1"]


def test_worker_healthz_exposes_wedge_fields(cluster):
    info = cluster.ready_info("w0")
    assert info is not None and info["name"] == "w0"
    port = int(info["url"].rsplit(":", 1)[1])
    worker = ServeClient("127.0.0.1", port, timeout_s=120.0)
    health = worker.health()
    assert health["worker"] == "w0"
    assert health["journal_segments"] >= 1
    assert health["oldest_unresolved_age_s"] is None  # idle worker
    # A resolved submission leaves the age field None and the journal
    # segment count visible for wedge detection.
    worker.submit("mm", "on_touch", footprint_mb=11.0)
    health = worker.health()
    assert health["journal_segments"] >= 1
    assert health["oldest_unresolved_age_s"] is None  # job resolved


def test_identical_burst_runs_exactly_one_simulation(cluster):
    """64 concurrent identical submissions -> one simulation, one shared
    result file, 64 bit-identical responses."""
    before = _result_files(cluster)
    results, errors = [], []
    lock = threading.Lock()

    def submit():
        try:
            result = cluster.client(timeout_s=120).submit(
                "mm", "on_touch", footprint_mb=4.0
            )
            with lock:
                results.append(result)
        except Exception as exc:  # noqa: BLE001 - collected for assert
            with lock:
                errors.append(exc)

    threads = [threading.Thread(target=submit) for _ in range(64)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=120)
    assert not errors
    assert len(results) == 64
    assert len({json.dumps(r.to_dict(), sort_keys=True)
                for r in results}) == 1
    assert _result_files(cluster) - before == 1
    stats = cluster.client().health()
    # Exactly one forward reached a worker for this key; everyone else
    # was deduplicated at the router or served from the shared store.
    assert stats["deduped"] + stats["cache_hits"] >= 63


def test_served_result_is_bit_identical_to_direct_run(cluster):
    served = cluster.client(timeout_s=120).submit(
        "mm", "oasis", footprint_mb=4.0
    )
    direct = run_sim(baseline_config(), "mm", "oasis", footprint_mb=4.0)
    assert served.to_dict() == direct.to_dict()


def test_worker_kill_mid_burst_loses_no_acked_job(cluster):
    """Kill the owner of a batch of acknowledged nowait jobs: the
    journal steal must re-home every one; all results appear in the
    shared store."""
    client = cluster.client(timeout_s=120)
    config = baseline_config()
    footprints = [2.0, 3.0, 5.0, 6.0, 7.0, 9.0]
    routed = {
        fp: client.post("/route", {
            "app": "mm", "policy": "on_touch", "footprint_mb": fp,
        })["worker"]
        for fp in footprints
    }
    victims = {owner for owner in routed.values()}
    victim = sorted(victims)[0]
    keys = {
        fp: cache_key(config, "mm", "on_touch", fp, 0, {})
        for fp in footprints
    }
    for fp in footprints:
        job = client.submit_nowait("mm", "on_touch", footprint_mb=fp)
        assert job["status"] in ("queued", "running", "done")
    cluster.kill_worker(victim)

    store = SharedResultStore(cluster.cache_dir)
    deadline = time.monotonic() + 60
    missing = set(footprints)
    while missing and time.monotonic() < deadline:
        missing = {fp for fp in missing if store.load(keys[fp]) is None}
        time.sleep(0.1)
    assert not missing, (
        f"acked jobs lost after killing {victim}: footprints {missing}"
    )
    stats = cluster.client().health()
    assert stats["workers_died"] >= 1.0
    assert not stats["workers"][victim]["alive"]

    # Restore 2-worker capacity for anything running after this module.
    cluster.spawn_worker(victim)
    cluster.wait_ready(count=2, timeout_s=30)
    assert cluster.client().health()["workers"][victim]["alive"]
