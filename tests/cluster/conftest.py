"""Fixtures for the cluster suite.

Two tiers of realism:

* **Stub workers** (`StubWorker`): a stdlib ``ThreadingHTTPServer``
  that speaks just enough of the serve protocol (``/submit``,
  ``/healthz``) to exercise the router's routing, shedding, failover
  and steal logic fast — no simulations, no subprocesses.  Responses
  reuse one real :class:`SimulationResult` computed once per session.
* **Real clusters**: the integration tests spawn a
  :class:`~repro.cluster.supervisor.LocalCluster` with genuine
  ``repro-oasis serve`` subprocesses (their own fixture, in the test
  module).

``REPRO_NO_FSYNC=1`` keeps journal/cache writes fast; every test runs
with the in-process runner caches cold so simulation counts are exact.
"""

from __future__ import annotations

import asyncio
import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import pytest

from repro.cluster.router import ClusterRouter, RouterHttpServer
from repro.harness import clear_cache, configure, run_sim


@pytest.fixture(autouse=True)
def isolated_runner(monkeypatch):
    monkeypatch.setenv("REPRO_NO_FSYNC", "1")
    monkeypatch.setenv("REPRO_RETRY_BACKOFF_S", "0")
    configure(jobs=1, disk_cache=False)
    clear_cache()
    yield
    configure(jobs=1, disk_cache=False)
    clear_cache()


@pytest.fixture(scope="session")
def canned_result():
    """One real result every stub response can reuse."""
    from repro import baseline_config

    return run_sim(baseline_config(), "mm", "on_touch", footprint_mb=4.0)


class StubWorker:
    """A serve-protocol stub: records submissions, scripted responses.

    Modes:
      * ``"ok"`` — 200/202 with the canned result.
      * ``"busy"`` — 429 with a fixed ``Retry-After``.
      * ``"slow"`` — block each /submit on :attr:`release` first.
    """

    def __init__(self, result_dict: dict, *, mode: str = "ok",
                 retry_after_s: float = 7.5) -> None:
        self.result_dict = result_dict
        self.mode = mode
        self.retry_after_s = retry_after_s
        self.release = threading.Event()
        self.submissions: list[dict] = []
        self._lock = threading.Lock()
        stub = self

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, *args) -> None:
                pass

            def _reply(self, status: int, payload: dict,
                       headers: dict | None = None) -> None:
                body = json.dumps(payload).encode()
                self.send_response(status)
                self.send_header("Content-Type", "application/json")
                self.send_header("Content-Length", str(len(body)))
                for name, value in (headers or {}).items():
                    self.send_header(name, value)
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self) -> None:
                if self.path == "/healthz":
                    self._reply(200, {
                        "status": "ok", "queue_depth": 0,
                        "oldest_unresolved_age_s": None,
                        "journal_segments": 0,
                    })
                else:
                    self._reply(404, {"error": "no route"})

            def do_POST(self) -> None:
                length = int(self.headers.get("Content-Length", 0) or 0)
                payload = json.loads(self.rfile.read(length) or b"{}")
                if self.path != "/submit":
                    self._reply(404, {"error": "no route"})
                    return
                if stub.mode == "busy":
                    self._reply(429, {"error": "stub busy"}, {
                        "Retry-After": f"{stub.retry_after_s:g}",
                    })
                    return
                if stub.mode == "slow":
                    stub.release.wait(timeout=30)
                with stub._lock:
                    stub.submissions.append(payload)
                wait = payload.get("wait", True)
                job = {"id": f"stub-{len(stub.submissions)}",
                       "status": "done" if wait else "queued",
                       "lane": payload.get("lane", "batch")}
                if wait:
                    self._reply(200, {
                        "job": job, "result": stub.result_dict,
                    })
                else:
                    self._reply(202, {"job": job})

        self._server = ThreadingHTTPServer(("127.0.0.1", 0), Handler)
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()
        self.port = self._server.server_port
        self.url = f"http://127.0.0.1:{self.port}"

    @property
    def submitted_keys(self) -> list[str]:
        with self._lock:
            return [
                (s.get("app"), s.get("policy"), s.get("footprint_mb"),
                 s.get("seed")) for s in self.submissions
            ]

    def count(self) -> int:
        with self._lock:
            return len(self.submissions)

    def close(self) -> None:
        self.release.set()
        self._server.shutdown()
        self._server.server_close()
        self._thread.join(timeout=5)


class RouterThread:
    """A live router + HTTP front end on a background event loop."""

    def __init__(self, tmp_path, **router_kwargs) -> None:
        router_kwargs.setdefault("store_dir", tmp_path / "cache")
        router_kwargs.setdefault("heartbeat_interval_s", 0.05)
        router_kwargs.setdefault("heartbeat_miss_limit", 2)
        router_kwargs.setdefault("busy_retries", 1)
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(
            target=self.loop.run_forever, name="cluster-test-loop",
            daemon=True,
        )
        self.thread.start()
        self.router = ClusterRouter(**router_kwargs)
        self.server = RouterHttpServer(self.router, port=0)
        self.run(self.server.start())
        self.port = self.server.port

    def run(self, coro, timeout: float = 60.0):
        return asyncio.run_coroutine_threadsafe(coro, self.loop).result(timeout)

    def register(self, name: str, url: str,
                 journal_dir: str | None = None) -> None:
        self.run(_call_soon(self.router.register, name, url, journal_dir))

    def close(self) -> None:
        self.run(self.server.stop())
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10.0)


async def _call_soon(fn, *args):
    return fn(*args)
