"""Sharing-degree analysis tests."""

import pytest

from repro.analysis.sharing import (
    access_concentration,
    mean_sharing_degree,
    object_sharing_degree,
    phase_access_summary,
    sharing_degree_histogram,
)
from tests.conftest import make_trace, sweep_records


class TestSharingDegree:
    def test_private_pages_degree_one(self):
        trace = make_trace({"o": 4}, [[(g, "o", g, False) for g in range(4)]])
        assert sharing_degree_histogram(trace) == {1: 4}
        assert mean_sharing_degree(trace) == 1.0

    def test_broadcast_pages_degree_four(self):
        trace = make_trace({"o": 2},
                           [sweep_records(range(4), "o", 2, False)])
        assert sharing_degree_histogram(trace) == {4: 2}
        assert mean_sharing_degree(trace) == 4.0

    def test_mixed_degrees(self):
        records = [(0, "o", 0, False), (1, "o", 0, False),
                   (2, "o", 1, True)]
        trace = make_trace({"o": 3}, [records])
        assert sharing_degree_histogram(trace) == {1: 1, 2: 1}
        assert mean_sharing_degree(trace) == pytest.approx(1.5)

    def test_untouched_trace(self):
        trace = make_trace({"o": 2}, [[]])
        assert sharing_degree_histogram(trace) == {}
        assert mean_sharing_degree(trace) == 0.0

    def test_per_object_degree(self):
        records = sweep_records(range(4), "shared", 2, False)
        records += [(0, "priv", 0, True)]
        trace = make_trace({"shared": 2, "priv": 1}, [records])
        shared = next(o for o in trace.objects if o.name == "shared")
        priv = next(o for o in trace.objects if o.name == "priv")
        assert object_sharing_degree(trace, shared) == 4.0
        assert object_sharing_degree(trace, priv) == 1.0

    def test_phase_window(self):
        trace = make_trace(
            {"o": 1},
            [[(0, "o", 0, False)], [(1, "o", 0, False)]],
        )
        assert mean_sharing_degree(trace, phases=[0]) == 1.0
        assert mean_sharing_degree(trace) == 2.0


class TestConcentration:
    def test_uniform_weights_match_fraction(self):
        records = [(0, "o", p, False, 10) for p in range(10)]
        trace = make_trace({"o": 10}, [records])
        assert access_concentration(trace, 0.5) == pytest.approx(0.5)

    def test_skewed_weights_concentrate(self):
        records = [(0, "o", 0, False, 1000)]
        records += [(0, "o", p, False, 1) for p in range(1, 10)]
        trace = make_trace({"o": 10}, [records])
        assert access_concentration(trace, 0.1) > 0.9

    def test_fraction_bounds(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)]])
        with pytest.raises(ValueError):
            access_concentration(trace, 0.0)


class TestPhaseSummary:
    def test_summary_fields(self):
        trace = make_trace(
            {"o": 4},
            [[(0, "o", 0, False, 3), (1, "o", 1, True, 7)], []],
            explicit=[True, False],
        )
        summary = phase_access_summary(trace)
        assert len(summary) == 2
        first = summary[0]
        assert first["records"] == 2
        assert first["accesses"] == 10
        assert first["write_fraction"] == pytest.approx(0.7)
        assert first["unique_pages"] == 2
        assert first["gpus"] == 2
        assert summary[1]["accesses"] == 0


class TestOnRealWorkloads:
    def test_mm_inputs_fully_shared(self):
        from repro import baseline_config
        from repro.workloads import get_workload

        trace = get_workload("mm", baseline_config(), footprint_mb=8)
        a = next(o for o in trace.objects if o.name == "MM_A")
        c = next(o for o in trace.objects if o.name == "MM_C")
        assert object_sharing_degree(trace, a) == pytest.approx(4.0)
        # C is partitioned; only band-boundary pages touch two GPUs.
        assert object_sharing_degree(trace, c) < 1.1

    def test_st_halo_pairwise_sharing(self):
        from repro import baseline_config
        from repro.workloads import get_workload

        trace = get_workload("st", baseline_config(), footprint_mb=8)
        curr = next(o for o in trace.objects if o.name == "ST_currData")
        # Tile-boundary sharing is pairwise: degree ~2, not broadcast.
        degree = object_sharing_degree(trace, curr)
        assert 1.5 < degree < 3.0
