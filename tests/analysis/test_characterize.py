"""Characterization helper tests."""

import pytest

from repro.analysis import (
    access_share_by_object,
    object_size_distribution,
    page_pattern_timeline,
    pages_by_object,
    phase_page_patterns,
    size_histogram,
)
from tests.conftest import make_trace


class TestSizes:
    def test_object_size_distribution(self):
        trace = make_trace({"a": 2, "b": 5}, [[(0, "a", 0, False)]])
        assert object_size_distribution(trace) == {"a": 2, "b": 5}

    def test_pages_by_object_fractions(self):
        trace = make_trace({"a": 2, "b": 6}, [[(0, "a", 0, False)]])
        frac = pages_by_object(trace)
        assert frac["a"] == pytest.approx(0.25)
        assert frac["b"] == pytest.approx(0.75)

    def test_size_histogram_buckets(self):
        t1 = make_trace({"one": 1, "five": 5}, [[(0, "one", 0, False)]])
        t2 = make_trace({"big": 2000}, [[(0, "big", 0, False)]])
        hist = size_histogram([t1, t2])
        assert hist["<=1"] == 1
        assert hist["<=16"] == 1
        assert hist[">1024"] == 1


class TestAccessShares:
    def test_shares_weighted_by_weight(self):
        trace = make_trace(
            {"a": 1, "b": 1},
            [[(0, "a", 0, False, 30), (0, "b", 0, False, 10)]],
        )
        shares = access_share_by_object(trace)
        assert shares["a"] == pytest.approx(0.75)
        assert shares["b"] == pytest.approx(0.25)

    def test_untouched_object_zero_share(self):
        trace = make_trace({"a": 1, "b": 1}, [[(0, "a", 0, False)]])
        assert access_share_by_object(trace)["b"] == 0.0


class TestTimeline:
    def test_single_phase_read_only_page(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)] * 8])
        grid = page_pattern_timeline(trace, n_intervals=4)
        assert grid.shape == (1, 4)
        assert all(grid[0, t] == "read-only" for t in range(4))

    def test_rw_in_same_interval(self):
        trace = make_trace({"o": 1},
                           [[(0, "o", 0, False), (0, "o", 0, True)]])
        grid = page_pattern_timeline(trace, n_intervals=1)
        assert grid[0, 0] == "rw-mix"

    def test_interval_splits_record_stream(self):
        reads = [(0, "o", 0, False)] * 4
        writes = [(0, "o", 0, True)] * 4
        trace = make_trace({"o": 1}, [reads + writes], burst=8)
        grid = page_pattern_timeline(trace, n_intervals=2)
        assert grid[0, 0] == "read-only"
        assert grid[0, 1] == "write-only"

    def test_object_restriction_and_step(self):
        trace = make_trace(
            {"a": 4, "b": 4},
            [[(0, "a", p, False) for p in range(4)]],
        )
        grid = page_pattern_timeline(trace, n_intervals=1,
                                     obj=trace.objects[0], page_step=2)
        assert grid.shape == (2, 1)

    def test_invalid_interval_count(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)]])
        with pytest.raises(ValueError):
            page_pattern_timeline(trace, n_intervals=0)


class TestPhasePagePatterns:
    def test_per_phase_grid(self):
        trace = make_trace(
            {"o": 2},
            [[(0, "o", 0, False)], [(0, "o", 0, True)],
             [(0, "o", 1, False)]],
        )
        grid = phase_page_patterns(trace, trace.objects[0])
        assert grid.shape == (2, 3)
        assert grid[0, 0] == "read-only"
        assert grid[0, 1] == "write-only"
        assert grid[0, 2] == "untouched"
        assert grid[1, 2] == "read-only"
