"""Pattern classification tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    classify_object,
    classify_pages,
    is_non_uniform_app,
    non_uniform_objects,
    page_type_percentages,
)
from tests.conftest import make_trace


class TestPageClassification:
    def test_private_read_only(self):
        trace = make_trace({"o": 2}, [[(0, "o", 0, False)]])
        cls = classify_pages(trace)
        page = trace.first_page
        assert cls.pattern_of(page) == ("private", "read-only")

    def test_shared_when_two_gpus(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False),
                                       (1, "o", 0, False)]])
        cls = classify_pages(trace)
        assert cls.sharing_of(trace.first_page) == "shared"

    def test_read_plus_write_is_rw_mix(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False),
                                       (0, "o", 0, True)]])
        cls = classify_pages(trace)
        assert cls.rw_of(trace.first_page) == "rw-mix"

    def test_untouched(self):
        trace = make_trace({"o": 2}, [[(0, "o", 0, False)]])
        cls = classify_pages(trace)
        assert cls.pattern_of(trace.first_page + 1) == ("untouched",
                                                        "untouched")

    def test_reader_and_writer_different_gpus_is_shared(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False),
                                       (1, "o", 0, True)]])
        cls = classify_pages(trace)
        assert cls.sharing_of(trace.first_page) == "shared"
        assert cls.rw_of(trace.first_page) == "rw-mix"

    def test_phase_window_selection(self):
        trace = make_trace(
            {"o": 1},
            [[(0, "o", 0, False)], [(1, "o", 0, True)]],
        )
        cls0 = classify_pages(trace, phases=[0])
        cls1 = classify_pages(trace, phases=[1])
        page = trace.first_page
        assert cls0.pattern_of(page) == ("private", "read-only")
        assert cls1.pattern_of(page) == ("private", "write-only")

    def test_slice_window(self):
        trace = make_trace(
            {"o": 1},
            [[(0, "o", 0, False)], [(1, "o", 0, True)]],
        )
        cls = classify_pages(trace, phases=slice(0, 2))
        assert cls.sharing_of(trace.first_page) == "shared"

    def test_bulk_labels_agree_with_scalar(self):
        trace = make_trace(
            {"o": 3},
            [[(0, "o", 0, False), (1, "o", 0, False), (2, "o", 1, True)]],
        )
        cls = classify_pages(trace)
        sharing = cls.sharing_labels()
        rw = cls.rw_labels()
        for i in range(3):
            page = trace.first_page + i
            assert sharing[i] == cls.sharing_of(page)
            assert rw[i] == cls.rw_of(page)


class TestObjectClassification:
    def test_uniform_object(self):
        records = [(g, "o", p, False) for g in range(2) for p in range(4)]
        trace = make_trace({"o": 4}, [records])
        obj = trace.objects[0]
        pattern = classify_object(trace, obj)
        assert pattern.label == "shared-read-only"
        assert not pattern.is_non_uniform

    def test_90_percent_rule(self):
        # 19 of 20 pages read-only, 1 written: still read-only (95%).
        records = [(0, "o", p, False) for p in range(20)]
        records.append((0, "o", 19, True))
        trace = make_trace({"o": 20}, [records])
        pattern = classify_object(trace, trace.objects[0])
        assert pattern.rw == "read-only"

    def test_below_90_percent_is_mix(self):
        # 3 of 10 pages written (70% read-only): rw-mix fallback.
        records = [(0, "o", p, False) for p in range(10)]
        records += [(0, "o", p, True) for p in range(3)]
        trace = make_trace({"o": 10}, [records])
        pattern = classify_object(trace, trace.objects[0])
        assert pattern.rw == "rw-mix"

    def test_untouched_object(self):
        trace = make_trace({"a": 1, "b": 1}, [[(0, "a", 0, False)]])
        pattern = classify_object(trace, trace.objects[1])
        assert pattern.sharing == "untouched"
        assert pattern.touched_pages == 0

    def test_non_uniform_requires_both_dimensions(self):
        # One page deviates in rw only: NOT non-uniform per the paper.
        records = [(0, "o", p, False) for p in range(20)]
        records.append((0, "o", 19, True))
        trace = make_trace({"o": 20}, [records])
        assert not classify_object(trace, trace.objects[0]).is_non_uniform

    def test_non_uniform_object_detected(self):
        # Pages 0-18: private read-only; page 19: shared rw-mix — deviates
        # in both dimensions.
        records = [(0, "o", p, False) for p in range(19)]
        records += [(0, "o", 19, True), (1, "o", 19, False)]
        trace = make_trace({"o": 20}, [records])
        assert classify_object(trace, trace.objects[0]).is_non_uniform
        assert non_uniform_objects(trace) == ["o"]
        assert is_non_uniform_app(trace)


class TestPageTypePercentages:
    def test_fractions_sum_per_family(self):
        records = [
            (0, "o", 0, False), (0, "o", 1, True),
            (1, "o", 1, True), (0, "o", 2, False), (0, "o", 2, True),
        ]
        trace = make_trace({"o": 3}, [records])
        pct = page_type_percentages(trace)
        assert pct["read-only"] + pct["write-only"] + pct["rw-mix"] == pytest.approx(1.0)
        assert pct["private"] + pct["shared"] == pytest.approx(1.0)
        assert pct["shared"] == pytest.approx(1 / 3)

    def test_empty_trace_window(self):
        trace = make_trace({"o": 1}, [[(0, "o", 0, False)], []])
        assert page_type_percentages(trace, phases=[1]) == {}


@settings(max_examples=40, deadline=None)
@given(
    records=st.lists(
        st.tuples(st.integers(0, 3), st.integers(0, 5), st.booleans()),
        min_size=1, max_size=40,
    )
)
def test_classification_matches_bruteforce(records):
    trace = make_trace(
        {"o": 6}, [[(g, "o", p, w) for g, p, w in records]]
    )
    cls = classify_pages(trace)
    readers, writers = {}, {}
    for g, p, w in records:
        (writers if w else readers).setdefault(p, set()).add(g)
    for offset in range(6):
        gpus = readers.get(offset, set()) | writers.get(offset, set())
        page = trace.first_page + offset
        if not gpus:
            assert cls.sharing_of(page) == "untouched"
            continue
        assert cls.sharing_of(page) == (
            "shared" if len(gpus) > 1 else "private"
        )
        has_r = offset in readers
        has_w = offset in writers
        expected = "rw-mix" if has_r and has_w else (
            "read-only" if has_r else "write-only"
        )
        assert cls.rw_of(page) == expected
