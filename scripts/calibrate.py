"""Try latency-model variants and report headline ratios."""
import sys
import time

from repro.config import LatencyModel, SystemConfig
from repro import make_policy, simulate, get_workload
from repro.workloads import APPLICATION_ORDER

POL = ["on_touch", "access_counter", "duplication", "ideal", "grit", "oasis",
       "oasis_inmem"]


def run(tag, apps=APPLICATION_ORDER, **lat_kwargs):
    cfg = SystemConfig(latency=LatencyModel(**lat_kwargs))
    geo = {p: 1.0 for p in POL}
    rows = []
    for app in apps:
        tr = get_workload(app, cfg)
        t = {p: simulate(cfg, tr, make_policy(p)).total_time_ns for p in POL}
        base = t["on_touch"]
        rows.append(f"  {app:9s} " + " ".join(f"{base / t[p]:8.2f}" for p in POL))
        for p in POL:
            geo[p] *= base / t[p]
    n = len(apps)
    g = {p: geo[p] ** (1 / n) for p in POL}
    print(f"== {tag} ==")
    print(f"  {'app':9s} " + " ".join(f"{p[:8]:>8s}" for p in POL))
    for r in rows:
        print(r)
    print(f"  {'geomean':9s} " + " ".join(f"{g[p]:8.2f}" for p in POL))
    print(f"  headline: oasis/ontouch={g['oasis']:.2f} (1.64) "
          f"oasis/counter={g['oasis']/g['access_counter']:.2f} (1.35) "
          f"oasis/dup={g['oasis']/g['duplication']:.2f} (1.42) "
          f"oasis/grit={g['oasis']/g['grit']:.2f} (1.12) "
          f"inmem/oasis={g['oasis_inmem']/g['oasis']:.3f} (0.98)",
          flush=True)


if __name__ == "__main__":
    t0 = time.time()
    run("v1: fs5000 occ800 inv2000 c60",
        fault_service_ns=5000, fault_driver_occupancy_ns=800,
        pte_invalidate_ns=2000, compute_ns_per_access=60)
    print(f"[{time.time()-t0:.0f}s]")
