"""Replay-performance smoke benchmark: the perf trajectory for PRs.

Times single-run replay (fast path vs ``REPRO_FORCE_SLOW_PATH``) for a
fixed three-app subset (mm, st, i2c — the steady-state-heavy traces),
exercises the two-level result cache, and writes
``results/BENCH_replay.json`` with records/sec, wall time per run and
the cache hit rate so successive PRs can compare like for like.

Usage::

    PYTHONPATH=src python scripts/bench_smoke.py   # or: make bench-smoke
"""

from __future__ import annotations

import os
import sys
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))
sys.path.insert(0, str(REPO_ROOT))

from repro import baseline_config, get_workload, make_policy  # noqa: E402
from repro.harness import cache_stats, configure, run_sim  # noqa: E402
from repro.harness.runner import clear_cache  # noqa: E402
from repro.sim.machine import Machine  # noqa: E402

APPS = ("mm", "st", "i2c")
POLICY = "on_touch"


def time_replay(config, trace, slow: bool) -> float:
    """Wall time of one full replay, built fresh (no warm caches)."""
    if slow:
        os.environ["REPRO_FORCE_SLOW_PATH"] = "1"
    else:
        os.environ.pop("REPRO_FORCE_SLOW_PATH", None)
    try:
        machine = Machine(config, trace, make_policy(POLICY))
        t0 = time.perf_counter()
        machine.run()
        return time.perf_counter() - t0
    finally:
        os.environ.pop("REPRO_FORCE_SLOW_PATH", None)


def bench_replay(config) -> list[dict]:
    rows = []
    for app in APPS:
        trace = get_workload(app, config)
        records = trace.total_records
        fast_s = min(time_replay(config, trace, slow=False) for _ in range(3))
        slow_s = min(time_replay(config, trace, slow=True) for _ in range(2))
        rows.append(
            {
                "app": app,
                "policy": POLICY,
                "records": records,
                "fast_wall_s": round(fast_s, 4),
                "slow_wall_s": round(slow_s, 4),
                "speedup": round(slow_s / fast_s, 2),
                "records_per_sec": round(records / fast_s),
            }
        )
        print(
            f"{app:6s} {records:8d} records  fast {fast_s:6.3f}s  "
            f"slow {slow_s:6.3f}s  speedup {slow_s / fast_s:5.2f}x  "
            f"({records / fast_s:,.0f} rec/s)"
        )
    return rows


def bench_cache(config) -> dict:
    """Cold+warm pass through the harness; returns the hit rate."""
    with tempfile.TemporaryDirectory() as tmp:
        configure(disk_cache=True, cache_dir=tmp)
        try:
            for app in APPS:
                run_sim(config, app, POLICY, footprint_mb=8.0)
            clear_cache()  # drop in-process entries; disk survives
            for app in APPS:
                run_sim(config, app, POLICY, footprint_mb=8.0)
            stats = cache_stats()
        finally:
            configure(disk_cache=False)
            clear_cache()
    lookups = stats["disk_hits"] + stats["disk_misses"]
    rate = stats["disk_hits"] / lookups if lookups else 0.0
    print(
        f"cache  warm pass: {stats['disk_hits']}/{len(APPS)} runs from disk "
        f"(hit rate {rate:.0%})"
    )
    return {
        "disk_hits": stats["disk_hits"],
        "disk_misses": stats["disk_misses"],
        "hit_rate": round(rate, 3),
    }


def bench_fault_overhead(config) -> dict:
    """Fault-free runs must pay nothing for the injection subsystem.

    An empty FaultPlan must keep the vectorized fast path engaged and
    produce bit-identical results; its wall time should sit within noise
    of the plan-free run.
    """
    from repro.faults import FaultPlan
    from repro.sim import simulate

    empty = config.replace(fault_plan=FaultPlan())
    trace = get_workload("st", config)
    fast_machine = Machine(empty, trace, make_policy(POLICY))
    assert fast_machine._fast is not None, "empty plan disabled the fast path"
    plain_result = simulate(config, trace, make_policy(POLICY))
    empty_result = simulate(empty, trace, make_policy(POLICY))
    assert plain_result.to_dict() == empty_result.to_dict(), (
        "empty FaultPlan changed the simulation result"
    )
    plain_s = min(time_replay(config, trace, slow=False) for _ in range(3))
    empty_s = min(time_replay(empty, trace, slow=False) for _ in range(3))
    overhead = empty_s / plain_s - 1.0
    print(
        f"faults st: plain {plain_s:6.3f}s  empty-plan {empty_s:6.3f}s  "
        f"overhead {overhead:+.1%} (fast path engaged, bit-identical)"
    )
    return {
        "app": "st",
        "plain_wall_s": round(plain_s, 4),
        "empty_plan_wall_s": round(empty_s, 4),
        "overhead": round(overhead, 4),
        "fast_path": True,
        "bit_identical": True,
    }


def bench_obs_overhead(config, pairs: int = 9) -> dict:
    """Observability must be free when off and cheap when on.

    Off: passing the null tracer keeps the vectorized fast path engaged
    and the result bit-identical to an uninstrumented run.  On: a
    recording tracer forces the per-record path, so its cost is judged
    against the forced-slow-path baseline on one small workload — it
    must stay within 10%.

    Shared hosts show 2x run-to-run wall-clock swings that drift on
    multi-second scales, so the two variants are timed as back-to-back
    interleaved pairs and the overhead is the median of the per-pair
    ratios: each pair sees (nearly) the same host load, and the median
    discards the pairs a load shift lands inside.
    """
    from statistics import median

    from repro.obs import NULL_TRACER, MetricsRegistry, RecordingTracer
    from repro.sim import simulate

    app = "pr"
    trace = get_workload(app, config, footprint_mb=8.0)
    null_machine = Machine(config, trace, make_policy(POLICY), tracer=NULL_TRACER)
    assert null_machine._fast is not None, "null tracer disabled the fast path"
    plain_result = simulate(config, trace, make_policy(POLICY))
    null_result = simulate(config, trace, make_policy(POLICY), tracer=NULL_TRACER)
    assert plain_result.to_dict() == null_result.to_dict(), (
        "null tracer changed the simulation result"
    )

    def time_observed() -> float:
        machine = Machine(
            config, trace, make_policy(POLICY),
            tracer=RecordingTracer(), metrics=MetricsRegistry(),
        )
        t0 = time.perf_counter()
        machine.run()
        return time.perf_counter() - t0

    samples = [
        (time_replay(config, trace, slow=True), time_observed())
        for _ in range(pairs)
    ]
    overhead = median(t / s for s, t in samples) - 1.0
    slow_s = min(s for s, _ in samples)
    traced_s = min(t for _, t in samples)
    print(
        f"obs    {app}: slow-path {slow_s:6.3f}s  traced {traced_s:6.3f}s  "
        f"overhead {overhead:+.1%} median of {pairs} interleaved pairs "
        f"(null tracer bit-identical, fast path kept)"
    )
    return {
        "app": app,
        "footprint_mb": 8.0,
        "pairs": pairs,
        "slow_path_wall_s": round(slow_s, 4),
        "traced_wall_s": round(traced_s, 4),
        "overhead": round(overhead, 4),
        "null_tracer_bit_identical": True,
        "null_tracer_fast_path": True,
    }


def main() -> int:
    config = baseline_config()
    replay = bench_replay(config)
    cache = bench_cache(config)
    faults = bench_fault_overhead(config)
    obs = bench_obs_overhead(config)
    payload = {
        "benchmark": "replay_smoke",
        "apps": list(APPS),
        "policy": POLICY,
        "replay": replay,
        "cache": cache,
        "fault_overhead": faults,
        "obs_overhead": obs,
        "timestamp": time.time(),
    }
    from benchmarks.conftest import write_bench_artifact

    path = write_bench_artifact("replay", payload)
    print(f"[saved to {path}]")
    worst = min(row["speedup"] for row in replay)
    status = 0
    if worst < 3.0:
        print(f"WARNING: worst-case replay speedup {worst:.2f}x is below 3x")
        status = 1
    if obs["overhead"] > 0.10:
        print(
            f"WARNING: tracing overhead {obs['overhead']:+.1%} exceeds the "
            "10% budget over the slow path"
        )
        status = 1
    return status


if __name__ == "__main__":
    sys.exit(main())
