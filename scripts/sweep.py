"""Calibration sweep: all apps x all policies, speedups vs on-touch.

Runs through the cached harness runner, so repeated sweeps reuse the
persistent result store and independent runs spread across worker
processes (``--jobs N``; ``--no-cache`` disables the disk cache).
"""
import argparse
import time

from repro import baseline_config
from repro.harness import cache_stats, configure, speedup_table
from repro.workloads import APPLICATION_ORDER

POL = ["on_touch", "access_counter", "duplication", "ideal", "grit", "oasis",
       "oasis_inmem"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("apps", nargs="*", help="subset of applications")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    args = parser.parse_args(argv)
    configure(jobs=args.jobs, disk_cache=not args.no_cache)
    apps = args.apps or list(APPLICATION_ORDER)
    t0 = time.time()
    rows, _geo = speedup_table(baseline_config(), apps, POL)
    print(f"{'app':9s} " + " ".join(f"{p[:9]:>9s}" for p in POL))
    for row in rows:
        print(f"{row[0]:9s} " + " ".join(f"{v:9.2f}" for v in row[1:]),
              flush=True)
    stats = cache_stats()
    print(f"[{time.time() - t0:.0f}s  mem {stats['hits']}h/"
          f"{stats['misses']}m  disk {stats['disk_hits']}h/"
          f"{stats['disk_misses']}m]")


if __name__ == "__main__":
    main()
