"""Calibration sweep: all apps x all policies, speedups vs on-touch."""
import sys
import time

from repro import baseline_config, make_policy, simulate, get_workload
from repro.workloads import APPLICATION_ORDER

POL = ["on_touch", "access_counter", "duplication", "ideal", "grit", "oasis",
       "oasis_inmem"]


def main(apps=None):
    cfg = baseline_config()
    apps = apps or APPLICATION_ORDER
    print(f"{'app':9s} " + " ".join(f"{p[:9]:>9s}" for p in POL))
    geo = {p: 1.0 for p in POL}
    n = 0
    t0 = time.time()
    for app in apps:
        tr = get_workload(app, cfg)
        times = {p: simulate(cfg, tr, make_policy(p)).total_time_ns for p in POL}
        base = times["on_touch"]
        print(f"{app:9s} " + " ".join(f"{base / times[p]:9.2f}" for p in POL),
              flush=True)
        for p in POL:
            geo[p] *= base / times[p]
        n += 1
    print(f"{'geomean':9s} " + " ".join(f"{geo[p] ** (1 / n):9.2f}" for p in POL))
    print(f"[{time.time() - t0:.0f}s]")


if __name__ == "__main__":
    main(sys.argv[1:] or None)
