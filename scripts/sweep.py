"""Calibration sweep: all apps x all policies, speedups vs on-touch.

Runs through the cached harness runner, so repeated sweeps reuse the
persistent result store and independent runs spread across worker
processes (``--jobs N``; ``--no-cache`` disables the disk cache).  The
sweep fast path (phase-prefix snapshot memoization, see
``repro.sim.sweep``) is on by default — ``--no-memo`` disables it,
``--memo-dir DIR`` persists the snapshots so later sweeps resume across
processes.
"""
import argparse
import time

from repro import baseline_config
from repro.harness import cache_stats, configure, memo_stats, speedup_table
from repro.workloads import APPLICATION_ORDER

POL = ["on_touch", "access_counter", "duplication", "ideal", "grit", "oasis",
       "oasis_inmem"]


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("apps", nargs="*", help="subset of applications")
    parser.add_argument("--jobs", type=int, default=1)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--no-memo", action="store_true",
                        help="disable phase-prefix snapshot memoization")
    parser.add_argument("--memo-dir", default=None, metavar="DIR",
                        help="persist phase snapshots under DIR")
    args = parser.parse_args(argv)
    configure(jobs=args.jobs, disk_cache=not args.no_cache,
              memo=not args.no_memo, memo_dir=args.memo_dir)
    apps = args.apps or list(APPLICATION_ORDER)
    t0 = time.time()
    rows, _geo = speedup_table(baseline_config(), apps, POL)
    print(f"{'app':9s} " + " ".join(f"{p[:9]:>9s}" for p in POL))
    for row in rows:
        print(f"{row[0]:9s} " + " ".join(f"{v:9.2f}" for v in row[1:]),
              flush=True)
    stats = cache_stats()
    print(f"[{time.time() - t0:.0f}s  mem {stats['hits']}h/"
          f"{stats['misses']}m  disk {stats['disk_hits']}h/"
          f"{stats['disk_misses']}m]")
    memo = memo_stats()
    if memo["enabled"]:
        print(f"[memo {memo['hits']}h/{memo['misses']}m  "
              f"{memo['prefix_forks']} forks  "
              f"{memo['resumed_phases']} phases resumed  "
              f"{memo['snapshot_bytes'] / 1e6:.1f} MB]")


if __name__ == "__main__":
    main()
