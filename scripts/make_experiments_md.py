"""Generate EXPERIMENTS.md from the saved experiment reports.

Standalone wrapper over :mod:`repro.artifacts.experiments_md` — the
same generator ``scripts/reproduce_all`` runs after a full-profile
pipeline run, kept as its own script for regenerating the document
from an already-populated ``results/`` without re-running anything.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.artifacts.experiments_md import write_experiments_md  # noqa: E402
from repro.artifacts.registry import experiment_order  # noqa: E402


def main() -> None:
    missing = write_experiments_md()
    total = len(experiment_order())
    print(f"wrote EXPERIMENTS.md ({total - len(missing)} reports)")
    if missing:
        print("missing reports: " + ", ".join(missing)
              + " — run scripts/reproduce_all")


if __name__ == "__main__":
    main()
