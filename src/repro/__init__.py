"""repro — reproduction of OASIS (HPCA 2025).

Object-aware page management for multi-GPU systems, built on a
trace-driven UVM page-management simulator.

Quickstart::

    from repro import baseline_config, get_workload, make_policy, simulate

    config = baseline_config()
    trace = get_workload("mm", config)
    result = simulate(config, trace, make_policy("oasis"))
    baseline = simulate(config, trace, make_policy("on_touch"))
    print(f"OASIS speedup over on-touch: "
          f"{result.speedup_over(baseline):.2f}x")
"""

from repro.config import (
    HOST,
    PAGE_SIZE_2M,
    PAGE_SIZE_4K,
    LatencyModel,
    SystemConfig,
    TLBConfig,
    baseline_config,
)
from repro.core import OasisInMemPolicy, OasisPolicy
from repro.policies import (
    AccessCounterPolicy,
    DuplicationPolicy,
    GritPolicy,
    IdealPolicy,
    OnTouchPolicy,
    PolicyEngine,
    StaticAdvisePolicy,
)
from repro.sim import Machine, SimulationResult, simulate
from repro.workloads import APPLICATIONS, get_workload
from repro.workloads.base import ObjectDef, PhaseTrace, Trace, TraceBuilder

__version__ = "1.0.0"

#: Registry of every policy engine by report name.
POLICY_FACTORIES = {
    "on_touch": OnTouchPolicy,
    "access_counter": AccessCounterPolicy,
    "duplication": DuplicationPolicy,
    "ideal": IdealPolicy,
    "grit": GritPolicy,
    "static_advise": StaticAdvisePolicy,
    "oasis": OasisPolicy,
    "oasis_inmem": OasisInMemPolicy,
}


def make_policy(name: str, **kwargs) -> PolicyEngine:
    """Instantiate a policy engine by name.

    Valid names: ``on_touch``, ``access_counter``, ``duplication``,
    ``ideal``, ``grit``, ``static_advise``, ``oasis``, ``oasis_inmem``.
    """
    try:
        factory = POLICY_FACTORIES[name]
    except KeyError:
        known = ", ".join(sorted(POLICY_FACTORIES))
        raise ValueError(f"unknown policy {name!r}; known: {known}") from None
    return factory(**kwargs)


__all__ = [
    "APPLICATIONS",
    "AccessCounterPolicy",
    "DuplicationPolicy",
    "GritPolicy",
    "HOST",
    "IdealPolicy",
    "LatencyModel",
    "Machine",
    "ObjectDef",
    "OasisInMemPolicy",
    "OasisPolicy",
    "OnTouchPolicy",
    "PAGE_SIZE_2M",
    "PAGE_SIZE_4K",
    "PhaseTrace",
    "POLICY_FACTORIES",
    "PolicyEngine",
    "SimulationResult",
    "StaticAdvisePolicy",
    "SystemConfig",
    "TLBConfig",
    "Trace",
    "TraceBuilder",
    "baseline_config",
    "get_workload",
    "make_policy",
    "simulate",
]
