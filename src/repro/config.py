"""System configuration for the multi-GPU UVM simulator.

This module encodes the baseline configuration of Table I of the OASIS paper
(HPCA 2025) plus the analytical latency/bandwidth model the trace-driven
simulator uses to convert page-management events into time.

The configuration is split into three dataclasses:

* :class:`TLBConfig` — geometry of one TLB level.
* :class:`LatencyModel` — the analytical cost model (all values in
  nanoseconds unless noted).
* :class:`SystemConfig` — everything else: GPU count, page size, policy
  thresholds, initial placement, oversubscription.

All experiment knobs exercised by the paper's sensitivity studies (GPU count,
page size, reset threshold, initial placement, oversubscription factor) are
plain fields here so that every experiment is a ``dataclasses.replace`` away
from the baseline.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field

#: Device id used for the host CPU everywhere in the simulator. GPUs are
#: numbered ``0 .. n_gpus - 1``.
HOST = -1

#: Bytes per standard small page (Table I baseline).
PAGE_SIZE_4K = 4 * 1024

#: Bytes per large page (Section VI-B4 sensitivity study).
PAGE_SIZE_2M = 2 * 1024 * 1024

#: Size in bytes of the region covered by one hardware access counter
#: (NVIDIA counts remote accesses per 64 KB page group).
ACCESS_COUNTER_GROUP_BYTES = 64 * 1024

KB = 1024
MB = 1024 * 1024
GB = 1024 * 1024 * 1024


@dataclass(frozen=True)
class TLBConfig:
    """Geometry of a single TLB level (set-associative, LRU)."""

    entries: int
    ways: int

    def __post_init__(self) -> None:
        if self.entries <= 0 or self.ways <= 0:
            raise ValueError("TLB entries and ways must be positive")
        if self.entries % self.ways != 0:
            raise ValueError(
                f"TLB entries ({self.entries}) must be a multiple of "
                f"ways ({self.ways})"
            )

    @property
    def sets(self) -> int:
        """Number of sets in the TLB."""
        return self.entries // self.ways


@dataclass(frozen=True)
class LatencyModel:
    """Analytical latency/bandwidth model (nanoseconds / bytes-per-ns).

    The trace-driven simulator counts page-management events exactly and
    charges each event a cost from this model.  GPU memory accesses are
    heavily overlapped by the SIMT machine, so overlappable latencies are
    divided by :attr:`mem_parallelism`; page faults stall warps and
    serialize in the UVM driver, so they are divided only by
    :attr:`fault_parallelism`.
    """

    #: Compute-throughput cost per memory access: the ALU/issue work the
    #: kernel performs per operand fetched.  This is what a perfect memory
    #: system leaves behind — it dilutes NUMA penalties to realistic
    #: magnitudes (without it, fault costs dwarf everything and every
    #: policy ratio explodes).
    compute_ns_per_access: float = 210.0
    #: DRAM access on the local GPU (post-TLB).
    local_access_ns: float = 100.0
    #: One access to a page resident on a peer GPU over NVLink.
    remote_access_ns: float = 420.0
    #: One access to a page resident in host memory over PCIe.
    host_access_ns: float = 1250.0
    #: L1 TLB hit.
    l1_tlb_hit_ns: float = 1.0
    #: L2 TLB lookup (charged on L1 miss).
    l2_tlb_ns: float = 10.0
    #: GMMU page-table walk (charged on L2 TLB miss).
    walk_ns: float = 300.0
    #: GPU-side cost of one fault round trip: pipeline drain, fault message
    #: to the host, replay after resolution.
    fault_service_ns: float = 2_800.0
    #: Driver CPU occupancy per fault (batched UVM servicing amortizes the
    #: software path; this is the serialized per-fault share).
    fault_driver_occupancy_ns: float = 550.0
    #: Cost to invalidate one remote PTE + TLB shootdown on one device.
    pte_invalidate_ns: float = 2_000.0
    #: Extra driver work per read duplicate revoked by a page
    #: write-collapse: beyond the plain PTE shootdown, each copy needs the
    #: heavier protection-fault path with cross-GPU ownership transfer
    #: (the overhead the paper attributes to collapsing rw-shared pages).
    #: Widely-duplicated pages are therefore much more expensive to
    #: collapse than a single handoff copy.
    collapse_overhead_ns: float = 6_000.0
    #: Cost to update PTEs after a policy change (runs concurrently with
    #: fault resolution per Section V-E, so it is cheap but not free).
    pte_update_ns: float = 500.0
    #: Extra cost charged when GRIT misses its on-chip PA-cache and must
    #: fetch per-page metadata from memory.
    metadata_memory_ns: float = 1_200.0
    #: Cost of an O-Table lookup for hardware OASIS (on-chip, Section V-E).
    otable_ns: float = 2.0
    #: Cost of a shadow-map + O-Table-InMem lookup served by the CPU LLC.
    inmem_llc_ns: float = 120.0
    #: Cost of a shadow-map lookup that misses the CPU LLC (DRAM).
    inmem_dram_ns: float = 600.0
    #: NVLink-v2 bandwidth between GPUs (Table I: 300 GB/s).
    nvlink_bw_bytes_per_ns: float = 300.0
    #: PCIe-v4 bandwidth between CPU and GPUs (Table I: 32 GB/s).
    pcie_bw_bytes_per_ns: float = 32.0
    #: Memory-level parallelism for overlappable local accesses.
    mem_parallelism: float = 32.0
    #: Parallelism for remote (NVLink/PCIe) accesses — shallower than local
    #: because remote transactions occupy MSHRs and link credits longer.
    remote_parallelism: float = 8.0
    #: Effective parallelism for fault stalls (a faulting wavefront blocks,
    #: but other wavefronts make some progress).
    fault_parallelism: float = 4.0

    def transfer_ns(self, n_bytes: int, bytes_per_ns: float) -> float:
        """Pure data-movement time for ``n_bytes`` on a link."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return n_bytes / bytes_per_ns


@dataclass(frozen=True)
class SystemConfig:
    """Full multi-GPU system configuration (Table I baseline by default)."""

    #: Number of GPUs (paper baseline: 4; sensitivity: 8, 16).
    n_gpus: int = 4
    #: Page size in bytes (4 KB baseline; 2 MB sensitivity).
    page_size: int = PAGE_SIZE_4K
    #: Per-GPU DRAM capacity in bytes (Table I: 4 GB).
    gpu_memory_bytes: int = 4 * GB
    #: Remote-access threshold for access-counter-based migration
    #: (Table I: 256 per 64 KB group).
    access_counter_threshold: int = 256
    #: Bytes covered by one access counter.
    counter_group_bytes: int = ACCESS_COUNTER_GROUP_BYTES
    #: OASIS O-Table reset threshold (Section V-D, default 8).
    reset_threshold: int = 8
    #: Number of O-Table entries (Section V-E: 16 entries suffice).
    otable_entries: int = 16
    #: Bits used to encode the Obj_ID in the pointer (Fig. 9: 4 bits).
    obj_id_bits: int = 4
    #: L1 TLB: 32 entries, 32-way, CU-private (we model one per GPU since
    #: traces are per-GPU streams).
    l1_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(32, 32))
    #: L2 TLB: 512 entries, 16-way, shared by the GPU's CUs.
    l2_tlb: TLBConfig = field(default_factory=lambda: TLBConfig(512, 16))
    #: Where pages live before first touch: ``"host"`` (baseline) or
    #: ``"distributed"`` round-robin across GPUs (Fig. 21).
    initial_placement: str = "host"
    #: Memory oversubscription factor: 1.0 means the working set exactly
    #: fits; 1.5 means the working set is 150% of available GPU memory
    #: (Fig. 25).  ``None`` disables capacity modelling entirely.
    oversubscription: float | None = None
    #: Number of accesses one GPU issues before the interleaver switches to
    #: the next GPU's stream within a phase.
    interleave_burst: int = 32
    #: Analytical cost model.
    latency: LatencyModel = field(default_factory=LatencyModel)
    #: Faults to inject into the run (:class:`repro.faults.FaultPlan`), or
    #: ``None`` for a healthy system.  Declared as a string annotation so
    #: this module never imports :mod:`repro.faults`; the plan is a frozen
    #: dataclass, so it hashes and serializes with the rest of the config
    #: (and therefore lands in the result cache key).
    fault_plan: "FaultPlan | None" = None  # noqa: F821

    def __post_init__(self) -> None:
        if self.n_gpus < 1:
            raise ValueError("need at least one GPU")
        if self.page_size <= 0 or self.page_size & (self.page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if self.access_counter_threshold < 1:
            raise ValueError("access_counter_threshold must be >= 1")
        if self.reset_threshold < 1:
            raise ValueError("reset_threshold must be >= 1")
        if self.initial_placement not in ("host", "distributed"):
            raise ValueError(
                "initial_placement must be 'host' or 'distributed', got "
                f"{self.initial_placement!r}"
            )
        if self.counter_group_bytes % self.page_size != 0:
            # For 2 MB pages the counter group is one page.
            object.__setattr__(
                self, "counter_group_bytes", max(self.counter_group_bytes, self.page_size)
            )
        if self.oversubscription is not None and self.oversubscription <= 0:
            raise ValueError("oversubscription factor must be positive")

    @property
    def pages_per_counter_group(self) -> int:
        """Pages covered by one hardware access counter."""
        return max(1, self.counter_group_bytes // self.page_size)

    @property
    def devices(self) -> tuple[int, ...]:
        """All device ids: the host followed by every GPU."""
        return (HOST, *range(self.n_gpus))

    def replace(self, **changes) -> "SystemConfig":
        """Return a copy of this config with ``changes`` applied."""
        return dataclasses.replace(self, **changes)


def baseline_config(**changes) -> SystemConfig:
    """The Table I baseline configuration, optionally with overrides."""
    return SystemConfig(**changes) if changes else SystemConfig()
