"""The Object Policy Controller (Section V-D).

Decides the management policy of *shared* objects:

* a shared fault whose O-Table entry has ``PF Count == 0`` **learns** the
  policy from the fault's W bit — write → access-counter migration
  (O-Table policy bit 1), read → duplication (bit 0);
* a shared fault with ``PF Count != 0`` **applies** the recorded policy;
* every shared fault increments PF Count; reaching the reset threshold
  (default 8) zeroes it, so the next fault re-learns — this is the
  implicit-phase self-correction of Fig. 13;
* kernel launches (explicit phases) zero every PF count so each object's
  policy is re-learned at its next shared fault.

The private/shared filter itself (the host-page-table address-range check)
lives in the policy engine, which owns the page tables.
"""

from __future__ import annotations

from repro.core.otable import (
    OTABLE_POLICY_COUNTER,
    OTABLE_POLICY_DUPLICATION,
    OTable,
)
from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION


class ObjectPolicyController:
    """Shared-fault policy decisions backed by an O-Table."""

    def __init__(self, otable: OTable, reset_threshold: int = 8) -> None:
        if reset_threshold < 1:
            raise ValueError("reset threshold must be >= 1")
        self.otable = otable
        self.reset_threshold = reset_threshold
        #: Number of learning events (PF Count was zero).
        self.decisions = 0
        #: Number of self-correction resets (PF Count hit the threshold).
        self.resets = 0
        #: Number of explicit-phase (kernel launch) resets performed.
        self.kernel_resets = 0
        #: Implicit phase detections: threshold self-corrections whose
        #: re-learning changed the policy (Section VI-A reports these).
        self.implicit_phase_detections = 0
        #: Policy-change count, keyed by (old policy, new policy) O-Table bits.
        self.transitions: dict[tuple[int, int], int] = {}

    def on_shared_fault(self, obj_id: int, is_write: bool) -> int:
        """Handle one shared page fault; returns the PTE policy bits to apply.

        Implements the O-Table walk of Fig. 11: locate the entry by
        Obj_ID, learn or apply the policy, bump the PF count and self-
        correct at the threshold.
        """
        entry = self.otable.lookup_or_insert(obj_id)
        if entry.pf_count == 0:
            new_policy = (
                OTABLE_POLICY_COUNTER if is_write else OTABLE_POLICY_DUPLICATION
            )
            if new_policy != entry.policy:
                key = (entry.policy, new_policy)
                self.transitions[key] = self.transitions.get(key, 0) + 1
                if entry.reset_pending:
                    # A self-correction re-learned a different policy:
                    # that is an implicit phase change caught in the act.
                    self.implicit_phase_detections += 1
            entry.policy = new_policy
            entry.reset_pending = False
            self.decisions += 1
        entry.pf_count += 1
        if entry.pf_count >= self.reset_threshold:
            entry.pf_count = 0
            entry.reset_pending = True
            self.resets += 1
        if entry.policy == OTABLE_POLICY_COUNTER:
            return POLICY_COUNTER
        return POLICY_DUPLICATION

    def on_kernel_launch(self) -> None:
        """Explicit phase boundary: zero every PF count (Section V-D)."""
        self.otable.reset_all_pf_counts()
        self.kernel_resets += 1

    def on_alloc(self, obj_id: int) -> None:
        """Initialize the entry when the object is allocated."""
        self.otable.insert(obj_id)

    def on_free(self, obj_id: int) -> None:
        """Remove the entry when the object is freed."""
        self.otable.remove(obj_id)
