"""OASIS-InMem: the software-only alternative (Section V-F, Fig. 14).

When objects outnumber the available pointer-tag bits, or the upper
pointer bits are reserved for other uses (memory tagging, ECC tags),
OASIS-InMem

* keeps the O-Table in system memory (O-Table-InMem), and
* retrieves the Obj_ID through a **two-level shadow map** instead of the
  pointer tag: the first level is a 2^24-element array of pointers to
  dynamically-allocated second-level tables of 2^12 N-bit entries, each
  entry covering one 4 KB segment of virtual memory.

Both structures are hot in the CPU's last-level cache (the LLC is
underutilized since program data lives on the GPUs), so lookups cost LLC
latency after first touch; cold lines pay a DRAM access.
"""

from __future__ import annotations

import numpy as np

from repro.core.oasis import OasisPolicy

#: First-level index width: 2^24 entries (Section V-F).
LEVEL1_BITS = 24
#: Second-level table size: 2^12 entries.
LEVEL2_BITS = 12
#: Bytes of virtual memory covered by one shadow-map entry.
SEGMENT_BYTES = 4 * 1024
#: Obj_ID width in the shadow map (N = 16 supports 2^16 objects).
ENTRY_BITS = 16
#: One 64 B cache line holds 32 two-byte entries; a line therefore covers
#: 32 * 4 KB = 128 KB of virtual memory.
LINE_COVERAGE_SHIFT = 17

#: Entry value meaning "no object mapped here".
UNMAPPED = -1


class ShadowMap:
    """Two-level shadow map: virtual 4 KB segment → N-bit Obj_ID."""

    def __init__(self) -> None:
        self._tables: dict[int, np.ndarray] = {}
        self.lookups = 0

    @property
    def level2_tables(self) -> int:
        """Number of second-level tables allocated so far."""
        return len(self._tables)

    @property
    def first_level_bytes(self) -> int:
        """Fixed first-level size: 2^24 8-byte pointers = 128 MB."""
        return (1 << LEVEL1_BITS) * 8

    @property
    def second_level_bytes(self) -> int:
        """Dynamically-allocated second-level storage."""
        return self.level2_tables * (1 << LEVEL2_BITS) * (ENTRY_BITS // 8)

    @property
    def total_bytes(self) -> int:
        return self.first_level_bytes + self.second_level_bytes

    def _table_for(self, l1_index: int, create: bool) -> np.ndarray | None:
        table = self._tables.get(l1_index)
        if table is None and create:
            table = np.full(1 << LEVEL2_BITS, UNMAPPED, dtype=np.int32)
            self._tables[l1_index] = table
        return table

    def set_range(self, base_va: int, size: int, obj_id: int) -> int:
        """Map every 4 KB segment of ``[base_va, base_va+size)`` to ``obj_id``.

        Returns the number of shadow-map entries written (e.g. a 2 MB
        object writes 512 entries, Section V-F).
        """
        if size <= 0:
            raise ValueError("size must be positive")
        if not 0 <= obj_id < (1 << ENTRY_BITS):
            raise ValueError(f"obj_id {obj_id} does not fit in {ENTRY_BITS} bits")
        first_seg = base_va // SEGMENT_BYTES
        last_seg = (base_va + size - 1) // SEGMENT_BYTES
        written = 0
        seg = first_seg
        while seg <= last_seg:
            l1 = seg >> LEVEL2_BITS
            table = self._table_for(l1, create=True)
            lo = seg & ((1 << LEVEL2_BITS) - 1)
            hi = min((1 << LEVEL2_BITS) - 1, lo + (last_seg - seg))
            table[lo : hi + 1] = obj_id
            written += hi - lo + 1
            seg += hi - lo + 1
        return written

    def clear_range(self, base_va: int, size: int) -> None:
        """Unmap a freed object's segments."""
        first_seg = base_va // SEGMENT_BYTES
        last_seg = (base_va + size - 1) // SEGMENT_BYTES
        for seg in range(first_seg, last_seg + 1):
            table = self._table_for(seg >> LEVEL2_BITS, create=False)
            if table is not None:
                table[seg & ((1 << LEVEL2_BITS) - 1)] = UNMAPPED

    def lookup(self, vaddr: int) -> int:
        """Obj_ID of the segment containing ``vaddr`` (-1 if unmapped)."""
        self.lookups += 1
        seg = vaddr // SEGMENT_BYTES
        table = self._table_for(seg >> LEVEL2_BITS, create=False)
        if table is None:
            return UNMAPPED
        return int(table[seg & ((1 << LEVEL2_BITS) - 1)])


class OasisInMemPolicy(OasisPolicy):
    """OASIS with the in-memory O-Table and shadow-map Obj_ID retrieval."""

    name = "oasis_inmem"

    #: Configuration bit "0" signals shadow-map retrieval (Section V-B).
    config_bit = 0

    def __init__(self) -> None:
        super().__init__()
        self.shadow_map = ShadowMap()
        self._warm_lines: set[int] = set()

    def _on_attach(self) -> None:
        super()._on_attach()
        self._warm_lines.clear()

    def on_alloc(self, obj) -> None:
        super().on_alloc(obj)
        self.shadow_map.set_range(
            obj.allocation.base, obj.size_bytes, obj.obj_id % (1 << ENTRY_BITS)
        )

    def on_free(self, obj) -> None:
        super().on_free(obj)
        self.shadow_map.clear_range(obj.allocation.base, obj.size_bytes)

    def _metadata_lookup_cost(self, page: int) -> float:
        """Shadow-map walk + O-Table-InMem access.

        The first touch of a shadow-map cache line pays DRAM latency;
        afterwards the line stays warm in the CPU LLC.
        """
        lat = self.config.latency
        vaddr = page * self.config.page_size
        obj_id = self.shadow_map.lookup(vaddr)
        # Cross-check the software map against the machine's ground truth;
        # a mismatch means the shadow map was corrupted.
        expected = self.machine.object_id_of(page)
        if obj_id != expected % (1 << ENTRY_BITS):
            raise RuntimeError(
                f"shadow map returned obj {obj_id} for page {page}, "
                f"expected {expected}"
            )
        line = vaddr >> LINE_COVERAGE_SHIFT
        if line in self._warm_lines:
            cost = lat.inmem_llc_ns
        else:
            self._warm_lines.add(line)
            cost = lat.inmem_dram_ns
            self.stats.add("inmem.cold_lines")
        # O-Table-InMem access itself (LLC-resident).
        cost += lat.inmem_llc_ns
        self.stats.add("inmem.lookups")
        return cost

    @property
    def otable_inmem_bytes(self) -> int:
        """O-Table-InMem footprint: (4 + N) bits per object (Section V-F)."""
        n_objects = self.tracker.live_objects if self.tracker else 0
        return (4 + ENTRY_BITS) * n_objects // 8
