"""The O-Table (Fig. 11).

An on-chip, LRU-managed structure with (by default) 16 entries of 12 bits
each:

* 4-bit ``Obj_ID`` — matches the Obj_ID encoded in the pointer (the field
  widens with the pointer tag, up to 15 bits);
* 1-bit ``policy`` — 0 for duplication, 1 for access-counter-based
  migration (on-touch is the default and is never recorded here);
* 3-bit ``PF Count`` — shared page faults observed since the last reset
  (3 bits count 0..7; the default reset threshold of 8 is exactly the
  counter wrapping);
* 4-bit ``LRU`` — replacement state.

:func:`pack_entry` / :func:`unpack_entry` implement the literal 12-bit
layout; :class:`OTable` keeps the fields unpacked for speed and derives
the LRU bits from dict ordering.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Policy-bit meanings inside the O-Table (NOT the 2-bit PTE encoding).
OTABLE_POLICY_DUPLICATION = 0
OTABLE_POLICY_COUNTER = 1

#: Default field widths (Fig. 11).
OBJ_ID_BITS = 4
POLICY_BITS = 1
PF_COUNT_BITS = 3
LRU_BITS = 4

#: Total bits per entry with default widths.
ENTRY_BITS = OBJ_ID_BITS + POLICY_BITS + PF_COUNT_BITS + LRU_BITS


def pack_entry(obj_id: int, policy: int, pf_count: int, lru: int) -> int:
    """Pack one O-Table entry into its 12-bit hardware layout.

    Layout (MSB to LSB): Obj_ID(4) | policy(1) | PF Count(3) | LRU(4).
    """
    if not 0 <= obj_id < (1 << OBJ_ID_BITS):
        raise ValueError(f"obj_id {obj_id} does not fit in {OBJ_ID_BITS} bits")
    if policy not in (OTABLE_POLICY_DUPLICATION, OTABLE_POLICY_COUNTER):
        raise ValueError("policy must be 0 (duplication) or 1 (counter)")
    if not 0 <= pf_count < (1 << PF_COUNT_BITS):
        raise ValueError(f"pf_count {pf_count} does not fit in {PF_COUNT_BITS} bits")
    if not 0 <= lru < (1 << LRU_BITS):
        raise ValueError(f"lru {lru} does not fit in {LRU_BITS} bits")
    word = obj_id
    word = (word << POLICY_BITS) | policy
    word = (word << PF_COUNT_BITS) | pf_count
    word = (word << LRU_BITS) | lru
    return word


def unpack_entry(word: int) -> tuple[int, int, int, int]:
    """Inverse of :func:`pack_entry`: ``(obj_id, policy, pf_count, lru)``."""
    if not 0 <= word < (1 << ENTRY_BITS):
        raise ValueError(f"entry word {word} does not fit in {ENTRY_BITS} bits")
    lru = word & ((1 << LRU_BITS) - 1)
    word >>= LRU_BITS
    pf_count = word & ((1 << PF_COUNT_BITS) - 1)
    word >>= PF_COUNT_BITS
    policy = word & 1
    obj_id = word >> POLICY_BITS
    return obj_id, policy, pf_count, lru


@dataclass
class OTableEntry:
    """One live O-Table entry (unpacked working form).

    ``reset_pending`` is bookkeeping outside the 12-bit payload: it marks
    that the PF count was zeroed by threshold self-correction (as opposed
    to allocation or a kernel launch), which lets the controller count
    *implicit phase detections* — self-corrections whose re-learning
    actually changed the policy.
    """

    obj_id: int
    policy: int = OTABLE_POLICY_DUPLICATION
    pf_count: int = 0
    reset_pending: bool = False

    def packed(self, lru: int) -> int:
        """This entry in its 12-bit hardware form."""
        return pack_entry(self.obj_id & ((1 << OBJ_ID_BITS) - 1),
                          self.policy, self.pf_count & ((1 << PF_COUNT_BITS) - 1),
                          lru)


class OTable:
    """LRU-managed table of :class:`OTableEntry`, fixed capacity."""

    def __init__(self, capacity: int = 16) -> None:
        if capacity < 1:
            raise ValueError("O-Table needs at least one entry")
        self._capacity = capacity
        # Insertion-ordered dict: first key is the LRU entry.
        self._entries: dict[int, OTableEntry] = {}
        self.evictions = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, obj_id: int) -> bool:
        return obj_id in self._entries

    def lookup(self, obj_id: int) -> OTableEntry | None:
        """Find an entry and refresh its recency; None on miss."""
        entry = self._entries.pop(obj_id, None)
        if entry is None:
            self.misses += 1
            return None
        self._entries[obj_id] = entry
        self.hits += 1
        return entry

    def insert(self, obj_id: int) -> OTableEntry:
        """Create (or reset) the entry for ``obj_id``; evicts LRU if full.

        New entries start with policy "0" and PF Count "000"
        (Section V-C).
        """
        self._entries.pop(obj_id, None)
        if len(self._entries) >= self._capacity:
            victim = next(iter(self._entries))
            del self._entries[victim]
            self.evictions += 1
        entry = OTableEntry(obj_id=obj_id)
        self._entries[obj_id] = entry
        return entry

    def lookup_or_insert(self, obj_id: int) -> OTableEntry:
        """Lookup; on miss (freed/evicted object), re-create the entry."""
        entry = self.lookup(obj_id)
        if entry is None:
            entry = self.insert(obj_id)
        return entry

    def remove(self, obj_id: int) -> bool:
        """Drop the entry when the object is freed; True if present."""
        return self._entries.pop(obj_id, None) is not None

    def reset_all_pf_counts(self) -> int:
        """Zero every PF count (explicit phase boundary); returns #touched."""
        for entry in self._entries.values():
            entry.pf_count = 0
            # The zero is now attributable to the kernel launch, not to
            # threshold self-correction.
            entry.reset_pending = False
        return len(self._entries)

    def entries(self) -> list[OTableEntry]:
        """Entries in LRU-to-MRU order."""
        return list(self._entries.values())

    def packed_words(self) -> list[int]:
        """Every live entry in its 12-bit hardware form (LRU in the low bits).

        LRU state is encoded as the entry's position in recency order, the
        information a real 4-bit-per-entry LRU encoding carries.
        """
        return [
            entry.packed(lru=min(pos, (1 << LRU_BITS) - 1))
            for pos, entry in enumerate(self._entries.values())
        ]

    @property
    def storage_bits(self) -> int:
        """Total storage of the structure (Section V-E: 12 x 16 = 24 bytes)."""
        return ENTRY_BITS * self._capacity
