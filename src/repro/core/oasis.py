"""Hardware OASIS as a policy engine (Section V).

Fault path, following the Fig. 11 example:

1. The host page table classifies the faulting page by the physical
   address range holding its data: data on the host CPU → **private**
   (first touch), resolved with default on-touch migration and never
   forwarded to the O-Table.
2. Data on another GPU → **shared**; the fault is forwarded to the
   O-Table, indexed by the Obj_ID from the pointer tag; the OP-Controller
   learns or applies the object's policy and the fault resolves under it.
3. Resolution updates the page's PTE policy bits so subsequent faults and
   remote accesses behave per the object's policy.

Oversubscription fix (Section VI-D): a host-resident page whose PTE
policy bits differ from on-touch was evicted, not untouched — it is
treated as shared and routed to the O-Table rather than misclassified as
private.
"""

from __future__ import annotations

from repro.config import HOST
from repro.core.controller import ObjectPolicyController
from repro.core.otable import OTable
from repro.core.tracker import ObjectTracker
from repro.memory import POLICY_COUNTER, POLICY_DUPLICATION, POLICY_ON_TOUCH
from repro.policies.base import CounterMigrationMixin, PolicyEngine


class OasisPolicy(CounterMigrationMixin, PolicyEngine):
    """Object-aware page management (hardware O-Table variant).

    The constructor flags exist for ablation studies; the paper's design
    has all three enabled:

    Args:
        explicit_resets: reset PF counts at kernel launches (Section V-D's
            explicit-phase detection).
        private_filter: serve host-resident first touches with default
            on-touch via the host page table, bypassing the O-Table
            (Section V-D's private/shared filter).
        capacity_guard: under memory oversubscription, degrade duplication
            to a remote mapping when the requester is at capacity instead
            of evicting a live page for the new copy.
    """

    name = "oasis"

    #: Pointer-tag configuration bit value for this variant.
    config_bit = 1

    def __init__(
        self,
        explicit_resets: bool = True,
        private_filter: bool = True,
        capacity_guard: bool = True,
    ) -> None:
        super().__init__()
        self.explicit_resets = explicit_resets
        self.private_filter = private_filter
        self.capacity_guard = capacity_guard
        self.tracker: ObjectTracker | None = None
        self.otable: OTable | None = None
        self.controller: ObjectPolicyController | None = None

    def _on_attach(self) -> None:
        config = self.config
        self.tracker = ObjectTracker(
            obj_id_bits=config.obj_id_bits, config_bit=self.config_bit
        )
        self.otable = OTable(capacity=config.otable_entries)
        self.controller = ObjectPolicyController(
            self.otable, reset_threshold=config.reset_threshold
        )
        self.machine.set_all_policy_bits(POLICY_ON_TOUCH)

    # -- lookup-cost hook (overridden by OASIS-InMem) -----------------------

    def _metadata_lookup_cost(self, page: int) -> float:
        """Cost of finding the Obj_ID + O-Table entry for a fault."""
        return self.config.latency.otable_ns

    # -- lifecycle ----------------------------------------------------------

    def on_alloc(self, obj) -> None:
        tracked = self.tracker.malloc_managed(
            base=obj.allocation.base, size=obj.size_bytes, name=obj.name
        )
        del tracked
        self.controller.on_alloc(obj.obj_id)

    def on_free(self, obj) -> None:
        self.tracker.free(obj.obj_id)
        self.controller.on_free(obj.obj_id)

    def on_phase_start(self, phase_index: int, phase) -> None:
        # Only explicit phases (kernel launches) are visible to the
        # runtime; implicit phases are caught by PF-count self-correction.
        if phase.explicit and self.explicit_resets:
            self.controller.on_kernel_launch()
            self.stats.add("oasis.kernel_resets")

    # -- fault handling -------------------------------------------------------

    def on_fault(self, gpu: int, page: int, is_write: bool) -> float:
        pt = self.page_tables
        if pt.has_copy(gpu, page):
            # Our mapping was invalidated (e.g. a counter migration of a
            # neighbouring group page) but the data is already local.
            pt.map_local(gpu, page, writable=not pt.is_duplicated(page))
            return self.config.latency.pte_update_ns
        location = pt.location(page)
        if (
            self.private_filter
            and location == HOST
            and pt.policy(page) == POLICY_ON_TOUCH
        ):
            # Host page table filter: data on the CPU means no other GPU
            # touched it — private; resolve with default on-touch and skip
            # the O-Table entirely.
            self.stats.add("oasis.private_fault")
            return self.driver.migrate(gpu, page)
        return self._shared_fault(gpu, page, is_write)

    def on_protection_fault(self, gpu: int, page: int) -> float:
        # A write to a duplicated page: by definition shared, and the W
        # bit is set.
        return self._shared_fault(gpu, page, is_write=True)

    # -- internals ----------------------------------------------------------------

    def _shared_fault(self, gpu: int, page: int, is_write: bool) -> float:
        self.stats.add("oasis.shared_fault")
        cost = self._metadata_lookup_cost(page)
        obj_id = self.machine.object_id_of(page)
        bits = self.controller.on_shared_fault(obj_id, is_write)
        self.page_tables.set_policy(page, bits)
        cost += self.config.latency.pte_update_ns
        if bits == POLICY_COUNTER:
            cost += self._resolve_counter(gpu, page)
        elif bits == POLICY_DUPLICATION:
            if is_write:
                # Write while the object is (still) in duplication mode:
                # page write-collapse (state (4) of Fig. 13(b) follows once
                # self-correction re-learns the policy).
                cost += self.driver.collapse(gpu, page)
            elif (
                self.capacity_guard
                and self.machine.capacity.at_capacity(gpu)
                and not self.page_tables.has_copy(gpu, page)
            ):
                # Capacity guard (oversubscription): installing another
                # duplicate would evict a live page; serve the reads
                # remotely instead and let the access counters promote the
                # page if it stays hot.
                self.stats.add("oasis.duplication_degraded")
                cost += self.driver.map_remote(gpu, page)
            else:
                cost += self.driver.duplicate(gpu, page)
        else:  # pragma: no cover - controller only returns the two above
            raise RuntimeError(f"controller returned unexpected bits {bits}")
        return cost

    def _resolve_counter(self, gpu: int, page: int) -> float:
        pt = self.page_tables
        if pt.is_duplicated(page):
            # The page still has duplicates from an earlier duplication
            # phase; a write under counter mode must first collapse them.
            return self.driver.collapse(gpu, page)
        if pt.has_copy(gpu, page):
            pt.map_local(gpu, page, writable=True)
            return self.config.latency.pte_update_ns
        return self.driver.map_remote(gpu, page)
