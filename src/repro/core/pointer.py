"""Tagged-pointer encoding (Figs. 9 and 10).

OASIS encodes each object's index into the unused upper bits of the
pointer returned by ``cudaMallocManaged``:

* bits ``0..47`` — the object's virtual address (48 addressable bits);
* bit ``48`` — the configuration bit: 1 for hardware OASIS (Obj_ID is in
  the pointer), 0 for OASIS-InMem (Obj_ID comes from the shadow map);
* bits ``49..49+N-1`` — the N-bit Obj_ID (default N = 4; at most 15).

Dereferencing relies on Top-Byte-Ignore-style hardware (ARM TBI, Intel
LAM, AMD UAI): :func:`strip_tag` is the mask the hardware applies.  The
encoding below is the paper's Fig. 10 recipe verbatim: shift the combined
Obj_ID+config field left by ``ADDR_BITS``, mask the original pointer to
its low 48 bits, and OR the two together.
"""

from __future__ import annotations

from repro.memory.address_space import ADDR_BITS

#: Fig. 9 reserves one configuration bit directly above the address bits.
CONFIG_BIT = 1 << ADDR_BITS

#: Maximum Obj_ID field width (Section V-B).
MAX_OBJ_ID_BITS = 15

#: Low-48-bit mask applied on dereference (Top Byte Ignore emulation).
ADDRESS_MASK = (1 << ADDR_BITS) - 1


def encode_pointer(
    ptr: int, obj_id: int, config: int, obj_id_bits: int = 4
) -> int:
    """Tag ``ptr`` with an Obj_ID and the configuration bit.

    Args:
        ptr: the raw 48-bit virtual address from the allocator.
        obj_id: the object index to encode.
        config: 1 for hardware OASIS, 0 for OASIS-InMem.
        obj_id_bits: width of the Obj_ID field (4 by default, max 15).

    Returns:
        The 64-bit tagged pointer.
    """
    if not 1 <= obj_id_bits <= MAX_OBJ_ID_BITS:
        raise ValueError(f"obj_id_bits must be in 1..{MAX_OBJ_ID_BITS}")
    if not 0 <= obj_id < (1 << obj_id_bits):
        raise ValueError(
            f"obj_id {obj_id} does not fit in {obj_id_bits} bits"
        )
    if config not in (0, 1):
        raise ValueError("config bit must be 0 or 1")
    if ptr < 0:
        raise ValueError("pointer must be non-negative")
    # Fig. 10: obj_ID_config_shifted = OBJ_ID_Config << ADDR_BITS
    obj_id_config = (obj_id << 1) | config
    obj_id_config_shifted = obj_id_config << ADDR_BITS
    # MASK = ((1 << ADDR_BITS) - 1); ptr_temp = ptr & MASK
    ptr_temp = ptr & ADDRESS_MASK
    return ptr_temp | obj_id_config_shifted


def decode_pointer(tagged: int, obj_id_bits: int = 4) -> tuple[int, int, int]:
    """Split a tagged pointer into ``(address, obj_id, config)``."""
    if not 1 <= obj_id_bits <= MAX_OBJ_ID_BITS:
        raise ValueError(f"obj_id_bits must be in 1..{MAX_OBJ_ID_BITS}")
    address = tagged & ADDRESS_MASK
    upper = tagged >> ADDR_BITS
    config = upper & 1
    obj_id = (upper >> 1) & ((1 << obj_id_bits) - 1)
    return address, obj_id, config


def strip_tag(tagged: int) -> int:
    """The Top-Byte-Ignore view: the dereferenceable 48-bit address."""
    return tagged & ADDRESS_MASK


def config_bit(tagged: int) -> int:
    """The configuration bit: 1 = OASIS, 0 = OASIS-InMem."""
    return (tagged >> ADDR_BITS) & 1
