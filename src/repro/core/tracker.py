"""The Object Tracker (Section V-B).

Wraps the allocation API: every ``cudaMallocManaged`` call is assigned an
Obj_ID in allocation order ("the first allocated object is assigned the ID
0000, the second 0001, and so forth") and the returned pointer is tagged
with that ID plus the configuration bit.

In the simulator, traces carry raw page numbers, so the tracker also keeps
the reverse map from allocation to object used to emulate the hardware's
tag extraction.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.pointer import decode_pointer, encode_pointer, strip_tag


@dataclass(frozen=True)
class TrackedObject:
    """One allocation as the tracker sees it."""

    name: str
    obj_id: int
    base: int
    size: int
    tagged_pointer: int


class ObjectTracker:
    """Assigns Obj_IDs at allocation time and tags pointers."""

    def __init__(self, obj_id_bits: int = 4, config_bit: int = 1) -> None:
        """Create a tracker.

        Args:
            obj_id_bits: width of the pointer tag's Obj_ID field.
            config_bit: 1 for hardware OASIS, 0 for OASIS-InMem.
        """
        if config_bit not in (0, 1):
            raise ValueError("config bit must be 0 or 1")
        self._obj_id_bits = obj_id_bits
        self._config = config_bit
        self._next_id = 0
        self._objects: dict[int, TrackedObject] = {}

    @property
    def obj_id_bits(self) -> int:
        return self._obj_id_bits

    @property
    def config(self) -> int:
        return self._config

    @property
    def live_objects(self) -> int:
        return len(self._objects)

    def malloc_managed(self, base: int, size: int, name: str = "") -> TrackedObject:
        """Register an allocation and return the tagged pointer wrapper.

        The Obj_ID wraps at the field width: with 4 tag bits the 17th
        allocation reuses ID 0, exactly the aliasing a 4-bit hardware tag
        would produce (the O-Table LRU keeps only recently-hot objects so
        aliasing between long-dead and live objects is harmless).
        """
        if size <= 0:
            raise ValueError("allocation size must be positive")
        obj_id = self._next_id
        self._next_id += 1
        tag_id = obj_id % (1 << self._obj_id_bits)
        tagged = encode_pointer(base, tag_id, self._config, self._obj_id_bits)
        obj = TrackedObject(
            name=name, obj_id=obj_id, base=base, size=size, tagged_pointer=tagged
        )
        self._objects[obj_id] = obj
        return obj

    def free(self, obj_id: int) -> bool:
        """Forget an allocation; True if it was live."""
        return self._objects.pop(obj_id, None) is not None

    def object_for(self, obj_id: int) -> TrackedObject | None:
        return self._objects.get(obj_id)

    def extract_obj_id(self, tagged_pointer: int) -> int:
        """Hardware tag extraction: the Obj_ID field of a tagged pointer."""
        _addr, obj_id, _config = decode_pointer(tagged_pointer, self._obj_id_bits)
        return obj_id

    def dereference(self, tagged_pointer: int) -> int:
        """The address the hardware actually dereferences (TBI masking)."""
        return strip_tag(tagged_pointer)
