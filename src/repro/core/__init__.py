"""OASIS: the paper's primary contribution.

Components (Section V):

* :mod:`repro.core.pointer` — Obj_ID tagging in the unused upper pointer
  bits (Figs. 9–10), with Top-Byte-Ignore-style masking.
* :mod:`repro.core.tracker` — the Object Tracker: a wrapper around the
  allocation API that assigns Obj_IDs in allocation order.
* :mod:`repro.core.otable` — the on-chip O-Table: 16 LRU-managed 12-bit
  entries (Fig. 11).
* :mod:`repro.core.controller` — the Object Policy Controller: the
  private/shared host-page-table filter, first-fault policy learning from
  the error-code W bit, PF-count self-correction and explicit-phase resets
  (Figs. 11 and 13).
* :mod:`repro.core.oasis` — hardware OASIS as a policy engine.
* :mod:`repro.core.inmem` — OASIS-InMem: the software-only alternative
  with a two-level shadow map and an in-memory O-Table (Fig. 14).
"""

from repro.core.controller import ObjectPolicyController
from repro.core.inmem import OasisInMemPolicy, ShadowMap
from repro.core.oasis import OasisPolicy
from repro.core.otable import OTable, OTableEntry
from repro.core.pointer import (
    decode_pointer,
    encode_pointer,
    strip_tag,
)
from repro.core.tracker import ObjectTracker

__all__ = [
    "ObjectPolicyController",
    "ObjectTracker",
    "OasisInMemPolicy",
    "OasisPolicy",
    "OTable",
    "OTableEntry",
    "ShadowMap",
    "decode_pointer",
    "encode_pointer",
    "strip_tag",
]
