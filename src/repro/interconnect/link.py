"""A single bidirectional interconnect link."""

from __future__ import annotations


class Link:
    """One link with fixed bandwidth and per-hop latency.

    Traffic is accumulated in bytes; ``busy_time_ns`` converts the running
    total into the time the link has spent transferring, which the
    simulator uses as a lower bound on phase duration.
    """

    def __init__(self, name: str, bandwidth_bytes_per_ns: float, latency_ns: float) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency_ns = latency_ns
        self._bytes = 0
        self._messages = 0

    @property
    def bytes_transferred(self) -> int:
        return self._bytes

    @property
    def message_count(self) -> int:
        return self._messages

    @property
    def busy_time_ns(self) -> float:
        """Total time spent moving the recorded bytes."""
        return self._bytes / self.bandwidth

    def transfer_time_ns(self, n_bytes: int) -> float:
        """Latency + serialization time for one transfer of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        return self.latency_ns + n_bytes / self.bandwidth

    def record(self, n_bytes: int) -> float:
        """Account one transfer; returns its transfer time."""
        time = self.transfer_time_ns(n_bytes)
        self._bytes += n_bytes
        self._messages += 1
        return time

    def record_bulk(self, n_bytes: int, n_messages: int) -> None:
        """Account ``n_messages`` transfers totalling ``n_bytes`` at once.

        Traffic totals are plain integer sums, so this is exactly
        equivalent to ``n_messages`` individual :meth:`record` calls
        (whose per-transfer return times the replay loop does not use).
        """
        if n_bytes < 0 or n_messages < 0:
            raise ValueError("bulk transfer counts must be non-negative")
        self._bytes += n_bytes
        self._messages += n_messages

    def reset_traffic(self) -> None:
        """Zero the traffic counters (start of a fresh run)."""
        self._bytes = 0
        self._messages = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.bandwidth} B/ns, "
            f"{self._bytes} B moved)"
        )
