"""A single bidirectional interconnect link (with health state)."""

from __future__ import annotations


class LinkSeveredError(RuntimeError):
    """A transfer was attempted on a severed link."""


class Link:
    """One link with fixed bandwidth, per-hop latency and health state.

    Traffic is accumulated in bytes; ``busy_time_ns`` converts the running
    total into the time the link has spent transferring, which the
    simulator uses as a lower bound on phase duration.

    Fault injection can *degrade* the link (scale its bandwidth) or
    *sever* it mid-run.  Busy time accumulated before a degradation is
    folded at the old bandwidth so the phase bound stays exact; a severed
    link refuses all further transfers (the topology reroutes or fails).
    On a healthy link the folded term is exactly ``0.0``, so the busy
    time is bit-identical to the pre-fault-model ``bytes / bandwidth``.
    """

    def __init__(self, name: str, bandwidth_bytes_per_ns: float, latency_ns: float) -> None:
        if bandwidth_bytes_per_ns <= 0:
            raise ValueError("bandwidth must be positive")
        if latency_ns < 0:
            raise ValueError("latency must be non-negative")
        self.name = name
        self.bandwidth = bandwidth_bytes_per_ns
        self.latency_ns = latency_ns
        self._rated_bandwidth = bandwidth_bytes_per_ns
        self._severed = False
        self._bytes = 0
        self._messages = 0
        #: Bytes moved since the last bandwidth change.
        self._bytes_epoch = 0
        #: Busy time folded in at previous bandwidths.
        self._busy_folded = 0.0

    @property
    def bytes_transferred(self) -> int:
        return self._bytes

    @property
    def message_count(self) -> int:
        return self._messages

    @property
    def severed(self) -> bool:
        """True when the link has been severed by fault injection."""
        return self._severed

    @property
    def healthy(self) -> bool:
        """True when the link is alive at its rated bandwidth."""
        return not self._severed and self.bandwidth == self._rated_bandwidth

    @property
    def busy_time_ns(self) -> float:
        """Total time spent moving the recorded bytes."""
        return self._busy_folded + self._bytes_epoch / self.bandwidth

    def transfer_time_ns(self, n_bytes: int) -> float:
        """Latency + serialization time for one transfer of ``n_bytes``."""
        if n_bytes < 0:
            raise ValueError("cannot transfer a negative byte count")
        if self._severed:
            raise LinkSeveredError(f"link {self.name} is severed")
        return self.latency_ns + n_bytes / self.bandwidth

    def record(self, n_bytes: int) -> float:
        """Account one transfer; returns its transfer time."""
        time = self.transfer_time_ns(n_bytes)
        self._bytes += n_bytes
        self._bytes_epoch += n_bytes
        self._messages += 1
        return time

    def record_bulk(self, n_bytes: int, n_messages: int) -> None:
        """Account ``n_messages`` transfers totalling ``n_bytes`` at once.

        Traffic totals are plain integer sums, so this is exactly
        equivalent to ``n_messages`` individual :meth:`record` calls
        (whose per-transfer return times the replay loop does not use).
        """
        if n_bytes < 0 or n_messages < 0:
            raise ValueError("bulk transfer counts must be non-negative")
        if self._severed:
            raise LinkSeveredError(f"link {self.name} is severed")
        self._bytes += n_bytes
        self._bytes_epoch += n_bytes
        self._messages += n_messages

    def apply_bandwidth_factor(self, factor: float) -> None:
        """Degrade (``0 < factor < 1``) or sever (``factor == 0``) the link.

        Busy time already accumulated is folded at the current bandwidth
        before the change, so the phase-duration bound stays exact.
        """
        if not 0.0 <= factor <= 1.0:
            raise ValueError("bandwidth factor must be in [0, 1]")
        self._busy_folded = self.busy_time_ns
        self._bytes_epoch = 0
        if factor == 0.0:
            self._severed = True
        else:
            self.bandwidth *= factor

    def snapshot(self) -> dict:
        """Plain-dict state for exporters and metrics sampling."""
        return {
            "name": self.name,
            "bytes": self._bytes,
            "messages": self._messages,
            "busy_time_ns": self.busy_time_ns,
            "healthy": self.healthy,
            "severed": self._severed,
        }

    def reset_traffic(self) -> None:
        """Zero the traffic counters (start of a fresh run)."""
        self._bytes = 0
        self._messages = 0
        self._bytes_epoch = 0
        self._busy_folded = 0.0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Link({self.name!r}, {self.bandwidth} B/ns, "
            f"{self._bytes} B moved)"
        )
