"""Interconnect model: NVLink GPU mesh plus PCIe links to the host.

Latency is charged per access/transfer by the cost model; this package owns
*bandwidth* and *traffic accounting*: every page migration, duplication and
remote access records bytes on the link it crossed, and the simulator bounds
each phase's duration by the busiest link's transfer time.
"""

from repro.interconnect.link import Link, LinkSeveredError
from repro.interconnect.topology import Topology, UnreachableDeviceError

__all__ = ["Link", "LinkSeveredError", "Topology", "UnreachableDeviceError"]
