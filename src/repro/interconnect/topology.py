"""Multi-GPU interconnect topology.

The baseline platform (Table I) connects GPUs pairwise with 300 GB/s
NVLink-v2 and connects every GPU to the host CPU over 32 GB/s PCIe-v4.  We
model one link per unordered device pair; a transfer between devices uses
exactly that link.
"""

from __future__ import annotations

from repro.config import HOST, LatencyModel
from repro.interconnect.link import Link

#: Per-hop latency of one NVLink message (propagation + protocol).
NVLINK_HOP_NS = 500.0

#: Per-hop latency of one PCIe message.
PCIE_HOP_NS = 1200.0


class Topology:
    """All-to-all NVLink among GPUs plus PCIe to the host."""

    def __init__(self, n_gpus: int, latency: LatencyModel) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self._n_gpus = n_gpus
        self._links: dict[tuple[int, int], Link] = {}
        for a in range(n_gpus):
            self._links[(HOST, a)] = Link(
                f"pcie:host-gpu{a}", latency.pcie_bw_bytes_per_ns, PCIE_HOP_NS
            )
            for b in range(a + 1, n_gpus):
                self._links[(a, b)] = Link(
                    f"nvlink:gpu{a}-gpu{b}",
                    latency.nvlink_bw_bytes_per_ns,
                    NVLINK_HOP_NS,
                )

    @property
    def n_gpus(self) -> int:
        return self._n_gpus

    def link(self, src: int, dst: int) -> Link:
        """The link joining ``src`` and ``dst`` (order-insensitive)."""
        if src == dst:
            raise ValueError(f"no link from device {src} to itself")
        key = (min(src, dst), max(src, dst))
        try:
            return self._links[key]
        except KeyError:
            raise ValueError(f"no link between devices {src} and {dst}") from None

    def record_transfer(self, src: int, dst: int, n_bytes: int) -> float:
        """Move ``n_bytes`` between devices; returns the transfer time."""
        return self.link(src, dst).record(n_bytes)

    def record_transfer_bulk(
        self, src: int, dst: int, n_bytes: int, n_messages: int
    ) -> None:
        """Account a batch of same-pair transfers in one call."""
        self.link(src, dst).record_bulk(n_bytes, n_messages)

    def links(self) -> list[Link]:
        """Every link in the topology."""
        return list(self._links.values())

    def nvlink_bytes(self) -> int:
        """Total bytes moved over GPU-GPU links."""
        return sum(
            link.bytes_transferred
            for (a, _b), link in self._links.items()
            if a != HOST
        )

    def pcie_bytes(self) -> int:
        """Total bytes moved over host links."""
        return sum(
            link.bytes_transferred
            for (a, _b), link in self._links.items()
            if a == HOST
        )

    def busiest_link_time_ns(self) -> float:
        """Busy time of the most-loaded link (phase lower bound)."""
        return max((link.busy_time_ns for link in self._links.values()), default=0.0)

    def traffic_snapshot(self) -> dict[str, int]:
        """Per-link byte totals keyed by link name."""
        return {link.name: link.bytes_transferred for link in self._links.values()}

    def reset_traffic(self) -> None:
        for link in self._links.values():
            link.reset_traffic()
