"""Multi-GPU interconnect topology.

The baseline platform (Table I) connects GPUs pairwise with 300 GB/s
NVLink-v2 and connects every GPU to the host CPU over 32 GB/s PCIe-v4.  We
model one link per unordered device pair; a transfer between devices uses
exactly that link.
"""

from __future__ import annotations

from repro.config import HOST, LatencyModel
from repro.interconnect.link import Link, LinkSeveredError

#: Per-hop latency of one NVLink message (propagation + protocol).
NVLINK_HOP_NS = 500.0

#: Per-hop latency of one PCIe message.
PCIE_HOP_NS = 1200.0


class UnreachableDeviceError(RuntimeError):
    """No healthy route exists between two devices."""


class Topology:
    """All-to-all NVLink among GPUs plus PCIe to the host.

    Links carry health state (see :class:`~repro.interconnect.link.Link`):
    fault injection can degrade or sever them mid-run.  A transfer whose
    direct link is severed is rerouted over one intermediate device
    (host-first, then GPUs in id order); both hop links are charged.  A
    transfer with no healthy route raises :class:`UnreachableDeviceError`.
    """

    def __init__(
        self, n_gpus: int, latency: LatencyModel, stats=None, tracer=None
    ) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        self._n_gpus = n_gpus
        self._stats = stats
        self._tracer = tracer
        #: Sim-time anchor for reroute instants.  The topology has no
        #: clock of its own; the machine advances this at each phase
        #: boundary via :meth:`note_time` (only while tracing).
        self._now_ns = 0.0
        self._links: dict[tuple[int, int], Link] = {}
        for a in range(n_gpus):
            self._links[(HOST, a)] = Link(
                f"pcie:host-gpu{a}", latency.pcie_bw_bytes_per_ns, PCIE_HOP_NS
            )
            for b in range(a + 1, n_gpus):
                self._links[(a, b)] = Link(
                    f"nvlink:gpu{a}-gpu{b}",
                    latency.nvlink_bw_bytes_per_ns,
                    NVLINK_HOP_NS,
                )

    @property
    def n_gpus(self) -> int:
        return self._n_gpus

    def note_time(self, now_ns: float) -> None:
        """Update the sim-time anchor used to timestamp trace instants."""
        self._now_ns = now_ns

    def _trace_reroute(self, src: int, dst: int, via: int, n: int) -> None:
        if self._tracer is not None and self._tracer.enabled:
            self._tracer.instant(
                "faults",
                "reroute",
                self._now_ns,
                {"src": src, "dst": dst, "via": via, "messages": n},
            )

    def link(self, src: int, dst: int) -> Link:
        """The link joining ``src`` and ``dst`` (order-insensitive)."""
        if src == dst:
            raise ValueError(f"no link from device {src} to itself")
        key = (min(src, dst), max(src, dst))
        try:
            return self._links[key]
        except KeyError:
            raise ValueError(f"no link between devices {src} and {dst}") from None

    def apply_link_fault(self, a: int, b: int, bandwidth_factor: float) -> None:
        """Degrade (or sever, factor 0) the link between ``a`` and ``b``."""
        self.link(a, b).apply_bandwidth_factor(bandwidth_factor)

    def _route_via(self, src: int, dst: int) -> int | None:
        """An intermediate device with healthy hops to both endpoints.

        Deterministic preference order: the host first (the PCIe fabric is
        the canonical fallback path for a dead NVLink), then GPUs by id.
        """
        candidates = [HOST, *range(self._n_gpus)]
        for via in candidates:
            if via in (src, dst):
                continue
            try:
                first = self.link(src, via)
                second = self.link(via, dst)
            except ValueError:
                continue
            if not first.severed and not second.severed:
                return via
        return None

    def reachable(self, src: int, dst: int) -> bool:
        """True when data can flow ``src`` → ``dst`` (direct or one hop)."""
        if src == dst:
            return True
        if not self.link(src, dst).severed:
            return True
        return self._route_via(src, dst) is not None

    def record_transfer(self, src: int, dst: int, n_bytes: int) -> float:
        """Move ``n_bytes`` between devices; returns the transfer time.

        When the direct link is severed the transfer is rerouted through
        one intermediate device: both hop links are charged and the times
        add up (store-and-forward).  With no healthy route this raises
        :class:`UnreachableDeviceError` — callers that can degrade to
        zero-copy should check :meth:`reachable` before moving data.
        """
        try:
            return self.link(src, dst).record(n_bytes)
        except LinkSeveredError:
            via = self._route_via(src, dst)
            if via is None:
                raise UnreachableDeviceError(
                    f"no healthy route between devices {src} and {dst}"
                ) from None
            if self._stats is not None:
                self._stats.add("fault_inject.reroutes")
            self._trace_reroute(src, dst, via, 1)
            return self.link(src, via).record(n_bytes) + self.link(
                via, dst
            ).record(n_bytes)

    def record_transfer_bulk(
        self, src: int, dst: int, n_bytes: int, n_messages: int
    ) -> None:
        """Account a batch of same-pair transfers in one call."""
        try:
            self.link(src, dst).record_bulk(n_bytes, n_messages)
        except LinkSeveredError:
            via = self._route_via(src, dst)
            if via is None:
                raise UnreachableDeviceError(
                    f"no healthy route between devices {src} and {dst}"
                ) from None
            if self._stats is not None:
                self._stats.add("fault_inject.reroutes", n_messages)
            self._trace_reroute(src, dst, via, n_messages)
            self.link(src, via).record_bulk(n_bytes, n_messages)
            self.link(via, dst).record_bulk(n_bytes, n_messages)

    def links(self) -> list[Link]:
        """Every link in the topology."""
        return list(self._links.values())

    def nvlink_bytes(self) -> int:
        """Total bytes moved over GPU-GPU links."""
        return sum(
            link.bytes_transferred
            for (a, _b), link in self._links.items()
            if a != HOST
        )

    def pcie_bytes(self) -> int:
        """Total bytes moved over host links."""
        return sum(
            link.bytes_transferred
            for (a, _b), link in self._links.items()
            if a == HOST
        )

    def busiest_link_time_ns(self) -> float:
        """Busy time of the most-loaded link (phase lower bound)."""
        return max((link.busy_time_ns for link in self._links.values()), default=0.0)

    def traffic_snapshot(self) -> dict[str, int]:
        """Per-link byte totals keyed by link name."""
        return {link.name: link.bytes_transferred for link in self._links.values()}

    def reset_traffic(self) -> None:
        for link in self._links.values():
            link.reset_traffic()
