"""UVM driver model: fault taxonomy and page-management primitives.

The UVM driver lives on the host CPU, owns the centralized page table, and
services GPU page faults (Fig. 1).  :class:`~repro.uvm.driver.UVMDriver`
implements the primitives every policy is built from — migrate, duplicate,
collapse, remote-map, evict — with exact event accounting and analytical
costs.
"""

from repro.uvm.driver import UVMDriver
from repro.uvm.fault import FaultKind, PageFault

__all__ = ["FaultKind", "PageFault", "UVMDriver"]
