"""UVM driver primitives.

Every page-management policy in this repo resolves faults through the five
primitives below.  Each primitive mutates the page tables, shoots down stale
TLB entries, records link traffic, keeps the capacity manager honest, bumps
the shared :class:`~repro.engine.StatCounters`, and returns the latency the
faulting GPU pays (beyond the fixed fault-service cost, which the machine
charges through the driver's serial queue).

Primitives:

* :meth:`UVMDriver.migrate` — move the page's single authoritative copy to
  a GPU (on-touch resolution, counter-threshold resolution).
* :meth:`UVMDriver.duplicate` — add a read-only copy on a GPU, demoting any
  writable mapping elsewhere.
* :meth:`UVMDriver.collapse` — make a GPU the exclusive writable holder,
  invalidating every duplicate (*page write-collapse*).
* :meth:`UVMDriver.map_remote` — install a PTE pointing at the remote copy
  (counter-based policy's zero-copy resolution).
* :meth:`UVMDriver.evict` — push a page back to host memory (capacity).
"""

from __future__ import annotations

from repro.config import HOST, SystemConfig
from repro.engine import SerialServer, StatCounters
from repro.interconnect import Topology
from repro.memory import AccessCounterFile, CapacityManager, PageTables
from repro.obs.metrics import (
    TRANSFER_BYTES_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.tlb import TLBHierarchy


class UVMDriver:
    """The host-side UVM driver: page-management primitives + fault queue.

    Observability: every primitive emits one typed instant event on the
    ``"driver"`` trace track, timestamped at the driver FIFO clock
    (:attr:`SerialServer.free_at` — the last completion time, since the
    primitive's own service is submitted by the machine only after its
    resolution cost is known).  With the default null tracer each hook
    is a single attribute test.
    """

    #: Per-tenant page-movement attribution
    #: (:class:`~repro.tenancy.accounting.TenancyAccounting`), bound by
    #: the machine on multi-tenant traces.  A class attribute so drivers
    #: restored from pre-tenancy snapshots still resolve it to ``None``.
    tenancy = None

    def __init__(
        self,
        config: SystemConfig,
        page_tables: PageTables,
        topology: Topology,
        tlbs: list[TLBHierarchy],
        capacity: CapacityManager,
        counters: AccessCounterFile,
        stats: StatCounters,
        tracer: Tracer = NULL_TRACER,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.config = config
        self.page_tables = page_tables
        self.topology = topology
        self.tlbs = tlbs
        self.capacity = capacity
        self.counters = counters
        self.stats = stats
        self.tracer = tracer
        self.metrics = metrics
        #: Single hot-path guard: observability hooks cost one attribute
        #: test per primitive when neither a tracer nor a registry is on.
        self._obs = tracer.enabled or metrics is not None
        self._transfer_bytes = (
            metrics.histogram("transfer.bytes", TRANSFER_BYTES_BUCKETS).sink()
            if metrics is not None
            else None
        )
        self._page_bytes = float(config.page_size)
        # Hot primitives (one event per serviced fault) emit through
        # columnar sinks; cold events (evict, retry) use _note below.
        if tracer.enabled:
            self._migrate_rows = tracer.sink(
                "driver", "migrate", ("gpu", "page", "src", "copied")
            )
            self._duplicate_rows = tracer.sink(
                "driver", "duplicate", ("gpu", "page", "src")
            )
            self._collapse_rows = tracer.sink(
                "driver", "collapse", ("gpu", "page", "invalidated", "copied")
            )
            self._remote_map_rows = tracer.sink(
                "driver", "remote_map", ("gpu", "page")
            )
        else:
            self._migrate_rows = None
            self._duplicate_rows = None
            self._collapse_rows = None
            self._remote_map_rows = None
        #: FIFO model of the driver CPU servicing faults one at a time.
        self.queue = SerialServer()
        #: :class:`repro.faults.FaultInjector` when a fault plan is active
        #: (set by the machine after construction); ``None`` on a healthy
        #: system, keeping every fault check a single attribute test.
        self.injector = None

    def _note(self, kind: str, n_bytes: float | None = None, **args) -> None:
        """Emit one driver-track instant (and optional size observation)."""
        if self.tracer.enabled:
            self.tracer.instant("driver", kind, self.queue.free_at, args)
        if self._transfer_bytes is not None and n_bytes is not None:
            self._transfer_bytes.append(float(n_bytes))

    def flush_observations(self) -> None:
        """Derive deferred transfer-size observations from the sink rows.

        With both a tracer and a registry attached, the hot primitives
        record each event once (in the tracer's columnar sinks) and skip
        the per-event histogram append; the machine calls this at end of
        run — before the sinks are drained for export — to fold the
        implied sizes into ``transfer.bytes`` in one pass.
        """
        pend = self._transfer_bytes
        if pend is None or self._migrate_rows is None:
            return
        pb = self._page_bytes
        pend.extend(pb if row[4] else 0.0 for row in self._migrate_rows)
        pend.extend(pb for _ in self._duplicate_rows)
        pend.extend(pb if row[4] else 0.0 for row in self._collapse_rows)

    # -- helpers -----------------------------------------------------------

    def _shootdown(self, page: int, victims: list[int]) -> float:
        """Invalidate TLB entries on ``victims``; returns the latency."""
        cost = 0.0
        for gpu in victims:
            self.tlbs[gpu].shootdown(page)
            cost += self.config.latency.pte_invalidate_ns
            self.stats.add("shootdown.count")
        return cost

    def _nearest_source(self, page: int, dst: int) -> int:
        """Pick the device to copy ``page``'s data from.

        Prefers a GPU copy (NVLink is far faster than PCIe) and falls back
        to the owner (possibly the host).
        """
        owner = self.page_tables.location(page)
        for gpu in self.page_tables.copy_holders(page):
            if gpu != dst:
                return gpu
        return owner

    def _transfer(self, src: int, dst: int) -> float:
        """Move one page of data between devices; returns the latency."""
        n_bytes = self.config.page_size
        time = self.topology.record_transfer(src, dst, n_bytes)
        if src == HOST or dst == HOST:
            self.stats.add("traffic.pcie_bytes", n_bytes)
        else:
            self.stats.add("traffic.nvlink_bytes", n_bytes)
        return time

    def _degrade_to_remote(self, gpu: int, page: int, reason: str) -> float:
        """Fall back to a zero-copy remote mapping after a blocked install.

        The page stays where it is; ``gpu`` gets a PTE pointing at the
        remote copy and the injector remembers the mapping so the machine
        services its accesses without re-entering the policy (which may
        not implement remote-access callbacks).
        """
        self.injector.note_degraded(gpu, page)
        self.stats.add("driver.migration_fallbacks")
        self.stats.add(f"driver.fallback_{reason}")
        return self.map_remote(gpu, page)

    def _gate_install(self, gpu: int, page: int, transient: bool) -> tuple[bool, float, str]:
        """Consult the injector before installing data on ``gpu``.

        Returns ``(proceed, extra_cost_ns, reason)``.  ``transient`` marks
        data moves that the flake model covers (migrations); permanent
        conditions (retired frame, unreachable source) apply to every
        data-moving primitive.
        """
        inj = self.injector
        if inj.is_retired(gpu, page):
            return False, 0.0, "retired"
        src = self._nearest_source(page, gpu)
        if src != gpu and not inj.destination_reachable(src, gpu):
            return False, 0.0, "unreachable"
        if not transient:
            return True, 0.0, ""
        verdict = inj.gate_migration(gpu, page)
        extra = 0.0
        if verdict.retries:
            self.stats.add("driver.migration_retries", verdict.retries)
            self.stats.add("driver.backoff_ns", verdict.backoff_ns)
            extra = verdict.backoff_ns
            if self._obs:
                self._note(
                    "retry",
                    gpu=gpu,
                    page=page,
                    retries=verdict.retries,
                    backoff_ns=verdict.backoff_ns,
                )
        if not verdict.proceed:
            return False, extra, verdict.reason
        return True, extra, ""

    def _maybe_evict(self, gpu: int, protect: int) -> float:
        """Evict LRU pages from ``gpu`` until it fits; returns the latency."""
        if not self.capacity.enabled:
            return 0.0
        cost = 0.0
        while self.capacity.needs_eviction(gpu):
            victim = self.capacity.pick_victim(gpu, protect=protect)
            cost += self.evict_from(gpu, victim)
        return cost

    # -- primitives ----------------------------------------------------------

    def migrate(self, gpu: int, page: int) -> float:
        """Move the page to ``gpu``'s memory as the exclusive writable copy.

        Under an active fault plan the data install is gated first: a
        retired destination frame or an unreachable source degrades the
        request to a zero-copy remote mapping, and transient migration
        failures are retried with exponential backoff (degrading only
        after ``max_retries`` attempts fail).
        """
        pt = self.page_tables
        extra = 0.0
        if self.injector is not None and not pt.has_copy(gpu, page):
            proceed, extra, reason = self._gate_install(gpu, page, transient=True)
            if not proceed:
                return extra + self._degrade_to_remote(gpu, page, reason)
            self.injector.clear_degraded(gpu, page)
        src = self._nearest_source(page, gpu)
        victims = pt.unmap_all_except(page, keep=None)
        cost = self._shootdown(page, victims)
        for holder in pt.copy_holders(page):
            if holder != gpu:
                self.capacity.note_released(holder, page)
        already_local = pt.has_copy(gpu, page)
        if not already_local:
            cost += self._transfer(src, gpu)
        pt.set_exclusive(page, gpu)
        pt.map_local(gpu, page, writable=True)
        self.capacity.note_resident(gpu, page)
        self.counters.reset_group(page)
        self.stats.add("migration.count")
        self.stats.add("migration.bytes", self.config.page_size)
        if self.tenancy is not None:
            self.tenancy.note_migration(self.stats, page)
        if self._obs:
            # Sink rows subsume the size observation (derived by
            # flush_observations at end of run); only a registry without
            # a tracer observes live.
            if self._migrate_rows is not None:
                self._migrate_rows.append(
                    (self.queue.free_at, gpu, page, src, not already_local)
                )
            elif self._transfer_bytes is not None:
                self._transfer_bytes.append(
                    0.0 if already_local else self._page_bytes
                )
        cost += self.config.latency.pte_update_ns
        cost += self._maybe_evict(gpu, protect=page)
        return cost + extra

    def duplicate(self, gpu: int, page: int) -> float:
        """Install a read-only copy of the page on ``gpu``."""
        pt = self.page_tables
        if self.injector is not None and not pt.has_copy(gpu, page):
            proceed, _extra, reason = self._gate_install(
                gpu, page, transient=False
            )
            if not proceed:
                return self._degrade_to_remote(gpu, page, reason)
        if pt.has_copy(gpu, page):
            # Already a holder (e.g. owner re-mapping after invalidation):
            # just (re)install a read-only PTE.
            pt.add_copy(gpu, page)
            pt.map_local(gpu, page, writable=False)
            self.stats.add("duplication.remap")
            return self.config.latency.pte_update_ns
        src = self._nearest_source(page, gpu)
        cost = self._transfer(src, gpu)
        # Any current writer must be demoted to read-only before copies
        # exist; that writer's stale TLB entry is shot down.
        writer = next(
            (
                g
                for g in pt.mapped_gpus(page)
                if pt.is_writable(g, page)
            ),
            None,
        )
        pt.add_copy(gpu, page)
        if writer is not None:
            # Demote the old writer to read-only.  The PTE downgrade and
            # its shootdown piggyback on this fault's resolution (the
            # driver is already updating translations for the page), so
            # only the cheap overlapped update cost is charged
            # (Section V-E).
            self.tlbs[writer].shootdown(page)
            self.stats.add("shootdown.count")
            cost += self.config.latency.pte_update_ns
            pt.map_local(writer, page, writable=False)
            self.stats.add("duplication.demotions")
        pt.map_local(gpu, page, writable=False)
        self.capacity.note_resident(gpu, page)
        self.stats.add("duplication.count")
        self.stats.add("duplication.bytes", self.config.page_size)
        if self.tenancy is not None:
            self.tenancy.note_duplication(self.stats, page)
        if self._obs:
            if self._duplicate_rows is not None:
                self._duplicate_rows.append(
                    (self.queue.free_at, gpu, page, src)
                )
            elif self._transfer_bytes is not None:
                self._transfer_bytes.append(self._page_bytes)
        cost += self.config.latency.pte_update_ns
        cost += self._maybe_evict(gpu, protect=page)
        return cost

    def collapse(self, gpu: int, page: int) -> float:
        """Write-collapse: make ``gpu`` the exclusive writable holder."""
        pt = self.page_tables
        if self.injector is not None and not pt.has_copy(gpu, page):
            proceed, _extra, reason = self._gate_install(
                gpu, page, transient=False
            )
            if not proceed:
                return self._degrade_to_remote(gpu, page, reason)
        had_copy = pt.has_copy(gpu, page)
        dropped_copies = sum(
            1 for holder in pt.copy_holders(page) if holder != gpu
        )
        src = self._nearest_source(page, gpu)
        victims = pt.unmap_all_except(page, keep=gpu)
        cost = self._shootdown(page, victims)
        # Revoking live read duplicates takes the heavyweight
        # protection-fault path (Section II-B3's write-collapse cost).
        # Dropping a single handoff copy costs no more than a migration's
        # invalidation (charged via the shootdown above); every
        # *additional* broadcast copy pays the extra revocation work, so
        # widely-read pages collapse far more expensively.
        cost += self.config.latency.collapse_overhead_ns * max(
            0, dropped_copies - 1
        )
        for holder in pt.copy_holders(page):
            if holder != gpu:
                self.capacity.note_released(holder, page)
        if not had_copy:
            cost += self._transfer(src, gpu)
        pt.set_exclusive(page, gpu)
        pt.map_local(gpu, page, writable=True)
        self.capacity.note_resident(gpu, page)
        self.stats.add("collapse.count")
        self.stats.add("collapse.invalidated_copies", len(victims))
        if self._obs:
            if self._collapse_rows is not None:
                self._collapse_rows.append(
                    (self.queue.free_at, gpu, page, len(victims),
                     not had_copy)
                )
            elif self._transfer_bytes is not None:
                self._transfer_bytes.append(
                    0.0 if had_copy else self._page_bytes
                )
        cost += self.config.latency.pte_update_ns
        cost += self._maybe_evict(gpu, protect=page)
        return cost

    def map_remote(self, gpu: int, page: int) -> float:
        """Map the page into ``gpu``'s page table pointing at remote memory."""
        self.page_tables.map_remote(gpu, page)
        self.stats.add("remote_map.count")
        if self._remote_map_rows is not None:
            self._remote_map_rows.append((self.queue.free_at, gpu, page))
        return self.config.latency.pte_update_ns

    def ideal_copy(self, gpu: int, page: int) -> float:
        """Ideal-policy resolution: local copy, writable, no coherence.

        Only valid on machines built with incoherent page tables (the
        hypothetical Ideal configuration of Section IV-A).
        """
        pt = self.page_tables
        cost = 0.0
        if not pt.has_copy(gpu, page):
            if self.injector is not None and self.injector.is_retired(gpu, page):
                return self._degrade_to_remote(gpu, page, "retired")
            src = self._nearest_source(page, gpu)
            cost += self._transfer(src, gpu)
            pt.add_copy(gpu, page)
            self.capacity.note_resident(gpu, page)
            self.stats.add("duplication.count")
            if self.tenancy is not None:
                self.tenancy.note_duplication(self.stats, page)
            if self._obs:
                if self._duplicate_rows is not None:
                    self._duplicate_rows.append(
                        (self.queue.free_at, gpu, page, src)
                    )
                elif self._transfer_bytes is not None:
                    self._transfer_bytes.append(self._page_bytes)
        pt.map_local(gpu, page, writable=True)
        cost += self.config.latency.pte_update_ns
        cost += self._maybe_evict(gpu, protect=page)
        return cost

    def evict_from(self, gpu: int, page: int) -> float:
        """Free ``page``'s frame on ``gpu`` under capacity pressure.

        If the data also lives elsewhere (a read duplicate, or the owner
        role can pass to another copy holder), only this GPU's copy is
        dropped — no data movement.  Only a sole holder pays the full
        writeback to host memory.
        """
        pt = self.page_tables
        holders = pt.copy_holders(page)
        if not pt.has_copy(gpu, page):
            raise ValueError(f"GPU {gpu} holds no frame for page {page}")
        others = [h for h in holders if h != gpu]
        if not others:
            return self.evict(page)
        if pt.location(page) == gpu:
            # Pass ownership to another holder; its copy is already the
            # data, so no transfer is needed.
            new_owner = others[0]
            was_mapped = pt.is_mapped(gpu, page)
            pt.unmap(gpu, page)
            remaining = pt.copy_holders(page)
            pt.set_exclusive(page, new_owner)
            for holder in remaining:
                if holder not in (gpu, new_owner):
                    pt.add_copy(holder, page)
        else:
            was_mapped = pt.is_mapped(gpu, page)
            pt.unmap(gpu, page)
            pt.drop_copy(gpu, page)
        cost = 0.0
        if was_mapped:
            cost += self._shootdown(page, [gpu])
        self.capacity.note_released(gpu, page)
        self.stats.add("eviction.copy_dropped")
        if self._obs:
            self._note("evict", gpu=gpu, page=page, copy_dropped=True)
        return cost + self.config.latency.pte_update_ns

    def evict(self, page: int) -> float:
        """Evict the page to host memory (oversubscription pressure).

        The PTE policy bits survive eviction — OASIS uses them to keep
        treating a re-referenced evicted page as shared (Section VI-D).
        """
        pt = self.page_tables
        victims = pt.unmap_all_except(page, keep=None)
        cost = self._shootdown(page, victims)
        holders = pt.copy_holders(page)
        owner = pt.location(page)
        for holder in holders:
            self.capacity.note_released(holder, page)
        if owner != HOST:
            cost += self._transfer(owner, HOST)
        pt.set_exclusive(page, HOST)
        self.stats.add("eviction.count")
        if self.tenancy is not None:
            self.tenancy.note_eviction(self.stats, page)
        if self._obs:
            self._note(
                "evict",
                n_bytes=self.config.page_size if owner != HOST else 0.0,
                page=page,
                owner=owner,
                copy_dropped=False,
            )
        return cost
