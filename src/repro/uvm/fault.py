"""Page-fault taxonomy.

Two fault kinds reach the UVM driver:

* ``PAGE`` — the faulting GPU has no valid PTE for the page (classic UVM
  page fault);
* ``PROTECTION`` — the GPU has a valid read-only PTE (a duplicated page)
  and attempted a write (the *page write-collapse* trigger).

The x86 page-fault error code carries a ``W`` bit distinguishing read from
write faults; the OASIS OP-Controller reads exactly that bit to classify a
shared object's pattern (Section V-D cites the error-code W bit).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

#: Bit 1 of the page-fault error code: set when the access was a write.
ERROR_CODE_W_BIT = 1 << 1


class FaultKind(enum.Enum):
    """Which kind of fault the driver received."""

    PAGE = "page"
    PROTECTION = "protection"


@dataclass(frozen=True)
class PageFault:
    """One fault delivered to the UVM driver."""

    gpu: int
    page: int
    is_write: bool
    kind: FaultKind = FaultKind.PAGE

    def __post_init__(self) -> None:
        if self.kind is FaultKind.PROTECTION and not self.is_write:
            raise ValueError("protection faults are write faults by definition")

    @property
    def error_code(self) -> int:
        """x86-style error code; only the W bit is modelled."""
        return ERROR_CODE_W_BIT if self.is_write else 0

    @property
    def w_bit(self) -> bool:
        """The W bit of the error code (write fault)."""
        return self.is_write
