"""Single-server FIFO queue model.

The UVM driver runs on the host CPU and services page faults essentially
one at a time (per fault batch); when many GPUs fault concurrently the
driver becomes the bottleneck.  :class:`SerialServer` models this: work
arrives with a ready time, waits for the server to be free, and completes
after its service time.  The caller learns the completion time and can
charge the wait to the faulting GPU.
"""

from __future__ import annotations


class SerialServer:
    """A single server processing requests FIFO.

    Requests are submitted with an *arrival* time (when the requester is
    ready) and a *service* duration.  The server starts a request at
    ``max(arrival, free_at)`` and is then busy for the service duration.
    """

    def __init__(self) -> None:
        self._free_at = 0.0
        self._busy_total = 0.0
        self._requests = 0

    @property
    def free_at(self) -> float:
        """Time at which the server next becomes idle."""
        return self._free_at

    @property
    def busy_time(self) -> float:
        """Total time the server has spent servicing requests."""
        return self._busy_total

    @property
    def request_count(self) -> int:
        """Number of requests serviced so far."""
        return self._requests

    def submit(self, arrival: float, service: float) -> float:
        """Submit one request; returns its completion time.

        Args:
            arrival: Time the request becomes ready.
            service: Service duration (must be non-negative).
        """
        if service < 0:
            raise ValueError("service time must be non-negative")
        if arrival < 0:
            raise ValueError("arrival time must be non-negative")
        start = max(arrival, self._free_at)
        done = start + service
        self._free_at = done
        self._busy_total += service
        self._requests += 1
        return done

    def advance_to(
        self, free_at: float, busy_total: float, n_requests: int
    ) -> None:
        """Apply the outcome of an externally simulated FIFO run.

        The fast replay path folds many :meth:`submit` calls into one
        scalar loop; this installs the resulting server state.  The caller
        must have started its recurrence from the current ``free_at`` and
        ``busy_time`` so the hand-back is exact.

        A hand-back that moves the server backwards — ``free_at`` before
        the current value, a shrinking ``busy_total``, or a negative
        request count — can only come from a recurrence that did not start
        from this server's state, so it is rejected rather than silently
        installed as corrupted timing.
        """
        if free_at < self._free_at:
            raise ValueError(
                f"advance_to moves free_at backwards "
                f"({free_at} < {self._free_at}); the fast-path recurrence "
                "must start from the current server state"
            )
        if busy_total < self._busy_total:
            raise ValueError(
                f"advance_to shrinks busy_total "
                f"({busy_total} < {self._busy_total})"
            )
        if n_requests < 0:
            raise ValueError(f"advance_to got negative n_requests ({n_requests})")
        self._free_at = free_at
        self._busy_total = busy_total
        self._requests += n_requests

    def reset(self) -> None:
        """Forget all state (used at phase boundaries in tests)."""
        self._free_at = 0.0
        self._busy_total = 0.0
        self._requests = 0
