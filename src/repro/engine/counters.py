"""Hierarchical statistics counters.

Every simulator component increments named counters (``"fault.shared"``,
``"migration.count"``, ...).  :class:`StatCounters` is a defaultdict-like
accumulator with helpers for merging and prefix queries, used to build the
per-experiment reports.
"""

from __future__ import annotations

from typing import Iterator, Mapping


class StatCounters:
    """Named numeric counters with prefix grouping.

    Reads of unknown keys return ``0.0`` without creating an entry, and
    every exported view — :meth:`as_dict`, iteration, :meth:`items` — is
    sorted by name, so reports and golden comparisons never depend on
    counter-creation (dict-insertion) order.
    """

    def __init__(self, initial: Mapping[str, float] | None = None) -> None:
        self._counts: dict[str, float] = {}
        if initial:
            for key, value in initial.items():
                self._counts[key] = float(value)

    def add(self, name: str, amount: float = 1.0) -> None:
        """Increment counter ``name`` by ``amount``."""
        counts = self._counts
        counts[name] = counts.get(name, 0.0) + amount

    def __getitem__(self, name: str) -> float:
        return self._counts.get(name, 0.0)

    def __contains__(self, name: str) -> bool:
        return name in self._counts

    def __iter__(self) -> Iterator[str]:
        return iter(sorted(self._counts))

    def __len__(self) -> int:
        return len(self._counts)

    def items(self):
        """Iterate ``(name, value)`` pairs in sorted name order."""
        return sorted(self._counts.items())

    def total(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(v for k, v in self._counts.items() if k.startswith(prefix))

    def group(self, prefix: str) -> dict[str, float]:
        """All counters under ``prefix`` with the prefix stripped."""
        plen = len(prefix)
        return {
            k[plen:].lstrip("."): v
            for k, v in self._counts.items()
            if k.startswith(prefix)
        }

    def merge(self, other: "StatCounters",
              allow_disjoint: bool = False) -> "StatCounters":
        """Add another counter set into this one; returns self.

        Two populated counter sets that share *no* top-level namespace
        (the segment before the first ``.``) are almost certainly from
        unrelated components — real run counters always overlap on the
        core families (``fault.``, ``access.``, ...).  Silently summing
        such sets is how a wrong aggregate survives unnoticed, and it is
        exactly the hazard the differential counter digests key on, so
        the mismatch raises unless ``allow_disjoint=True`` says the
        caller really is composing unrelated namespaces.
        """
        counts = self._counts
        if counts and other._counts and not allow_disjoint:
            mine = {key.split(".", 1)[0] for key in counts}
            theirs = {key.split(".", 1)[0] for key in other._counts}
            if mine.isdisjoint(theirs):
                raise ValueError(
                    "refusing to merge counter sets with disjoint "
                    f"namespaces ({sorted(mine)[:4]} vs "
                    f"{sorted(theirs)[:4]}); pass allow_disjoint=True "
                    "to combine unrelated counters deliberately"
                )
        for key, value in other._counts.items():
            counts[key] = counts.get(key, 0.0) + value
        return self

    def as_dict(self) -> dict[str, float]:
        """A plain-dict snapshot in sorted-name order."""
        counts = self._counts
        return {key: counts[key] for key in sorted(counts)}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        body = ", ".join(f"{k}={v:g}" for k, v in self.items())
        return f"StatCounters({body})"
