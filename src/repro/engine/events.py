"""Timestamped event queue.

A thin wrapper around :mod:`heapq` providing stable FIFO ordering for
events that carry identical timestamps (heapq alone would compare payloads,
which is both fragile and semantically wrong for simulation).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Event:
    """One simulation event.

    Attributes:
        time: Simulation timestamp in nanoseconds.
        kind: Free-form event type tag (e.g. ``"fault"``, ``"migrate"``).
        payload: Arbitrary event data.
    """

    time: float
    kind: str
    payload: Any = None

    def __post_init__(self) -> None:
        if self.time < 0:
            raise ValueError(f"event time must be non-negative, got {self.time}")


@dataclass(order=True)
class _HeapItem:
    time: float
    seq: int
    event: Event = field(compare=False)


class EventQueue:
    """Priority queue of :class:`Event` objects ordered by time, then FIFO."""

    def __init__(self) -> None:
        self._heap: list[_HeapItem] = []
        self._seq = itertools.count()

    def __len__(self) -> int:
        return len(self._heap)

    def __bool__(self) -> bool:
        return bool(self._heap)

    def push(self, event: Event) -> None:
        """Insert an event."""
        heapq.heappush(self._heap, _HeapItem(event.time, next(self._seq), event))

    def schedule(self, time: float, kind: str, payload: Any = None) -> Event:
        """Create an event and insert it; returns the event."""
        event = Event(time, kind, payload)
        self.push(event)
        return event

    def pop(self) -> Event:
        """Remove and return the earliest event.

        Raises:
            IndexError: if the queue is empty.
        """
        return heapq.heappop(self._heap).event

    def peek(self) -> Event:
        """Return (without removing) the earliest event."""
        if not self._heap:
            raise IndexError("peek on empty EventQueue")
        return self._heap[0].event

    def drain(self) -> list[Event]:
        """Pop every event in order and return them as a list."""
        out = []
        while self._heap:
            out.append(self.pop())
        return out
