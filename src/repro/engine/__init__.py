"""Minimal discrete-event machinery shared by the simulator components.

The trace-driven simulator is mostly analytical, but two pieces of real
event bookkeeping remain:

* :class:`~repro.engine.events.EventQueue` — a priority queue of timestamped
  events, used by tests and by components that need ordered retirement.
* :class:`~repro.engine.server.SerialServer` — a single-server FIFO queue
  used to model the UVM driver, which services page faults one at a time on
  the host CPU.
* :class:`~repro.engine.counters.StatCounters` — hierarchical event counters
  every component reports into.
"""

from repro.engine.counters import StatCounters
from repro.engine.events import Event, EventQueue
from repro.engine.server import SerialServer

__all__ = ["Event", "EventQueue", "SerialServer", "StatCounters"]
