"""Dependency-free HTTP front end for :class:`SimulationService`.

A deliberately small HTTP/1.1 server on ``asyncio.start_server`` — the
container ships no aiohttp/uvicorn, and the service needs only six
routes:

* ``GET /healthz`` — liveness + headline counters (JSON).
* ``GET /metrics`` — Prometheus text: service metrics under
  ``repro_serve_*`` plus accumulated simulation counters under
  ``repro_sim_*`` (via :func:`repro.obs.export.prometheus_multi`).
* ``GET /stats`` — the full JSON stats payload.
* ``POST /submit`` — body: a job spec (``app``, ``policy``, optional
  ``footprint_mb``/``seed``/``policy_kwargs``/``config_kwargs``) plus
  transport fields ``lane``, ``deadline_s`` and ``wait``.  With
  ``wait`` (the default) the response carries the finished result;
  with ``wait: false`` it is a ``202`` with the job id to poll.
  Admission-control rejections map to ``429`` with ``Retry-After``.
* ``GET /jobs/<id>`` — job status (and the result once done).
* ``GET /events`` — newline-delimited JSON stream of lifecycle events
  until the client disconnects.

Every response closes its connection (``Connection: close``): the
clients here are sweep drivers and scrapers, not latency-critical
browsers, and one connection per request keeps the server honest about
cleanup.
"""

from __future__ import annotations

import asyncio
import json
import threading
import time
from pathlib import Path

from repro.serve.service import AdmissionError, JobFailed, SimulationService

#: Largest accepted request body (a job spec is a few hundred bytes).
MAX_BODY_BYTES = 1 << 20

_REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    504: "Gateway Timeout",
}


class HttpError(Exception):
    def __init__(self, status: int, message: str,
                 headers: dict | None = None) -> None:
        super().__init__(message)
        self.status = status
        self.headers = dict(headers or {})


def _response_bytes(status: int, body: bytes, content_type: str,
                    headers: dict | None = None) -> bytes:
    lines = [
        f"HTTP/1.1 {status} {_REASONS.get(status, 'Unknown')}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    for name, value in (headers or {}).items():
        lines.append(f"{name}: {value}")
    return ("\r\n".join(lines) + "\r\n\r\n").encode() + body


def _json_response(status: int, payload: dict,
                   headers: dict | None = None) -> bytes:
    body = (json.dumps(payload, sort_keys=True) + "\n").encode()
    return _response_bytes(status, body, "application/json", headers)


class ServeHttpServer:
    """Bind a :class:`SimulationService` to a TCP port."""

    def __init__(self, service: SimulationService, host: str = "127.0.0.1",
                 port: int = 0) -> None:
        self.service = service
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> None:
        """Start the service (if needed) and begin accepting requests."""
        if not self.service.running:
            await self.service.start()
        self._server = await asyncio.start_server(
            self._handle, self.host, self.port
        )
        # Resolve port 0 to the kernel-assigned ephemeral port.
        self.port = self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.stop()

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    # -- request handling --------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._route(method, path, body, writer)
            except HttpError as err:
                writer.write(_json_response(
                    err.status, {"error": str(err)}, err.headers
                ))
            except (ConnectionError, asyncio.IncompleteReadError):
                return
            except Exception as exc:  # noqa: BLE001 - one bad request
                # must never take the server down with it.
                writer.write(_json_response(
                    500, {"error": f"{type(exc).__name__}: {exc}"}
                ))
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            # RuntimeError: the hosting loop may already be closed when a
            # streaming handler is torn down at shutdown.
            try:
                writer.close()
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError, RuntimeError):
                pass

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise HttpError(400, "empty request")
        parts = request_line.split()
        if len(parts) != 3:
            raise HttpError(400, f"malformed request line {request_line!r}")
        method, path, _version = parts
        headers = {}
        while True:
            line = (await reader.readline()).decode("latin-1")
            if line in ("\r\n", "\n", ""):
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        body = b""
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        if length:
            body = await reader.readexactly(length)
        return method, path, body

    async def _route(self, method: str, path: str, body: bytes,
                     writer: asyncio.StreamWriter) -> None:
        path = path.split("?", 1)[0]
        if path == "/healthz" and method == "GET":
            writer.write(_json_response(200, self.service.stats()))
        elif path == "/metrics" and method == "GET":
            writer.write(_response_bytes(
                200, self.service.prometheus().encode(),
                "text/plain; version=0.0.4",
            ))
        elif path == "/stats" and method == "GET":
            writer.write(_json_response(200, {
                "service": self.service.stats(),
                "metrics": self.service.snapshot().to_dict(),
                "sim_counters": self.service.sim_snapshot().counters,
            }))
        elif path == "/submit" and method == "POST":
            await self._submit(body, writer)
        elif path.startswith("/jobs/") and method == "GET":
            self._job_status(path[len("/jobs/"):], writer)
        elif path == "/events" and method == "GET":
            await self._stream_events(writer)
        elif path in ("/healthz", "/metrics", "/stats", "/submit", "/events"):
            raise HttpError(405, f"{method} not allowed on {path}")
        else:
            raise HttpError(404, f"no route for {path}")

    async def _submit(self, body: bytes,
                      writer: asyncio.StreamWriter) -> None:
        try:
            payload = json.loads(body.decode() or "{}")
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"body is not valid JSON: {exc}") from None
        if not isinstance(payload, dict):
            raise HttpError(400, "body must be a JSON object")
        lane = payload.pop("lane", "batch")
        wait = bool(payload.pop("wait", True))
        deadline_s = payload.pop("deadline_s", None)
        if deadline_s is not None:
            deadline_s = float(deadline_s)
        try:
            job = await self.service.submit(
                payload, lane=lane, deadline_s=deadline_s
            )
        except AdmissionError as busy:
            raise HttpError(429, str(busy), headers={
                "Retry-After": f"{busy.retry_after_s:g}"
            }) from None
        except ValueError as bad:
            raise HttpError(400, str(bad)) from None
        if not wait:
            writer.write(_json_response(202, {"job": job.describe()}))
            return
        try:
            result = await job.wait()
        except JobFailed as failed:
            writer.write(_json_response(504 if failed.failure.get(
                "error_type") == "DeadlineExceeded" else 500, {
                "job": job.describe(),
                "failure": failed.failure,
            }))
            return
        writer.write(_json_response(200, {
            "job": job.describe(),
            "result": result.to_dict(),
        }))

    def _job_status(self, job_id: str, writer: asyncio.StreamWriter) -> None:
        job = self.service.job(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        payload = {"job": job.describe()}
        if job.status == "done":
            payload["result"] = job.future.result().to_dict()
        writer.write(_json_response(200, payload))

    async def _stream_events(self, writer: asyncio.StreamWriter) -> None:
        queue = self.service.subscribe()
        try:
            writer.write(
                b"HTTP/1.1 200 OK\r\n"
                b"Content-Type: application/x-ndjson\r\n"
                b"Cache-Control: no-store\r\n"
                b"Connection: close\r\n\r\n"
            )
            await writer.drain()
            while True:
                event = await queue.get()
                writer.write((json.dumps(event, sort_keys=True) + "\n").encode())
                await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass
        finally:
            self.service.unsubscribe(queue)


def _register_with_router(register_url: str, name: str, url: str,
                          journal_dir: str | None,
                          attempts: int = 60) -> bool:
    """Announce this worker to a cluster router, retrying while the
    router is still coming up.  Runs in a daemon thread so a dead
    router can never wedge worker startup."""
    from urllib.parse import urlparse

    from repro.serve.client import ClientError, ServeClient

    parsed = urlparse(register_url)
    client = ServeClient(parsed.hostname or "127.0.0.1",
                         parsed.port or 80, timeout_s=5.0)
    for attempt in range(attempts):
        try:
            client.post("/register", {
                "name": name, "url": url, "journal_dir": journal_dir,
            })
            return True
        except ClientError:
            return False  # the router answered and refused: do not spin
        except OSError:
            time.sleep(min(0.05 * (attempt + 1), 1.0))
    return False


async def run_server(service: SimulationService, host: str,
                     port: int, *,
                     drain_timeout_s: float | None = None,
                     ready_file: str | None = None,
                     register_url: str | None = None,
                     worker_name: str | None = None) -> None:
    """Blocking entry point used by ``repro-oasis serve``.

    ``SIGTERM``/``SIGINT`` trigger a graceful drain: the service
    refuses new work, finishes what is queued (up to
    ``drain_timeout_s``), and only then shuts down — with a journal
    attached, anything still unfinished at the timeout stays live for
    the next incarnation to recover.

    Cluster-worker extras (used by ``repro-oasis cluster``):
    ``ready_file`` gets a JSON ``{"url", "pid", "name"}`` written once
    the listening port is known (the supervisor polls it), and
    ``register_url`` names a router whose ``POST /register`` this
    worker announces itself to — with its journal directory, so the
    router can steal live jobs if this worker dies.
    """
    import os
    import signal

    server = ServeHttpServer(service, host=host, port=port)
    await server.start()
    url = f"http://{server.host}:{server.port}"
    print(f"repro-oasis serve: listening on {url}"
          f" (jobs={service.jobs}, max_pending={service.max_pending})")
    name = worker_name or service.name or f"worker-{os.getpid()}"
    journal_dir = (
        str(service.journal.root) if service.journal is not None else None
    )
    if ready_file:
        Path(ready_file).write_text(json.dumps({
            "url": url, "pid": os.getpid(), "name": name,
        }))
    register_thread = None
    if register_url:
        register_thread = threading.Thread(
            target=_register_with_router,
            args=(register_url, name, url, journal_dir),
            name=f"repro-register-{name}", daemon=True,
        )
        register_thread.start()
    loop = asyncio.get_running_loop()
    shutdown = asyncio.Event()
    installed: list = []
    for sig in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(sig, shutdown.set)
            installed.append(sig)
        except (NotImplementedError, RuntimeError, ValueError):
            pass  # non-main thread or platform without signal support
    serve_task = asyncio.create_task(server.serve_forever())
    stop_task = asyncio.create_task(shutdown.wait())
    try:
        done, _ = await asyncio.wait(
            {serve_task, stop_task}, return_when=asyncio.FIRST_COMPLETED
        )
        if stop_task in done:
            print("repro-oasis serve: draining "
                  f"({service.stats()['queue_depth']} queued) ...")
            drained = await service.drain(drain_timeout_s)
            print(
                "repro-oasis serve: drained; shutting down" if drained
                else "repro-oasis serve: drain timed out; unfinished "
                     "jobs stay journaled for the next start"
            )
    except asyncio.CancelledError:
        pass
    finally:
        for task in (serve_task, stop_task):
            task.cancel()
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        for sig in installed:
            loop.remove_signal_handler(sig)
        await server.stop()
