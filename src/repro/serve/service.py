"""Asyncio core of the simulation service.

One :class:`SimulationService` owns four cooperating pieces:

* an **admission-controlled priority queue** — jobs land in a named lane
  (``interactive`` before ``batch`` before ``bulk``) and the queue
  refuses new work past ``max_pending`` (:class:`AdmissionError`
  carries a retry hint, the HTTP layer maps it to ``429``), so a
  traffic burst backs up at the front door instead of growing an
  unbounded heap;
* a **single-flight table** — every request hashes to its
  :func:`repro.harness.diskcache.cache_key`; while a key is queued or
  running, identical submissions attach to the in-flight job's future
  instead of enqueueing again, so a thundering herd of equal requests
  performs exactly one simulation;
* a **dispatcher** — one background task pops up to ``batch_max`` jobs
  in lane order, drops jobs whose deadline already passed, and hands
  the batch to :func:`repro.harness.run_sims_parallel` in a worker
  thread, mapping the tightest remaining per-job deadline onto the
  pool's per-run wall-clock timeout.  The pool keeps its PR-2 crash
  tolerance: a poisoned run comes back as a structured
  :class:`~repro.harness.RunFailure`, which fails only its own job;
* an **observability surface** — job lifecycle events are recorded as
  typed ``serve_*`` instants on a :class:`~repro.obs.RecordingTracer`
  (track ``"serve"``, wall-clock nanoseconds since service start) and
  fanned out to any number of streaming subscribers; counters, queue
  gauges and a latency histogram live in a
  :class:`~repro.obs.MetricsRegistry` and export through the same
  Prometheus path every other subsystem uses.

The dispatcher runs one batch at a time because the parallel runner's
caches and sweep summary are module-global; concurrency comes from the
worker processes inside the pool, not from overlapping sweeps.
"""

from __future__ import annotations

import asyncio
import itertools
import time
from collections import OrderedDict
from dataclasses import dataclass, field
from heapq import heappop, heappush

from repro import POLICY_FACTORIES, baseline_config
from repro.config import SystemConfig
from repro.harness.diskcache import cache_key
from repro.harness.runner import (
    RunFailure,
    disk_cache,
    last_sweep_summary,
    run_sims_parallel,
)
from repro.obs import MetricsRegistry, MetricsSnapshot, RecordingTracer
from repro.obs.export import prometheus_multi
from repro.serve.journal import JobJournal, JournalError
from repro.sim import SimulationResult
from repro.workloads import APPLICATIONS

#: Priority lanes, lowest number dispatched first.
LANES = {"interactive": 0, "batch": 1, "bulk": 2}

DEFAULT_LANE = "batch"

#: Default admission-control bound on queued (not yet dispatched) jobs.
DEFAULT_MAX_PENDING = 256

#: Default max jobs handed to the pool per dispatch round.
DEFAULT_BATCH_MAX = 16

#: Completed jobs kept for ``/jobs/<id>`` lookups.
DEFAULT_HISTORY_LIMIT = 1024

#: End-to-end job latency buckets (milliseconds): cache hits land in the
#: low buckets, cold multi-second simulations in the tail.
SERVE_LATENCY_BUCKETS_MS = (
    1.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0, 10_000.0, 30_000.0,
)

#: Per-subscriber event-queue bound; a slow consumer drops events rather
#: than growing the service's memory.
EVENT_QUEUE_LIMIT = 1024

#: Consecutive run failures before the worker-pool circuit breaker opens.
DEFAULT_BREAKER_THRESHOLD = 5

#: Seconds the breaker stays open before letting one probe batch through.
DEFAULT_BREAKER_COOLDOWN_S = 5.0

#: Numeric gauge encoding of breaker states (``serve.breaker_state``).
BREAKER_STATES = {"closed": 0, "half_open": 1, "open": 2}

_MS_PER_NS = 1e-6


class AdmissionError(RuntimeError):
    """The queue is at capacity; retry after ``retry_after_s``."""

    def __init__(self, message: str, retry_after_s: float = 1.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class JobFailed(RuntimeError):
    """Awaiting a job whose run failed raises this.

    ``failure`` is a plain dict (the structured
    :class:`~repro.harness.RunFailure` fields, or the service's own
    diagnosis for expired deadlines / shutdown).
    """

    def __init__(self, failure: dict) -> None:
        super().__init__(
            f"{failure.get('error_type', 'Error')}: "
            f"{failure.get('message', '')}"
        )
        self.failure = dict(failure)


@dataclass
class JobSpec:
    """One requested simulation, before key resolution."""

    app: str
    policy: str
    footprint_mb: float | None = None
    seed: int = 0
    policy_kwargs: dict = field(default_factory=dict)
    #: Optional :func:`repro.baseline_config` overrides (``n_gpus``,
    #: ``page_size``, ...); empty means the service's base config.
    config_kwargs: dict = field(default_factory=dict)

    @classmethod
    def from_dict(cls, payload: dict) -> "JobSpec":
        known = {
            "app", "policy", "footprint_mb", "seed",
            "policy_kwargs", "config_kwargs",
        }
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown spec field(s): {sorted(unknown)}")
        try:
            spec = cls(app=payload["app"], policy=payload["policy"])
        except KeyError as missing:
            raise ValueError(f"spec is missing {missing.args[0]!r}") from None
        if payload.get("footprint_mb") is not None:
            spec.footprint_mb = float(payload["footprint_mb"])
        spec.seed = int(payload.get("seed", 0))
        spec.policy_kwargs = dict(payload.get("policy_kwargs") or {})
        spec.config_kwargs = dict(payload.get("config_kwargs") or {})
        return spec

    def resolve_config(self, base: SystemConfig) -> SystemConfig:
        if not self.config_kwargs:
            return base
        return baseline_config(**self.config_kwargs)

    def to_dict(self) -> dict:
        return {
            "app": self.app,
            "policy": self.policy,
            "footprint_mb": self.footprint_mb,
            "seed": self.seed,
            "policy_kwargs": dict(self.policy_kwargs),
            "config_kwargs": dict(self.config_kwargs),
        }


class Job:
    """One admitted request (and everyone deduplicated onto it)."""

    def __init__(self, job_id: str, spec: JobSpec, config: SystemConfig,
                 key: str, lane: str, deadline_s: float | None,
                 future: asyncio.Future) -> None:
        self.id = job_id
        self.spec = spec
        self.config = config
        self.key = key
        self.lane = lane
        self.deadline_s = deadline_s
        self.future = future
        self.status = "queued"
        self.waiters = 1
        self.submitted_mono = time.monotonic()
        self.finished_mono: float | None = None
        self.failure: dict | None = None

    def remaining_s(self, now: float) -> float | None:
        """Seconds left on the deadline (None = no deadline)."""
        if self.deadline_s is None:
            return None
        return self.deadline_s - (now - self.submitted_mono)

    @property
    def latency_s(self) -> float | None:
        if self.finished_mono is None:
            return None
        return self.finished_mono - self.submitted_mono

    async def wait(self) -> SimulationResult:
        """Block until the job resolves; raises :class:`JobFailed`.

        The future is shared by every deduplicated waiter, so it is
        shielded — cancelling one waiter never cancels the computation.
        """
        return await asyncio.shield(self.future)

    def describe(self) -> dict:
        """JSON-serializable status view (the ``/jobs/<id>`` payload)."""
        info = {
            "id": self.id,
            "key": self.key,
            "lane": self.lane,
            "status": self.status,
            "waiters": self.waiters,
            "deadline_s": self.deadline_s,
            "latency_s": self.latency_s,
            "spec": self.spec.to_dict(),
        }
        if self.failure is not None:
            info["failure"] = dict(self.failure)
        return info


def _chain_future(job: Job, primary: Job) -> None:
    """Resolve ``job`` whenever ``primary`` resolves (recovery dedup)."""

    def _copy(done: asyncio.Future) -> None:
        if job.future.done():
            return
        exc = done.exception() if not done.cancelled() else None
        job.finished_mono = time.monotonic()
        if done.cancelled():
            job.status = "failed"
            job.failure = {"error_type": "Cancelled",
                           "message": "primary job was cancelled"}
            job.future.cancel()
        elif exc is not None:
            job.status = "failed"
            job.failure = dict(getattr(exc, "failure", {})) or {
                "error_type": type(exc).__name__, "message": str(exc),
            }
            job.future.set_exception(exc)
            job.future.exception()
        else:
            job.status = "done"
            job.future.set_result(done.result())

    primary.future.add_done_callback(_copy)


class SimulationService:
    """Admission-controlled, single-flight front end over the harness.

    Args:
        config: base :class:`SystemConfig` for specs without
            ``config_kwargs`` (default: the Table I baseline).
        jobs: worker processes per dispatched batch (1 = in-process
            serial; per-run timeouts need ``jobs >= 2`` for process
            isolation).
        max_pending: admission bound on queued jobs.
        batch_max: max jobs per dispatch round.
        run_timeout_s: per-run wall-clock cap applied to every batch in
            addition to job deadlines.
        history_limit: completed jobs retained for status lookups.
        journal_dir: directory for the write-ahead job journal (see
            :mod:`repro.serve.journal`).  None (the default) keeps the
            pre-journal in-memory behavior; with a directory, every job
            state transition is made durable and :meth:`start` replays
            any prior journal before accepting new work.
        breaker_threshold: consecutive run failures before the circuit
            breaker around the worker pool opens.
        breaker_cooldown_s: seconds the breaker stays open before a
            half-open single-job probe batch is allowed through.
        name: optional worker identity reported in ``/healthz``; the
            cluster router uses it to match health to ring members.

    Construct and drive it inside one event loop; all queue state is
    loop-confined (no locks), only the simulation batch leaves the loop
    via ``asyncio.to_thread``.
    """

    def __init__(
        self,
        config: SystemConfig | None = None,
        *,
        jobs: int = 1,
        max_pending: int = DEFAULT_MAX_PENDING,
        batch_max: int = DEFAULT_BATCH_MAX,
        run_timeout_s: float | None = None,
        history_limit: int = DEFAULT_HISTORY_LIMIT,
        journal_dir: str | None = None,
        breaker_threshold: int = DEFAULT_BREAKER_THRESHOLD,
        breaker_cooldown_s: float = DEFAULT_BREAKER_COOLDOWN_S,
        name: str | None = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        if max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if batch_max < 1:
            raise ValueError("batch_max must be >= 1")
        if breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1")
        if breaker_cooldown_s < 0:
            raise ValueError("breaker_cooldown_s must be >= 0")
        self.config = config if config is not None else baseline_config()
        self.jobs = jobs
        self.max_pending = max_pending
        self.batch_max = batch_max
        self.run_timeout_s = run_timeout_s
        self.history_limit = history_limit
        self.journal = JobJournal(journal_dir) if journal_dir else None
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown_s = breaker_cooldown_s
        #: Optional worker identity, surfaced in ``/healthz`` so the
        #: cluster router can match health reports to ring members.
        self.name = name

        self.metrics = MetricsRegistry()
        self.tracer = RecordingTracer()
        self._latency = self.metrics.histogram(
            "serve.latency_ms", SERVE_LATENCY_BUCKETS_MS
        )
        self._heap: list[tuple[int, int, Job]] = []
        self._seq = itertools.count()
        self._ids = itertools.count(1)
        self._inflight: dict[str, Job] = {}
        self._jobs: OrderedDict[str, Job] = OrderedDict()
        self._subscribers: set[asyncio.Queue] = set()
        self._wakeup: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._running = False
        self._draining = False
        self._batch_inflight = False
        self._batch_future: asyncio.Future | None = None
        self._started_mono: float | None = None
        #: Circuit breaker around the worker pool.
        self._breaker_state = "closed"
        self._consec_failures = 0
        self._breaker_open_until = 0.0
        #: Recovery summary of the last :meth:`recover` (stats()).
        self._recovery: dict | None = None
        #: Simulation counters accumulated across every dispatched batch
        #: (merged from the runner's sweep summaries).
        self._sim_counters: dict[str, float] = {}

    # -- lifecycle ---------------------------------------------------------

    async def start(self, *, dispatch: bool = True) -> None:
        """Begin accepting jobs; with ``dispatch=False`` the queue fills
        but nothing runs until :meth:`resume` (warm-up / deterministic
        ordering tests).

        With a journal attached, any state a previous incarnation left
        behind is replayed first (see :meth:`recover`), so recovered
        jobs are already queued when the dispatcher starts.
        """
        if self._running:
            return
        self._running = True
        self._started_mono = time.monotonic()
        self._wakeup = asyncio.Event()
        if self.journal is not None:
            await self.recover()
        if dispatch:
            self.resume()

    def resume(self) -> None:
        """Start the dispatcher after a paused :meth:`start`."""
        if not self._running:
            raise RuntimeError("service is not running (call start())")
        if self._dispatcher is None:
            self._dispatcher = asyncio.create_task(
                self._dispatch_loop(), name="repro-serve-dispatcher"
            )

    async def stop(self) -> None:
        """Drain nothing: finish the in-flight batch, fail queued jobs.

        Queued jobs fail for their *current* waiters, but with a journal
        attached they are deliberately **not** journaled as failed: their
        ``accepted`` records stay live, so the next :meth:`start` on the
        same journal re-enqueues them.  A clean shutdown never forfeits
        acknowledged work.
        """
        if not self._running:
            return
        self._running = False
        assert self._wakeup is not None
        self._wakeup.set()
        if self._dispatcher is not None:
            await self._dispatcher
            self._dispatcher = None
        while self._heap:
            _, _, job = heappop(self._heap)
            self._finish_failure(job, {
                "error_type": "ServiceStopped",
                "message": "service shut down before the job ran",
            }, journal=False)
        self._publish_gauges()
        if self.journal is not None:
            self.journal.close()

    async def drain(self, timeout_s: float | None = None) -> bool:
        """Graceful shutdown: refuse new work, finish queued work, stop.

        Returns True when the queue fully drained inside ``timeout_s``
        (None = wait indefinitely); on timeout the remaining jobs fail
        with ``ServiceStopped`` for current waiters but stay live in the
        journal, exactly like :meth:`stop`.  This is what the serve CLI
        runs on ``SIGTERM``.
        """
        if not self._running:
            return True
        self._draining = True
        self._emit("serve_drain", queued=len(self._heap))
        assert self._wakeup is not None
        self._wakeup.set()
        deadline = (
            time.monotonic() + timeout_s if timeout_s is not None else None
        )
        drained = True
        while self._heap or self._batch_inflight:
            if deadline is not None and time.monotonic() >= deadline:
                drained = False
                break
            await asyncio.sleep(0.02)
        await self.stop()
        return drained

    async def abandon(self) -> None:
        """Crash simulation for chaos tests: die without cleanup.

        The dispatcher is cancelled mid-flight, queued jobs are neither
        failed nor journaled, and no terminal records are written — the
        closest an in-process service can get to ``kill -9``.  Only the
        journal's file handle is closed (its records were already
        fsync'd), so a new service can reopen the directory.

        A batch running in the worker thread when the crash lands is
        waited out (its jobs still resolve nothing — like a pool whose
        results nobody collects) so a successor service never races it
        on the runner's process-global caches.
        """
        self._running = False
        self._draining = False
        batch = self._batch_future
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass
            self._dispatcher = None
        if batch is not None:
            try:
                await batch
            except (asyncio.CancelledError, Exception):
                pass
        if self.journal is not None:
            self.journal.close()

    @property
    def running(self) -> bool:
        return self._running

    def _now_ns(self) -> float:
        base = self._started_mono if self._started_mono is not None else 0.0
        return (time.monotonic() - base) * 1e9

    # -- recovery ----------------------------------------------------------

    async def recover(self) -> dict:
        """Replay the journal and re-own every job a crash left behind.

        For each journaled job, in acknowledgement order:

        * last record ``failed`` — re-materialized in history with its
          stored diagnosis (the failure was served before the crash);
        * any other state (``accepted``/``dispatched``/``done``) — the
          result cache is consulted by ``cache_key`` first: a hit
          resolves the job immediately with **zero** re-simulation
          (``recovered_cached``), a miss re-enqueues it on its original
          lane (``recovered_requeued``).  Jobs that were ``done`` but
          whose cache entry was lost are recomputed rather than lost.

        Queue-relative deadlines died with the old process and are
        dropped.  After classification the journal is compacted down to
        the still-live jobs.  Returns the recovery summary that
        :meth:`stats` also exposes.
        """
        assert self.journal is not None, "recover() needs a journal"
        replay = self.journal.replay()
        disk = disk_cache()
        loop = asyncio.get_running_loop()
        summary = {
            "journal_records": replay.records,
            "journal_torn": replay.torn,
            "recovered_cached": 0,
            "recovered_requeued": 0,
            "recovered_failed": 0,
        }
        live: list[tuple[str, dict]] = []
        max_id = 0
        for job_id, state in replay.jobs.items():
            data = state["data"]
            try:
                spec = JobSpec.from_dict(data["spec"])
                key = data["key"]
                lane = data.get("lane", DEFAULT_LANE)
                config = spec.resolve_config(self.config)
            except (KeyError, TypeError, ValueError):
                # A record that checksummed but no longer parses as a
                # spec (schema drift): count it as torn, don't crash
                # recovery for every other job.
                summary["journal_torn"] += 1
                continue
            try:
                max_id = max(max_id, int(job_id.rsplit("-", 1)[-1]))
            except ValueError:
                pass
            job = Job(
                job_id=job_id, spec=spec, config=config, key=key,
                lane=lane if lane in LANES else DEFAULT_LANE,
                deadline_s=None, future=loop.create_future(),
            )
            if state["kind"] == "failed":
                job.status = "failed"
                job.failure = dict(data.get("failure") or {
                    "error_type": "Unknown",
                    "message": "failure recorded before crash",
                })
                job.future.set_exception(JobFailed(job.failure))
                job.future.exception()
                job.finished_mono = time.monotonic()
                self._jobs[job.id] = job
                summary["recovered_failed"] += 1
                continue
            result = disk.load(key) if disk is not None else None
            if result is not None:
                job.status = "done"
                job.finished_mono = time.monotonic()
                job.future.set_result(result)
                self._jobs[job.id] = job
                summary["recovered_cached"] += 1
                if state["kind"] != "done":
                    self._journal_append("done", {
                        "job_id": job.id, "key": job.key,
                    })
                self._emit("serve_recover", job=job.id, key=key,
                           outcome="cached")
                continue
            accepted = {
                "job_id": job.id, "spec": spec.to_dict(),
                "key": key, "lane": job.lane,
            }
            shared = self._inflight.get(key)
            if shared is not None:
                # Two acked jobs with one key (the first completed, the
                # second was accepted later, then the cache was lost):
                # chain onto the primary instead of double-simulating.
                shared.waiters += 1
                job.status = "queued"
                _chain_future(job, shared)
                self._jobs[job.id] = job
            else:
                job.status = "queued"
                self._inflight[key] = job
                self._jobs[job.id] = job
                heappush(self._heap, (LANES[job.lane], next(self._seq), job))
            live.append(("accepted", accepted))
            summary["recovered_requeued"] += 1
            self._emit("serve_recover", job=job.id, key=key,
                       outcome="requeued")
        # Continue job-id allocation past everything the journal named.
        self._ids = itertools.count(max_id + 1)
        self.journal.compact(live)
        for name in (
            "recovered_cached", "recovered_requeued", "recovered_failed",
            "journal_torn",
        ):
            self.metrics.inc(f"serve.{name}", float(summary[name]))
        self._recovery = summary
        self._publish_gauges()
        if self._heap:
            assert self._wakeup is not None
            self._wakeup.set()
        return summary

    def _journal_append(self, kind: str, data: dict) -> bool:
        """Best-effort journal append for non-ack records.

        ``accepted`` records go through the strict path in
        :meth:`submit` (a failure there refuses the job); transition
        records here only narrow recovery work, so an append failure is
        counted and tolerated — replay semantics stay correct with any
        prefix of the transitions.
        """
        if self.journal is None:
            return True
        try:
            self.journal.append(kind, data)
            return True
        except JournalError:
            self.metrics.inc("serve.journal_errors")
            return False

    # -- submission --------------------------------------------------------

    async def submit(
        self,
        spec: JobSpec | dict,
        *,
        lane: str = DEFAULT_LANE,
        deadline_s: float | None = None,
    ) -> Job:
        """Admit one request; returns its (possibly shared) :class:`Job`.

        Identical in-flight requests — same cache key — coalesce onto
        the existing job regardless of lane.  A full queue raises
        :class:`AdmissionError` (backpressure), and malformed specs
        raise :class:`ValueError` before touching the queue.

        With a journal attached, the job's ``accepted`` record is made
        durable *before* this method returns — if the append fails, the
        job is refused (:class:`AdmissionError`), never half-accepted.
        """
        if not self._running:
            raise RuntimeError("service is not running (call start())")
        if self._draining:
            self.metrics.inc("serve.rejected")
            raise AdmissionError(
                "service is draining and refuses new work",
                retry_after_s=5.0,
            )
        if lane not in LANES:
            raise ValueError(f"unknown lane {lane!r}; known: {sorted(LANES)}")
        if isinstance(spec, dict):
            spec = JobSpec.from_dict(spec)
        if spec.app not in APPLICATIONS:
            raise ValueError(f"unknown app {spec.app!r}")
        if spec.policy not in POLICY_FACTORIES:
            raise ValueError(f"unknown policy {spec.policy!r}")
        config = spec.resolve_config(self.config)
        key = cache_key(
            config, spec.app, spec.policy,
            spec.footprint_mb, spec.seed, spec.policy_kwargs,
        )
        self.metrics.inc("serve.submitted")

        shared = self._inflight.get(key)
        if shared is not None:
            shared.waiters += 1
            self.metrics.inc("serve.deduped")
            self._emit("serve_dedup", job=shared.id, key=key,
                       waiters=shared.waiters)
            return shared

        queued = len(self._heap)
        if queued >= self.max_pending:
            self.metrics.inc("serve.rejected")
            self._emit("serve_reject", key=key, queued=queued)
            raise AdmissionError(
                f"queue full ({queued}/{self.max_pending} pending)",
                retry_after_s=1.0,
            )

        job = Job(
            job_id=f"job-{next(self._ids)}",
            spec=spec,
            config=config,
            key=key,
            lane=lane,
            deadline_s=deadline_s,
            future=asyncio.get_running_loop().create_future(),
        )
        if self.journal is not None:
            try:
                self.journal.append("accepted", {
                    "job_id": job.id,
                    "spec": spec.to_dict(),
                    "key": key,
                    "lane": lane,
                    "deadline_s": deadline_s,
                })
            except JournalError as exc:
                # The ack could not be made durable, so there is no ack:
                # refuse the job and let the client retry.
                self.metrics.inc("serve.journal_errors")
                self.metrics.inc("serve.rejected")
                raise AdmissionError(
                    f"journal write failed: {exc}", retry_after_s=1.0,
                ) from exc
        self._inflight[key] = job
        self._remember_job(job)
        heappush(self._heap, (LANES[lane], next(self._seq), job))
        self._emit("serve_submit", job=job.id, key=key, lane=lane)
        self._publish_gauges()
        assert self._wakeup is not None
        self._wakeup.set()
        return job

    def job(self, job_id: str) -> Job | None:
        return self._jobs.get(job_id)

    def _remember_job(self, job: Job) -> None:
        self._jobs[job.id] = job
        while len(self._jobs) > self.history_limit:
            oldest_id, oldest = next(iter(self._jobs.items()))
            if oldest.status in ("queued", "running"):
                break  # never forget live jobs, whatever the limit
            del self._jobs[oldest_id]

    # -- dispatch ----------------------------------------------------------

    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while self._running:
            if not self._heap:
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            if not self._breaker_admits():
                # Breaker open: hold dispatch until the cooldown expires,
                # in small quanta so stop()/drain() stay responsive.
                remaining = self._breaker_open_until - time.monotonic()
                await asyncio.sleep(min(0.05, max(0.01, remaining)))
                continue
            # A half-open breaker lets exactly one probe job through; its
            # outcome decides between closing and re-opening.
            batch_limit = (
                1 if self._breaker_state == "half_open" else self.batch_max
            )
            batch: list[Job] = []
            now = time.monotonic()
            while self._heap and len(batch) < batch_limit:
                _, _, job = heappop(self._heap)
                remaining = job.remaining_s(now)
                if remaining is not None and remaining <= 0:
                    self.metrics.inc("serve.expired")
                    # Expiring is a served, terminal outcome — journal it
                    # so recovery does not resurrect a dead deadline.
                    self._finish_failure(job, {
                        "error_type": "DeadlineExceeded",
                        "message": (
                            f"deadline of {job.deadline_s}s passed while "
                            "queued"
                        ),
                    })
                    continue
                batch.append(job)
            if not batch:
                self._publish_gauges()
                continue

            timeouts = [self.run_timeout_s] + [
                job.remaining_s(now) for job in batch
            ]
            effective = [t for t in timeouts if t is not None]
            batch_timeout = min(effective) if effective else None
            requests = [
                (job.config, job.spec.app, job.spec.policy, {
                    "footprint_mb": job.spec.footprint_mb,
                    "seed": job.spec.seed,
                    "policy_kwargs": dict(job.spec.policy_kwargs),
                })
                for job in batch
            ]
            for job in batch:
                job.status = "running"
                self.metrics.inc("serve.dispatched")
                self._journal_append("dispatched", {
                    "job_id": job.id, "key": job.key,
                })
                self._emit("serve_dispatch", job=job.id, key=job.key,
                           lane=job.lane)
            self.metrics.inc("serve.batches")
            self._publish_gauges()

            self._batch_inflight = True
            self._batch_future = asyncio.get_running_loop().run_in_executor(
                None, self._run_batch, requests, batch_timeout
            )
            try:
                results, summary = await self._batch_future
            except asyncio.CancelledError:
                # abandon(): a crash writes no terminal records — the
                # in-flight jobs simply die with the process image.
                raise
            except BaseException as exc:  # defensive: the pool never raises
                for job in batch:
                    self._finish_failure(job, {
                        "error_type": type(exc).__name__,
                        "message": str(exc),
                    }, breaker=True)
                self._publish_gauges()
                continue
            finally:
                self._batch_inflight = False
                self._batch_future = None

            if summary:
                for name, value in summary.get("counters", {}).items():
                    self._sim_counters[name] = (
                        self._sim_counters.get(name, 0.0) + value
                    )
                memo = summary.get("memo") or {}
                self.metrics.set_gauge(
                    "serve.memo_enabled", float(bool(memo.get("enabled")))
                )
                for name in (
                    "hits", "misses", "stores", "snapshot_bytes",
                    "resumed_phases", "corrupt", "io_errors", "prefix_forks",
                ):
                    self.metrics.inc(
                        f"serve.memo_{name}", float(memo.get(name, 0))
                    )
            for job, result in zip(batch, results):
                if isinstance(result, SimulationResult):
                    self._finish_ok(job, result)
                elif isinstance(result, RunFailure):
                    self._finish_failure(job, {
                        "error_type": result.error_type,
                        "message": result.message,
                        "attempts": result.attempts,
                    }, breaker=True)
                else:  # pragma: no cover - the runner returns only those
                    self._finish_failure(job, {
                        "error_type": "InternalError",
                        "message": f"unexpected result {type(result).__name__}",
                    }, breaker=True)
            self._publish_gauges()

    def _run_batch(self, requests: list, timeout_s: float | None):
        """Worker-thread body: one crash-tolerant sweep + its summary."""
        results = run_sims_parallel(
            requests, jobs=self.jobs, timeout_s=timeout_s
        )
        return results, last_sweep_summary()

    # -- circuit breaker ---------------------------------------------------

    def _breaker_admits(self) -> bool:
        """May the dispatcher hand work to the pool right now?"""
        if self._breaker_state != "open":
            return True
        if time.monotonic() >= self._breaker_open_until:
            self._breaker_state = "half_open"
            self._emit("serve_breaker", state="half_open")
            self._publish_gauges()
            return True
        return False

    def _breaker_note(self, ok: bool) -> None:
        """Fold one pool-run outcome into the breaker state machine."""
        if ok:
            self._consec_failures = 0
            if self._breaker_state != "closed":
                self._breaker_state = "closed"
                self._emit("serve_breaker", state="closed")
            return
        self._consec_failures += 1
        failed_probe = self._breaker_state == "half_open"
        if failed_probe or self._consec_failures >= self.breaker_threshold:
            if self._breaker_state != "open":
                self.metrics.inc("serve.breaker_opens")
                self._emit("serve_breaker", state="open",
                           consecutive=self._consec_failures)
            self._breaker_state = "open"
            self._breaker_open_until = (
                time.monotonic() + self.breaker_cooldown_s
            )

    # -- completion --------------------------------------------------------

    def _finish_ok(self, job: Job, result: SimulationResult) -> None:
        job.status = "done"
        job.finished_mono = time.monotonic()
        self._inflight.pop(job.key, None)
        self.metrics.inc("serve.completed")
        self._breaker_note(True)
        self._journal_append("done", {"job_id": job.id, "key": job.key})
        latency_ms = (job.latency_s or 0.0) * 1e3
        self._latency.observe(latency_ms)
        if not job.future.done():
            job.future.set_result(result)
        self._emit("serve_done", job=job.id, key=job.key,
                   latency_ms=round(latency_ms, 3), waiters=job.waiters)

    def _finish_failure(self, job: Job, failure: dict, *,
                        journal: bool = True, breaker: bool = False) -> None:
        """Fail one job.

        ``journal=False`` (shutdown path) keeps the job's ``accepted``
        record live so the next incarnation re-owns it; every other
        failure is terminal and journaled.  ``breaker=True`` marks
        pool-run outcomes, which are the only failures the circuit
        breaker should count (deadline expiries and shutdowns say
        nothing about pool health).
        """
        job.status = "failed"
        job.finished_mono = time.monotonic()
        job.failure = dict(failure)
        self._inflight.pop(job.key, None)
        self.metrics.inc("serve.failed")
        if breaker:
            self._breaker_note(False)
        if journal:
            self._journal_append("failed", {
                "job_id": job.id,
                "key": job.key,
                "failure": {
                    "error_type": failure.get("error_type", "Error"),
                    "message": failure.get("message", ""),
                },
            })
        if not job.future.done():
            job.future.set_exception(JobFailed(failure))
            # A fire-and-forget submission may never await this future;
            # retrieve the exception once so GC never logs it as lost.
            job.future.exception()
        self._emit("serve_fail", job=job.id, key=job.key,
                   error_type=failure.get("error_type", "Error"))

    # -- events ------------------------------------------------------------

    def subscribe(self) -> asyncio.Queue:
        """Register a streaming consumer; pair with :meth:`unsubscribe`."""
        queue: asyncio.Queue = asyncio.Queue(maxsize=EVENT_QUEUE_LIMIT)
        self._subscribers.add(queue)
        return queue

    def unsubscribe(self, queue: asyncio.Queue) -> None:
        self._subscribers.discard(queue)

    def _emit(self, kind: str, **args) -> None:
        """Record one lifecycle event and fan it out to subscribers.

        The tracer is the source of truth: the event lands as a typed
        ``serve_*`` instant on the ``"serve"`` track (exportable as a
        Chrome trace like any simulated run), and the streamed payload
        is built from the same record.
        """
        ts_ns = self._now_ns()
        self.tracer.instant("serve", kind, ts_ns, args)
        event = {"kind": kind, "ts_ns": ts_ns, **args}
        for queue in list(self._subscribers):
            try:
                queue.put_nowait(event)
            except asyncio.QueueFull:
                self.metrics.inc("serve.events_dropped")

    # -- introspection -----------------------------------------------------

    def _publish_gauges(self) -> None:
        self.metrics.set_gauge("serve.queue_depth", float(len(self._heap)))
        self.metrics.set_gauge(
            "serve.inflight", float(len(self._inflight))
        )
        self.metrics.set_gauge(
            "serve.subscribers", float(len(self._subscribers))
        )
        self.metrics.set_gauge(
            "serve.breaker_state",
            float(BREAKER_STATES[self._breaker_state]),
        )
        if self.journal is not None:
            self.metrics.set_gauge(
                "serve.journal_segments",
                float(self.journal.stats()["segments"]),
            )

    def oldest_unresolved_age_s(self) -> float | None:
        """Age of the oldest job still queued or running (None = none).

        The cluster health checker reads this from ``/healthz``: a
        worker whose oldest unresolved job keeps aging while its queue
        stays non-empty is wedged, even if its HTTP front end still
        answers.
        """
        now = time.monotonic()
        ages = [
            now - job.submitted_mono
            for job in self._jobs.values()
            if job.status in ("queued", "running")
        ]
        return round(max(ages), 3) if ages else None

    def stats(self) -> dict:
        """The ``/healthz`` payload: liveness plus headline counters."""
        uptime = (
            time.monotonic() - self._started_mono
            if self._started_mono is not None else 0.0
        )
        counters = self.metrics.stats.as_dict()
        info = {
            "status": (
                "draining" if self._draining and self._running
                else "ok" if self._running else "stopped"
            ),
            "worker": self.name,
            "uptime_s": round(uptime, 3),
            # Wedge detection for cluster health checks: segment count
            # growing without bound or an ever-aging unresolved job are
            # both visible straight off /healthz.
            "journal_segments": (
                self.journal.stats()["segments"]
                if self.journal is not None else 0
            ),
            "oldest_unresolved_age_s": self.oldest_unresolved_age_s(),
            "queue_depth": len(self._heap),
            "inflight": len(self._inflight),
            "max_pending": self.max_pending,
            "jobs": self.jobs,
            "batch_max": self.batch_max,
            "submitted": counters.get("serve.submitted", 0.0),
            "deduped": counters.get("serve.deduped", 0.0),
            "completed": counters.get("serve.completed", 0.0),
            "failed": counters.get("serve.failed", 0.0),
            "rejected": counters.get("serve.rejected", 0.0),
            # Slow consumers shed events rather than growing queues; the
            # drop count is part of liveness, not a hidden metric.
            "events_dropped": counters.get("serve.events_dropped", 0.0),
            "breaker": {
                "state": self._breaker_state,
                "consecutive_failures": self._consec_failures,
                "opens": counters.get("serve.breaker_opens", 0.0),
            },
        }
        if self.journal is not None:
            info["journal"] = self.journal.stats()
            info["journal"]["errors"] = counters.get(
                "serve.journal_errors", 0.0
            )
        if self._recovery is not None:
            info["recovery"] = dict(self._recovery)
        return info

    def snapshot(self) -> MetricsSnapshot:
        """Service-side metrics (counters, gauges, latency histogram)."""
        self._publish_gauges()
        return self.metrics.snapshot()

    def sim_snapshot(self) -> MetricsSnapshot:
        """Simulation counters accumulated over every dispatched batch."""
        return MetricsSnapshot.from_counters(self._sim_counters)

    def prometheus(self) -> str:
        """The ``/metrics`` payload: service + simulation metrics.

        Service metrics render as ``repro_serve_*`` (the counters are
        already namespaced ``serve.*``, so the bare ``repro`` prefix
        composes without stuttering) and the accumulated simulation
        counters as ``repro_sim_*``.
        """
        return prometheus_multi({
            "repro": self.snapshot(),
            "repro_sim": self.sim_snapshot(),
        })
