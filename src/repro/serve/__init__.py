"""repro.serve — a single-flight simulation service.

The front door the ROADMAP's traffic story needs: instead of every
consumer driving :func:`repro.harness.run_sims_parallel` in-process, a
long-running :class:`SimulationService` accepts simulation requests,
applies admission control with bounded backpressure, collapses
concurrent identical requests into one computation (*single-flight*,
keyed on :func:`repro.harness.diskcache.cache_key`), schedules work
through priority lanes with per-job deadlines onto the crash-tolerant
parallel pool, and streams job lifecycle events sourced from the
:mod:`repro.obs` tracer.

Layers:

* :mod:`repro.serve.service` — the asyncio core (queue, lanes,
  single-flight, dispatcher, circuit breaker, metrics).
* :mod:`repro.serve.journal` — the write-ahead job journal that makes
  accepted work crash-durable (replayed by
  :meth:`SimulationService.recover` on restart).
* :mod:`repro.serve.http` — a dependency-free HTTP front end
  (``/healthz``, ``/metrics``, ``/submit``, ``/jobs/<id>``,
  ``/events``, ``/stats``).
* :mod:`repro.serve.client` — a thin synchronous client library used by
  ``repro-oasis submit`` and the load generator.

Quickstart (see also ``repro-oasis serve --help``)::

    import asyncio
    from repro.serve import SimulationService

    async def main():
        service = SimulationService(jobs=4)
        await service.start()
        job = await service.submit({"app": "st", "policy": "oasis"},
                                   lane="interactive")
        result = await job.wait()
        print(result.total_time_ns)
        await service.stop()

    asyncio.run(main())
"""

from repro.serve.journal import JobJournal, JournalError, JournalReplay
from repro.serve.service import (
    BREAKER_STATES,
    DEFAULT_BATCH_MAX,
    DEFAULT_BREAKER_COOLDOWN_S,
    DEFAULT_BREAKER_THRESHOLD,
    DEFAULT_MAX_PENDING,
    LANES,
    SERVE_LATENCY_BUCKETS_MS,
    AdmissionError,
    Job,
    JobFailed,
    SimulationService,
)

__all__ = [
    "AdmissionError",
    "BREAKER_STATES",
    "DEFAULT_BATCH_MAX",
    "DEFAULT_BREAKER_COOLDOWN_S",
    "DEFAULT_BREAKER_THRESHOLD",
    "DEFAULT_MAX_PENDING",
    "Job",
    "JobFailed",
    "JobJournal",
    "JournalError",
    "JournalReplay",
    "LANES",
    "SERVE_LATENCY_BUCKETS_MS",
    "SimulationService",
]
