"""Write-ahead job journal: the serve layer's durable state.

:class:`~repro.serve.service.SimulationService` keeps its queue,
in-flight set and single-flight table in memory — fast, but a process
crash would silently lose every accepted job.  The journal closes that
gap: every job state transition (``accepted`` → ``dispatched`` →
``done``/``failed``) is appended here *before* the service acts on it,
so a restarted service can replay the journal and owe exactly the work
it acknowledged.

Format
------
Append-only JSONL **segments** (``journal-00000001.jsonl``, ...) under
one directory.  Each line is one record::

    {"v": 1, "seq": 17, "kind": "accepted", "data": {...}, "crc": "..."}

``crc`` is a sha256 over the canonical JSON of the record *without* the
``crc`` field, so a torn or bit-flipped line can never replay as valid
state.  Appends are flushed and ``fsync``'d before :meth:`JobJournal.append`
returns (skip with ``REPRO_NO_FSYNC=1`` for test speed) — the service
acknowledges a job only after its ``accepted`` record is durable, which
is what makes "no acked job is ever lost" a provable invariant rather
than a hope.

Rotation and compaction
-----------------------
A segment is rotated (fsync + close + fresh file, directory fsync'd so
the new name is durable) after ``segment_max_records`` appends, keeping
any single file small enough to scan quickly.  :meth:`JobJournal.compact`
rewrites the live tail — the records for jobs that have not reached a
terminal state — into a fresh segment and deletes every older one, so a
long-running service's journal is bounded by its *live* job count, not
its lifetime throughput.

Replay
------
:meth:`JobJournal.replay` scans segments in order, verifies every
record, and folds them into a per-job last-state map.  A record that
fails to parse or checksum is **skipped and counted** (``torn``):
a torn tail is the expected signature of a crash mid-append, and by the
append-before-ack protocol it can only ever hold a record whose job was
never acknowledged.

Chaos hooks
-----------
The module-level ``_CHAOS`` hook (installed by
:class:`repro.chaos.inject.ChaosInjector`) lets the chaos layer inject
torn appends and I/O errors at exactly this seam; see
:mod:`repro.chaos`.
"""

from __future__ import annotations

import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path

from repro.harness.diskcache import fsync_dir, fsync_enabled

#: Journal record layout version; bump when the line format changes.
JOURNAL_VERSION = 1

#: Records per segment before rotation.
DEFAULT_SEGMENT_MAX_RECORDS = 1024

#: Job state transitions the journal understands, in lifecycle order.
RECORD_KINDS = ("accepted", "dispatched", "done", "failed")

_SEGMENT_PREFIX = "journal-"
_SEGMENT_SUFFIX = ".jsonl"

#: Chaos-injection hook (see :mod:`repro.chaos.inject`); None = inert.
_CHAOS = None


class JournalError(RuntimeError):
    """An append could not be made durable; the caller must not ack."""


def _record_crc(record: dict) -> str:
    """Checksum over the record minus its own ``crc`` field."""
    body = {k: v for k, v in record.items() if k != "crc"}
    blob = json.dumps(body, sort_keys=True)
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


@dataclass
class JournalReplay:
    """Folded outcome of one journal scan."""

    #: job_id -> {"kind": last transition, "seq": its seq, "data": merged
    #: record data (the ``accepted`` payload updated by later records)}.
    jobs: dict = field(default_factory=dict)
    #: Valid records seen.
    records: int = 0
    #: Records skipped for parse/checksum failure (torn tail, bit rot).
    torn: int = 0
    #: Highest valid sequence number (0 = empty journal).
    last_seq: int = 0
    #: Segment files scanned.
    segments: int = 0

    def live_jobs(self) -> dict:
        """Jobs that never reached a terminal state (``done``/``failed``)."""
        return {
            job_id: state
            for job_id, state in self.jobs.items()
            if state["kind"] not in ("done", "failed")
        }


class JobJournal:
    """Append-only, checksummed, segmented write-ahead log of job state."""

    def __init__(
        self,
        root: str | Path,
        *,
        segment_max_records: int = DEFAULT_SEGMENT_MAX_RECORDS,
    ) -> None:
        if segment_max_records < 1:
            raise ValueError("segment_max_records must be >= 1")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.segment_max_records = segment_max_records
        self._fh = None
        self._segment_records = 0
        #: A failed write may have left a partial line on the tail; the
        #: next append must re-sync to a line boundary first.
        self._dirty_tail = False
        self._seq = 0
        self.appended = 0
        self.rotations = 0
        self.compactions = 0
        self.torn_seen = 0
        existing = self._segments()
        self._segment_index = (
            self._segment_number(existing[-1]) if existing else 0
        )
        if existing:
            # Continue the sequence where the previous incarnation left
            # off; a fresh scan is cheap because compaction bounds size.
            replay = self.replay()
            self._seq = replay.last_seq

    # -- segment bookkeeping -----------------------------------------------

    def _segments(self) -> list[Path]:
        return sorted(
            p for p in self.root.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")
            if p.is_file()
        )

    @staticmethod
    def _segment_number(path: Path) -> int:
        stem = path.name[len(_SEGMENT_PREFIX):-len(_SEGMENT_SUFFIX)]
        try:
            return int(stem)
        except ValueError:
            return 0

    def _segment_path(self, index: int) -> Path:
        return self.root / f"{_SEGMENT_PREFIX}{index:08d}{_SEGMENT_SUFFIX}"

    def _open_segment(self) -> None:
        self._segment_index += 1
        path = self._segment_path(self._segment_index)
        self._fh = open(path, "a", encoding="utf-8")
        self._segment_records = 0
        self._dirty_tail = False
        fsync_dir(self.root)

    def _rotate_if_needed(self) -> None:
        if self._fh is None:
            self._open_segment()
            return
        if self._segment_records >= self.segment_max_records:
            self._sync_current()
            self._fh.close()
            self._open_segment()
            self.rotations += 1

    def _sync_current(self) -> None:
        if self._fh is None:
            return
        self._fh.flush()
        if fsync_enabled():
            os.fsync(self._fh.fileno())

    # -- append ------------------------------------------------------------

    def append(self, kind: str, data: dict) -> int:
        """Durably append one record; returns its sequence number.

        Raises :class:`JournalError` when the record could not be made
        durable (I/O error, torn write injected by the chaos layer): the
        caller must treat the transition as *not having happened* — in
        particular, the service must not acknowledge a job whose
        ``accepted`` record failed here.
        """
        if kind not in RECORD_KINDS:
            raise ValueError(
                f"unknown record kind {kind!r}; known: {RECORD_KINDS}"
            )
        self._rotate_if_needed()
        assert self._fh is not None
        record = {
            "v": JOURNAL_VERSION,
            "seq": self._seq + 1,
            "kind": kind,
            "data": data,
        }
        record["crc"] = _record_crc(record)
        line = json.dumps(record, sort_keys=True) + "\n"
        fault = _CHAOS.write_fault("journal", None) if _CHAOS is not None else None
        try:
            if self._dirty_tail:
                # A previous append failed mid-line; a newline isolates
                # its partial record (replay skips it as torn) so this
                # record starts on its own line.
                self._fh.write("\n")
                self._dirty_tail = False
            if fault is not None and fault.mode == "oserror":
                raise OSError("chaos: injected journal write error")
            if fault is not None and fault.mode == "torn":
                # Crash mid-append: a prefix of the line reaches the disk
                # but the caller sees a failure and never acks.  Replay
                # must skip the torn tail.
                torn = line[: max(1, int(len(line) * fault.fraction))]
                self._fh.write(torn)
                self._fh.flush()
                raise OSError("chaos: torn journal append")
            self._fh.write(line)
            self._sync_current()
        except OSError as exc:
            self._dirty_tail = True
            raise JournalError(f"journal append failed: {exc}") from exc
        self._seq += 1
        self._segment_records += 1
        self.appended += 1
        return self._seq

    # -- replay ------------------------------------------------------------

    def replay(self) -> JournalReplay:
        """Scan every segment and fold records into per-job last state."""
        out = JournalReplay()
        for path in self._segments():
            out.segments += 1
            try:
                with path.open(encoding="utf-8") as fh:
                    lines = fh.readlines()
            except OSError:
                continue
            for line in lines:
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                    if not isinstance(record, dict):
                        raise ValueError("record is not an object")
                    if record.get("v") != JOURNAL_VERSION:
                        raise ValueError("version mismatch")
                    if record.get("crc") != _record_crc(record):
                        raise ValueError("checksum mismatch")
                    kind = record["kind"]
                    data = record["data"]
                    seq = int(record["seq"])
                    job_id = data["job_id"]
                except (KeyError, TypeError, ValueError):
                    out.torn += 1
                    self.torn_seen += 1
                    continue
                out.records += 1
                out.last_seq = max(out.last_seq, seq)
                state = out.jobs.get(job_id)
                if state is None:
                    state = {"kind": kind, "seq": seq, "data": {}}
                    out.jobs[job_id] = state
                state["kind"] = kind
                state["seq"] = seq
                state["data"].update(data)
        return out

    # -- compaction --------------------------------------------------------

    def compact(self, live_records: list[tuple[str, dict]]) -> int:
        """Rewrite the journal to exactly ``live_records``.

        ``live_records`` is the (kind, data) list for jobs still owed
        work (usually their ``accepted`` payloads).  The records are
        written to a *fresh* segment via temp-file + fsync + atomic
        rename, the directory entry is fsync'd, and only then are the
        older segments unlinked — a crash at any point leaves either the
        old journal or the new one, never neither.  Returns the number
        of segments removed.
        """
        old_segments = self._segments()
        if self._fh is not None:
            self._sync_current()
            self._fh.close()
            self._fh = None
        self._segment_index += 1
        target = self._segment_path(self._segment_index)
        tmp = target.with_suffix(".tmp")
        seq = self._seq
        with tmp.open("w", encoding="utf-8") as fh:
            for kind, data in live_records:
                seq += 1
                record = {
                    "v": JOURNAL_VERSION,
                    "seq": seq,
                    "kind": kind,
                    "data": data,
                }
                record["crc"] = _record_crc(record)
                fh.write(json.dumps(record, sort_keys=True) + "\n")
            fh.flush()
            if fsync_enabled():
                os.fsync(fh.fileno())
        os.replace(tmp, target)
        fsync_dir(self.root)
        removed = 0
        for path in old_segments:
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        fsync_dir(self.root)
        self._seq = seq
        self._segment_records = len(live_records)
        self._fh = open(target, "a", encoding="utf-8")
        self.compactions += 1
        return removed

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        if self._fh is not None:
            self._sync_current()
            self._fh.close()
            self._fh = None

    def stats(self) -> dict:
        return {
            "appended": self.appended,
            "rotations": self.rotations,
            "compactions": self.compactions,
            "torn_seen": self.torn_seen,
            "segments": len(self._segments()),
            "last_seq": self._seq,
        }

    def __enter__(self) -> "JobJournal":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
