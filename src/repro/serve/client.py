"""Thin synchronous client for a running ``repro-oasis serve`` instance.

Stdlib-only (``http.client``), one connection per call — the consumers
are sweep scripts, the ``repro-oasis submit`` subcommand and the load
generator, all of which want a blocking "submit and give me the result"
call, not an async framework.

    client = ServeClient("127.0.0.1", 8343)
    result = client.submit("st", "oasis", lane="interactive")
    print(result.total_time_ns)

``submit`` reconstructs a full :class:`~repro.sim.SimulationResult`
from the service's JSON payload, so downstream analysis code cannot
tell a served result from a local :func:`repro.harness.run_sim` call.
"""

from __future__ import annotations

import json
import time
from http.client import HTTPConnection
from typing import Iterator

from repro.sim import SimulationResult


class ClientError(RuntimeError):
    """Any non-success HTTP response."""

    def __init__(self, status: int, message: str,
                 payload: dict | None = None) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.payload = payload or {}


class ServerBusy(ClientError):
    """The service applied backpressure (HTTP 429 or 503).

    ``retry_after_s`` carries the server's ``Retry-After`` hint
    end-to-end — including when the response was forwarded through the
    cluster router — so callers can back off by exactly what the
    overloaded hop asked for instead of guessing.
    """

    def __init__(self, status: int, message: str, retry_after_s: float,
                 payload: dict | None = None) -> None:
        super().__init__(status, message, payload)
        self.retry_after_s = retry_after_s


def call_with_retry(fn, *, attempts: int = 4, max_sleep_s: float = 5.0,
                    sleep=time.sleep):
    """Call ``fn`` with bounded retries on :class:`ServerBusy`.

    Honors each rejection's ``retry_after_s`` hint (clamped to
    ``max_sleep_s``); after ``attempts`` total calls the last
    :class:`ServerBusy` propagates so the caller still sees the
    (preserved) hint.  Other exceptions propagate immediately — a
    failed *job* is not a reason to resubmit it.
    """
    if attempts < 1:
        raise ValueError("attempts must be >= 1")
    for attempt in range(attempts):
        try:
            return fn()
        except ServerBusy as busy:
            if attempt == attempts - 1:
                raise
            sleep(min(max(busy.retry_after_s, 0.0), max_sleep_s))
    raise AssertionError("unreachable")  # pragma: no cover


class JobFailedError(ClientError):
    """The job ran but failed; ``failure`` holds the structured fields."""

    def __init__(self, status: int, failure: dict,
                 payload: dict | None = None) -> None:
        super().__init__(
            status,
            f"{failure.get('error_type', 'Error')}: "
            f"{failure.get('message', '')}",
            payload,
        )
        self.failure = dict(failure)


class ServeClient:
    """Synchronous HTTP client for the simulation service."""

    def __init__(self, host: str = "127.0.0.1", port: int = 8343,
                 timeout_s: float | None = 300.0) -> None:
        self.host = host
        self.port = port
        self.timeout_s = timeout_s

    # -- transport ---------------------------------------------------------

    def _request(self, method: str, path: str,
                 body: dict | None = None) -> tuple[int, dict, bytes]:
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            payload = None
            headers = {}
            if body is not None:
                payload = json.dumps(body).encode()
                headers["Content-Type"] = "application/json"
            conn.request(method, path, body=payload, headers=headers)
            response = conn.getresponse()
            data = response.read()
            resp_headers = {
                name.lower(): value for name, value in response.getheaders()
            }
            return response.status, resp_headers, data
        finally:
            conn.close()

    def _json(self, method: str, path: str,
              body: dict | None = None) -> dict:
        status, headers, data = self._request(method, path, body)
        try:
            payload = json.loads(data.decode() or "{}")
        except json.JSONDecodeError:
            payload = {"error": data.decode(errors="replace")}
        if status in (429, 503):
            # 429: the service's own admission control; 503: an
            # intermediary (e.g. the cluster router) shedding on a
            # worker's behalf.  Either way the Retry-After header is
            # the authoritative hint and must survive the hop.
            raise ServerBusy(
                status,
                payload.get("error", "server busy"),
                retry_after_s=float(headers.get("retry-after", 1.0)),
                payload=payload,
            )
        if "failure" in payload:
            raise JobFailedError(status, payload["failure"], payload)
        if status >= 400:
            raise ClientError(status, payload.get("error", "error"), payload)
        return payload

    # -- API ---------------------------------------------------------------

    def health(self) -> dict:
        return self._json("GET", "/healthz")

    def stats(self) -> dict:
        return self._json("GET", "/stats")

    def metrics_text(self) -> str:
        status, _headers, data = self._request("GET", "/metrics")
        if status != 200:
            raise ClientError(status, "metrics unavailable")
        return data.decode()

    def submit(
        self,
        app: str,
        policy: str,
        *,
        footprint_mb: float | None = None,
        seed: int = 0,
        policy_kwargs: dict | None = None,
        config_kwargs: dict | None = None,
        lane: str = "batch",
        deadline_s: float | None = None,
    ) -> SimulationResult:
        """Submit one run and block until its result arrives.

        Raises :class:`ServerBusy` under backpressure,
        :class:`JobFailedError` when the run itself failed, and
        :class:`ClientError` for malformed requests.
        """
        payload = self._json("POST", "/submit", {
            "app": app,
            "policy": policy,
            "footprint_mb": footprint_mb,
            "seed": seed,
            "policy_kwargs": policy_kwargs or {},
            "config_kwargs": config_kwargs or {},
            "lane": lane,
            "deadline_s": deadline_s,
            "wait": True,
        })
        return SimulationResult.from_dict(payload["result"])

    def post(self, path: str, payload: dict) -> dict:
        """POST an arbitrary JSON payload (router forwarding, /register)."""
        return self._json("POST", path, payload)

    def submit_with_retry(self, app: str, policy: str, *, attempts: int = 4,
                          max_sleep_s: float = 5.0, **kwargs
                          ) -> SimulationResult:
        """:meth:`submit`, retrying busy rejections via their
        ``Retry-After`` hints (see :func:`call_with_retry`)."""
        return call_with_retry(
            lambda: self.submit(app, policy, **kwargs),
            attempts=attempts, max_sleep_s=max_sleep_s,
        )

    def submit_nowait(self, app: str, policy: str, *,
                      footprint_mb: float | None = None, seed: int = 0,
                      policy_kwargs: dict | None = None,
                      config_kwargs: dict | None = None,
                      lane: str = "batch",
                      deadline_s: float | None = None) -> dict:
        """Fire-and-forget submission; returns the job description."""
        payload = self._json("POST", "/submit", {
            "app": app,
            "policy": policy,
            "footprint_mb": footprint_mb,
            "seed": seed,
            "policy_kwargs": policy_kwargs or {},
            "config_kwargs": config_kwargs or {},
            "lane": lane,
            "deadline_s": deadline_s,
            "wait": False,
        })
        return payload["job"]

    def job(self, job_id: str) -> dict:
        """Status (and, when done, the result dict) of one job."""
        return self._json("GET", f"/jobs/{job_id}")

    def events(self, limit: int | None = None) -> Iterator[dict]:
        """Stream lifecycle events as dicts until ``limit`` or EOF.

        Holds one connection open; use a thread when consuming while
        also submitting from the same process.
        """
        conn = HTTPConnection(self.host, self.port, timeout=self.timeout_s)
        try:
            conn.request("GET", "/events")
            response = conn.getresponse()
            if response.status != 200:
                raise ClientError(response.status, "event stream refused")
            seen = 0
            while limit is None or seen < limit:
                line = response.fp.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                yield json.loads(line.decode())
                seen += 1
        finally:
            conn.close()
