"""One-command reproduce-all orchestrator.

``scripts/reproduce_all`` (and ``repro-oasis reproduce``) drive every
``bench_fig*``/``bench_table*`` experiment through the existing parallel
harness with the disk cache and sweep memoization engaged, and write a
per-run artifact directory::

    results/artifacts/<run-id>/
        manifest.json     git SHA, config digest, seeds, env knobs
        metrics.jsonl     one line per (experiment, seed): wall time,
                          cache/memo hit deltas, new-simulation count
        summary.json      roll-up of the whole run
        reports/          rendered per-experiment reports (.txt + .json)
        trace.json        Chrome trace of the pipeline timeline
        metrics.prom      pipeline counters (Prometheus text format)

The run id is deterministic over (git SHA, profile), so re-invoking the
same pipeline resumes: experiments already recorded in
``metrics.jsonl`` are skipped outright, and re-run cells are served
from the persistent result cache — a killed run picks up with zero
re-simulations of cached cells.

After the experiment loop the pipeline folds every ``results/BENCH_*``
perf artifact plus its own summary into ``results/BENCH_all.json`` (the
cross-PR perf trajectory), and on full-profile runs regenerates
``EXPERIMENTS.md`` from the saved reports — no hand-edited numbers.

Chaos: the pipeline honors the harness chaos hook at experiment
granularity — an armed :class:`~repro.chaos.inject.ChaosInjector` whose
plan kills the pipeline's "run" operation aborts the loop exactly as an
orchestrator death would (completed experiments stay journaled in
``metrics.jsonl``; ``summary.json`` is never written), which is what the
kill-mid-run resume tests exercise.
"""

from __future__ import annotations

import argparse
import dataclasses
import hashlib
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

from repro.config import baseline_config
from repro.harness import (
    SEEDED_EXPERIMENTS,
    cache_stats,
    configure,
    memo_stats,
    run_experiment,
)
from repro.harness import runner as _runner
from repro.artifacts.registry import (
    discover_experiments,
    normalize_exp_id,
    repo_root,
)

SCHEMA_VERSION = 1

#: The smoke profile's application subset (3 apps, steady-state-heavy).
SMOKE_APPS = ["mm", "st", "bfs"]

#: metrics.jsonl keys every per-experiment record carries.
METRICS_KEYS = (
    "exp_id", "seed", "ok", "wall_s", "sims_new", "cache", "memo", "error",
)


def _git_info(root: Path) -> dict:
    """Best-effort git identity of the tree the pipeline ran on."""
    info = {"sha": "unknown", "dirty": None}
    try:
        sha = subprocess.run(
            ["git", "rev-parse", "HEAD"], cwd=root, capture_output=True,
            text=True, timeout=10,
        )
        if sha.returncode == 0:
            info["sha"] = sha.stdout.strip()
        status = subprocess.run(
            ["git", "status", "--porcelain"], cwd=root, capture_output=True,
            text=True, timeout=10,
        )
        if status.returncode == 0:
            info["dirty"] = bool(status.stdout.strip())
    except (OSError, subprocess.TimeoutExpired):
        pass
    return info


def _config_digest() -> str:
    """Content hash of the Table I baseline configuration."""
    blob = json.dumps(
        dataclasses.asdict(baseline_config()), sort_keys=True, default=repr,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def _env_knobs() -> dict[str, str]:
    return {
        key: value for key, value in sorted(os.environ.items())
        if key.startswith("REPRO_")
    }


def _result_file_count() -> int | None:
    """Simulation results persisted in the runner's store (all writers).

    Counted from the store's result files, not the parent's miss
    counters: pool workers write their own misses, so file counts are
    the only accounting that sees every simulation of a parallel run.
    ``None`` when the disk cache is off.
    """
    disk = _runner.disk_cache()
    if disk is None:
        return None
    root = Path(disk.root)
    if not root.is_dir():
        return 0
    return sum(1 for _ in root.glob("[0-9a-f][0-9a-f]/*.json"))


def _load_completed(metrics_path: Path) -> set[tuple[str, int]]:
    """(exp_id, seed) pairs already recorded ok by a previous run."""
    done: set[tuple[str, int]] = set()
    if not metrics_path.exists():
        return done
    for line in metrics_path.read_text().splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue  # torn tail line from a killed run
        if record.get("ok"):
            done.add((record["exp_id"], int(record.get("seed", 0))))
    return done


def _select(only: list[str] | None) -> list[str]:
    registry = discover_experiments()
    order = list(registry)
    if not only:
        return order
    chosen = {normalize_exp_id(raw) for raw in only}
    unknown = chosen - set(order)
    if unknown:
        raise ValueError(
            "no benchmark module found for: " + ", ".join(sorted(unknown))
        )
    return [exp_id for exp_id in order if exp_id in chosen]


def run_pipeline(
    only: list[str] | None = None,
    seeds: int = 1,
    smoke: bool = False,
    apps: list[str] | None = None,
    jobs: int | None = None,
    artifact_root: str | Path | None = None,
    artifact_dir: str | Path | None = None,
    results_dir: str | Path | None = None,
    cache_dir: str | Path | None = None,
    no_cache: bool = False,
    no_memo: bool = False,
    fresh: bool = False,
    docs: bool | None = None,
    log=print,
) -> dict:
    """Run the reproduce-all pipeline; returns the summary dict.

    Args:
        only: experiment-id subset (``fig02`` and ``fig2`` both work).
        seeds: workload seeds per seeded experiment (characterization
            experiments are seed-invariant and run once).
        smoke: 3-app smoke profile (``mm,st,bfs``) unless ``apps`` is
            given explicitly.
        apps: explicit application subset; ``None`` = profile default.
        jobs: harness worker processes (default 1 = serial).
        artifact_root: parent for per-run artifact dirs (default
            ``results/artifacts``).
        artifact_dir: exact artifact directory (overrides the
            deterministic run-id naming — still resumable).
        results_dir: where canonical reports and ``BENCH_all.json``
            land (default ``results/``).
        cache_dir: persistent result-store directory (default: the
            repo store under ``results/cache``).
        no_cache / no_memo: disable the disk cache / sweep fast path.
        fresh: ignore (and truncate) a previous run's ``metrics.jsonl``
            instead of resuming from it.
        docs: force EXPERIMENTS.md regeneration on/off; ``None`` = only
            after a clean full-profile run (every experiment, all apps).
        log: progress sink (``print``); pass a no-op to silence.
    """
    from repro.obs import MetricsRegistry, RecordingTracer
    from repro.obs.export import write_chrome_trace, write_prometheus

    if seeds < 1:
        raise ValueError("seeds must be >= 1")
    root = repo_root()
    results = Path(results_dir) if results_dir else root / "results"
    selection = _select(only)
    run_apps = list(apps) if apps else (list(SMOKE_APPS) if smoke else None)
    git = _git_info(root)

    configure(
        jobs=jobs if jobs is not None else 1,
        disk_cache=not no_cache,
        cache_dir=str(cache_dir) if cache_dir and not no_cache else None,
        memo=not no_memo,
    )

    profile = "smoke" if smoke else "full"
    sel_blob = json.dumps([selection, run_apps, seeds], sort_keys=True)
    sel_digest = hashlib.sha256(sel_blob.encode()).hexdigest()[:8]
    run_id = f"{profile}-{git['sha'][:10]}-{sel_digest}"
    if artifact_dir is not None:
        out_dir = Path(artifact_dir)
    else:
        out_root = (
            Path(artifact_root) if artifact_root
            else results / "artifacts"
        )
        out_dir = out_root / run_id
    reports_dir = out_dir / "reports"
    reports_dir.mkdir(parents=True, exist_ok=True)
    metrics_path = out_dir / "metrics.jsonl"
    if fresh and metrics_path.exists():
        metrics_path.unlink()
    completed = _load_completed(metrics_path)

    # The full canonical report set only comes from full-app runs;
    # subset runs keep their (smaller) reports inside the artifact dir
    # so they can never clobber the canonical tables under results/.
    full_profile = run_apps is None and not only
    save_canonical = run_apps is None

    manifest = {
        "schema": SCHEMA_VERSION,
        "run_id": run_id,
        "created": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "git": git,
        "config_digest": _config_digest(),
        "python": platform.python_version(),
        "platform": platform.platform(),
        "profile": profile,
        "seeds": seeds,
        "only": sorted(only) if only else None,
        "apps": run_apps,
        "jobs": jobs if jobs is not None else 1,
        "no_cache": no_cache,
        "no_memo": no_memo,
        "cache_dir": str(_runner.disk_cache().root)
                     if _runner.disk_cache() is not None else None,
        "env": _env_knobs(),
        "experiments": selection,
        "resumed": bool(completed),
    }
    (out_dir / "manifest.json").write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )

    tracer = RecordingTracer()
    metrics = MetricsRegistry()
    started = time.monotonic()

    def now_ns() -> float:
        return (time.monotonic() - started) * 1e9

    log(f"reproduce: {len(selection)} experiment(s), profile={profile}, "
        f"seeds={seeds}, apps={','.join(run_apps) if run_apps else 'all'}, "
        f"artifacts -> {out_dir}")

    per_experiment: dict[str, dict] = {}
    n_run = n_skipped = n_failed = 0
    total_new = 0
    with metrics_path.open("a") as journal:
        for exp_id in selection:
            exp_seeds = range(seeds if exp_id in SEEDED_EXPERIMENTS else 1)
            entry = per_experiment.setdefault(
                exp_id, {"seeds": [], "wall_s": 0.0, "sims_new": 0,
                         "ok": True, "skipped": 0},
            )
            for seed in exp_seeds:
                if (exp_id, seed) in completed:
                    entry["skipped"] += 1
                    n_skipped += 1
                    metrics.inc("pipeline.experiments_skipped")
                    tracer.instant("pipeline", "pipeline_skip", now_ns(),
                                   {"exp": exp_id, "seed": seed})
                    log(f"  {exp_id} seed={seed}: already recorded, skipped")
                    continue
                chaos = _runner._CHAOS
                if chaos is not None:
                    # An armed chaos plan can kill the orchestrator here,
                    # between experiments — the resume tests' honest
                    # stand-in for a SIGKILL'd pipeline process.
                    chaos.run_fault(exp_id, "pipeline")
                cache_before = cache_stats()
                memo_before = memo_stats()
                files_before = _result_file_count()
                t0 = time.monotonic()
                tracer.begin_span("pipeline", exp_id, now_ns(),
                                  {"seed": seed})
                error = None
                try:
                    result = run_experiment(exp_id, apps=run_apps, seed=seed)
                except Exception as exc:  # noqa: BLE001 — journaled below
                    error = f"{type(exc).__name__}: {exc}"
                finally:
                    tracer.end_span("pipeline", now_ns())
                wall_s = time.monotonic() - t0
                cache_after = cache_stats()
                memo_after = memo_stats()
                files_after = _result_file_count()
                if files_before is not None and files_after is not None:
                    sims_new = files_after - files_before
                else:
                    sims_new = cache_after["misses"] - cache_before["misses"]
                record = {
                    "exp_id": exp_id,
                    "seed": seed,
                    "ok": error is None,
                    "wall_s": round(wall_s, 4),
                    "sims_new": sims_new,
                    "cache": {
                        name: cache_after[name] - cache_before[name]
                        for name in ("hits", "misses",
                                     "disk_hits", "disk_misses")
                    },
                    "memo": {
                        "enabled": memo_after["enabled"],
                        **{
                            name: memo_after[name] - memo_before[name]
                            for name in ("hits", "misses", "stores",
                                         "resumed_phases")
                        },
                    },
                    "error": error,
                    "apps": run_apps or "all",
                    "finished": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
                }
                journal.write(json.dumps(record, sort_keys=True) + "\n")
                journal.flush()
                entry["seeds"].append(seed)
                entry["wall_s"] = round(entry["wall_s"] + wall_s, 4)
                entry["sims_new"] += sims_new
                total_new += sims_new
                metrics.inc("pipeline.sims_new", sims_new)
                if error is None:
                    n_run += 1
                    metrics.inc("pipeline.experiments_run")
                    tracer.instant(
                        "pipeline", "pipeline_experiment", now_ns(),
                        {"exp": exp_id, "seed": seed, "wall_s": wall_s,
                         "sims_new": sims_new},
                    )
                    if seed == 0:
                        result.save(reports_dir)
                        if save_canonical:
                            result.save(results)
                    log(f"  {exp_id} seed={seed}: ok in {wall_s:.2f}s "
                        f"({sims_new} new simulation(s))")
                else:
                    n_failed += 1
                    entry["ok"] = False
                    metrics.inc("pipeline.experiments_failed")
                    tracer.instant(
                        "pipeline", "pipeline_error", now_ns(),
                        {"exp": exp_id, "seed": seed, "error": error},
                    )
                    log(f"  {exp_id} seed={seed}: FAILED ({error})")

    wall_total = time.monotonic() - started
    summary = {
        "schema": SCHEMA_VERSION,
        "run_id": run_id,
        "git_sha": git["sha"],
        "ok": n_failed == 0,
        "profile": profile,
        "seeds": seeds,
        "apps": run_apps or "all",
        "experiments": {
            "selected": len(selection),
            "run": n_run,
            "skipped": n_skipped,
            "failed": n_failed,
        },
        "sims_new": total_new,
        "wall_s": round(wall_total, 3),
        "per_experiment": per_experiment,
        "artifact_dir": str(out_dir),
    }

    bench_all_path = write_bench_all(results, summary, git)
    summary["bench_all"] = str(bench_all_path)

    regen_docs = docs if docs is not None else (full_profile and n_failed == 0)
    if regen_docs:
        from repro.artifacts.experiments_md import write_experiments_md

        missing = write_experiments_md(results_dir=results)
        summary["experiments_md"] = {"written": True, "missing": missing}
        log(f"  EXPERIMENTS.md regenerated "
            f"({len(selection) - len(missing)} report(s))")
    else:
        summary["experiments_md"] = {"written": False, "missing": []}

    (out_dir / "summary.json").write_text(
        json.dumps(summary, indent=2, sort_keys=True) + "\n"
    )
    write_chrome_trace(out_dir / "trace.json", tracer,
                       {"run_id": run_id, "profile": profile})
    write_prometheus(out_dir / "metrics.prom", metrics.snapshot())
    log(f"reproduce: {n_run} run, {n_skipped} skipped, {n_failed} failed "
        f"in {wall_total:.1f}s ({total_new} new simulation(s)); "
        f"summary -> {out_dir / 'summary.json'}")
    return summary


def write_bench_all(
    results: Path, pipeline_summary: dict | None, git: dict,
) -> Path:
    """Consolidate every ``results/BENCH_*.json`` into one trajectory.

    The record is self-describing: one ``benches`` entry per perf
    artifact present (replay smoke, fig15, memo, cluster, recovery,
    multitenant, ...), plus the pipeline summary that produced it —
    future re-anchors read a single file to see speed over time.
    """
    benches = {}
    for path in sorted(results.glob("BENCH_*.json")):
        if path.name == "BENCH_all.json":
            continue
        name = path.stem[len("BENCH_"):]
        try:
            benches[name] = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            benches[name] = {"error": f"{type(exc).__name__}: {exc}"}
    payload = {
        "schema": SCHEMA_VERSION,
        "generated_by": "scripts/reproduce_all",
        "git": git,
        "timestamp": time.time(),
        "pipeline": pipeline_summary,
        "benches": benches,
    }
    out = results / "BENCH_all.json"
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return out


# -- command-line front end (scripts/reproduce_all, repro-oasis reproduce) --


def add_pipeline_arguments(parser: argparse.ArgumentParser) -> None:
    """The pipeline's flags (shared by the script and the subcommand)."""
    parser.add_argument("--only", default=None, metavar="IDS",
                        help="comma-separated experiment subset "
                             "(fig02/fig2 and table2 both work)")
    parser.add_argument("--seeds", type=int, default=1,
                        help="workload seeds per seeded experiment "
                             "(default 1; characterization experiments "
                             "always run once)")
    parser.add_argument("--smoke", action="store_true",
                        help="3-app smoke profile (mm,st,bfs)")
    parser.add_argument("--apps", default=None,
                        help="comma-separated application subset "
                             "(overrides the profile default)")
    parser.add_argument("--jobs", type=int, default=None,
                        help="harness worker processes (default 1)")
    parser.add_argument("--artifact-root", default=None,
                        dest="artifact_root", metavar="DIR",
                        help="parent directory for per-run artifact "
                             "dirs (default results/artifacts)")
    parser.add_argument("--artifact-dir", default=None, dest="artifact_dir",
                        metavar="DIR",
                        help="exact artifact directory (overrides the "
                             "deterministic run-id naming)")
    parser.add_argument("--cache-dir", default=None, dest="cache_dir",
                        metavar="DIR",
                        help="persistent result-store directory "
                             "(default results/cache)")
    parser.add_argument("--results-dir", default=None, dest="results_dir",
                        metavar="DIR",
                        help="canonical reports + BENCH_all.json "
                             "directory (default results/)")
    parser.add_argument("--fresh", action="store_true",
                        help="ignore a previous run's metrics.jsonl "
                             "instead of resuming from it")
    parser.add_argument("--no-cache", action="store_true", dest="no_cache",
                        help="skip the persistent result cache")
    parser.add_argument("--no-memo", action="store_true", dest="no_memo",
                        help="disable the sweep fast path")
    parser.add_argument("--docs", action="store_true", default=None,
                        help="regenerate EXPERIMENTS.md even for "
                             "subset/smoke runs")
    parser.add_argument("--no-docs", action="store_false", dest="docs",
                        help="never regenerate EXPERIMENTS.md")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-experiment progress lines")


def run_from_args(args: argparse.Namespace) -> int:
    """Run the pipeline from parsed CLI args; returns the exit code."""
    only = (
        [part for part in args.only.split(",") if part.strip()]
        if args.only else None
    )
    apps = (
        [part.strip().lower() for part in args.apps.split(",")
         if part.strip()]
        if args.apps else None
    )
    try:
        summary = run_pipeline(
            only=only,
            seeds=args.seeds,
            smoke=args.smoke,
            apps=apps,
            jobs=args.jobs,
            artifact_root=args.artifact_root,
            artifact_dir=args.artifact_dir,
            results_dir=args.results_dir,
            cache_dir=args.cache_dir,
            no_cache=args.no_cache,
            no_memo=args.no_memo,
            fresh=args.fresh,
            docs=args.docs,
            log=(lambda *_args, **_kw: None) if args.quiet else print,
        )
    except ValueError as exc:
        print(f"reproduce: {exc}", file=sys.stderr)
        return 2
    return 0 if summary["ok"] else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="reproduce_all",
        description="Reproduce every paper table/figure and write a "
                    "per-run artifact directory (manifest, metrics, "
                    "summary, BENCH_all trajectory).",
    )
    add_pipeline_arguments(parser)
    return run_from_args(parser.parse_args(argv))


if __name__ == "__main__":
    sys.exit(main())
