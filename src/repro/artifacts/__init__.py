"""Reproduce-all artifact pipeline (``scripts/reproduce_all``).

One command regenerates every paper table/figure through the parallel
harness (disk cache + sweep memoization engaged) and leaves a
self-describing artifact directory — ``manifest.json``,
``metrics.jsonl``, ``summary.json`` — plus the consolidated
``results/BENCH_all.json`` perf trajectory and a regenerated
``EXPERIMENTS.md``.  See :mod:`repro.artifacts.pipeline`.
"""

from repro.artifacts.experiments_md import (
    render_experiments_md,
    write_experiments_md,
)
from repro.artifacts.pipeline import (
    SMOKE_APPS,
    run_pipeline,
    write_bench_all,
)
from repro.artifacts.registry import (
    BenchExperiment,
    discover_experiments,
    experiment_order,
    normalize_exp_id,
    repo_root,
)

__all__ = [
    "BenchExperiment",
    "SMOKE_APPS",
    "discover_experiments",
    "experiment_order",
    "normalize_exp_id",
    "render_experiments_md",
    "repo_root",
    "run_pipeline",
    "write_bench_all",
    "write_experiments_md",
]
