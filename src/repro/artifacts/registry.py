"""Benchmark-experiment registry: enumerate benchmarks outside pytest.

The ``benchmarks/`` directory holds one ``bench_fig*``/``bench_table*``
module per paper artifact.  The artifact pipeline must enumerate them
without importing pytest (or the modules themselves, which pull in
pytest-benchmark fixtures), so discovery works off the filenames: each
``bench_<kind><NN>_<slug>.py`` maps to the experiment id
``<kind><N>`` in :data:`repro.harness.EXPERIMENTS`, and the module
docstring's first line becomes the human title (parsed with ``ast``, no
import).  ``benchmarks/conftest.py`` exposes the same registry to the
pytest side, so both runners agree on what "every experiment" means.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path

from repro.harness import EXPERIMENTS, SEEDED_EXPERIMENTS

#: ``bench_fig02_uniform_policies.py`` -> (fig, 02, uniform_policies)
_BENCH_FILE_RE = re.compile(
    r"^bench_(?P<kind>fig|table)(?P<number>\d+)(?:_(?P<slug>[a-z0-9_]+))?\.py$"
)

_EXP_ID_RE = re.compile(r"^(?P<kind>fig|table)0*(?P<number>\d+)$")


def repo_root() -> Path:
    """The repository root (this file lives at src/repro/artifacts/)."""
    return Path(__file__).resolve().parents[3]


def normalize_exp_id(raw: str) -> str:
    """Canonicalize an experiment id (``fig02``/``Fig2`` -> ``fig2``).

    Raises ``ValueError`` for ids that are not in the experiment
    registry, listing the known ones.
    """
    match = _EXP_ID_RE.match(raw.strip().lower())
    exp_id = (
        f"{match.group('kind')}{int(match.group('number'))}" if match else raw
    )
    if exp_id not in EXPERIMENTS:
        known = ", ".join(sorted(EXPERIMENTS))
        raise ValueError(f"unknown experiment {raw!r}; known: {known}")
    return exp_id


@dataclass(frozen=True)
class BenchExperiment:
    """One discovered benchmark module and its experiment-registry id."""

    exp_id: str  # registry id, e.g. "fig2"
    kind: str  # "fig" | "table"
    number: int
    slug: str  # filename suffix, e.g. "uniform_policies"
    path: Path  # benchmarks/bench_fig02_uniform_policies.py
    title: str  # first line of the module docstring
    #: Whether the experiment runs simulations (responds to ``seed``).
    seeded: bool

    @property
    def order_key(self) -> tuple:
        """Tables first, then figures, each by number (paper order)."""
        return (self.kind != "table", self.number)


def _module_title(path: Path) -> str:
    try:
        doc = ast.get_docstring(ast.parse(path.read_text()))
    except (OSError, SyntaxError):
        return ""
    return (doc or "").strip().splitlines()[0] if doc else ""


def discover_experiments(
    bench_dir: str | Path | None = None,
) -> dict[str, BenchExperiment]:
    """Map experiment id -> benchmark module, in paper order.

    Only files whose id exists in :data:`repro.harness.EXPERIMENTS` are
    returned; auxiliary benchmarks (``bench_memo``, ``bench_cluster``,
    ablations, ...) do not regenerate a paper artifact and are skipped.
    """
    directory = Path(bench_dir) if bench_dir else repo_root() / "benchmarks"
    found: list[BenchExperiment] = []
    for path in sorted(directory.glob("bench_*.py")):
        match = _BENCH_FILE_RE.match(path.name)
        if match is None:
            continue
        exp_id = f"{match.group('kind')}{int(match.group('number'))}"
        if exp_id not in EXPERIMENTS:
            continue
        found.append(BenchExperiment(
            exp_id=exp_id,
            kind=match.group("kind"),
            number=int(match.group("number")),
            slug=match.group("slug") or "",
            path=path,
            title=_module_title(path),
            seeded=exp_id in SEEDED_EXPERIMENTS,
        ))
    found.sort(key=lambda entry: entry.order_key)
    return {entry.exp_id: entry for entry in found}


def experiment_order(bench_dir: str | Path | None = None) -> list[str]:
    """Every discovered experiment id, tables first then figures."""
    return list(discover_experiments(bench_dir))
