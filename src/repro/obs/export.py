"""Exporters: Chrome ``trace_event`` JSON, JSONL event log, Prometheus text.

Three interchange formats for one recorded run:

* :func:`chrome_trace` / :func:`write_chrome_trace` — the Chrome
  ``trace_event`` JSON-object format (loadable in Perfetto or
  ``chrome://tracing``).  Each simulator track becomes one timeline row
  (thread): GPUs first, then the driver, the fault-injection row, and
  one row per interconnect link carrying its utilization counter.
  Simulated nanoseconds map to trace microseconds (the format's native
  unit), so a 1 ms phase renders as 1 ms.
* :func:`jsonl_events` / :func:`write_jsonl` — one JSON object per line
  per event, in deterministic (track, time) order, for ad-hoc ``jq``
  style analysis.
* :func:`prometheus_text` — a Prometheus text-format dump of a
  :class:`~repro.obs.metrics.MetricsSnapshot` (counters as ``_total``,
  gauges bare, histograms with cumulative ``_bucket{le=...}`` series).

:func:`validate_chrome_trace` is the minimal schema check the test
suite and the ``repro-oasis trace`` subcommand run on every export.
"""

from __future__ import annotations

import json
import re
from pathlib import Path
from typing import Iterator

from repro.obs.metrics import MetricsSnapshot
from repro.obs.tracer import EVENT_KINDS, RecordingTracer

#: Single simulated process in the exported trace.
TRACE_PID = 1

_NS_PER_US = 1000.0

_GPU_TRACK = re.compile(r"^gpu(\d+)$")


def _track_sort_key(track: str) -> tuple:
    """GPU rows first (numeric order), then driver, faults, links."""
    match = _GPU_TRACK.match(track)
    if match:
        return (0, int(match.group(1)), track)
    if track == "driver":
        return (1, 0, track)
    if track == "faults":
        return (2, 0, track)
    return (3, 0, track)


def _tid_map(tracer: RecordingTracer) -> dict[str, int]:
    tracks = sorted(tracer.tracks(), key=_track_sort_key)
    return {track: tid for tid, track in enumerate(tracks, start=1)}


def chrome_trace(tracer: RecordingTracer,
                 run_meta: dict | None = None) -> dict:
    """Build the Chrome ``trace_event`` JSON-object payload.

    Args:
        tracer: a finished :class:`RecordingTracer` (open spans should
            have been closed with :meth:`~RecordingTracer.finish`).
        run_meta: optional run description (workload, policy, ...)
            stored under ``otherData``.
    """
    tids = _tid_map(tracer)
    events: list[dict] = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": TRACE_PID,
            "tid": 0,
            "args": {"name": "repro-oasis simulation"},
        }
    ]
    for track, tid in tids.items():
        events.append(
            {
                "name": "thread_name",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"name": track},
            }
        )
        events.append(
            {
                "name": "thread_sort_index",
                "ph": "M",
                "pid": TRACE_PID,
                "tid": tid,
                "args": {"sort_index": tid},
            }
        )
    # Spans close innermost-first; re-sort by (track, start, -duration)
    # so parents precede children deterministically.
    for span in sorted(
        tracer.spans,
        key=lambda s: (tids[s.track], s.start_ns, -s.duration_ns, s.depth),
    ):
        events.append(
            {
                "name": span.name,
                "cat": "span",
                "ph": "X",
                "ts": span.start_ns / _NS_PER_US,
                "dur": span.duration_ns / _NS_PER_US,
                "pid": TRACE_PID,
                "tid": tids[span.track],
                "args": {"depth": span.depth, **dict(span.args)},
            }
        )
    for event in sorted(
        tracer.instants, key=lambda e: (tids[e.track], e.ts_ns, e.kind)
    ):
        events.append(
            {
                "name": event.kind,
                "cat": event.kind,
                "ph": "i",
                "s": "t",
                "ts": event.ts_ns / _NS_PER_US,
                "pid": TRACE_PID,
                "tid": tids[event.track],
                "args": dict(event.args),
            }
        )
    for sample in sorted(
        tracer.samples, key=lambda c: (tids[c.track], c.ts_ns, c.name)
    ):
        events.append(
            {
                "name": f"{sample.track}:{sample.name}",
                "ph": "C",
                "ts": sample.ts_ns / _NS_PER_US,
                "pid": TRACE_PID,
                "tid": tids[sample.track],
                "args": {sample.name: sample.value},
            }
        )
    payload = {"traceEvents": events, "displayTimeUnit": "ms"}
    if run_meta:
        payload["otherData"] = dict(sorted(run_meta.items()))
    return payload


def write_chrome_trace(path: str | Path, tracer: RecordingTracer,
                       run_meta: dict | None = None) -> Path:
    """Export and write the Chrome trace JSON; returns the path."""
    path = Path(path)
    payload = chrome_trace(tracer, run_meta=run_meta)
    problems = validate_chrome_trace(payload)
    if problems:
        raise ValueError(
            "refusing to write an invalid Chrome trace: "
            + "; ".join(problems[:5])
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
    return path


_VALID_PHASES = {"M", "X", "i", "C"}


def validate_chrome_trace(payload) -> list[str]:
    """Minimal ``trace_event`` schema check; returns the violations.

    Checks the JSON-object container shape plus, per event: a known
    phase, a name, numeric non-negative ``ts`` (and ``dur`` for spans),
    ``pid``/``tid`` present, and instant events restricted to the typed
    :data:`~repro.obs.tracer.EVENT_KINDS` vocabulary.
    """
    problems: list[str] = []
    if not isinstance(payload, dict):
        return ["top level must be a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents must be a list"]
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            problems.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            problems.append(f"{where}: unknown phase {phase!r}")
            continue
        if not isinstance(event.get("name"), str) or not event["name"]:
            problems.append(f"{where}: missing name")
        if "pid" not in event or "tid" not in event:
            problems.append(f"{where}: missing pid/tid")
        if phase == "M":
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or ts < 0:
            problems.append(f"{where}: bad ts {ts!r}")
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: bad dur {dur!r}")
        if phase == "i" and event.get("name") not in EVENT_KINDS:
            problems.append(
                f"{where}: instant kind {event.get('name')!r} not in "
                "the typed vocabulary"
            )
    return problems


def jsonl_events(tracer: RecordingTracer) -> Iterator[str]:
    """One JSON line per recorded event, deterministically ordered."""
    records: list[tuple] = []
    for span in tracer.spans:
        records.append(
            (
                span.track,
                span.start_ns,
                0,
                {
                    "type": "span",
                    "track": span.track,
                    "name": span.name,
                    "start_ns": span.start_ns,
                    "duration_ns": span.duration_ns,
                    "depth": span.depth,
                    "args": dict(span.args),
                },
            )
        )
    for event in tracer.instants:
        records.append(
            (
                event.track,
                event.ts_ns,
                1,
                {
                    "type": "instant",
                    "track": event.track,
                    "kind": event.kind,
                    "ts_ns": event.ts_ns,
                    "args": dict(event.args),
                },
            )
        )
    for sample in tracer.samples:
        records.append(
            (
                sample.track,
                sample.ts_ns,
                2,
                {
                    "type": "sample",
                    "track": sample.track,
                    "name": sample.name,
                    "ts_ns": sample.ts_ns,
                    "value": sample.value,
                },
            )
        )
    records.sort(key=lambda r: (_track_sort_key(r[0]), r[1], r[2]))
    for _track, _ts, _rank, body in records:
        yield json.dumps(body, sort_keys=True)


def write_jsonl(path: str | Path, tracer: RecordingTracer) -> Path:
    """Write the JSONL event log; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w") as handle:
        for line in jsonl_events(tracer):
            handle.write(line + "\n")
    return path


def _metric_name(name: str, prefix: str) -> str:
    """Sanitize a dotted counter name into a Prometheus metric name."""
    clean = re.sub(r"[^a-zA-Z0-9_]", "_", name)
    return f"{prefix}_{clean}"


def prometheus_text(snapshot: MetricsSnapshot,
                    prefix: str = "repro") -> str:
    """Prometheus text-format dump of a metrics snapshot.

    Counters are exported as ``<prefix>_<name>_total``, gauges bare, and
    histograms as cumulative ``_bucket{le="..."}`` series plus ``_sum``
    and ``_count`` — all in sorted order so the dump is byte-stable.
    """
    lines: list[str] = []
    for name, value in snapshot.counters.items():
        metric = _metric_name(name, prefix) + "_total"
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {value:g}")
    for name, value in snapshot.gauges.items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {value:g}")
    for name, payload in snapshot.histograms.items():
        metric = _metric_name(name, prefix)
        lines.append(f"# TYPE {metric} histogram")
        running = 0
        bounds = payload["bounds"]
        counts = payload["counts"]
        for bound, count in zip(bounds, counts):
            running += count
            lines.append(f'{metric}_bucket{{le="{bound:g}"}} {running}')
        lines.append(f'{metric}_bucket{{le="+Inf"}} {payload["count"]}')
        lines.append(f"{metric}_sum {payload['sum']:g}")
        lines.append(f"{metric}_count {payload['count']}")
    return "\n".join(lines) + "\n"


def prometheus_multi(snapshots: "dict[str, MetricsSnapshot]") -> str:
    """One Prometheus text dump covering several prefixed snapshots.

    The simulation service exposes its own queue/latency metrics next to
    the accumulated simulation counters on one ``/metrics`` endpoint;
    each ``prefix -> snapshot`` entry renders as an independent
    :func:`prometheus_text` block, in sorted prefix order so the
    combined dump stays byte-stable.
    """
    return "".join(
        prometheus_text(snapshots[prefix], prefix=prefix)
        for prefix in sorted(snapshots)
    )


def write_prometheus(path: str | Path, snapshot: MetricsSnapshot,
                     prefix: str = "repro") -> Path:
    """Write the Prometheus text dump; returns the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(prometheus_text(snapshot, prefix=prefix))
    return path
