"""Structured tracing: hierarchical spans and typed instant events.

Every simulator component reports what happened *when* through one hook
point: a :class:`Tracer` attached to the machine.  Three implementations
exist:

* :data:`NULL_TRACER` — the default.  Every method is a no-op and
  ``enabled`` is ``False``, so instrumented code guards its event
  construction behind a single attribute test and the healthy fast path
  stays bit-identical and branch-predictable when tracing is off.
* :class:`RecordingTracer` — accumulates spans, instant events and
  counter samples in memory for export (see :mod:`repro.obs.export`).
* Anything else implementing the same duck-typed surface (tests use
  small custom recorders).

Tracks
------

Events live on named *tracks* — one per timeline row in the exported
Chrome trace: ``"gpu0" .. "gpuN-1"`` for the GPUs, ``"driver"`` for the
UVM driver, ``"faults"`` for injected hardware events, and
``"link:<name>"`` for per-link utilization samples.

Span hierarchy
--------------

Spans nest per track: :meth:`Tracer.begin_span` pushes onto the track's
open-span stack and :meth:`Tracer.end_span` pops it, stamping the
recorded :class:`SpanEvent` with its nesting ``depth``.  The machine
emits a root ``run`` span per track with one ``phase`` span per
simulated phase nested under it.

Timestamps are simulated nanoseconds (the machine's per-GPU clocks and
the driver FIFO clock), never wall-clock time, so a trace is exactly
reproducible run to run.

Columnar sinks
--------------

:meth:`Tracer.instant` builds one :class:`InstantEvent` per call, which
is fine for cold events (fault injection, allocation) but too slow for
the per-fault hot loop, where a traced run emits two instants per
simulated fault.  Hot call sites instead register a *sink* up front —
:meth:`Tracer.sink` fixes the track, kind and field names once and
returns a plain list — then append bare ``(ts_ns, *values)`` tuples to
it during the run.  Materialization into :class:`InstantEvent` records
happens lazily the first time the trace is read (export or
introspection), the same deferred-encoding trick real tracers use with
ring buffers, so recording costs one tuple append per event.
"""

from __future__ import annotations

from typing import NamedTuple

#: The typed instant-event vocabulary.  Exporters and tests treat any
#: other kind as a schema violation.
EVENT_KINDS = frozenset(
    {
        "fault",  # GPU page/protection fault (gpu track)
        "migrate",  # driver moved a page's authoritative copy
        "duplicate",  # driver installed a read-only copy
        "collapse",  # driver write-collapsed duplicates
        "evict",  # driver pushed a page to host / dropped a copy
        "remote_map",  # driver installed a zero-copy remote PTE
        "fault_inject",  # scheduled hardware fault fired (faults track)
        "retry",  # transient migration failure retried/degraded
        "reroute",  # transfer rerouted around a severed link
        "alloc",  # object allocated (driver track)
        "free",  # object freed (driver track)
        # Simulation-service job lifecycle (serve track; wall-clock ns
        # relative to service start, not simulated time — see
        # :mod:`repro.serve`).
        "serve_submit",  # job admitted into a priority lane
        "serve_dedup",  # identical request attached to an in-flight job
        "serve_reject",  # admission control turned a request away
        "serve_dispatch",  # batch handed to the simulation pool
        "serve_done",  # job completed with a result
        "serve_fail",  # job failed (RunFailure, expired deadline, ...)
        "serve_recover",  # journaled job re-owned after a restart
        "serve_drain",  # graceful shutdown began refusing new work
        "serve_breaker",  # worker-pool circuit breaker changed state
        # Cluster router lifecycle (cluster track; wall-clock ns
        # relative to router start — see :mod:`repro.cluster`).
        "cluster_register",  # worker joined (or rejoined) the ring
        "cluster_forward",  # request routed to its ring owner
        "cluster_dedup",  # identical request attached to an in-flight forward
        "cluster_cache_hit",  # served straight from the shared result tier
        "cluster_shed",  # lane-aware load shedding refused a request
        "cluster_worker_dead",  # heartbeat/forward declared a worker dead
        "cluster_steal",  # one live job re-homed from a dead worker
        "cluster_steal_done",  # a dead worker's journal fully processed
        "cluster_steal_error",  # journal replay/compaction failed
        "cluster_swallowed_error",  # shutdown-path error noted, not raised
        # Artifact-pipeline lifecycle (pipeline track; wall-clock ns
        # relative to pipeline start — see :mod:`repro.artifacts`).
        "pipeline_experiment",  # one experiment finished (ok or failed)
        "pipeline_skip",  # experiment already recorded by a prior run
        "pipeline_error",  # experiment raised; pipeline continued
    }
)


# Event records are NamedTuples, not dataclasses: a recording run
# creates one object per fault/migration, so construction cost is the
# tracing overhead.  Tuple construction is ~2x cheaper than a frozen
# dataclass and the records stay immutable.
class SpanEvent(NamedTuple):
    """One completed span on a track."""

    track: str
    name: str
    start_ns: float
    duration_ns: float
    #: Nesting depth at emission (0 = root span of the track).
    depth: int = 0
    args: tuple = ()

    @property
    def end_ns(self) -> float:
        return self.start_ns + self.duration_ns


class InstantEvent(NamedTuple):
    """One typed point event on a track.

    ``args`` is stored exactly as handed to :meth:`Tracer.instant` — a
    mapping on the hot path (treat it as read-only) or a key/value
    tuple.  Exporters normalise either form with ``dict(event.args)``.
    """

    track: str
    kind: str
    ts_ns: float
    args: tuple | dict = ()


class CounterSample(NamedTuple):
    """One sampled value of a named series on a track."""

    track: str
    name: str
    ts_ns: float
    value: float


def _freeze_args(args: dict | None) -> tuple:
    """Deterministic, hashable form of an event's key/value payload."""
    if not args:
        return ()
    return tuple(sorted(args.items()))


class Tracer:
    """No-op base tracer; also the null-object implementation.

    Subclasses override the emission methods; instrumented code checks
    :attr:`enabled` before building event payloads so the disabled path
    costs one attribute read.
    """

    #: False on the null tracer: components skip event construction.
    enabled: bool = False

    def begin_span(self, track: str, name: str, ts_ns: float,
                   args: dict | None = None) -> None:
        """Open a nested span on ``track`` at ``ts_ns``."""

    def end_span(self, track: str, ts_ns: float) -> None:
        """Close the innermost open span on ``track`` at ``ts_ns``."""

    def instant(self, track: str, kind: str, ts_ns: float,
                args: dict | None = None) -> None:
        """Record a typed point event."""

    def sample(self, track: str, name: str, ts_ns: float,
               value: float) -> None:
        """Record one value of a sampled series (e.g. link utilization)."""

    def sink(self, track: str, kind: str,
             fields: tuple[str, ...]) -> list:
        """Register a columnar fast-emit list for a hot call site.

        Callers append ``(ts_ns, *values)`` tuples matching ``fields``.
        On the null tracer the returned list is never read, so hot sites
        still guard registration behind :attr:`enabled`.
        """
        return []

    def finish(self, ts_ns: float) -> None:
        """Close every still-open span (end of run)."""


#: Module-wide null tracer: the default for every component.
NULL_TRACER = Tracer()


class _Sink:
    """One registered columnar fast-emit stream (see :meth:`Tracer.sink`)."""

    __slots__ = ("track", "kind", "fields", "rows")

    def __init__(self, track: str, kind: str,
                 fields: tuple[str, ...]) -> None:
        self.track = track
        self.kind = kind
        self.fields = fields
        self.rows: list[tuple] = []


class RecordingTracer(Tracer):
    """In-memory tracer: records everything for later export."""

    enabled = True

    def __init__(self) -> None:
        self.spans: list[SpanEvent] = []
        self.samples: list[CounterSample] = []
        self._instants: list[InstantEvent] = []
        self._sinks: list[_Sink] = []
        #: Per-track stack of open ``(name, start_ns, args)`` frames.
        self._open: dict[str, list[tuple[str, float, tuple]]] = {}

    @property
    def instants(self) -> list[InstantEvent]:
        """All instant events, materializing any pending sink rows."""
        self._drain_sinks()
        return self._instants

    def _drain_sinks(self) -> None:
        for sink in self._sinks:
            rows = sink.rows
            if rows:
                track, kind, fields = sink.track, sink.kind, sink.fields
                self._instants.extend(
                    InstantEvent(track, kind, row[0],
                                 dict(zip(fields, row[1:])))
                    for row in rows
                )
                # clear() (not reassignment) keeps the caller's cached
                # list reference live for further appends.
                rows.clear()

    # -- emission ----------------------------------------------------------

    def begin_span(self, track: str, name: str, ts_ns: float,
                   args: dict | None = None) -> None:
        self._open.setdefault(track, []).append(
            (name, ts_ns, _freeze_args(args))
        )

    def end_span(self, track: str, ts_ns: float) -> None:
        stack = self._open.get(track)
        if not stack:
            raise ValueError(f"no open span on track {track!r}")
        name, start_ns, args = stack.pop()
        self.spans.append(
            SpanEvent(
                track=track,
                name=name,
                start_ns=start_ns,
                duration_ns=max(0.0, ts_ns - start_ns),
                depth=len(stack),
                args=args,
            )
        )

    def instant(self, track: str, kind: str, ts_ns: float,
                args: dict | None = None) -> None:
        # Hot path: one call per fault/migration.  The args mapping is
        # stored as-is (callers hand over fresh dicts); exporters sort
        # keys at dump time, so determinism is preserved without paying
        # for a sort per event here.
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}"
            )
        self._instants.append(InstantEvent(track, kind, ts_ns, args or ()))

    def sink(self, track: str, kind: str,
             fields: tuple[str, ...]) -> list:
        if kind not in EVENT_KINDS:
            raise ValueError(
                f"unknown event kind {kind!r}; known: {sorted(EVENT_KINDS)}"
            )
        sink = _Sink(track, kind, tuple(fields))
        self._sinks.append(sink)
        return sink.rows

    def sample(self, track: str, name: str, ts_ns: float,
               value: float) -> None:
        self.samples.append(CounterSample(track, name, ts_ns, float(value)))

    def finish(self, ts_ns: float) -> None:
        for track in sorted(self._open):
            while self._open[track]:
                self.end_span(track, ts_ns)

    # -- introspection -----------------------------------------------------

    def tracks(self) -> list[str]:
        """Every track that carries at least one event, sorted."""
        names = {s.track for s in self.spans}
        names.update(i.track for i in self.instants)
        names.update(c.track for c in self.samples)
        return sorted(names)

    def open_span_count(self) -> int:
        return sum(len(stack) for stack in self._open.values())

    def event_totals(self) -> dict[str, int]:
        """Count of instant events per kind (for stats cross-checks)."""
        totals: dict[str, int] = {}
        for event in self.instants:
            totals[event.kind] = totals.get(event.kind, 0) + 1
        return dict(sorted(totals.items()))

    def spans_on(self, track: str) -> list[SpanEvent]:
        return [s for s in self.spans if s.track == track]

    def __len__(self) -> int:
        return len(self.spans) + len(self.instants) + len(self.samples)
