"""Metrics registry: counters, gauges and fixed-bucket histograms.

:class:`MetricsRegistry` is the quantitative half of the observability
subsystem.  It *wraps* the run's existing
:class:`~repro.engine.StatCounters` rather than replacing it: counter
increments flow straight through to the stats object (so the
merge/prefix/report API and every recorded counter stay exactly as
before), while gauges and histograms — which StatCounters cannot
express — live in the registry and appear only in its
:meth:`~MetricsRegistry.snapshot`.

Histograms use fixed bucket layouts (module constants below) so two
snapshots are always mergeable and a Prometheus dump of the same run is
byte-stable.

:class:`MetricsSnapshot` is the canonical read-only view: every consumer
that reports counts (sweep tables, charts, trace exporters) reads
through a snapshot so reports and traces can never disagree on a value.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.engine import StatCounters

#: Fault-service latency buckets (ns): spans TLB-walk-only stalls up to
#: driver-queue pile-ups during fault storms.
FAULT_LATENCY_BUCKETS_NS = (
    500.0, 1_000.0, 2_500.0, 5_000.0, 10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 1_000_000.0,
)

#: Data-movement size buckets (bytes): 4 KB and 2 MB pages plus the
#: 128 B remote-access granule.
TRANSFER_BYTES_BUCKETS = (
    128.0, 4_096.0, 65_536.0, 1_048_576.0, 2_097_152.0,
)

#: Per-phase link utilization buckets (busy fraction of phase time).
LINK_UTILIZATION_BUCKETS = (
    0.01, 0.05, 0.10, 0.25, 0.50, 0.75, 0.90, 1.0,
)


class Histogram:
    """A fixed-bucket histogram (cumulative, Prometheus-style)."""

    def __init__(self, name: str, buckets: Iterable[float]) -> None:
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError("histogram bucket bounds must be distinct")
        self.name = name
        self.bounds = bounds
        #: Per-bucket (non-cumulative) counts; last slot is +Inf overflow.
        self._counts = [0] * (len(bounds) + 1)
        self._total = 0
        self._sum = 0.0
        #: Deferred observations (see :meth:`sink`), folded in on read.
        self._pending: list[float] = []

    def observe(self, value: float) -> None:
        """Record one observation."""
        value = float(value)
        self._total += 1
        self._sum += value
        # bisect_left finds the first bound >= value, i.e. the bucket
        # with ``value <= bound``; past-the-end lands in the +Inf slot.
        self._counts[bisect_left(self.bounds, value)] += 1

    def sink(self) -> list:
        """Bulk-emit channel for hot call sites.

        Appending a raw value here costs one list append; bucketing is
        deferred until the histogram is next read (the same trick as
        :meth:`repro.obs.tracer.Tracer.sink`).
        """
        return self._pending

    def _flush(self) -> None:
        pending = self._pending
        if pending:
            bounds, counts = self.bounds, self._counts
            for value in pending:
                counts[bisect_left(bounds, value)] += 1
            self._total += len(pending)
            self._sum += sum(pending)
            pending.clear()

    @property
    def total(self) -> int:
        self._flush()
        return self._total

    @property
    def sum(self) -> float:
        self._flush()
        return self._sum

    def cumulative(self) -> list[tuple[float, int]]:
        """``(upper_bound, cumulative_count)`` pairs, +Inf last."""
        self._flush()
        out: list[tuple[float, int]] = []
        running = 0
        for bound, count in zip(self.bounds, self._counts):
            running += count
            out.append((bound, running))
        out.append((float("inf"), self._total))
        return out

    def merge(self, other: "Histogram") -> "Histogram":
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histogram {self.name!r}: bucket layouts differ"
            )
        self._flush()
        other._flush()
        for i, count in enumerate(other._counts):
            self._counts[i] += count
        self._total += other._total
        self._sum += other._sum
        return self

    def to_dict(self) -> dict:
        self._flush()
        return {
            "bounds": list(self.bounds),
            "counts": list(self._counts),
            "count": self._total,
            "sum": self._sum,
        }

    @classmethod
    def from_dict(cls, name: str, payload: dict) -> "Histogram":
        hist = cls(name, payload["bounds"])
        hist._counts = list(payload["counts"])
        hist._total = payload["count"]
        hist._sum = payload["sum"]
        return hist


@dataclass(frozen=True)
class MetricsSnapshot:
    """Immutable, deterministically-ordered view of one run's metrics.

    The single source every report/chart/exporter reads counts from.
    """

    counters: dict
    gauges: dict = field(default_factory=dict)
    histograms: dict = field(default_factory=dict)

    @classmethod
    def from_counters(
        cls,
        counters: "StatCounters | Mapping[str, float]",
        gauges: Mapping[str, float] | None = None,
        histograms: Mapping[str, dict] | None = None,
    ) -> "MetricsSnapshot":
        if isinstance(counters, StatCounters):
            counts = counters.as_dict()
        else:
            counts = {k: float(v) for k, v in sorted(counters.items())}
        return cls(
            counters=counts,
            gauges=dict(sorted((gauges or {}).items())),
            histograms=dict(sorted((histograms or {}).items())),
        )

    def counter(self, name: str, default: float = 0.0) -> float:
        return self.counters.get(name, default)

    def total(self, prefix: str) -> float:
        """Sum of every counter whose name starts with ``prefix``."""
        return sum(
            v for k, v in self.counters.items() if k.startswith(prefix)
        )

    def group(self, prefix: str) -> dict[str, float]:
        """Counters under ``prefix`` with the prefix stripped."""
        plen = len(prefix)
        return {
            k[plen:].lstrip("."): v
            for k, v in self.counters.items()
            if k.startswith(prefix)
        }

    def to_dict(self) -> dict:
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {k: dict(v) for k, v in self.histograms.items()},
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "MetricsSnapshot":
        return cls.from_counters(
            payload.get("counters", {}),
            gauges=payload.get("gauges", {}),
            histograms=payload.get("histograms", {}),
        )


class MetricsRegistry:
    """Counters (delegated to StatCounters), gauges and histograms.

    Args:
        stats: the :class:`StatCounters` instance counter traffic flows
            into.  The machine binds its own stats object at attach time
            (:meth:`bind_stats`), so one registry can be created up front
            and handed to :func:`repro.simulate`.
    """

    def __init__(self, stats: StatCounters | None = None) -> None:
        self.stats = stats if stats is not None else StatCounters()
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    def bind_stats(self, stats: StatCounters) -> None:
        """Point counter reads/writes at an existing run's stats."""
        self.stats = stats

    # -- counters (StatCounters pass-through) -----------------------------

    def inc(self, name: str, amount: float = 1.0) -> None:
        """Increment a counter (lands in the wrapped StatCounters)."""
        self.stats.add(name, amount)

    def counter(self, name: str) -> float:
        return self.stats[name]

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return self._gauges.get(name, default)

    # -- histograms --------------------------------------------------------

    def histogram(self, name: str, buckets: Iterable[float]) -> Histogram:
        """Get-or-create the histogram ``name`` with ``buckets``.

        Hot-path callers should hold on to the returned object and call
        :meth:`Histogram.observe` on it directly — the layout check here
        costs a tuple comparison when ``buckets`` is an already-sorted
        tuple (the module-level layouts) but re-sorts otherwise.
        """
        hist = self._histograms.get(name)
        if hist is None:
            hist = Histogram(name, buckets)
            self._histograms[name] = hist
        elif buckets != hist.bounds and (
            tuple(sorted(float(b) for b in buckets)) != hist.bounds
        ):
            raise ValueError(
                f"histogram {name!r} already registered with a different "
                "bucket layout"
            )
        return hist

    def observe(self, name: str, value: float,
                buckets: Iterable[float]) -> None:
        """Record one observation into histogram ``name``."""
        self.histogram(name, buckets).observe(value)

    # -- aggregation -------------------------------------------------------

    def merge(self, other: "MetricsRegistry") -> "MetricsRegistry":
        """Fold another registry into this one; returns self."""
        self.stats.merge(other.stats)
        for name, value in other._gauges.items():
            self._gauges[name] = value
        for name, hist in other._histograms.items():
            mine = self._histograms.get(name)
            if mine is None:
                self.histogram(name, hist.bounds).merge(hist)
            else:
                mine.merge(hist)
        return self

    def snapshot(self) -> MetricsSnapshot:
        """The canonical deterministic view of everything recorded."""
        return MetricsSnapshot.from_counters(
            self.stats,
            gauges=self._gauges,
            histograms={
                name: hist.to_dict()
                for name, hist in self._histograms.items()
            },
        )
