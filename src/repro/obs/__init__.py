"""repro.obs — observability: structured tracing, metrics, exporters.

The always-available observability layer for simulated runs:

* :mod:`repro.obs.tracer` — hierarchical spans and typed instant events
  with a zero-overhead null tracer as the default.
* :mod:`repro.obs.metrics` — a counters/gauges/histograms registry that
  wraps the run's :class:`~repro.engine.StatCounters`.
* :mod:`repro.obs.export` — Chrome ``trace_event`` JSON, JSONL event
  log and Prometheus text dumps.

Quickstart::

    from repro import baseline_config, get_workload, make_policy, simulate
    from repro.obs import MetricsRegistry, RecordingTracer, write_chrome_trace

    config = baseline_config()
    trace = get_workload("st", config)
    tracer, metrics = RecordingTracer(), MetricsRegistry()
    result = simulate(config, trace, make_policy("oasis"),
                      tracer=tracer, metrics=metrics)
    write_chrome_trace("st.trace.json", tracer)   # open in Perfetto
"""

from repro.obs.export import (
    chrome_trace,
    jsonl_events,
    prometheus_multi,
    prometheus_text,
    validate_chrome_trace,
    write_chrome_trace,
    write_jsonl,
    write_prometheus,
)
from repro.obs.metrics import (
    FAULT_LATENCY_BUCKETS_NS,
    LINK_UTILIZATION_BUCKETS,
    TRANSFER_BYTES_BUCKETS,
    Histogram,
    MetricsRegistry,
    MetricsSnapshot,
)
from repro.obs.tracer import (
    EVENT_KINDS,
    NULL_TRACER,
    CounterSample,
    InstantEvent,
    RecordingTracer,
    SpanEvent,
    Tracer,
)

__all__ = [
    "CounterSample",
    "EVENT_KINDS",
    "FAULT_LATENCY_BUCKETS_NS",
    "Histogram",
    "InstantEvent",
    "LINK_UTILIZATION_BUCKETS",
    "MetricsRegistry",
    "MetricsSnapshot",
    "NULL_TRACER",
    "RecordingTracer",
    "SpanEvent",
    "TRANSFER_BYTES_BUCKETS",
    "Tracer",
    "chrome_trace",
    "jsonl_events",
    "prometheus_multi",
    "prometheus_text",
    "validate_chrome_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_prometheus",
]
