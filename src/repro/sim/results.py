"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.page import policy_name


@dataclass
class PhaseResult:
    """Timing breakdown of one phase."""

    name: str
    explicit: bool
    duration_ns: float
    gpu_busy_ns: float
    driver_busy_ns: float
    link_busy_ns: float

    @property
    def bottleneck(self) -> str:
        """Which resource bounded the phase.

        Ties break by a fixed priority — ``gpu`` > ``driver`` > ``link``
        — so the answer never depends on dict ordering (a fully
        overlapped phase where GPU and link drain together is reported
        as GPU-bound).
        """
        best_name, best_value = "gpu", self.gpu_busy_ns
        for name, value in (
            ("driver", self.driver_busy_ns),
            ("link", self.link_busy_ns),
        ):
            if value > best_value:
                best_name, best_value = name, value
        return best_name


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    workload: str
    policy: str
    n_gpus: int
    page_size: int
    total_time_ns: float
    phases: list[PhaseResult]
    stats: dict[str, float]
    traffic: dict[str, int]
    policy_histogram: dict[int, int]
    l2_miss_policy_counts: dict[str, int] = field(default_factory=dict)
    #: Gauges/histograms captured when the run was observed with a
    #: :class:`~repro.obs.MetricsRegistry`; ``None`` on unobserved runs
    #: (and omitted from :meth:`to_dict` so default results stay
    #: bit-identical to pre-observability snapshots).
    metrics: dict | None = None

    # -- observability ---------------------------------------------------

    def metrics_snapshot(self):
        """The canonical counter view of this run.

        Every consumer that reports a count (sweep tables, charts,
        exporters) reads through this snapshot, so a report and a trace
        of the same run can never disagree on a value.
        """
        from repro.obs.metrics import MetricsSnapshot

        extra = self.metrics or {}
        return MetricsSnapshot.from_counters(
            self.stats,
            gauges=extra.get("gauges", {}),
            histograms=extra.get("histograms", {}),
        )

    # -- fault accounting -----------------------------------------------
    #
    # Every count property reads through :meth:`metrics_snapshot` — the
    # same view the exporters serialize — so reports, charts and traces
    # of one run always agree.

    @property
    def page_faults(self) -> float:
        return self.metrics_snapshot().counter("fault.page")

    @property
    def protection_faults(self) -> float:
        return self.metrics_snapshot().counter("fault.protection")

    @property
    def total_faults(self) -> float:
        """All GPU page faults serviced by the UVM driver (Fig. 24).

        Not ``total("fault.")``: the per-GPU / per-object breakdown
        counters (``fault.by_gpu.*``, ``fault.by_object.*``) share the
        prefix and would triple-count.
        """
        snapshot = self.metrics_snapshot()
        return snapshot.counter("fault.page") + snapshot.counter(
            "fault.protection"
        )

    @property
    def migrations(self) -> float:
        return self.metrics_snapshot().counter("migration.count")

    @property
    def duplications(self) -> float:
        return self.metrics_snapshot().counter("duplication.count")

    @property
    def collapses(self) -> float:
        return self.metrics_snapshot().counter("collapse.count")

    @property
    def evictions(self) -> float:
        return self.metrics_snapshot().counter("eviction.count")

    # -- resilience accounting (fault injection) ---------------------------

    @property
    def migration_retries(self) -> float:
        """Transient migration attempts retried after injected failures."""
        return self.metrics_snapshot().counter("driver.migration_retries")

    @property
    def migration_fallbacks(self) -> float:
        """Installs degraded to zero-copy remote mappings by faults."""
        return self.metrics_snapshot().counter("driver.migration_fallbacks")

    @property
    def reroutes(self) -> float:
        """Transfers rerouted around severed links."""
        return self.metrics_snapshot().counter("fault_inject.reroutes")

    @property
    def retired_pages(self) -> float:
        """Frames retired by the fault plan during the run."""
        return self.metrics_snapshot().counter("fault_inject.page_retired")

    def resilience_summary(self) -> dict[str, float]:
        """Every injection/resilience counter (empty on a healthy run)."""
        snapshot = self.metrics_snapshot()
        return {
            key: value
            for key, value in snapshot.counters.items()
            if key.startswith(("fault_inject.", "driver.", "access.degraded"))
        }

    # -- comparisons -------------------------------------------------------

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Performance of self normalized to ``baseline`` (higher = faster)."""
        if self.total_time_ns <= 0:
            raise ValueError("degenerate run: zero simulated time")
        return baseline.total_time_ns / self.total_time_ns

    def policy_mix(self) -> dict[str, float]:
        """Fraction of pages per final PTE policy (by name)."""
        total = sum(self.policy_histogram.values())
        if not total:
            return {}
        return {
            policy_name(bits): count / total
            for bits, count in sorted(self.policy_histogram.items())
        }

    def l2_miss_policy_mix(self) -> dict[str, float]:
        """Fraction of L2-TLB-miss requests handled under each policy
        (the Fig. 23 breakdown)."""
        total = sum(self.l2_miss_policy_counts.values())
        if not total:
            return {}
        return {
            name: count / total
            for name, count in sorted(self.l2_miss_policy_counts.items())
        }

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole result."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "n_gpus": self.n_gpus,
            "page_size": self.page_size,
            "total_time_ns": self.total_time_ns,
            "phases": [
                {
                    "name": p.name,
                    "explicit": p.explicit,
                    "duration_ns": p.duration_ns,
                    "gpu_busy_ns": p.gpu_busy_ns,
                    "driver_busy_ns": p.driver_busy_ns,
                    "link_busy_ns": p.link_busy_ns,
                }
                for p in self.phases
            ],
            "stats": dict(self.stats),
            "traffic": dict(self.traffic),
            "policy_histogram": {
                str(bits): count
                for bits, count in self.policy_histogram.items()
            },
            "l2_miss_policy_counts": dict(self.l2_miss_policy_counts),
            **({"metrics": dict(self.metrics)} if self.metrics else {}),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` snapshot."""
        return cls(
            workload=payload["workload"],
            policy=payload["policy"],
            n_gpus=payload["n_gpus"],
            page_size=payload["page_size"],
            total_time_ns=payload["total_time_ns"],
            phases=[
                PhaseResult(
                    name=p["name"],
                    explicit=p["explicit"],
                    duration_ns=p["duration_ns"],
                    gpu_busy_ns=p["gpu_busy_ns"],
                    driver_busy_ns=p["driver_busy_ns"],
                    link_busy_ns=p["link_busy_ns"],
                )
                for p in payload["phases"]
            ],
            stats=dict(payload["stats"]),
            traffic=dict(payload["traffic"]),
            policy_histogram={
                int(bits): count
                for bits, count in payload["policy_histogram"].items()
            },
            l2_miss_policy_counts=dict(
                payload.get("l2_miss_policy_counts", {})
            ),
            metrics=(
                dict(payload["metrics"])
                if payload.get("metrics") else None
            ),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:<10s} {self.policy:<14s} "
            f"time={self.total_time_ns / 1e6:10.3f} ms  "
            f"faults={int(self.total_faults):8d}  "
            f"migr={int(self.migrations):7d}  "
            f"dup={int(self.duplications):7d}  "
            f"collapse={int(self.collapses):6d}"
        )
