"""Simulation results."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.memory.page import policy_name


@dataclass
class PhaseResult:
    """Timing breakdown of one phase."""

    name: str
    explicit: bool
    duration_ns: float
    gpu_busy_ns: float
    driver_busy_ns: float
    link_busy_ns: float

    @property
    def bottleneck(self) -> str:
        """Which resource bounded the phase."""
        values = {
            "gpu": self.gpu_busy_ns,
            "driver": self.driver_busy_ns,
            "link": self.link_busy_ns,
        }
        return max(values, key=values.get)


@dataclass
class SimulationResult:
    """Everything a simulation run produced."""

    workload: str
    policy: str
    n_gpus: int
    page_size: int
    total_time_ns: float
    phases: list[PhaseResult]
    stats: dict[str, float]
    traffic: dict[str, int]
    policy_histogram: dict[int, int]
    l2_miss_policy_counts: dict[str, int] = field(default_factory=dict)

    # -- fault accounting -----------------------------------------------

    @property
    def page_faults(self) -> float:
        return self.stats.get("fault.page", 0.0)

    @property
    def protection_faults(self) -> float:
        return self.stats.get("fault.protection", 0.0)

    @property
    def total_faults(self) -> float:
        """All GPU page faults serviced by the UVM driver (Fig. 24)."""
        return self.page_faults + self.protection_faults

    @property
    def migrations(self) -> float:
        return self.stats.get("migration.count", 0.0)

    @property
    def duplications(self) -> float:
        return self.stats.get("duplication.count", 0.0)

    @property
    def collapses(self) -> float:
        return self.stats.get("collapse.count", 0.0)

    @property
    def evictions(self) -> float:
        return self.stats.get("eviction.count", 0.0)

    # -- resilience accounting (fault injection) ---------------------------

    @property
    def migration_retries(self) -> float:
        """Transient migration attempts retried after injected failures."""
        return self.stats.get("driver.migration_retries", 0.0)

    @property
    def migration_fallbacks(self) -> float:
        """Installs degraded to zero-copy remote mappings by faults."""
        return self.stats.get("driver.migration_fallbacks", 0.0)

    @property
    def reroutes(self) -> float:
        """Transfers rerouted around severed links."""
        return self.stats.get("fault_inject.reroutes", 0.0)

    @property
    def retired_pages(self) -> float:
        """Frames retired by the fault plan during the run."""
        return self.stats.get("fault_inject.page_retired", 0.0)

    def resilience_summary(self) -> dict[str, float]:
        """Every injection/resilience counter (empty on a healthy run)."""
        return {
            key: value
            for key, value in sorted(self.stats.items())
            if key.startswith(("fault_inject.", "driver.", "access.degraded"))
        }

    # -- comparisons -------------------------------------------------------

    def speedup_over(self, baseline: "SimulationResult") -> float:
        """Performance of self normalized to ``baseline`` (higher = faster)."""
        if self.total_time_ns <= 0:
            raise ValueError("degenerate run: zero simulated time")
        return baseline.total_time_ns / self.total_time_ns

    def policy_mix(self) -> dict[str, float]:
        """Fraction of pages per final PTE policy (by name)."""
        total = sum(self.policy_histogram.values())
        if not total:
            return {}
        return {
            policy_name(bits): count / total
            for bits, count in sorted(self.policy_histogram.items())
        }

    def l2_miss_policy_mix(self) -> dict[str, float]:
        """Fraction of L2-TLB-miss requests handled under each policy
        (the Fig. 23 breakdown)."""
        total = sum(self.l2_miss_policy_counts.values())
        if not total:
            return {}
        return {
            name: count / total
            for name, count in sorted(self.l2_miss_policy_counts.items())
        }

    def to_dict(self) -> dict:
        """JSON-serializable snapshot of the whole result."""
        return {
            "workload": self.workload,
            "policy": self.policy,
            "n_gpus": self.n_gpus,
            "page_size": self.page_size,
            "total_time_ns": self.total_time_ns,
            "phases": [
                {
                    "name": p.name,
                    "explicit": p.explicit,
                    "duration_ns": p.duration_ns,
                    "gpu_busy_ns": p.gpu_busy_ns,
                    "driver_busy_ns": p.driver_busy_ns,
                    "link_busy_ns": p.link_busy_ns,
                }
                for p in self.phases
            ],
            "stats": dict(self.stats),
            "traffic": dict(self.traffic),
            "policy_histogram": {
                str(bits): count
                for bits, count in self.policy_histogram.items()
            },
            "l2_miss_policy_counts": dict(self.l2_miss_policy_counts),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SimulationResult":
        """Rebuild a result from a :meth:`to_dict` snapshot."""
        return cls(
            workload=payload["workload"],
            policy=payload["policy"],
            n_gpus=payload["n_gpus"],
            page_size=payload["page_size"],
            total_time_ns=payload["total_time_ns"],
            phases=[
                PhaseResult(
                    name=p["name"],
                    explicit=p["explicit"],
                    duration_ns=p["duration_ns"],
                    gpu_busy_ns=p["gpu_busy_ns"],
                    driver_busy_ns=p["driver_busy_ns"],
                    link_busy_ns=p["link_busy_ns"],
                )
                for p in payload["phases"]
            ],
            stats=dict(payload["stats"]),
            traffic=dict(payload["traffic"]),
            policy_histogram={
                int(bits): count
                for bits, count in payload["policy_histogram"].items()
            },
            l2_miss_policy_counts=dict(
                payload.get("l2_miss_policy_counts", {})
            ),
        )

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (
            f"{self.workload:<10s} {self.policy:<14s} "
            f"time={self.total_time_ns / 1e6:10.3f} ms  "
            f"faults={int(self.total_faults):8d}  "
            f"migr={int(self.migrations):7d}  "
            f"dup={int(self.duplications):7d}  "
            f"collapse={int(self.collapses):6d}"
        )
