"""Vectorized steady-state replay — the simulator's fast path.

:class:`FastReplay` replays a phase's record arrays by scanning for
maximal runs of records that provably cannot fault or change page-table
state, and charging their compute/access latency, TLB traffic, stats and
link bytes in bulk instead of one :meth:`Machine.access` call per record.
The moment state *can* change, it falls back to the exact per-record
path, so every observable — clocks, stats, TLB hit/miss counts, traffic,
counter state — stays **bit-identical** to a pure per-record replay
(``REPRO_FORCE_SLOW_PATH=1`` disables the fast path for A/B checks).

A record ``(gpu, page, is_write, weight)`` is *eligible* for bulk replay
when, under the page-table state current at mask-build time:

* ``gpu`` has a valid PTE for ``page`` (no page fault possible), and
* if the PTE points at a local copy: the record is a read, or the PTE is
  writable (no protection fault possible) — replay then only adds local
  access latency and ``access.local`` counts; or
* if the PTE points at remote/host memory: the attached policy's remote
  handling is pure counter accounting
  (``type(policy).on_remote_access is
  CounterMigrationMixin.on_remote_access``), and the GPU's access counter
  for the page's 64 KB group provably cannot reach the migration
  threshold within the current chunk — proven conservatively by summing
  *every* record weight the chunk still holds for that (gpu, group) key.

Eligibility masks are derived from the page tables' numpy mirrors
(:meth:`PageTables.bulk_views`) and are invalidated by the page-table
``version`` counter: any fault resolution mutates the page tables, which
bumps the version, which forces per-record replay until the mask is
rebuilt (rebuilds are throttled so a fault storm degrades gracefully to
the slow path instead of thrashing on mask recomputation).

Why the bulk math is exact and not merely close:

* per-GPU clocks are folded with ``np.cumsum`` over the interleaved
  per-record latency terms, seeded with the GPU's current clock —
  numpy's cumsum is a strict sequential left fold, so the result is the
  same IEEE-754 value the per-record ``+=`` chain produces (the local
  records' zero remote term adds ``+0.0``, an identity on the
  non-negative clocks);
* stat counters and traffic bytes are integer-valued and far below
  2**53, so bulk integer sums are exact under any grouping;
* the LRU TLBs are inherently sequential, so bulk runs use
  :meth:`TLBHierarchy.translate_run` — the same lookup/fill/evict logic
  in one tight loop — rather than a numpy approximation.

Besides the steady-state lane, a second *first-touch fault lane* bulk-
replays runs of records that provably WILL fault but whose resolution is
fully predictable: a virgin page (host owner, no copies, no mappings
anywhere, each page appearing once in the window) under a policy whose
first-touch handling is a fixed-cost host→GPU resolution — on-touch
migration (plain on-touch, OASIS' private filter, GRIT's on-touch
default) or duplication's read-duplicate/write-collapse.  The FIFO
queue, per-GPU clock and TLB recurrences are inherently sequential, so
the lane runs them in one fused scalar loop (no per-record method
dispatch, stat updates or page-table probes) and then applies the page-
table installs, stats, counters and link traffic in bulk.  Fault-
dominated phases (first kernels touching every page) are where replay
time actually goes, so this lane is what buys the headline speedup.

The fast path is disabled outright when the capacity manager is active
(oversubscription runs touch eviction state on every access) or when
``REPRO_FORCE_SLOW_PATH`` is set.
"""

from __future__ import annotations

import os
from typing import TYPE_CHECKING

import numpy as np

from repro.config import HOST
from repro.core.oasis import OasisPolicy
from repro.memory.page import POLICY_ON_TOUCH, policy_name
from repro.policies.base import CounterMigrationMixin
from repro.policies.duplication import DuplicationPolicy
from repro.policies.grit import GritPolicy
from repro.policies.on_touch import OnTouchPolicy

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine
    from repro.workloads.base import PhaseTrace

#: Records per eligibility window; bounds the conservative counter-safety
#: sum (a whole-phase window would mark every hot group unsafe).
CHUNK = 4096

#: Minimum eligible-run length worth the bulk-call overhead; shorter runs
#: replay per-record (which is always exact).
MIN_RUN = 16

#: Minimum per-record steps between mask rebuilds after a version bump;
#: amortizes the O(window) rebuild cost during fault storms.
REBUILD_MIN_STEPS = 64


def force_slow_path() -> bool:
    """True when ``REPRO_FORCE_SLOW_PATH`` requests per-record replay."""
    return os.environ.get("REPRO_FORCE_SLOW_PATH", "").strip() not in ("", "0")


class FastReplay:
    """Chunked, mask-driven bulk replayer bound to one :class:`Machine`."""

    def __init__(self, machine: "Machine") -> None:
        self.machine = machine
        config = machine.config
        lat = config.latency
        self._first_page = machine.trace.first_page
        self._n_gpus = config.n_gpus
        self._compute_ns = lat.compute_ns_per_access
        self._local_ns = lat.local_access_ns
        self._remote_ns = lat.remote_access_ns
        self._host_ns = lat.host_access_ns
        self._mem_par = lat.mem_parallelism
        self._remote_par = lat.remote_parallelism
        self._ppg = config.pages_per_counter_group
        self._counting = (
            type(machine.policy).on_remote_access
            is CounterMigrationMixin.on_remote_access
        )
        # First-touch fault lane: which (if any) predictable-resolution
        # mode the attached policy's virgin-page faults follow.
        policy = machine.policy
        if type(policy) is OnTouchPolicy:
            self._ft_mode: str | None = "plain"
        elif (
            isinstance(policy, OasisPolicy)
            and type(policy).on_fault is OasisPolicy.on_fault
            and policy.private_filter
        ):
            self._ft_mode = "oasis"
        elif type(policy) is GritPolicy:
            self._ft_mode = "grit"
        elif type(policy) is DuplicationPolicy:
            self._ft_mode = "dup"
        else:
            self._ft_mode = None
        self._page_size = config.page_size
        self._obj_arr = np.array(machine._obj_of_page, dtype=np.int64)
        # A virgin first touch always moves one page host->GPU over PCIe
        # (all host links are identical) and updates one PTE; the empty
        # shootdown and disabled capacity manager contribute exactly 0.0,
        # so this single float is the resolution every lane record pays.
        transfer_ns = machine.topology.link(HOST, 0).transfer_time_ns(
            config.page_size
        )
        self._virgin_resolution = transfer_ns + lat.pte_update_ns
        self._occ_ns = lat.fault_driver_occupancy_ns
        self._fault_service_ns = lat.fault_service_ns
        self._fault_par = lat.fault_parallelism
        self._virgin_service = self._occ_ns + self._virgin_resolution
        # GRIT charges a metadata memory access on PA-Cache misses before
        # resolving; parenthesized as the slow path accumulates it.
        self._virgin_service_meta = self._occ_ns + (
            lat.metadata_memory_ns + self._virgin_resolution
        )
        # Plain on-touch migrates on *every* fault, so cross-GPU bounces
        # of exclusively-held pages are predictable too: shoot down the
        # holder's PTE (if mapped), pull the page over NVLink, update the
        # PTE.  All GPU pairs share identical link parameters.
        if config.n_gpus >= 2:
            nvlink_ns = machine.topology.link(0, 1).transfer_time_ns(
                config.page_size
            )
        else:
            nvlink_ns = 0.0  # unreachable: no second GPU to bounce from
        self._service_bounce = self._occ_ns + (
            (lat.pte_invalidate_ns + nvlink_ns) + lat.pte_update_ns
        )
        self._service_pull = self._occ_ns + (
            nvlink_ns + lat.pte_update_ns
        )
        self._service_remap = self._occ_ns + lat.pte_update_ns
        # Per-phase record arrays (set by run_phase).
        self._gpu: np.ndarray | None = None
        self._page: np.ndarray | None = None
        self._idx: np.ndarray | None = None
        self._is_w: np.ndarray | None = None
        self._weight: np.ndarray | None = None
        self._bit: np.ndarray | None = None
        self._key: np.ndarray | None = None
        # Current eligibility window (set by _rebuild).
        self._mask_base = 0
        self._mask_version = -1
        self._mask: np.ndarray | None = None
        self._false_pos: np.ndarray | None = None
        self._loc: np.ndarray | None = None
        self._owner_sel: np.ndarray | None = None
        self._fmask: np.ndarray | None = None
        self._f_false_pos: np.ndarray | None = None
        self._f_owner: np.ndarray | None = None
        self._f_map0: np.ndarray | None = None

    @classmethod
    def for_machine(cls, machine: "Machine") -> "FastReplay | None":
        """A replayer for ``machine``, or None when it must run slow.

        Capacity-managed (oversubscribed) runs touch eviction state on
        every access, so they always take the per-record path, as does
        anything under ``REPRO_FORCE_SLOW_PATH=1``.  A fault plan active
        from phase 0 disables the fast path outright; plans whose first
        event fires later keep the fast path for the healthy prefix (the
        machine gates per phase via ``injector.fast_path_allowed``).
        """
        if machine.capacity.enabled or force_slow_path():
            return None
        injector = getattr(machine, "injector", None)
        if injector is not None and not injector.fast_path_allowed(0):
            return None
        return cls(machine)

    # -- phase driver ------------------------------------------------------

    def run_phase(self, phase: "PhaseTrace") -> None:
        """Replay one phase, bit-identical to the per-record loop."""
        n = len(phase.gpu)
        if n == 0:
            return
        # Derived SoA arrays are pure functions of the phase records and
        # the (first_page, n_gpus, pages_per_group) geometry, so a sweep
        # replaying the same trace under many policies computes them once
        # and shares them via a cache slot on the phase itself.  All
        # arrays are read-only below (slicing/indexing only), so sharing
        # is safe; the counter key is always built so counting and
        # non-counting policies share one entry.
        soa_key = (self._first_page, self._n_gpus, self._ppg)
        cached = getattr(phase, "_soa", None)
        if cached is not None and cached[0] == soa_key:
            (_, self._gpu, self._idx, self._is_w,
             self._bit, self._key) = cached
        else:
            self._gpu = phase.gpu.astype(np.int64)
            self._idx = phase.page - self._first_page
            self._is_w = phase.write != 0
            self._bit = np.left_shift(np.int64(1), self._gpu)
            self._key = (
                phase.page // self._ppg
            ) * self._n_gpus + self._gpu
            phase._soa = (soa_key, self._gpu, self._idx, self._is_w,
                          self._bit, self._key)
        self._page = phase.page
        self._weight = phase.weight
        start = 0
        while start < n:
            stop = min(start + CHUNK, n)
            self._run_chunk(start, stop)
            start = stop

    def _run_chunk(self, c0: int, c1: int) -> None:
        machine = self.machine
        pt = machine.page_tables
        access = machine.access
        gpu_l = self._gpu[c0:c1].tolist()
        page_l = self._page[c0:c1].tolist()
        write_l = self._is_w[c0:c1].tolist()
        weight_l = self._weight[c0:c1].tolist()
        self._mask_version = -1  # chunk always starts with a fresh mask
        steps = REBUILD_MIN_STEPS
        i = c0
        while i < c1:
            if pt.version != self._mask_version:
                if steps >= REBUILD_MIN_STEPS:
                    self._rebuild(i, c1)
                    steps = 0
                else:
                    k = i - c0
                    access(gpu_l[k], page_l[k], write_l[k], weight_l[k])
                    steps += 1
                    i += 1
                    continue
            rel = i - self._mask_base
            if self._mask[rel]:
                false_pos = self._false_pos
                nxt = np.searchsorted(false_pos, rel)
                end_rel = (
                    int(false_pos[nxt])
                    if nxt < len(false_pos)
                    else len(self._mask)
                )
                j = self._mask_base + end_rel
                if j - i >= MIN_RUN:
                    self._run_bulk(i, j, rel)
                    i = j
                    continue
            elif self._fmask is not None and self._fmask[rel]:
                false_pos = self._f_false_pos
                nxt = np.searchsorted(false_pos, rel)
                end_rel = (
                    int(false_pos[nxt])
                    if nxt < len(false_pos)
                    else len(self._fmask)
                )
                j = self._mask_base + end_rel
                if j - i >= MIN_RUN:
                    self._run_bulk_fault(i, j, rel)
                    # The installs bumped the page-table version; credit
                    # the processed records toward the rebuild budget so
                    # long fault runs re-mask immediately.
                    steps += j - i
                    i = j
                    continue
            k = i - c0
            access(gpu_l[k], page_l[k], write_l[k], weight_l[k])
            steps += 1
            i += 1

    # -- eligibility -------------------------------------------------------

    def _rebuild(self, i: int, c1: int) -> None:
        """Recompute the eligibility mask for records ``[i, c1)``."""
        machine = self.machine
        pt = machine.page_tables
        views = pt.bulk_views()
        window = slice(i, c1)
        idx_w = self._idx[window]
        bit_w = self._bit[window]
        mapped_raw = views["mapped"][idx_w]
        copies_raw = views["copies"][idx_w]
        writable_raw = views["writable"][idx_w]
        owner_w = views["owner"][idx_w]
        mapped = (mapped_raw & bit_w) != 0
        has_copy = (copies_raw & bit_w) != 0
        writable = (writable_raw & bit_w) != 0
        local = mapped & has_copy
        eligible = local & (~self._is_w[window] | writable)
        if self._counting:
            remote = mapped & ~has_copy
            if remote.any():
                keys_w = self._key[window]
                unique_keys, inverse = np.unique(keys_w, return_inverse=True)
                totals = np.bincount(inverse, weights=self._weight[window])
                counters = machine.access_counters
                threshold = counters.threshold
                safe = np.fromiter(
                    (
                        counters.count_by_key(int(key)) + int(total)
                        < threshold
                        for key, total in zip(
                            unique_keys.tolist(), totals.tolist()
                        )
                    ),
                    dtype=bool,
                    count=len(unique_keys),
                )
                eligible |= remote & safe[inverse]
        if self._ft_mode == "plain":
            # Plain on-touch resolves *every* fault with a migration, so
            # any page in a "simple exclusive" state is predictable:
            # virgin (host owner, nothing anywhere), or exclusively held
            # by one GPU — mapped (bounce: shootdown + NVLink pull) or
            # not (NVLink pull / local remap).  The fused loop tracks
            # each page's holder as the run migrates it around.
            owner_bit = np.where(
                owner_w >= 0,
                np.left_shift(np.int64(1), np.maximum(owner_w, 0)),
                np.int64(0),
            )
            fmask = (copies_raw == owner_bit) & (
                (mapped_raw == 0)
                | ((mapped_raw == copies_raw) & (writable_raw == mapped_raw))
            )
            self._fmask = fmask
            self._f_false_pos = np.flatnonzero(~fmask)
            self._f_owner = owner_w
            self._f_map0 = mapped_raw != 0
        elif self._ft_mode is not None:
            # Other predictable policies only cover virgin pages (host
            # owner, zero copy/mapping masks — no shootdown victims, no
            # demotable writer).  Window repeats are allowed as long as
            # every occurrence comes from the same GPU: the first touch
            # installs a local mapping for that GPU, making the repeats
            # plain local accesses the fused loop replays in place.
            virgin = (
                (mapped_raw == 0)
                & (copies_raw == 0)
                & (owner_w == HOST)
            )
            if self._ft_mode in ("oasis", "grit"):
                virgin &= views["policy"][idx_w] == POLICY_ON_TOUCH
            gpu_w = self._gpu[window]
            _, first_idx, inverse = np.unique(
                self._page[window],
                return_index=True,
                return_inverse=True,
            )
            mixed = np.bincount(
                inverse,
                weights=(gpu_w != gpu_w[first_idx][inverse]),
                minlength=len(first_idx),
            )
            virgin &= mixed[inverse] == 0
            if self._ft_mode == "dup":
                # A write repeat after a read first touch would hit the
                # read-only duplicate (protection fault); only pages
                # whose first touch is a write — collapse installs a
                # writable mapping — or that see no writes at all are
                # predictable.
                is_w_w = self._is_w[window]
                n_writes = np.bincount(
                    inverse,
                    weights=is_w_w,
                    minlength=len(first_idx),
                )
                first_write = is_w_w[first_idx]
                virgin &= (first_write | (n_writes == 0))[inverse]
            self._fmask = virgin
            self._f_false_pos = np.flatnonzero(~virgin)
        else:
            self._fmask = None
        self._mask_base = i
        self._mask = eligible
        self._false_pos = np.flatnonzero(~eligible)
        self._loc = local
        self._owner_sel = views["owner"][idx_w]
        self._mask_version = pt.version

    # -- bulk replay -------------------------------------------------------

    def _run_bulk(self, i: int, j: int, rel: int) -> None:
        """Replay eligible records ``[i, j)`` in bulk (mask is current)."""
        from repro.sim.machine import REMOTE_ACCESS_BYTES

        machine = self.machine
        n = j - i
        gpu_run = self._gpu[i:j]
        page_run = self._page[i:j]
        idx_run = self._idx[i:j]
        weight_run = self._weight[i:j]
        local_run = self._loc[rel:rel + n]
        owner_run = self._owner_sel[rel:rel + n]
        run_gpus = np.unique(gpu_run)

        # TLB lookups: per-GPU state is sequential, so each GPU's pages go
        # through the inlined LRU loop in record order.
        costs = np.empty(n, dtype=np.float64)
        walk_parts: list[np.ndarray] = []
        for gpu in run_gpus.tolist():
            sel = np.flatnonzero(gpu_run == gpu)
            costs_g, walks_g = machine.tlbs[gpu].translate_run(
                page_run[sel].tolist()
            )
            costs[sel] = costs_g
            if walks_g:
                walk_parts.append(sel[np.array(walks_g, dtype=np.int64)])
        if walk_parts:
            walk_pos = np.concatenate(walk_parts)
            bits = machine.page_tables.bulk_views()["policy"][
                idx_run[walk_pos]
            ]
            unique_bits, bit_counts = np.unique(bits, return_counts=True)
            miss_counts = machine.l2_miss_policy_counts
            for value, count in zip(
                unique_bits.tolist(), bit_counts.tolist()
            ):
                name = policy_name(value)
                miss_counts[name] = miss_counts.get(name, 0) + int(count)

        # Clock terms, decomposed exactly as Machine.access charges them:
        # t0 compute, t1 (tlb [+ local]) / mem_par, t2 remote / remote_par.
        t0 = weight_run * self._compute_ns
        t1 = (
            np.where(
                local_run, costs + self._local_ns * weight_run, costs
            )
            / self._mem_par
        )
        per_ns = np.where(owner_run == HOST, self._host_ns, self._remote_ns)
        t2 = np.where(
            local_run, 0.0, per_ns * weight_run / self._remote_par
        )
        clocks = machine.clocks
        for gpu in run_gpus.tolist():
            sel = np.flatnonzero(gpu_run == gpu)
            terms = np.empty(3 * len(sel) + 1, dtype=np.float64)
            terms[0] = clocks[gpu]
            terms[1::3] = t0[sel]
            terms[2::3] = t1[sel]
            terms[3::3] = t2[sel]
            clocks[gpu] = float(np.cumsum(terms)[-1])

        # Stats: integer-valued float counters, exact under bulk sums.
        stats = machine.stats
        local_weights = weight_run[local_run]
        if local_weights.size:
            stats.add("access.local", int(local_weights.sum()))
        remote_sel = ~local_run
        if remote_sel.any():
            host_sel = remote_sel & (owner_run == HOST)
            if host_sel.any():
                stats.add("access.host", int(weight_run[host_sel].sum()))
            gpu_owner_sel = remote_sel & (owner_run != HOST)
            if gpu_owner_sel.any():
                stats.add(
                    "access.remote", int(weight_run[gpu_owner_sel].sum())
                )
            # Link traffic, batched per (gpu, owner) pair.
            pair_sel = np.flatnonzero(remote_sel & (owner_run != gpu_run))
            if pair_sel.size:
                stride = self._n_gpus + 1
                pair_ids = (
                    gpu_run[pair_sel] * stride + owner_run[pair_sel] + 1
                )
                unique_pairs, inverse = np.unique(
                    pair_ids, return_inverse=True
                )
                byte_weights = np.bincount(
                    inverse, weights=weight_run[pair_sel]
                )
                message_counts = np.bincount(inverse)
                topology = machine.topology
                for pair, weight_total, messages in zip(
                    unique_pairs.tolist(),
                    byte_weights.tolist(),
                    message_counts.tolist(),
                ):
                    topology.record_transfer_bulk(
                        pair // stride,
                        pair % stride - 1,
                        REMOTE_ACCESS_BYTES * int(weight_total),
                        int(messages),
                    )
            # Access counters: every key was proven trip-free at mask
            # build, so bulk addition matches per-record counting.
            if self._counting:
                remote_keys = self._key[i:j][remote_sel]
                unique_keys, inverse = np.unique(
                    remote_keys, return_inverse=True
                )
                key_weights = np.bincount(
                    inverse, weights=weight_run[remote_sel]
                )
                counters = machine.access_counters
                for key, weight_total in zip(
                    unique_keys.tolist(), key_weights.tolist()
                ):
                    counters.add_bulk_below_threshold(
                        int(key), int(weight_total)
                    )

    def _run_bulk_fault(self, i: int, j: int, rel: int) -> None:
        """Replay a run of predictable page faults in one fused loop.

        In plain on-touch mode every record touches a page in a simple
        exclusive state, so each access is one of: a local access by the
        current holder, a virgin first touch (host->GPU pull over PCIe),
        a cross-GPU bounce (holder PTE shootdown + NVLink pull), an
        NVLink pull from an unmapped owner, or a local remap — each with
        a fixed driver service time.  The other modes only admit virgin
        first touches (plus same-GPU repeats, replayed as local
        accesses).  The sequential state — TLB LRU dicts, the driver
        FIFO, per-GPU clocks, GRIT's PA-Cache, residency LRU lists and
        each page's current holder — is advanced in one fused scalar
        loop; everything order-insensitive (stats, page-table installs,
        counters, link bytes) is applied in bulk afterwards.  The
        arithmetic mirrors ``Machine.access`` + ``Machine._fault`` + the
        driver primitives operation for operation, so the results are
        bit-identical to per-record replay.
        """
        machine = self.machine
        n = j - i
        mode = self._ft_mode
        plain = mode == "plain"
        gpu_run = self._gpu[i:j]
        idx_run = self._idx[i:j]
        gpu_l = gpu_run.tolist()
        page_l = self._page[i:j].tolist()
        weight_l = self._weight[i:j].tolist()
        pol_l = (
            machine.page_tables.bulk_views()["policy"][idx_run].tolist()
        )
        if plain:
            own0_l = self._f_owner[rel:rel + n].tolist()
            map0_l = self._f_map0[rel:rel + n].tolist()

        compute_ns = self._compute_ns
        local_ns = self._local_ns
        mem_par = self._mem_par
        fault_service = self._fault_service_ns
        fault_par = self._fault_par
        service_virgin = self._virgin_service
        service_bounce = self._service_bounce
        service_pull = self._service_pull
        service_remap = self._service_remap
        n_gpus = self._n_gpus
        tlb0 = machine.tlbs[0]
        l1_cost = tlb0._l1_cost
        l2_cost = tlb0._l2_cost
        walk_cost = tlb0._walk_cost
        tlb_refs = [
            (t.l1._sets, t.l1._n_sets, t.l1._ways,
             t.l2._sets, t.l2._n_sets, t.l2._ways)
            for t in machine.tlbs
        ]
        l1_hits = [0] * n_gpus
        l1_misses = [0] * n_gpus
        l2_hits = [0] * n_gpus
        l2_misses = [0] * n_gpus
        inval_l1 = [0] * n_gpus
        inval_l2 = [0] * n_gpus
        fault_counts = [0] * n_gpus
        pcie_counts = [0] * n_gpus
        nv_pairs: dict[tuple[int, int], int] = {}
        clocks = machine.clocks
        queue = machine.driver.queue
        free_at = queue.free_at
        busy = queue.busy_time
        # Residency lists are maintained even with capacity modelling
        # disabled (note_resident is unconditional in the driver).
        lrus = machine.capacity._lru
        walk_hist: dict[int, int] = {}
        local_extra = 0
        shoot_total = 0
        grit = mode == "grit"
        if grit:
            pa = machine.policy.pa_cache
            pa_lines = pa._lines
            pa_cap = pa._entries
            pa_hits = 0
            pa_misses = 0
            service_meta = self._virgin_service_meta
        #: page -> current exclusive holder, as the run moves pages.
        holder: dict[int, int] = {}
        #: page -> final holder, for pages this run actually migrated.
        install: dict[int, int] = {}
        inst_ks: list[int] = []

        for k in range(n):
            g = gpu_l[k]
            page = page_l[k]
            w = weight_l[k]
            h = holder.get(page, -2)
            if h == -2:
                if plain:
                    o = own0_l[k]
                    m0 = map0_l[k]
                else:
                    o = HOST  # non-plain lanes only admit virgin pages
                    m0 = False
            else:
                o = h
                m0 = True
            # Translation attempt: on a fault the walk happens before
            # the fault is detected, so both levels fill either way and
            # the post-fault retry below is a guaranteed L1 hit.
            l1_sets, l1_n, l1_w, l2_sets, l2_n, l2_w = tlb_refs[g]
            e1 = l1_sets[page % l1_n]
            if page in e1:
                del e1[page]
                e1[page] = None
                l1_hits[g] += 1
                cost = l1_cost
            else:
                l1_misses[g] += 1
                e2 = l2_sets[page % l2_n]
                if page in e2:
                    del e2[page]
                    e2[page] = None
                    l2_hits[g] += 1
                    if len(e1) >= l1_w:
                        del e1[next(iter(e1))]
                    e1[page] = None
                    cost = l2_cost
                else:
                    l2_misses[g] += 1
                    if len(e2) >= l2_w:
                        del e2[next(iter(e2))]
                    e2[page] = None
                    if len(e1) >= l1_w:
                        del e1[next(iter(e1))]
                    e1[page] = None
                    cost = walk_cost
                    bits = pol_l[k]
                    walk_hist[bits] = walk_hist.get(bits, 0) + 1
            if o == g and m0:
                # Local access by the current holder.
                clocks[g] = (
                    clocks[g]
                    + w * compute_ns
                    + (cost + local_ns * w) / mem_par
                )
                local_extra += w
                holder[page] = g
                continue
            # Fault path.
            c = clocks[g] + w * compute_ns + cost / mem_par
            if o == HOST:
                if grit:
                    if page in pa_lines:
                        del pa_lines[page]
                        pa_lines[page] = None
                        pa_hits += 1
                        service = service_virgin
                    else:
                        if len(pa_lines) >= pa_cap:
                            del pa_lines[next(iter(pa_lines))]
                        pa_lines[page] = None
                        pa_misses += 1
                        service = service_meta
                else:
                    service = service_virgin
                pcie_counts[g] += 1
            elif o == g:
                # Holder faulting on its own unmapped page: remap only.
                service = service_remap
            else:
                # Cross-GPU migration of an exclusively-held page.
                lrus[o].pop(page, None)  # note_released(o, page)
                if m0:
                    v1_sets, v1_n, _w1, v2_sets, v2_n, _w2 = tlb_refs[o]
                    ev = v1_sets[page % v1_n]
                    if page in ev:
                        del ev[page]
                        inval_l1[o] += 1
                    ev = v2_sets[page % v2_n]
                    if page in ev:
                        del ev[page]
                        inval_l2[o] += 1
                    shoot_total += 1
                    service = service_bounce
                else:
                    service = service_pull
                pair = (o, g) if o < g else (g, o)
                nv_pairs[pair] = nv_pairs.get(pair, 0) + 1
            fault_counts[g] += 1
            inst_ks.append(k)
            holder[page] = g
            install[page] = g
            start = free_at if free_at > c else c
            done = start + service
            busy += service
            free_at = done
            c = c + ((done - c) + fault_service) / fault_par
            if w > 1:
                # Remaining accesses retry the translation (L1 hit) and
                # proceed as local accesses with the fresh mapping.
                c = c + (l1_cost + local_ns * (w - 1)) / mem_par
                l1_hits[g] += 1
                local_extra += w - 1
            clocks[g] = c
            lru = lrus[g]
            lru.pop(page, None)
            lru[page] = None

        n_faults = len(inst_ks)
        queue.advance_to(free_at, busy, n_faults)
        for g in range(n_gpus):
            if l1_hits[g] or l1_misses[g] or inval_l1[g] or inval_l2[g]:
                tlb = machine.tlbs[g]
                tlb.l1.hits += l1_hits[g]
                tlb.l1.misses += l1_misses[g]
                tlb.l1.lookups += l1_hits[g] + l1_misses[g]
                tlb.l2.hits += l2_hits[g]
                tlb.l2.misses += l2_misses[g]
                tlb.l2.lookups += l2_hits[g] + l2_misses[g]
                tlb.l1.invalidations += inval_l1[g]
                tlb.l2.invalidations += inval_l2[g]
        miss_counts = machine.l2_miss_policy_counts
        for bits, count in walk_hist.items():
            name = policy_name(bits)
            miss_counts[name] = miss_counts.get(name, 0) + count

        stats = machine.stats
        fault_keys = machine._fault_keys
        for g, count in enumerate(fault_counts):
            if count:
                stats.add(fault_keys[g], count)
        page_size = self._page_size
        pt = machine.page_tables
        topology = machine.topology
        if n_faults:
            inst = np.array(inst_ks, dtype=np.int64)
            inst_idx = idx_run[inst]
            unique_objs, obj_counts = np.unique(
                self._obj_arr[inst_idx], return_counts=True
            )
            object_keys = machine._object_fault_keys
            for oid, count in zip(
                unique_objs.tolist(), obj_counts.tolist()
            ):
                if oid >= 0:
                    stats.add(object_keys[oid], count)
            stats.add("fault.page", n_faults)
            if mode == "dup":
                write_inst = self._is_w[i:j][inst]
                n_write = int(np.count_nonzero(write_inst))
                n_read = n_faults - n_write
                if n_read:
                    stats.add("duplication.count", n_read)
                    stats.add("duplication.bytes", n_read * page_size)
                    read_sel = ~write_inst
                    pt.bulk_install_duplicate(
                        inst_idx[read_sel], gpu_run[inst][read_sel]
                    )
                if n_write:
                    stats.add("collapse.count", n_write)
                    # The per-record path adds len(victims) == 0 per
                    # collapse; replicate the zero-valued key it
                    # creates.
                    stats.add("collapse.invalidated_copies", 0)
                    pt.bulk_install_exclusive(
                        inst_idx[write_inst], gpu_run[inst][write_inst]
                    )
            else:
                if mode == "oasis":
                    stats.add("oasis.private_fault", n_faults)
                stats.add("migration.count", n_faults)
                stats.add("migration.bytes", n_faults * page_size)
                pages_arr = np.fromiter(
                    install.keys(), dtype=np.int64, count=len(install)
                )
                gpus_arr = np.fromiter(
                    install.values(), dtype=np.int64, count=len(install)
                )
                pt.bulk_install_exclusive(
                    pages_arr - self._first_page, gpus_arr
                )
                # Migration resets the whole 64 KB counter group, which
                # can clear neighbouring pages' counts — replay exactly.
                counters = machine.access_counters
                if counters.active_counters:
                    for k in inst_ks:
                        counters.reset_group(page_l[k])
            if shoot_total:
                stats.add("shootdown.count", shoot_total)
            n_pcie = sum(pcie_counts)
            if n_pcie:
                stats.add("traffic.pcie_bytes", n_pcie * page_size)
                for g, count in enumerate(pcie_counts):
                    if count:
                        topology.record_transfer_bulk(
                            HOST, g, count * page_size, count
                        )
            if nv_pairs:
                n_nv = sum(nv_pairs.values())
                stats.add("traffic.nvlink_bytes", n_nv * page_size)
                for (a, b), count in nv_pairs.items():
                    topology.record_transfer_bulk(
                        a, b, count * page_size, count
                    )
        if grit:
            pa.hits += pa_hits
            pa.misses += pa_misses
            if pa_misses:
                stats.add("grit.pa_cache_miss", pa_misses)
        if local_extra:
            stats.add("access.local", local_extra)
