"""Sweep-level fast path: shared replay state across a batch of runs.

A sweep (``run_sims_parallel``, the golden matrix, every ``fig*``
benchmark) executes many runs that differ only in policy over the same
(config, app, footprint, seed) **cohort**.  Three kinds of work are
shared across a cohort instead of being paid per run:

* the **trace** itself — generated once and reused (the runner keeps a
  small LRU of built traces), which also shares
* the **per-phase SoA replay arrays** — the vectorized replayer's
  derived arrays (int64 gpu lane, page offsets, write mask, gpu bit,
  counter-group key) are computed once per phase and cached *on the
  phase* (:meth:`FastReplay.run_phase`), so every policy variant replays
  the same structure-of-arrays pass over them; and
* the **phase prefix** — runs whose placement decisions agree through a
  boundary resume from one shared snapshot (:mod:`repro.sim.snapshot`).

Runs stay on the shared lane while their per-phase decision digests
match the cohort's reference chain and fork off at the first divergent
decision; :class:`SweepLanes` detects divergence by digest comparison
and counts the forks that ``last_sweep_summary`` reports.

:class:`PhaseMemo` is the snapshot store: a bounded in-memory tier
(``REPRO_MEMO_MEM_MB``, default 256) over an optional
:class:`~repro.harness.diskcache.DiskCache` blob tier that shares the
result cache's checksum/quarantine discipline.  All counters (hits,
misses, stores, snapshot bytes, resumed phases, corruption, forks) feed
``repro.harness.runner`` and the sweep summary.
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict

from repro.sim.snapshot import MemoSession

#: Default in-memory snapshot budget (MB) when the env knob is unset.
DEFAULT_MEM_MB = 256.0


def _mem_budget_bytes(max_bytes: int | None) -> int:
    if max_bytes is not None:
        return max(1, int(max_bytes))
    raw = os.environ.get("REPRO_MEMO_MEM_MB", "").strip()
    mb = DEFAULT_MEM_MB
    if raw:
        try:
            mb = max(1.0, float(raw))
        except ValueError:
            pass
    return int(mb * 1024 * 1024)


class SweepLanes:
    """Decision-lane bookkeeping for one sweep's cohorts.

    The first run recorded in a cohort defines the reference chain (the
    shared lane); every later run's shared-prefix length is the longest
    digest-for-digest agreement with it.  A run *forks* when it leaves
    the lane before its own chain ends — i.e. its first divergent
    placement decision.  Fork counts are observability, not correctness:
    they tell a sweep report where policy variants stopped sharing work.
    """

    def __init__(self) -> None:
        self._cohorts: dict[str, dict] = {}
        self.runs = 0
        self.forks = 0
        #: Records accumulated since the last :meth:`drain` — worker
        #: processes ship these to the parent sweep for global accounting.
        self._pending: list[tuple] = []

    def record(self, cohort: str, label: str, chain,
               resumed_phases: int = 0) -> None:
        chain = list(chain)
        self.runs += 1
        entry = self._cohorts.get(cohort)
        if entry is None:
            entry = {"reference": label, "chain": chain, "runs": {}}
            self._cohorts[cohort] = entry
        reference = entry["chain"]
        shared = 0
        for left, right in zip(reference, chain):
            if left != right:
                break
            shared += 1
        forked = label != entry["reference"] and shared < len(chain)
        if forked and label not in entry["runs"]:
            self.forks += 1
        entry["runs"][label] = {
            "phases": len(chain),
            "shared_prefix": shared,
            "forked": forked,
            "resumed_phases": resumed_phases,
        }
        self._pending.append((cohort, label, chain, resumed_phases))

    def drain(self) -> list[tuple]:
        """Pop the records accumulated since the last drain."""
        pending, self._pending = self._pending, []
        return pending

    def replay(self, records) -> None:
        """Merge records drained from another process's lanes."""
        for cohort, label, chain, resumed in records:
            self.record(cohort, label, chain, resumed_phases=resumed)
        self._pending.clear()

    def report(self) -> dict:
        return {
            "cohorts": len(self._cohorts),
            "runs": self.runs,
            "prefix_forks": self.forks,
            "by_cohort": {
                cohort[:12]: {
                    "reference": entry["reference"],
                    "runs": dict(entry["runs"]),
                }
                for cohort, entry in sorted(self._cohorts.items())
            },
        }

    def clear(self) -> None:
        self._cohorts.clear()
        self._pending.clear()
        self.runs = 0
        self.forks = 0


class PhaseMemo:
    """Two-tier content-addressed store of phase-boundary snapshots."""

    def __init__(self, disk=None, max_bytes: int | None = None) -> None:
        self.disk = disk
        self.max_bytes = _mem_budget_bytes(max_bytes)
        self._mem: OrderedDict[str, bytes] = OrderedDict()
        self._mem_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.snapshot_bytes = 0
        self.resumed_phases = 0
        self.corrupt = 0
        self.io_errors = 0
        self.lanes = SweepLanes()

    # -- sessions ----------------------------------------------------------

    def session(
        self,
        config,
        app: str,
        policy: str,
        *,
        footprint_mb: float | None = None,
        seed: int = 0,
        policy_kwargs: dict | None = None,
    ) -> MemoSession:
        """Bind one run's full identity to this store.

        ``base_key`` reuses the result cache's content hash (simulator
        version, replay-path flag, config, app, footprint, seed, policy
        + canonical kwargs); the cohort key drops the policy, grouping
        all variants over the same trace into one decision lane.
        """
        import dataclasses

        from repro.harness.diskcache import _canonical, cache_key
        from repro.sim.fastpath import force_slow_path

        kwargs = dict(policy_kwargs or {})
        base = cache_key(config, app, policy, footprint_mb, seed, kwargs)
        cohort_blob = json.dumps(
            {
                "config": dataclasses.asdict(config),
                "app": app,
                "footprint_mb": footprint_mb,
                "seed": seed,
                "slow_path": force_slow_path(),
            },
            sort_keys=True,
            default=repr,
        )
        cohort = hashlib.sha256(cohort_blob.encode()).hexdigest()
        label = policy
        if kwargs:
            label += json.dumps(_canonical(kwargs), sort_keys=True)
        return MemoSession(self, base, cohort, label)

    # -- the two-tier store ------------------------------------------------

    def get(self, key: str) -> bytes | None:
        blob = self._mem.get(key)
        if blob is not None:
            self._mem.move_to_end(key)
            return blob
        if self.disk is not None:
            blob = self.disk.load_blob(key)
            if blob is not None:
                self._mem_put(key, blob)
                return blob
        return None

    def contains(self, key: str) -> bool:
        if key in self._mem:
            return True
        return self.disk is not None and self.disk.has_blob(key)

    def put(self, key: str, blob: bytes) -> None:
        if self.contains(key):
            return
        self.stores += 1
        self.snapshot_bytes += len(blob)
        self._mem_put(key, blob)
        if self.disk is not None:
            try:
                self.disk.store_blob(key, blob)
            except OSError:
                # A blob tier that cannot accept writes (disk full,
                # permission, injected fault) must not kill a simulation
                # mid-run: the snapshot stays in the memory tier and the
                # next process pays a cold replay instead.
                self.io_errors += 1

    def _mem_put(self, key: str, blob: bytes) -> None:
        if len(blob) > self.max_bytes:
            return
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= len(old)
        self._mem[key] = blob
        self._mem_bytes += len(blob)
        while self._mem_bytes > self.max_bytes and len(self._mem) > 1:
            _, evicted = self._mem.popitem(last=False)
            self._mem_bytes -= len(evicted)

    def discard(self, key: str, corrupt: bool = False) -> None:
        old = self._mem.pop(key, None)
        if old is not None:
            self._mem_bytes -= len(old)
        if corrupt:
            self.corrupt += 1
            if self.disk is not None:
                self.disk.quarantine_blob(key)

    # -- accounting --------------------------------------------------------

    def note_hit(self, resumed_phases: int) -> None:
        self.hits += 1
        self.resumed_phases += resumed_phases

    def note_miss(self) -> None:
        self.misses += 1

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "snapshot_bytes": self.snapshot_bytes,
            "resumed_phases": self.resumed_phases,
            "corrupt": self.corrupt,
            "io_errors": self.io_errors,
            "prefix_forks": self.lanes.forks,
            "mem_entries": len(self._mem),
            "mem_bytes": self._mem_bytes,
        }

    def clear(self, counters_only: bool = False) -> None:
        """Reset counters (and, by default, drop the in-memory tier)."""
        if not counters_only:
            self._mem.clear()
            self._mem_bytes = 0
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.snapshot_bytes = 0
        self.resumed_phases = 0
        self.corrupt = 0
        self.io_errors = 0
        self.lanes.clear()


def sweep_report(memo: PhaseMemo) -> dict:
    """One JSON-serializable view of a memoized sweep's sharing."""
    return {"memo": memo.stats(), "lanes": memo.lanes.report()}
