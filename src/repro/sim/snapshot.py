"""Phase-boundary machine snapshots for prefix memoization.

A simulation is a deterministic fold over its trace's phases: the machine
state at any phase boundary is a pure function of (config, trace prefix,
policy identity and the decisions it made so far).  This module gives
that prefix a content-addressed name and serializes the machine state at
selected boundaries, so a later run sharing the prefix resumes from the
snapshot instead of re-simulating it (see
:class:`repro.sim.sweep.PhaseMemo` for the store and
``docs/MODEL.md`` §12 for the key construction and fork rule).

The prefix key chains three ingredients:

* the **run identity** — the same content hash the result cache uses
  (:func:`repro.harness.diskcache.cache_key`: simulator version, replay
  path, full config, app, footprint, seed, policy + canonical kwargs);
* the **trace prefix** — a rolling sha256 over each phase's record
  arrays plus the object table (:func:`trace_prefix_chain`), so a
  workload-generator change can never resurrect a stale snapshot;
* the **decision prefix** — a sha256 per boundary over the page tables'
  placement state (owner / copies / mapped / writable / policy bits,
  :func:`decision_digest`).  Determinism makes it implied by the first
  two ingredients, so it is carried *inside* the snapshot and verified
  on restore (an integrity check, and the divergence signal the sweep
  layer's fork accounting reads) rather than mixed into the lookup key.

Serialization is a single :mod:`pickle` graph over the machine's mutable
components; back-references to the immutable scaffolding (the machine
itself, its config, trace, objects, tracer) are swapped for persistent-id
tokens so they re-bind to the *resuming* machine's instances on load.
A snapshot that fails any validation — unpicklable, wrong version or
index, chain length mismatch, decision digest mismatch — raises
:class:`SnapshotError` before the machine is touched; the caller
quarantines it and falls back to cold replay.
"""

from __future__ import annotations

import hashlib
import io
import math
import pickle
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.machine import Machine
    from repro.workloads.base import PhaseTrace, Trace

#: Bump whenever the snapshot payload layout or any captured component's
#: state shape changes; old snapshots become unreachable (and harmless).
#: v2: TLBs carry a ``lookups`` counter, the driver a ``tenancy`` ref.
SNAPSHOT_VERSION = 2

#: Ceiling on stored boundaries per run.  Long traces (lenet/vgg/resnet
#: have 128-158 phases) stride their boundaries so a run never writes
#: more than this many snapshots; the deepest interior boundary is
#: always kept, because "everything but the final phase" is the resume
#: point a warm sweep actually uses.
MAX_SNAPSHOTS = 8


class SnapshotError(RuntimeError):
    """A snapshot failed validation and must not be restored."""


# -- content digests -------------------------------------------------------


def phase_digest(phase: "PhaseTrace") -> str:
    """Content digest of one phase's record arrays (cached on the phase)."""
    digest = getattr(phase, "_memo_digest", None)
    if digest is None:
        h = hashlib.sha256()
        h.update(
            repr((phase.name, bool(phase.explicit), len(phase.gpu))).encode()
        )
        for arr in (phase.gpu, phase.page, phase.write, phase.weight):
            contiguous = np.ascontiguousarray(arr)
            h.update(str(contiguous.dtype).encode())
            h.update(contiguous.tobytes())
        digest = h.hexdigest()
        phase._memo_digest = digest
    return digest


def trace_prefix_chain(trace: "Trace") -> list[str]:
    """Rolling digests of the trace's phase prefixes (cached on the trace).

    ``chain[k]`` covers the object table, the trace header and the first
    ``k`` phases' full record content, so ``chain[k]`` names exactly the
    input a machine has consumed when it stands at the boundary after
    phase ``k - 1``.
    """
    chain = getattr(trace, "_memo_prefix_chain", None)
    if chain is None:
        h = hashlib.sha256()
        header = (
            trace.name, trace.n_gpus, trace.page_size,
            trace.first_page, trace.n_pages,
        )
        objects = tuple(
            (o.name, o.size_bytes, o.obj_id, o.alloc_phase, o.free_phase,
             o.first_page, o.n_pages)
            for o in trace.objects
        )
        h.update(repr((header, objects)).encode())
        chain = [h.hexdigest()]
        for phase in trace.phases:
            link = hashlib.sha256()
            link.update(chain[-1].encode())
            link.update(phase_digest(phase).encode())
            chain.append(link.hexdigest())
        trace._memo_prefix_chain = chain
    return chain


def decision_digest(page_tables) -> str:
    """Digest of every placement/migration decision made so far.

    Hashes the page tables' five numpy mirrors (owner, copy / mapped /
    writable masks, policy bits) — the complete observable outcome of
    the policy's placement decisions, which is what two runs must agree
    on phase-for-phase to share a lane.
    """
    views = page_tables.bulk_views()
    h = hashlib.sha256()
    for name in ("owner", "copies", "mapped", "writable", "policy"):
        h.update(views[name].tobytes())
    return h.hexdigest()


def phase_key(base_key: str, n_done: int, prefix_digest: str) -> str:
    """Lookup key for the snapshot taken after ``n_done`` phases."""
    blob = f"snap:{SNAPSHOT_VERSION}:{base_key}:{n_done}:{prefix_digest}"
    return hashlib.sha256(blob.encode()).hexdigest()


def snapshot_boundaries(n_phases: int, limit: int = MAX_SNAPSHOTS) -> tuple:
    """Phase indices after which a snapshot is stored.

    All interior boundaries when there are at most ``limit``; otherwise
    every ``stride``-th plus the deepest one.  The boundary after the
    final phase is never stored — the whole-result cache already covers
    completed runs.
    """
    interior = n_phases - 1
    if interior <= 0:
        return ()
    if interior <= limit:
        return tuple(range(interior))
    stride = math.ceil(interior / limit)
    picks = {interior - 1}
    picks.update(range(stride - 1, interior, stride))
    return tuple(sorted(picks))


# -- serialization ---------------------------------------------------------

#: Payload keys holding the machine components that restore() swaps in.
_COMPONENTS = (
    "stats", "page_tables", "tlbs", "access_counters", "capacity",
    "topology", "driver", "policy",
)


class _SnapshotPickler(pickle.Pickler):
    """Pickles machine state, tokenizing the immutable scaffolding.

    The policy (and potentially other components) hold back-references
    to the machine, its config, trace, tracer and the trace's ObjectDef /
    Allocation instances.  Those are shared, immutable run inputs — not
    state — so they serialize as persistent-id tokens and re-bind to the
    restoring machine's own instances.
    """

    def __init__(self, fh, machine: "Machine") -> None:
        super().__init__(fh, protocol=pickle.HIGHEST_PROTOCOL)
        tokens: dict[int, tuple] = {
            id(machine): ("machine",),
            id(machine.config): ("config",),
            id(machine.trace): ("trace",),
            id(machine.tracer): ("tracer",),
            id(machine.verifier): ("verifier",),
        }
        if machine._tenancy is not None:
            # Derived deterministically from the trace: token it so the
            # driver's back-reference re-binds instead of duplicating.
            tokens[id(machine._tenancy)] = ("tenancy",)
        for obj in machine.trace.objects:
            tokens[id(obj)] = ("objdef", obj.obj_id)
            tokens[id(obj.allocation)] = ("alloc", obj.obj_id)
        self._tokens = tokens

    def persistent_id(self, obj):
        return self._tokens.get(id(obj))


class _SnapshotUnpickler(pickle.Unpickler):
    def __init__(self, fh, machine: "Machine") -> None:
        super().__init__(fh)
        self._machine = machine
        self._objects = {o.obj_id: o for o in machine.trace.objects}

    def persistent_load(self, pid):
        machine = self._machine
        kind = pid[0]
        if kind == "machine":
            return machine
        if kind == "config":
            return machine.config
        if kind == "trace":
            return machine.trace
        if kind == "tracer":
            return machine.tracer
        if kind == "verifier":
            return machine.verifier
        if kind == "tenancy":
            return machine._tenancy
        if kind == "objdef":
            return self._objects[pid[1]]
        if kind == "alloc":
            return self._objects[pid[1]].allocation
        raise pickle.UnpicklingError(f"unknown persistent id {pid!r}")


def capture(machine: "Machine", index: int, now: float, phases: list,
            chain: list) -> bytes:
    """Serialize the machine state at the boundary after phase ``index``.

    Must be called at the quiescent point the run loop reaches after
    ``_do_frees`` — clocks synchronized, driver queue drained to ``now``
    — which is exactly the state the next iteration starts from.
    """
    pt = machine.page_tables
    # The numpy mirrors are derived state rebuilt on demand; dropping
    # them halves the snapshot and the restored tables re-mirror lazily.
    views, pt._views = pt._views, None
    try:
        payload = {
            "version": SNAPSHOT_VERSION,
            "index": index,
            "now": now,
            "chain": list(chain),
            "phases": list(phases),
            "clocks": list(machine.clocks),
            "stats": machine.stats,
            "page_tables": pt,
            "tlbs": machine.tlbs,
            "access_counters": machine.access_counters,
            "capacity": machine.capacity,
            "topology": machine.topology,
            "driver": machine.driver,
            "policy": machine.policy,
            "l2_miss_policy_counts": machine.l2_miss_policy_counts,
            "allocated": set(machine._allocated),
        }
        buf = io.BytesIO()
        _SnapshotPickler(buf, machine).dump(payload)
        return buf.getvalue()
    finally:
        pt._views = views


def restore(machine: "Machine", blob: bytes,
            expect_index: int | None = None) -> dict:
    """Validate ``blob`` and install its state into ``machine``.

    Every check runs before the machine is touched, so a failing
    snapshot leaves the machine pristine for cold replay.  Returns the
    payload (``index`` / ``now`` / ``phases`` / ``chain``).
    """
    try:
        payload = _SnapshotUnpickler(io.BytesIO(blob), machine).load()
    except SnapshotError:
        raise
    except Exception as exc:
        raise SnapshotError(f"snapshot deserialization failed: {exc!r}") from exc
    if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
        raise SnapshotError("snapshot version mismatch")
    index = payload.get("index")
    if expect_index is not None and index != expect_index:
        raise SnapshotError(
            f"snapshot is for boundary {index}, expected {expect_index}"
        )
    chain = payload.get("chain")
    if not isinstance(chain, list) or len(chain) != index + 1:
        raise SnapshotError("decision chain length mismatch")
    missing = [k for k in _COMPONENTS if k not in payload]
    if missing:
        raise SnapshotError(f"snapshot missing components: {missing}")
    if decision_digest(payload["page_tables"]) != chain[-1]:
        raise SnapshotError("decision-prefix digest mismatch")
    machine.stats = payload["stats"]
    machine.page_tables = payload["page_tables"]
    machine.tlbs = payload["tlbs"]
    machine.access_counters = payload["access_counters"]
    machine.capacity = payload["capacity"]
    machine.topology = payload["topology"]
    machine.driver = payload["driver"]
    machine.policy = payload["policy"]
    machine.clocks = list(payload["clocks"])
    machine.l2_miss_policy_counts = payload["l2_miss_policy_counts"]
    machine._allocated = set(payload["allocated"])
    return payload


# -- per-run session -------------------------------------------------------


class MemoSession:
    """One run's binding to a :class:`~repro.sim.sweep.PhaseMemo`.

    Created by :meth:`PhaseMemo.session` with the run's full identity
    already hashed into ``base_key``; the machine drives it through
    :meth:`resume` (once, before the phase loop), :meth:`after_phase`
    (every boundary) and :meth:`finish` (after the loop).
    """

    def __init__(self, memo, base_key: str, cohort_key: str,
                 label: str) -> None:
        self.memo = memo
        self.base_key = base_key
        self.cohort_key = cohort_key
        self.label = label
        #: Decision digest per completed phase (preloaded on resume).
        self.chain: list[str] = []
        #: Phases skipped via snapshot resume (None = cold start).
        self.resumed_at: int | None = None
        self._bounds: frozenset | None = None
        self._prefix: list[str] | None = None

    def _setup(self, trace) -> None:
        if self._prefix is None:
            self._prefix = trace_prefix_chain(trace)
            self._bounds = frozenset(snapshot_boundaries(len(trace.phases)))

    def _key(self, n_done: int) -> str:
        return phase_key(self.base_key, n_done, self._prefix[n_done])

    def resume(self, machine: "Machine"):
        """Deepest usable snapshot, installed; ``None`` for a cold start.

        Probes stored boundaries deepest-first; a corrupt snapshot is
        quarantined and the next-shallower one is tried, so damage only
        ever costs re-simulation, never correctness.

        Returns ``(start_index, now, phases)`` on a hit.
        """
        trace = machine.trace
        if len(trace.phases) < 2:
            return None
        self._setup(trace)
        for boundary in sorted(self._bounds, reverse=True):
            n_done = boundary + 1
            key = self._key(n_done)
            blob = self.memo.get(key)
            if blob is None:
                continue
            try:
                payload = restore(machine, blob, expect_index=boundary)
            except SnapshotError:
                self.memo.discard(key, corrupt=True)
                continue
            self.chain = list(payload["chain"])
            self.resumed_at = n_done
            self.memo.note_hit(n_done)
            return n_done, payload["now"], list(payload["phases"])
        self.memo.note_miss()
        return None

    def after_phase(self, machine: "Machine", index: int, now: float,
                    phases: list) -> None:
        """Record phase ``index``'s decision digest; snapshot if selected."""
        self._setup(machine.trace)
        self.chain.append(decision_digest(machine.page_tables))
        if index in self._bounds:
            key = self._key(index + 1)
            if not self.memo.contains(key):
                self.memo.put(
                    key, capture(machine, index, now, phases, self.chain)
                )

    def finish(self, machine: "Machine") -> None:
        """Register the completed decision chain for lane/fork accounting."""
        self.memo.lanes.record(
            self.cohort_key, self.label, self.chain,
            resumed_phases=self.resumed_at or 0,
        )
