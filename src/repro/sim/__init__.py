"""Trace-driven multi-GPU simulator."""

from repro.sim.machine import Machine, simulate
from repro.sim.results import PhaseResult, SimulationResult

__all__ = ["Machine", "PhaseResult", "SimulationResult", "simulate"]
