"""The multi-GPU machine: assembles all components and replays traces.

:class:`Machine` wires together the page tables, TLBs, interconnect,
access counters, capacity manager and UVM driver for one simulation run,
attaches a policy engine, and replays a :class:`~repro.workloads.base.Trace`
phase by phase.

Timing model (see DESIGN.md §4): every GPU accumulates latency on its own
clock; overlappable access latency is divided by the memory-level-
parallelism factor while fault stalls are divided by the (much smaller)
fault-parallelism factor and serialize through the driver's FIFO queue.  A
phase ends when the slowest GPU, the driver, and the busiest link have all
drained; clocks re-synchronize at phase boundaries (kernels are barriers).
"""

from __future__ import annotations

import math

from repro.config import HOST, SystemConfig
from repro.engine import StatCounters
from repro.faults import FaultInjector
from repro.interconnect import Topology
from repro.memory import AccessCounterFile, CapacityManager, PageTables
from repro.memory.page import policy_name
from repro.obs.metrics import (
    FAULT_LATENCY_BUCKETS_NS,
    LINK_UTILIZATION_BUCKETS,
    MetricsRegistry,
)
from repro.obs.tracer import NULL_TRACER, Tracer
from repro.policies.base import PolicyEngine
from repro.sim.fastpath import FastReplay
from repro.sim.results import PhaseResult, SimulationResult
from repro.tenancy.accounting import TenancyAccounting
from repro.tlb import TLBHierarchy
from repro.verify.invariants import NULL_VERIFIER, Verifier
from repro.uvm import UVMDriver
from repro.workloads.base import Trace

#: Bytes moved per remote access transaction (GPU cache-line sized).
REMOTE_ACCESS_BYTES = 128


class Machine:
    """One simulated multi-GPU system executing one trace."""

    def __init__(
        self,
        config: SystemConfig,
        trace: Trace,
        policy: PolicyEngine,
        tracer: Tracer | None = None,
        metrics: MetricsRegistry | None = None,
        verifier: Verifier | None = None,
        memo=None,
    ) -> None:
        if trace.n_gpus != config.n_gpus:
            raise ValueError(
                f"trace was generated for {trace.n_gpus} GPUs but the config "
                f"has {config.n_gpus}"
            )
        if trace.page_size != config.page_size:
            raise ValueError(
                f"trace page size {trace.page_size} != config page size "
                f"{config.page_size}"
            )
        self.config = config
        self.trace = trace
        self.policy = policy
        self.stats = StatCounters()
        # Observability: the null tracer keeps every hook a single
        # attribute test, so an unobserved run is bit-identical (and
        # fast-path eligible) exactly as before this subsystem existed.
        self.tracer = NULL_TRACER if tracer is None else tracer
        # Verification: the null verifier keeps the phase-boundary hook a
        # single attribute test.  Checks only run at quiescent points, so
        # (unlike observation) a real verifier does NOT disable the
        # vectorized fast path — verified runs stay bit-identical.
        self.verifier = NULL_VERIFIER if verifier is None else verifier
        self.metrics = metrics
        if metrics is not None:
            metrics.bind_stats(self.stats)
        self._obs_on = self.tracer.enabled or metrics is not None
        # Hot-path caches for observed runs: per-GPU track names and the
        # fault-latency histogram, resolved once instead of per fault.
        self._gpu_tracks = tuple(f"gpu{g}" for g in range(config.n_gpus))
        self._fault_latencies = (
            metrics.histogram(
                "fault.latency_ns", FAULT_LATENCY_BUCKETS_NS
            ).sink()
            if metrics is not None
            else None
        )
        # Faults are the hottest event (one per serviced fault): emit
        # through per-GPU columnar sinks rather than per-event objects.
        self._fault_rows = (
            tuple(
                self.tracer.sink(
                    track, "fault",
                    ("page", "protection", "write", "object", "stall_ns"),
                )
                for track in self._gpu_tracks
            )
            if self.tracer.enabled
            else None
        )
        # Multi-tenant attribution: only merged traces carrying >= 2
        # tenants build an accounting object.  Solo traces (and the
        # degenerate single-tenant mix, which attaches no tenant
        # metadata) keep it None, so every hook below stays a single
        # attribute test and solo results are bit-identical.
        tenants = getattr(trace, "tenants", None)
        self._tenancy = (
            TenancyAccounting(trace) if tenants and len(tenants) >= 2
            else None
        )
        coherent = not getattr(policy, "requires_incoherent_page_tables", False)
        self.page_tables = PageTables(
            n_pages=trace.n_pages,
            n_gpus=config.n_gpus,
            initial_placement=config.initial_placement,
            first_page=trace.first_page,
            coherent=coherent,
        )
        self.topology = Topology(
            config.n_gpus, config.latency, stats=self.stats,
            tracer=self.tracer,
        )
        self.tlbs = [
            TLBHierarchy(config.l1_tlb, config.l2_tlb, config.latency)
            for _ in range(config.n_gpus)
        ]
        self.access_counters = AccessCounterFile(
            n_gpus=config.n_gpus,
            pages_per_group=config.pages_per_counter_group,
            threshold=config.access_counter_threshold,
        )
        self.capacity = CapacityManager(
            config.n_gpus, self._capacity_pages_per_gpu()
        )
        self.driver = UVMDriver(
            config=config,
            page_tables=self.page_tables,
            topology=self.topology,
            tlbs=self.tlbs,
            capacity=self.capacity,
            counters=self.access_counters,
            stats=self.stats,
            tracer=self.tracer,
            metrics=self.metrics,
        )
        # Fault injection: an empty (or absent) plan builds no injector at
        # all, so the healthy path stays branch-free and bit-identical.
        plan = config.fault_plan
        if plan is not None and not plan.empty:
            self.injector = FaultInjector(
                plan,
                topology=self.topology,
                page_tables=self.page_tables,
                capacity=self.capacity,
                stats=self.stats,
                n_gpus=config.n_gpus,
                tracer=self.tracer,
            )
        else:
            self.injector = None
        self.driver.injector = self.injector
        if self._tenancy is not None:
            # The driver attributes page movement (migration/duplication
            # bandwidth) to tenants by page; None (the class default)
            # keeps the solo driver path untouched.
            self.driver.tenancy = self._tenancy
        self.clocks = [0.0] * config.n_gpus
        self._fault_keys = [f"fault.by_gpu.{g}" for g in range(config.n_gpus)]
        self._object_fault_keys = [
            f"fault.by_object.{obj.name}" for obj in trace.objects
        ]
        #: Object lookup by page: dense array over the tracked page range.
        self._obj_of_page = self._build_object_map()
        #: L2-TLB-miss counts per policy name (Fig. 23).
        self.l2_miss_policy_counts: dict[str, int] = {}
        self._allocated: set[int] = set()
        policy.attach(self)
        # Vectorized steady-state replayer; None when the run must stay on
        # the per-record path (capacity manager, REPRO_FORCE_SLOW_PATH,
        # an attached tracer/metrics registry, or multi-tenant
        # attribution — per-event observation and per-tenant counters
        # both need the exact per-record path, which is bit-identical
        # anyway).
        self._fast = (
            None if (self._obs_on or self._tenancy is not None)
            else FastReplay.for_machine(self)
        )
        # Phase-prefix memoization (a MemoSession from
        # repro.sim.sweep.PhaseMemo): only healthy, unobserved,
        # multi-phase runs participate.  Observed runs would lose their
        # per-event records across skipped phases, and injected runs'
        # injector state is deliberately outside the snapshot payload.
        # The session still captures boundaries on slow-path runs — its
        # key carries the replay-path flag, so fast and slow prefixes
        # can never cross-pollinate.
        self._memo = (
            memo
            if (
                memo is not None
                and not self._obs_on
                and self.injector is None
                and len(trace.phases) >= 2
            )
            else None
        )

    # -- setup helpers ----------------------------------------------------

    def _capacity_pages_per_gpu(self) -> int | None:
        factor = self.config.oversubscription
        if factor is None:
            return None
        data_pages = sum(o.n_pages for o in self.trace.objects)
        capacity = int(data_pages / (self.config.n_gpus * factor))
        return max(1, capacity)

    def _build_object_map(self) -> list[int]:
        mapping = [-1] * self.trace.n_pages
        base = self.trace.first_page
        for obj in self.trace.objects:
            start = obj.first_page - base
            for i in range(start, start + obj.n_pages):
                mapping[i] = obj.obj_id
        return mapping

    # -- services used by policy engines -------------------------------------

    def object_id_of(self, page: int) -> int:
        """Obj_ID of the object covering ``page`` (-1 if none)."""
        return self._obj_of_page[page - self.trace.first_page]

    def tracks_page(self, page: int) -> bool:
        """True if the page belongs to the traced address range."""
        offset = page - self.trace.first_page
        return 0 <= offset < self.trace.n_pages and self._obj_of_page[offset] >= 0

    def set_all_policy_bits(self, bits: int) -> None:
        """Stamp every object page with the given PTE policy bits."""
        for obj in self.trace.objects:
            self.page_tables.set_policy_range(obj.first_page, obj.n_pages, bits)

    def charge_driver_op(self, gpu: int, service_ns: float) -> None:
        """Run a driver operation (e.g. counter migration) for ``gpu``.

        The operation queues behind other driver work; the GPU observes a
        partially-overlapped stall.
        """
        lat = self.config.latency
        done = self.driver.queue.submit(
            self.clocks[gpu], lat.fault_driver_occupancy_ns + service_ns
        )
        stall = done - self.clocks[gpu]
        self.clocks[gpu] += stall / lat.fault_parallelism

    # -- the access path -------------------------------------------------------

    def access(self, gpu: int, page: int, is_write: bool, weight: int) -> None:
        """Replay one trace record: ``weight`` accesses by ``gpu`` to ``page``."""
        lat = self.config.latency
        pt = self.page_tables
        clocks = self.clocks
        ten = self._tenancy
        if ten is None:
            ti = -1
            t_start = 0.0
        else:
            # Per-tenant attribution (multi-tenant traces only): resolve
            # the owning tenant once and bracket the record with clock
            # reads so contention stalls land on the tenant that paid
            # them.  Adds no floating-point work on the solo path.
            ti = ten.index_of(page)
            t_start = clocks[gpu]
        clocks[gpu] += weight * lat.compute_ns_per_access
        if self.capacity.enabled:
            self.capacity.note_access(gpu, page)
        tlb = self.tlbs[gpu]
        if not pt.is_mapped(gpu, page):
            # Translation fails after a full TLB + walk attempt: page fault.
            cost_ns, l2_miss = tlb.translate_fast(page)
            if l2_miss:
                self._note_l2_miss(page)
            if ti >= 0:
                self.stats.add(ten.lookup_keys[ti])
                if l2_miss:
                    self.stats.add(ten.walk_keys[ti])
            clocks[gpu] += cost_ns / lat.mem_parallelism
            self._fault(gpu, page, is_write, protection=False)
            weight -= 1
            if weight <= 0:
                if ti >= 0:
                    self.stats.add(
                        ten.busy_keys[ti][gpu], clocks[gpu] - t_start
                    )
                return
            # Remaining accesses in the record proceed with the new mapping.
        cost, l2_miss = tlb.translate_fast(page)
        if l2_miss:
            self._note_l2_miss(page)
        if ti >= 0:
            self.stats.add(ten.lookup_keys[ti])
            if l2_miss:
                self.stats.add(ten.walk_keys[ti])
        if pt.has_copy(gpu, page):
            if is_write and not pt.is_writable(gpu, page):
                # Write to a read-only duplicate: page-protection fault,
                # then the remaining accesses are local writes.
                clocks[gpu] += cost / lat.mem_parallelism
                self._fault(gpu, page, is_write=True, protection=True)
                cost = 0.0
            cost += lat.local_access_ns * weight
            clocks[gpu] += cost / lat.mem_parallelism
            self.stats.add("access.local", weight)
            if ti >= 0:
                self.stats.add(ten.local_keys[ti], weight)
        else:
            owner = pt.location(page)
            if owner == HOST:
                per_access = lat.host_access_ns
                self.stats.add("access.host", weight)
                if ti >= 0:
                    self.stats.add(ten.host_keys[ti], weight)
            else:
                per_access = lat.remote_access_ns
                self.stats.add("access.remote", weight)
                if ti >= 0:
                    self.stats.add(ten.remote_keys[ti], weight)
            clocks[gpu] += cost / lat.mem_parallelism
            clocks[gpu] += per_access * weight / lat.remote_parallelism
            if owner != gpu:
                self.topology.record_transfer(
                    gpu, owner, REMOTE_ACCESS_BYTES * weight
                )
            if self.injector is not None and self.injector.is_degraded(gpu, page):
                # Zero-copy fallback after a blocked install: the page is
                # pinned remote by the fault, so the policy (which may not
                # even implement remote-access handling) is not consulted.
                self.stats.add("access.degraded", weight)
            else:
                self.policy.on_remote_access(gpu, page, is_write, weight)
        if ti >= 0:
            self.stats.add(ten.busy_keys[ti][gpu], clocks[gpu] - t_start)

    def _note_l2_miss(self, page: int) -> None:
        name = policy_name(self.page_tables.policy(page))
        counts = self.l2_miss_policy_counts
        counts[name] = counts.get(name, 0) + 1

    def _fault(self, gpu: int, page: int, is_write: bool, protection: bool) -> None:
        lat = self.config.latency
        self.stats.add(self._fault_keys[gpu])
        obj_id = self._obj_of_page[page - self.trace.first_page]
        if obj_id >= 0:
            self.stats.add(self._object_fault_keys[obj_id])
        if protection:
            self.stats.add("fault.protection")
            resolution = self.policy.on_protection_fault(gpu, page)
        else:
            self.stats.add("fault.page")
            resolution = self.policy.on_fault(gpu, page, is_write)
        # The driver CPU is occupied for its (batched) per-fault share plus
        # the resolution work; the GPU additionally pays the fault round
        # trip, partially overlapped with other wavefronts.
        service = lat.fault_driver_occupancy_ns + resolution
        ten = self._tenancy
        if ten is not None:
            ti = ten.index_of(page)
            if ti >= 0:
                self.stats.add(
                    ten.fault_prot_keys[ti] if protection
                    else ten.fault_page_keys[ti]
                )
                self.stats.add(ten.occupancy_keys[ti], service)
        done = self.driver.queue.submit(self.clocks[gpu], service)
        stall = (done - self.clocks[gpu]) + lat.fault_service_ns
        charged = stall / lat.fault_parallelism
        if self._obs_on:
            # The sink row carries the stall, so the latency histogram is
            # derived from it at end of run (_flush_observations); only a
            # registry without a tracer observes live.
            if self._fault_rows is not None:
                self._fault_rows[gpu].append(
                    (self.clocks[gpu], page, protection, is_write, obj_id,
                     charged)
                )
            elif self._fault_latencies is not None:
                self._fault_latencies.append(charged)
        self.clocks[gpu] += charged

    # -- run loop -------------------------------------------------------------

    def run(self) -> SimulationResult:
        """Replay every phase and return the result."""
        phases: list[PhaseResult] = []
        now = 0.0
        tracer = self.tracer
        tracing = tracer.enabled
        verifier = self.verifier
        replayed = 0
        span_tracks: list[str] = []
        if tracing:
            span_tracks = [
                f"gpu{g}" for g in range(self.config.n_gpus)
            ] + ["driver"]
            run_args = {
                "workload": self.trace.name,
                "policy": self.policy.name,
            }
            for track in span_tracks:
                tracer.begin_span(track, "run", 0.0, run_args)
        start_index = 0
        memo = self._memo
        if memo is not None:
            resumed = memo.resume(self)
            if resumed is not None:
                # The snapshot captured the quiescent state after
                # _do_frees at this boundary — exactly what the next
                # iteration starts from — so the loop simply continues.
                start_index, now, phases = resumed
                replayed = sum(
                    p.total_accesses
                    for p in self.trace.phases[:start_index]
                )
        for index in range(start_index, len(self.trace.phases)):
            phase = self.trace.phases[index]
            if tracing:
                self.topology.note_time(now)
            self._do_allocations(index, now)
            if self.injector is not None:
                self.injector.start_phase(index, now, self.driver)
            self.policy.on_phase_start(index, phase)
            if tracing:
                for track in span_tracks:
                    tracer.begin_span(
                        track, phase.name, now,
                        {"phase": index, "explicit": phase.explicit},
                    )
            phase_result = self._run_phase(phase, start_time=now, index=index)
            phases.append(phase_result)
            now += phase_result.duration_ns
            if tracing:
                for track in span_tracks:
                    tracer.end_span(track, now)
            self._sync_clocks(now)
            self._do_frees(index, now)
            if verifier.enabled:
                replayed += phase.total_accesses
                verifier.after_phase(self, index, replayed)
            if memo is not None:
                memo.after_phase(self, index, now, phases)
        if memo is not None:
            memo.finish(self)
        if tracing:
            tracer.finish(now)
        if self._obs_on:
            self._flush_observations()
        result = SimulationResult(
            workload=self.trace.name,
            policy=self.policy.name,
            n_gpus=self.config.n_gpus,
            page_size=self.config.page_size,
            total_time_ns=now,
            phases=phases,
            stats=self.stats.as_dict(),
            traffic=self.topology.traffic_snapshot(),
            policy_histogram=self.page_tables.policy_histogram(),
            l2_miss_policy_counts=dict(self.l2_miss_policy_counts),
            metrics=self._metrics_extra(),
        )
        if verifier.enabled:
            verifier.after_run(self, result)
        return result

    def _flush_observations(self) -> None:
        """Fold deferred per-event observations into the histograms.

        When both a tracer and a registry are attached the hot fault path
        records each fault once (in the per-GPU columnar sinks); the
        latency histogram is derived from those rows here — before the
        sinks are drained for export — instead of being paid per fault.
        """
        if self._fault_rows is not None and self._fault_latencies is not None:
            pend = self._fault_latencies
            for rows in self._fault_rows:
                pend.extend(row[5] for row in rows)
        self.driver.flush_observations()

    def _metrics_extra(self) -> dict | None:
        """Gauges/histograms for the result (None on unobserved runs)."""
        if self.metrics is None:
            return None
        snapshot = self.metrics.snapshot()
        return {
            "gauges": snapshot.gauges,
            "histograms": snapshot.histograms,
        }

    def _do_allocations(self, phase_index: int, now: float = 0.0) -> None:
        for obj in self.trace.objects:
            if obj.alloc_phase == phase_index and obj.obj_id not in self._allocated:
                self._allocated.add(obj.obj_id)
                if self.tracer.enabled:
                    self.tracer.instant(
                        "driver", "alloc", now,
                        {"object": obj.name, "pages": obj.n_pages},
                    )
                self.policy.on_alloc(obj)

    def _do_frees(self, phase_index: int, now: float = 0.0) -> None:
        for obj in self.trace.objects:
            if obj.free_phase == phase_index:
                if self.tracer.enabled:
                    self.tracer.instant(
                        "driver", "free", now, {"object": obj.name}
                    )
                self.policy.on_free(obj)

    def _run_phase(self, phase, start_time: float, index: int = 0) -> PhaseResult:
        link_busy_before = [link.busy_time_ns for link in self.topology.links()]
        driver_busy_before = self.driver.queue.busy_time
        # The vectorized path is exact only on a healthy machine; once the
        # first fault phase is reached every record goes through the exact
        # per-record path (bit-identical to REPRO_FORCE_SLOW_PATH=1).
        fast_ok = self._fast is not None and (
            self.injector is None or self.injector.fast_path_allowed(index)
        )
        if fast_ok:
            self._fast.run_phase(phase)
        else:
            access = self.access
            for gpu, page, write, weight in phase.records():
                access(gpu, page, bool(write), weight)
        gpu_busy = max(
            (clock - start_time for clock in self.clocks), default=0.0
        )
        gpu_busy = max(gpu_busy, 0.0)
        driver_busy = self.driver.queue.busy_time - driver_busy_before
        link_busy = max(
            (
                after.busy_time_ns - before
                for after, before in zip(self.topology.links(), link_busy_before)
            ),
            default=0.0,
        )
        duration = max(gpu_busy, driver_busy, link_busy)
        if not math.isfinite(duration):
            raise RuntimeError(f"non-finite phase duration in {phase.name!r}")
        if self._obs_on and duration > 0.0:
            self._sample_phase(
                start_time, duration, link_busy_before, driver_busy
            )
        return PhaseResult(
            name=phase.name,
            explicit=phase.explicit,
            duration_ns=duration,
            gpu_busy_ns=gpu_busy,
            driver_busy_ns=driver_busy,
            link_busy_ns=link_busy,
        )

    def _sample_phase(
        self,
        start_ns: float,
        duration_ns: float,
        link_busy_before: list[float],
        driver_busy_ns: float,
    ) -> None:
        """Per-phase utilization samples (tracing/metrics runs only).

        Each link's busy-time delta over the phase becomes a utilization
        sample on its own trace track, a per-link gauge, and one
        observation in the shared utilization histogram; the driver and
        capacity manager get gauges too.  Pure reads — simulation state
        is never touched, so observed runs stay bit-identical.
        """
        end_ns = start_ns + duration_ns
        tracer = self.tracer
        metrics = self.metrics
        for link, before in zip(self.topology.links(), link_busy_before):
            utilization = (link.busy_time_ns - before) / duration_ns
            if tracer.enabled:
                tracer.sample(
                    f"link:{link.name}", "utilization", end_ns, utilization
                )
            if metrics is not None:
                metrics.observe(
                    "link.phase_utilization",
                    utilization,
                    LINK_UTILIZATION_BUCKETS,
                )
                metrics.set_gauge(
                    f"link.{link.name}.utilization", utilization
                )
        if metrics is not None:
            metrics.set_gauge(
                "driver.phase_utilization", driver_busy_ns / duration_ns
            )
            for gpu, resident in enumerate(
                self.capacity.pressure_snapshot()
            ):
                metrics.set_gauge(
                    f"capacity.gpu{gpu}.resident_pages", resident
                )

    def _sync_clocks(self, now: float) -> None:
        """Kernel boundaries are barriers: everyone meets at ``now``."""
        for gpu in range(self.config.n_gpus):
            self.clocks[gpu] = now
        if self.driver.queue.free_at < now:
            self.driver.queue.submit(now, 0.0)


def simulate(
    config: SystemConfig,
    trace: Trace,
    policy: PolicyEngine,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    verifier: Verifier | None = None,
    memo=None,
) -> SimulationResult:
    """Convenience wrapper: build a machine, run it, return the result.

    Pass a :class:`~repro.obs.RecordingTracer` and/or a
    :class:`~repro.obs.MetricsRegistry` to observe the run; both default
    to off, which keeps the vectorized fast path engaged and the result
    bit-identical to an unobserved run.  Pass a
    :class:`~repro.verify.invariants.InvariantVerifier` to check
    machine-wide invariants at every phase boundary (quiescent-point
    checks: the fast path stays engaged and the result is unchanged).
    Pass a :class:`~repro.sim.snapshot.MemoSession` (from
    :meth:`~repro.sim.sweep.PhaseMemo.session`) to resume from / store
    phase-boundary snapshots — memoized runs are bit-identical to cold
    ones (the ``memo`` differential lane asserts exactly that).
    """
    return Machine(
        config, trace, policy, tracer=tracer, metrics=metrics,
        verifier=verifier, memo=memo,
    ).run()
