"""Page-table state for the whole multi-GPU system.

:class:`PageTables` holds, for every virtual page, the union of what the
paper's three translation structures know:

* the **centralized host page table** (UVM driver): which device currently
  holds the authoritative copy of the page — queried by physical address
  range to classify a fault as private vs shared (Section V-D);
* the **per-GPU local page tables**: which GPUs have a valid PTE for the
  page, whether that PTE grants write permission, and whether it points at
  local or remote memory;
* the OASIS **PTE policy bits** (Fig. 12).

State is stored column-wise in plain Python lists (one entry per global
page index) because the simulator touches single pages on its hot path;
bulk views for analysis are exposed via :meth:`policy_histogram` and
friends.

For the vectorized steady-state replay path the same columns are also
available as numpy arrays (:meth:`bulk_views`).  The arrays are built
lazily on first request and then kept in sync incrementally by every
mutator, so the fast-path eligibility scan is a handful of numpy mask
operations instead of a dict/list probe per trace record.  ``version``
increments on every mutation; the replay loop uses it to know when a
previously computed eligibility mask went stale.

Invariants maintained by the mutators (checked by :meth:`check_invariants`):

* if ``owner`` is a GPU, that GPU is in the copy set;
* a GPU with a *local* mapping holds a copy;
* write permission is exclusive: at most one device may be writable, and a
  writable page has no other copies (no stale duplicates);
* ``writable`` implies ``mapped``.
"""

from __future__ import annotations

import numpy as np

from repro.config import HOST
from repro.memory.page import POLICY_ON_TOUCH


class PageTables:
    """Unified page-table state, indexed by global virtual page number."""

    def __init__(
        self,
        n_pages: int,
        n_gpus: int,
        initial_placement: str = "host",
        first_page: int = 0,
        coherent: bool = True,
    ) -> None:
        """Create page-table state.

        Args:
            n_pages: number of tracked pages.
            n_gpus: number of GPUs.
            initial_placement: ``"host"`` or ``"distributed"``.
            first_page: global index of the first tracked page.
            coherent: when False, write exclusivity is not enforced — used
                only by the hypothetical Ideal policy, which keeps multiple
                writable copies with no coherence.
        """
        if n_pages < 0:
            raise ValueError("n_pages must be non-negative")
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if initial_placement not in ("host", "distributed"):
            raise ValueError(f"bad initial placement {initial_placement!r}")
        self._n_pages = n_pages
        self._n_gpus = n_gpus
        self._first_page = first_page
        self._coherent = coherent
        if initial_placement == "host":
            self._owner = [HOST] * n_pages
            self._copy_mask = [0] * n_pages
        else:
            # Round-robin pages across GPUs (Fig. 21 sensitivity study).
            self._owner = [(first_page + i) % n_gpus for i in range(n_pages)]
            self._copy_mask = [1 << o for o in self._owner]
        self._mapped_mask = [0] * n_pages
        self._writable_mask = [0] * n_pages
        self._policy = [POLICY_ON_TOUCH] * n_pages
        #: Bumped on every mutation; consumers cache derived state per version.
        self.version = 0
        self._views: dict[str, np.ndarray] | None = None

    # -- geometry ---------------------------------------------------------

    @property
    def n_pages(self) -> int:
        return self._n_pages

    @property
    def n_gpus(self) -> int:
        return self._n_gpus

    def _idx(self, page: int) -> int:
        idx = page - self._first_page
        if not 0 <= idx < self._n_pages:
            raise IndexError(f"page {page} outside tracked range")
        return idx

    # -- bulk numpy views ---------------------------------------------------

    def bulk_views(self) -> dict[str, np.ndarray]:
        """Numpy mirrors of the per-page columns for vectorized scans.

        Returns arrays indexed by ``page - first_page``: ``owner`` (device
        ids), ``copies`` / ``mapped`` / ``writable`` (per-GPU bitmasks) and
        ``policy`` (PTE policy bits), all int64.  Built lazily on first
        call, then updated in place by every mutator — callers must treat
        them as read-only and re-check :attr:`version` to detect staleness
        of anything they derived from them.
        """
        if self._views is None:
            self._views = {
                "owner": np.array(self._owner, dtype=np.int64),
                "copies": np.array(self._copy_mask, dtype=np.int64),
                "mapped": np.array(self._mapped_mask, dtype=np.int64),
                "writable": np.array(self._writable_mask, dtype=np.int64),
                "policy": np.array(self._policy, dtype=np.int64),
            }
        return self._views

    def _sync_page(self, idx: int) -> None:
        """Refresh the numpy mirrors for one page after a mutation."""
        self.version += 1
        views = self._views
        if views is not None:
            views["owner"][idx] = self._owner[idx]
            views["copies"][idx] = self._copy_mask[idx]
            views["mapped"][idx] = self._mapped_mask[idx]
            views["writable"][idx] = self._writable_mask[idx]
            views["policy"][idx] = self._policy[idx]

    def bulk_install_exclusive(
        self, idxs: np.ndarray, gpus: np.ndarray
    ) -> None:
        """Fast-path batch of ``set_exclusive`` + ``map_local(writable)``.

        Only valid for previously *virgin* pages (host owner, no copies,
        no mappings) — the caller proves that before batching, which is
        what makes the result identical to per-page mutator calls.
        """
        owner = self._owner
        copies = self._copy_mask
        mapped = self._mapped_mask
        writable = self._writable_mask
        for idx, gpu in zip(idxs.tolist(), gpus.tolist()):
            bit = 1 << gpu
            owner[idx] = gpu
            copies[idx] = bit
            mapped[idx] = bit
            writable[idx] = bit
        self.version += 1
        views = self._views
        if views is not None and len(idxs):
            bits = np.left_shift(np.int64(1), gpus)
            views["owner"][idxs] = gpus
            views["copies"][idxs] = bits
            views["mapped"][idxs] = bits
            views["writable"][idxs] = bits

    def bulk_install_duplicate(
        self, idxs: np.ndarray, gpus: np.ndarray
    ) -> None:
        """Fast-path batch of ``add_copy`` + ``map_local(read-only)``.

        Only valid for virgin pages; the owner (the host) keeps the
        authoritative copy and the requester gets a read-only duplicate,
        exactly as ``UVMDriver.duplicate`` leaves a first-touch page.
        """
        copies = self._copy_mask
        mapped = self._mapped_mask
        for idx, gpu in zip(idxs.tolist(), gpus.tolist()):
            bit = 1 << gpu
            copies[idx] = bit
            mapped[idx] = bit
        self.version += 1
        views = self._views
        if views is not None and len(idxs):
            bits = np.left_shift(np.int64(1), gpus)
            views["copies"][idxs] = bits
            views["mapped"][idxs] = bits

    # -- host page table (centralized) -------------------------------------

    def location(self, page: int) -> int:
        """Device holding the authoritative copy (the host PT lookup)."""
        return self._owner[self._idx(page)]

    def is_host_resident(self, page: int) -> bool:
        """True if the authoritative copy lives in host CPU memory."""
        return self._owner[self._idx(page)] == HOST

    def copy_holders(self, page: int) -> list[int]:
        """GPUs currently holding a copy of the page's data."""
        mask = self._copy_mask[self._idx(page)]
        return [g for g in range(self._n_gpus) if mask >> g & 1]

    def has_copy(self, gpu: int, page: int) -> bool:
        """True if ``gpu`` holds the page's data in its local memory."""
        return bool(self._copy_mask[self._idx(page)] >> gpu & 1)

    def is_duplicated(self, page: int) -> bool:
        """True if more than one device holds the page's data."""
        idx = self._idx(page)
        mask = self._copy_mask[idx]
        n_copies = mask.bit_count()
        if self._owner[idx] == HOST:
            n_copies += 1
        return n_copies > 1

    # -- per-GPU local page tables -----------------------------------------

    def is_mapped(self, gpu: int, page: int) -> bool:
        """True if ``gpu``'s local page table holds a valid PTE."""
        return bool(self._mapped_mask[self._idx(page)] >> gpu & 1)

    def is_writable(self, gpu: int, page: int) -> bool:
        """True if ``gpu``'s PTE grants write permission."""
        return bool(self._writable_mask[self._idx(page)] >> gpu & 1)

    def mapped_gpus(self, page: int) -> list[int]:
        """GPUs with a valid PTE for the page."""
        mask = self._mapped_mask[self._idx(page)]
        return [g for g in range(self._n_gpus) if mask >> g & 1]

    def map_local(self, gpu: int, page: int, writable: bool) -> None:
        """Install a PTE pointing at the GPU's own copy."""
        idx = self._idx(page)
        if not self._copy_mask[idx] >> gpu & 1:
            raise ValueError(
                f"GPU {gpu} has no local copy of page {page}; cannot map local"
            )
        bit = 1 << gpu
        self._mapped_mask[idx] |= bit
        if writable:
            self._writable_mask[idx] |= bit
        else:
            self._writable_mask[idx] &= ~bit
        self._sync_page(idx)

    def map_remote(self, gpu: int, page: int) -> None:
        """Install a PTE pointing at the remote authoritative copy."""
        idx = self._idx(page)
        bit = 1 << gpu
        if self._copy_mask[idx] >> gpu & 1:
            raise ValueError(
                f"GPU {gpu} holds page {page} locally; use map_local"
            )
        self._mapped_mask[idx] |= bit
        self._writable_mask[idx] &= ~bit
        self._sync_page(idx)

    def unmap(self, gpu: int, page: int) -> bool:
        """Invalidate ``gpu``'s PTE; returns True if it was valid."""
        idx = self._idx(page)
        bit = 1 << gpu
        was = bool(self._mapped_mask[idx] & bit)
        self._mapped_mask[idx] &= ~bit
        self._writable_mask[idx] &= ~bit
        self._sync_page(idx)
        return was

    def unmap_all_except(self, page: int, keep: int | None = None) -> list[int]:
        """Invalidate every GPU PTE except ``keep``'s; returns shot-down GPUs."""
        idx = self._idx(page)
        mask = self._mapped_mask[idx]
        victims = [
            g for g in range(self._n_gpus) if (mask >> g & 1) and g != keep
        ]
        keep_bit = 0 if keep is None else (mask & (1 << keep))
        self._mapped_mask[idx] = keep_bit
        self._writable_mask[idx] &= keep_bit
        self._sync_page(idx)
        return victims

    # -- data movement ------------------------------------------------------

    def set_exclusive(self, page: int, device: int) -> None:
        """Make ``device`` the sole holder of the page's data.

        Mappings are not touched; callers invalidate stale PTEs first via
        :meth:`unmap_all_except` (that is where shootdown costs come from).
        """
        idx = self._idx(page)
        self._owner[idx] = device
        self._copy_mask[idx] = 0 if device == HOST else (1 << device)
        self._sync_page(idx)

    def add_copy(self, gpu: int, page: int) -> None:
        """Record a duplicate of the page on ``gpu``.

        In coherent mode (the default) duplicating strips write permission
        everywhere — a duplicated page can have no writer.
        """
        idx = self._idx(page)
        self._copy_mask[idx] |= 1 << gpu
        if self._coherent:
            self._writable_mask[idx] = 0
        self._sync_page(idx)

    def drop_copy(self, gpu: int, page: int) -> None:
        """Discard ``gpu``'s duplicate (PTE must be unmapped separately)."""
        idx = self._idx(page)
        if self._owner[idx] == gpu:
            raise ValueError(f"cannot drop the owner copy of page {page}")
        self._copy_mask[idx] &= ~(1 << gpu)
        self._sync_page(idx)

    # -- PTE policy bits -----------------------------------------------------

    def policy(self, page: int) -> int:
        """PTE policy bits of ``page``."""
        return self._policy[self._idx(page)]

    def set_policy(self, page: int, bits: int) -> None:
        """Set the PTE policy bits of one page."""
        idx = self._idx(page)
        self._policy[idx] = bits
        self._sync_page(idx)

    def set_policy_range(self, first_page: int, n_pages: int, bits: int) -> None:
        """Set the policy bits of a contiguous page range (object-wide)."""
        start = self._idx(first_page)
        stop = start + n_pages
        if stop > self._n_pages:
            raise IndexError("policy range extends past tracked pages")
        self._policy[start:stop] = [bits] * n_pages
        self.version += 1
        if self._views is not None:
            self._views["policy"][start:stop] = bits

    def policy_histogram(self) -> dict[int, int]:
        """Count of pages per policy-bit value."""
        hist: dict[int, int] = {}
        for bits in self._policy:
            hist[bits] = hist.get(bits, 0) + 1
        return hist

    # -- validation -----------------------------------------------------------

    def check_invariants(self) -> None:
        """Raise AssertionError if any structural invariant is violated."""
        for idx in range(self._n_pages):
            owner = self._owner[idx]
            copies = self._copy_mask[idx]
            mapped = self._mapped_mask[idx]
            writable = self._writable_mask[idx]
            page = self._first_page + idx
            if owner != HOST:
                assert copies >> owner & 1, (
                    f"page {page}: GPU owner {owner} missing from copy set"
                )
            assert writable & ~mapped == 0, (
                f"page {page}: writable PTE without valid mapping"
            )
            if self._coherent:
                assert writable.bit_count() <= 1, (
                    f"page {page}: multiple writers"
                )
                if writable:
                    n_holders = copies.bit_count() + (1 if owner == HOST else 0)
                    assert n_holders <= 1, (
                        f"page {page}: writable while duplicated"
                    )
            # A local mapping requires a local copy.
            local_mapped = mapped & copies
            # (Remote mappings are mapped bits not in copies.)
            del local_mapped
