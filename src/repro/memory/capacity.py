"""Per-GPU residency tracking and LRU eviction (oversubscription).

When the working set exceeds GPU memory, migrating or duplicating a page
into a full GPU first evicts the least-recently-used resident page back to
host memory (Fig. 25 studies OASIS under 150% oversubscription).

:class:`CapacityManager` tracks which pages are resident on each GPU in
recency order.  Python dicts preserve insertion order, so an LRU list is a
dict whose entries are re-inserted on touch; the LRU victim is the first
key.
"""

from __future__ import annotations


class CapacityManager:
    """LRU residency lists with fixed per-GPU page capacity."""

    def __init__(self, n_gpus: int, capacity_pages: int | None) -> None:
        """Create a manager.

        Args:
            n_gpus: number of GPUs.
            capacity_pages: per-GPU capacity in pages, or ``None`` for
                unlimited (capacity modelling disabled).
        """
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if capacity_pages is not None and capacity_pages < 1:
            raise ValueError("capacity must be >= 1 page")
        self._capacity = capacity_pages
        self._lru: list[dict[int, None]] = [dict() for _ in range(n_gpus)]
        #: Frames flagged bad by fault injection; ``None`` until the first
        #: retirement so the healthy-path methods stay branch-free.
        self._retired: set[tuple[int, int]] | None = None

    @property
    def enabled(self) -> bool:
        """True when a finite capacity is being enforced."""
        return self._capacity is not None

    @property
    def capacity_pages(self) -> int | None:
        return self._capacity

    def resident_count(self, gpu: int) -> int:
        """Number of pages currently resident on ``gpu``."""
        return len(self._lru[gpu])

    def is_resident(self, gpu: int, page: int) -> bool:
        return page in self._lru[gpu]

    def resident_pages(self, gpu: int) -> set[int]:
        """The pages currently resident on ``gpu`` (for audits/reports)."""
        return set(self._lru[gpu])

    def mark_retired(self, gpu: int, page: int) -> None:
        """Flag ``gpu``'s frame for ``page`` as ECC-retired (permanent)."""
        if self._retired is None:
            self._retired = set()
        self._retired.add((gpu, page))

    def is_retired(self, gpu: int, page: int) -> bool:
        """True when the frame has been retired by fault injection."""
        return self._retired is not None and (gpu, page) in self._retired

    def note_resident(self, gpu: int, page: int) -> None:
        """Record that ``page`` now occupies a frame on ``gpu`` (MRU)."""
        if self._retired is not None and (gpu, page) in self._retired:
            raise RuntimeError(
                f"page {page} installed on GPU {gpu}'s retired frame"
            )
        lru = self._lru[gpu]
        lru.pop(page, None)
        lru[page] = None

    def note_access(self, gpu: int, page: int) -> None:
        """Refresh recency of a resident page; no-op if absent."""
        lru = self._lru[gpu]
        if page in lru:
            del lru[page]
            lru[page] = None

    def note_released(self, gpu: int, page: int) -> None:
        """Record that ``page`` no longer occupies a frame on ``gpu``."""
        self._lru[gpu].pop(page, None)

    def at_capacity(self, gpu: int) -> bool:
        """True if accepting one more page would force an eviction."""
        if self._capacity is None:
            return False
        return len(self._lru[gpu]) >= self._capacity

    def needs_eviction(self, gpu: int) -> bool:
        """True if ``gpu`` is over capacity."""
        if self._capacity is None:
            return False
        return len(self._lru[gpu]) > self._capacity

    def pick_victim(self, gpu: int, protect: int | None = None) -> int:
        """LRU-resident page on ``gpu``, skipping ``protect``.

        Raises:
            LookupError: if no evictable page exists.
        """
        for page in self._lru[gpu]:
            if page != protect:
                return page
        raise LookupError(f"GPU {gpu} has no evictable page")

    def pressure_snapshot(self) -> list[int]:
        """Per-GPU resident-page counts (for metrics gauges)."""
        return [len(lru) for lru in self._lru]

    def reset(self) -> None:
        """Forget all residency and retirements (fresh run)."""
        for lru in self._lru:
            lru.clear()
        self._retired = None
