"""Virtual and physical address-space management.

Two concerns live here:

* :class:`VirtualAllocator` — hands out contiguous, page-aligned virtual
  ranges for objects, mimicking ``cudaMallocManaged``.  Virtual addresses
  stay below bit 48 so the upper pointer bits remain free for the OASIS
  Object Tracker's tag (Fig. 9).

* :class:`DeviceAddressMap` — assigns each device (host CPU and every GPU)
  a disjoint *physical* address range.  The OASIS OP-Controller relies on
  this: "the physical addresses assigned to different GPUs and the host CPU
  are typically distinguished by specific physical address ranges"
  (Section V-D), which is how the host page table classifies a faulting
  page as private (data on host) or shared (data on another GPU).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import HOST

#: Width of the addressable virtual range (Fig. 9: 48 bits).
ADDR_BITS = 48

#: Virtual allocations start here, leaving low memory unused so a null or
#: tiny pointer is never a valid object address.
VA_BASE = 0x1000_0000


@dataclass(frozen=True)
class Allocation:
    """One ``cudaMallocManaged`` result: a page-aligned VA range."""

    base: int
    size: int
    page_size: int

    @property
    def n_pages(self) -> int:
        return (self.size + self.page_size - 1) // self.page_size

    @property
    def first_page(self) -> int:
        return self.base // self.page_size

    @property
    def last_page(self) -> int:
        """Inclusive index of the allocation's final page."""
        return self.first_page + self.n_pages - 1

    @property
    def end(self) -> int:
        """One past the final byte of the backed range (page aligned)."""
        return self.base + self.n_pages * self.page_size

    def pages(self) -> range:
        """Global page indices covered by this allocation."""
        return range(self.first_page, self.first_page + self.n_pages)

    def contains(self, vaddr: int) -> bool:
        return self.base <= vaddr < self.end


class VirtualAllocator:
    """Sequential, page-aligned virtual-address allocator."""

    def __init__(self, page_size: int, base: int = VA_BASE) -> None:
        if page_size <= 0 or page_size & (page_size - 1):
            raise ValueError("page_size must be a positive power of two")
        if base % page_size:
            base = (base + page_size - 1) // page_size * page_size
        self._page_size = page_size
        self._next = base
        self._allocations: list[Allocation] = []

    @property
    def page_size(self) -> int:
        return self._page_size

    @property
    def allocations(self) -> tuple[Allocation, ...]:
        return tuple(self._allocations)

    @property
    def total_pages(self) -> int:
        """Total pages across all allocations."""
        return sum(a.n_pages for a in self._allocations)

    @property
    def highest_page(self) -> int:
        """One past the highest allocated page index (array sizing)."""
        return self._next // self._page_size

    def alloc(self, size: int) -> Allocation:
        """Allocate ``size`` bytes, rounded up to whole pages."""
        if size <= 0:
            raise ValueError("allocation size must be positive")
        n_pages = (size + self._page_size - 1) // self._page_size
        base = self._next
        end = base + n_pages * self._page_size
        if end >= (1 << ADDR_BITS):
            raise MemoryError("virtual address space exhausted (48-bit range)")
        self._next = end
        allocation = Allocation(base, size, self._page_size)
        self._allocations.append(allocation)
        return allocation

    def find(self, vaddr: int) -> Allocation | None:
        """The allocation containing ``vaddr``, or None."""
        # Allocations are sorted by base; binary search.
        lo, hi = 0, len(self._allocations)
        while lo < hi:
            mid = (lo + hi) // 2
            alloc = self._allocations[mid]
            if vaddr < alloc.base:
                hi = mid
            elif vaddr >= alloc.end:
                lo = mid + 1
            else:
                return alloc
        return None


class DeviceAddressMap:
    """Disjoint physical address ranges, one per device.

    The range for device ``d`` covers ``[range_base(d), range_base(d) +
    range_size)``.  ``device_of(paddr)`` inverts the mapping — exactly the
    range check the UVM driver performs to tell where a page's data lives.
    """

    def __init__(self, n_gpus: int, bytes_per_device: int) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if bytes_per_device <= 0:
            raise ValueError("bytes_per_device must be positive")
        self._n_gpus = n_gpus
        self._size = bytes_per_device
        # Order: host first, then GPUs 0..n-1.
        self._order = [HOST, *range(n_gpus)]
        self._base = {
            dev: idx * bytes_per_device for idx, dev in enumerate(self._order)
        }

    @property
    def bytes_per_device(self) -> int:
        return self._size

    def range_base(self, device: int) -> int:
        """Base physical address of ``device``'s memory."""
        try:
            return self._base[device]
        except KeyError:
            raise ValueError(f"unknown device id {device}") from None

    def physical_address(self, device: int, offset: int) -> int:
        """Physical address of byte ``offset`` within ``device``'s memory."""
        if not 0 <= offset < self._size:
            raise ValueError(f"offset {offset} outside device memory")
        return self.range_base(device) + offset

    def device_of(self, paddr: int) -> int:
        """Which device owns physical address ``paddr`` (range check)."""
        idx = paddr // self._size
        if not 0 <= idx < len(self._order) or paddr < 0:
            raise ValueError(f"physical address {paddr:#x} maps to no device")
        return self._order[idx]

    def is_host(self, paddr: int) -> bool:
        """True if ``paddr`` lies in host CPU memory."""
        return self.device_of(paddr) == HOST
