"""Hardware access counters for counter-based migration.

NVIDIA Volta-class GPUs count *remote* accesses per 64 KB page group and
migrate the group once a threshold (256 in the driver the paper cites) is
reached.  :class:`AccessCounterFile` models one counter per
``(gpu, page group)`` pair, stored sparsely — only groups that actually see
remote traffic allocate a counter.
"""

from __future__ import annotations


class AccessCounterFile:
    """Per-(GPU, page-group) remote access counters."""

    def __init__(self, n_gpus: int, pages_per_group: int, threshold: int) -> None:
        if n_gpus < 1:
            raise ValueError("need at least one GPU")
        if pages_per_group < 1:
            raise ValueError("pages_per_group must be >= 1")
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        self._n_gpus = n_gpus
        self._pages_per_group = pages_per_group
        self._threshold = threshold
        self._counts: dict[int, int] = {}

    @property
    def threshold(self) -> int:
        return self._threshold

    @property
    def pages_per_group(self) -> int:
        return self._pages_per_group

    @property
    def n_gpus(self) -> int:
        return self._n_gpus

    def group_of(self, page: int) -> int:
        """Counter group covering ``page``."""
        return page // self._pages_per_group

    def _key(self, gpu: int, group: int) -> int:
        return group * self._n_gpus + gpu

    def count(self, gpu: int, page: int) -> int:
        """Current remote-access count of ``gpu`` for ``page``'s group."""
        return self._counts.get(self._key(gpu, self.group_of(page)), 0)

    def record_remote(self, gpu: int, page: int) -> bool:
        """Count one remote access; returns True if the threshold is hit.

        On a threshold hit the counter resets (the hardware notification
        fires once and migration follows).
        """
        key = self._key(gpu, self.group_of(page))
        value = self._counts.get(key, 0) + 1
        if value >= self._threshold:
            self._counts.pop(key, None)
            return True
        self._counts[key] = value
        return False

    def record_remote_bulk(self, gpu: int, page: int, weight: int) -> bool:
        """Count ``weight`` remote accesses at once; True on threshold hit.

        Equivalent to ``weight`` calls to :meth:`record_remote` except the
        trip can only fire once (the caller migrates the group right
        after, which resets the counters anyway).
        """
        if weight < 1:
            raise ValueError("weight must be >= 1")
        key = self._key(gpu, self.group_of(page))
        value = self._counts.get(key, 0) + weight
        if value >= self._threshold:
            self._counts.pop(key, None)
            return True
        self._counts[key] = value
        return False

    def count_by_key(self, key: int) -> int:
        """Current count for a raw ``group * n_gpus + gpu`` key.

        The vectorized replay path computes keys in bulk with numpy using
        the same formula as :meth:`_key`; this reader and
        :meth:`add_bulk_below_threshold` let it prove and apply
        trip-free batches without re-deriving (gpu, page) pairs.
        """
        return self._counts.get(key, 0)

    def add_bulk_below_threshold(self, key: int, weight: int) -> None:
        """Add pre-validated accesses that provably cannot trip.

        Equivalent to the same total weight of :meth:`record_remote` calls
        when the caller has already proven the threshold is unreachable;
        raises if the proof was wrong rather than silently skipping the
        migration a per-record replay would have performed.
        """
        value = self._counts.get(key, 0) + weight
        if value >= self._threshold:
            raise RuntimeError(
                f"bulk counter add crossed the threshold (key={key})"
            )
        self._counts[key] = value

    def reset_group(self, page: int) -> None:
        """Clear every GPU's counter for ``page``'s group (after migration)."""
        group = self.group_of(page)
        base = group * self._n_gpus
        for gpu in range(self._n_gpus):
            self._counts.pop(base + gpu, None)

    def reset_all(self) -> None:
        """Drop all counters."""
        self._counts.clear()

    @property
    def active_counters(self) -> int:
        """Number of non-zero counters currently allocated."""
        return len(self._counts)
