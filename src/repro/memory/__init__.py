"""Memory-system substrate: pages, page tables, counters, capacity.

This package owns all state that the UVM driver and the page-management
policies manipulate:

* :mod:`repro.memory.page` — PTE policy-bit encoding (Fig. 12) and access
  kinds.
* :mod:`repro.memory.address_space` — virtual-address allocation for
  objects and per-device physical address ranges (the host page table
  distinguishes private from shared pages by physical address range,
  Section V-D).
* :mod:`repro.memory.page_table` — the per-GPU local page tables plus the
  centralized host page table, stored as dense arrays over the global page
  index.
* :mod:`repro.memory.counters` — hardware access counters (256 remote
  accesses per 64 KB group).
* :mod:`repro.memory.capacity` — per-GPU residency tracking and LRU
  eviction for the oversubscription study (Fig. 25).
"""

from repro.memory.address_space import DeviceAddressMap, VirtualAllocator
from repro.memory.capacity import CapacityManager
from repro.memory.counters import AccessCounterFile
from repro.memory.page import (
    POLICY_COUNTER,
    POLICY_DUPLICATION,
    POLICY_ON_TOUCH,
    AccessType,
    policy_name,
)
from repro.memory.page_table import PageTables

__all__ = [
    "AccessCounterFile",
    "AccessType",
    "CapacityManager",
    "DeviceAddressMap",
    "PageTables",
    "POLICY_COUNTER",
    "POLICY_DUPLICATION",
    "POLICY_ON_TOUCH",
    "VirtualAllocator",
    "policy_name",
]
