"""Page-level constants: PTE policy bits and access kinds.

OASIS reserves two unused PTE bits (bits 10:9 of the 4 KB PTE, Fig. 12) to
record the page-management policy so both the CPU and the GPUs can identify
the policy to apply:

* ``"00"`` — on-touch migration (the default),
* ``"01"`` — access-counter-based migration,
* ``"11"`` — duplication.
"""

from __future__ import annotations

import enum

#: PTE policy bits "00": on-touch migration (default).
POLICY_ON_TOUCH = 0b00
#: PTE policy bits "01": access-counter-based migration.
POLICY_COUNTER = 0b01
#: PTE policy bits "11": page duplication.
POLICY_DUPLICATION = 0b11

_POLICY_NAMES = {
    POLICY_ON_TOUCH: "on_touch",
    POLICY_COUNTER: "access_counter",
    POLICY_DUPLICATION: "duplication",
}


def policy_name(bits: int) -> str:
    """Human-readable name for PTE policy bits."""
    try:
        return _POLICY_NAMES[bits]
    except KeyError:
        raise ValueError(f"invalid PTE policy bits: {bits:#04b}") from None


class AccessType(enum.IntEnum):
    """Kind of one memory access as seen by the memory system."""

    READ = 0
    WRITE = 1

    @property
    def is_write(self) -> bool:
        return self is AccessType.WRITE


def pte_encode(pfn: int, policy_bits: int, valid: bool, writable: bool) -> int:
    """Pack a 64-bit PTE per the Fig. 12 layout.

    Bits 51:12 hold the PFN, bits 10:9 the policy, bit 0 valid (present),
    bit 1 writable.  Used by the page-table unit tests to demonstrate the
    layout is representable; the simulator itself keeps the fields in
    separate arrays for speed.
    """
    if pfn < 0 or pfn >= (1 << 40):
        raise ValueError("PFN must fit in bits 51:12")
    if policy_bits not in _POLICY_NAMES:
        raise ValueError(f"invalid PTE policy bits: {policy_bits:#04b}")
    word = (pfn & ((1 << 40) - 1)) << 12
    word |= (policy_bits & 0b11) << 9
    word |= int(bool(valid))
    word |= int(bool(writable)) << 1
    return word


def pte_decode(word: int) -> tuple[int, int, bool, bool]:
    """Unpack a PTE packed by :func:`pte_encode`.

    Returns:
        ``(pfn, policy_bits, valid, writable)``.
    """
    pfn = (word >> 12) & ((1 << 40) - 1)
    policy_bits = (word >> 9) & 0b11
    valid = bool(word & 1)
    writable = bool(word & 2)
    return pfn, policy_bits, valid, writable
