"""repro.chaos — deterministic infrastructure-fault injection.

:mod:`repro.faults` breaks the *simulated machine*; this package breaks
the *machinery that runs the simulations*: the disk cache, the snapshot
blob tier, the serve journal, the worker pool and the dispatcher.  A
frozen :class:`ChaosPlan` names every fault by operation index, a
:class:`ChaosInjector` arms it through explicit hooks in the
instrumented modules, and :func:`run_soak` drives the full
kill-restart-recover cycle the durable serve layer promises to survive:

* no acknowledged job is ever lost — every job whose ``accepted``
  record was made durable reaches a terminal state after recovery;
* every served result stays bit-identical to a chaos-free run (checked
  against the golden digests in ``tests/golden/golden.json``).

Quickstart (see also ``repro-oasis chaos --help``)::

    from repro.chaos import ChaosPlan, ChaosInjector

    plan = ChaosPlan.random(seed=7)
    with ChaosInjector(plan) as injector:
        ...  # run sweeps / serve traffic under injected faults
    print(injector.report())
"""

from repro.chaos.cluster import ClusterChaos
from repro.chaos.inject import ChaosInjector, ChaosWorkerKill, WriteFault
from repro.chaos.plan import (
    CATEGORIES,
    BlobCorrupt,
    ChaosPlan,
    DispatchDelay,
    IOFault,
    TornWrite,
    WorkerKill,
)
from repro.chaos.soak import run_soak

__all__ = [
    "BlobCorrupt",
    "CATEGORIES",
    "ChaosInjector",
    "ChaosPlan",
    "ChaosWorkerKill",
    "ClusterChaos",
    "DispatchDelay",
    "IOFault",
    "TornWrite",
    "WorkerKill",
    "WriteFault",
    "run_soak",
]
