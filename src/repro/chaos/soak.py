"""Kill-restart-recover soak driver for the durable serve layer.

One soak runs ``cycles`` rounds against a *shared* journal and result
cache, the way a crashing production service would see them:

1. **chaotic phase** — a service opens the journal (recovering whatever
   the previous round left behind), a burst of jobs is submitted, a
   seeded :class:`~repro.chaos.inject.ChaosInjector` tears writes,
   raises I/O errors, corrupts blobs and kills workers while part of
   the burst completes — then the service is :meth:`abandoned
   <repro.serve.service.SimulationService.abandon>` mid-queue and a
   garbage half-record is appended to the journal (crash mid-append);
2. **recovery phase** — the in-process caches are dropped (a "new
   process"), a fresh chaos-free service replays the journal, finishes
   every re-owned job, and jobs that were *served* a chaos failure are
   resubmitted a bounded number of times (the client-retry model).

After every cycle two invariants are checked:

* **no acked job is lost** — every job id acknowledged in phase 1 is
  present with a terminal status after phase 2;
* **bit-identical results** — every completed job's
  :func:`~repro.verify.golden.entry_for` core digest equals the pinned
  golden entry for its (app, policy) pair.

The report this returns is what ``repro-oasis chaos`` prints and what
``tests/chaos/test_soak.py`` asserts on.
"""

from __future__ import annotations

import asyncio
import time
from pathlib import Path

from repro.chaos.inject import ChaosInjector
from repro.chaos.plan import ChaosPlan
from repro.harness import runner
from repro.serve.service import AdmissionError, SimulationService
from repro.verify.golden import entry_for, golden_key, load_golden

#: Wall-clock budget for one phase of one cycle.
DEFAULT_PHASE_TIMEOUT_S = 30.0

#: Times a job served a chaos failure is resubmitted before giving up.
DEFAULT_RESUBMIT_LIMIT = 3

#: Default burst: small enough that ``cycles=3`` fits the 2-minute CI
#: budget, large enough that a crash always strands queued work.
DEFAULT_APPS = ("st", "mm")
DEFAULT_POLICIES = ("oasis", "on_touch")


def _terminal(service: SimulationService, ids) -> int:
    count = 0
    for job_id in ids:
        job = service.job(job_id)
        if job is not None and job.status in ("done", "failed"):
            count += 1
    return count


async def _wait_idle(
    service: SimulationService, timeout_s: float
) -> bool:
    """Wait until nothing is queued, running or chained."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        busy = (
            service._heap
            or service._batch_inflight
            or any(
                job.status in ("queued", "running")
                for job in service._jobs.values()
            )
        )
        if not busy:
            return True
        await asyncio.sleep(0.02)
    return False


def _append_torn_tail(journal_dir: Path) -> bool:
    """Simulate a crash mid-append: garbage half-record on the tail."""
    segments = sorted(journal_dir.glob("journal-*.jsonl"))
    if not segments:
        return False
    with segments[-1].open("a", encoding="utf-8") as fh:
        fh.write('{"v": 1, "seq": 999999, "kind": "accepted", "data"')
    return True


async def _soak_cycle(
    cycle: int,
    plan: ChaosPlan,
    *,
    apps,
    policies,
    journal_dir: Path,
    jobs: int,
    golden_entries: dict,
    resubmit_limit: int,
    phase_timeout_s: float,
) -> dict:
    summary = {
        "cycle": cycle,
        "plan": plan.digest(),
        "acked": 0,
        "refused": 0,
        "completed_before_crash": 0,
        "lost": [],
        "mismatched": [],
        "resubmitted": 0,
        "unrecovered_failures": [],
    }

    # -- phase 1: chaotic service, abandoned mid-queue ----------------------
    injector = ChaosInjector(plan)
    # batch_max=1 makes completion incremental, so the crash lands with
    # a mix of done, dispatched and still-queued jobs in the journal.
    service = SimulationService(
        jobs=jobs, batch_max=1, journal_dir=str(journal_dir)
    )
    acked: dict[str, tuple[str, str]] = {}
    with injector:
        await service.start()
        for app in apps:
            for policy in policies:
                try:
                    job = await service.submit(
                        {"app": app, "policy": policy}
                    )
                except AdmissionError:
                    # A torn/failed journal append refuses the job: it
                    # was never acknowledged, so it owes nothing.
                    summary["refused"] += 1
                    continue
                acked[job.id] = (app, policy)
        # Let part of the burst complete, then crash — typically
        # mid-batch, stranding a mix of done, dispatched and
        # still-queued jobs for recovery to re-own.
        target = max(1, len(acked) // 2)
        deadline = time.monotonic() + phase_timeout_s
        while (
            _terminal(service, acked) < target
            and time.monotonic() < deadline
        ):
            await asyncio.sleep(0.02)
        summary["completed_before_crash"] = _terminal(service, acked)
        await service.abandon()
    _append_torn_tail(journal_dir)
    summary["acked"] = len(acked)

    # -- phase 2: chaos-free recovery ---------------------------------------
    runner.clear_cache()  # "new process": memory gone, disk survives
    recovered = SimulationService(jobs=jobs, journal_dir=str(journal_dir))
    await recovered.start()
    summary["recovery"] = dict(recovered._recovery or {})
    await _wait_idle(recovered, phase_timeout_s)

    # Every acked job must exist with a terminal outcome; jobs that were
    # *served* a chaos failure get the bounded client-retry treatment.
    final: dict[str, object] = {}
    for job_id in acked:
        final[job_id] = recovered.job(job_id)
    for _ in range(resubmit_limit):
        retry = [
            (job_id, acked[job_id])
            for job_id, job in final.items()
            if job is not None and job.status == "failed"
        ]
        if not retry:
            break
        for job_id, (app, policy) in retry:
            try:
                final[job_id] = await recovered.submit(
                    {"app": app, "policy": policy}
                )
                summary["resubmitted"] += 1
            except AdmissionError:
                pass
        await _wait_idle(recovered, phase_timeout_s)

    for job_id, job in final.items():
        app, policy = acked[job_id]
        label = f"{job_id}:{app}/{policy}"
        if job is None:
            summary["lost"].append(label)
            continue
        if job.status == "failed":
            summary["unrecovered_failures"].append(
                f"{label}: {(job.failure or {}).get('error_type')}"
            )
            continue
        if job.status != "done":
            summary["lost"].append(f"{label}: stuck in {job.status}")
            continue
        pinned = golden_entries.get(golden_key(app, policy))
        if pinned is None:
            continue
        fresh = entry_for(job.future.result())
        if fresh["core"] != pinned["core"]:
            summary["mismatched"].append(label)
    await recovered.stop()
    summary["chaos"] = injector.report()
    return summary


async def _soak(
    *,
    cycles: int,
    seed: int,
    apps,
    policies,
    journal_dir: Path,
    jobs: int,
    resubmit_limit: int,
    phase_timeout_s: float,
) -> dict:
    golden_entries = load_golden().get("entries", {})
    per_cycle = []
    for cycle in range(cycles):
        # A tight ops horizon keeps the drawn op indices inside the op
        # counts a small burst actually generates, so events fire.
        plan = ChaosPlan.random(seed + cycle, ops_horizon=8)
        per_cycle.append(
            await _soak_cycle(
                cycle,
                plan,
                apps=apps,
                policies=policies,
                journal_dir=journal_dir,
                jobs=jobs,
                golden_entries=golden_entries,
                resubmit_limit=resubmit_limit,
                phase_timeout_s=phase_timeout_s,
            )
        )
    lost = [x for c in per_cycle for x in c["lost"]]
    mismatched = [x for c in per_cycle for x in c["mismatched"]]
    unrecovered = [x for c in per_cycle for x in c["unrecovered_failures"]]
    return {
        "cycles": cycles,
        "seed": seed,
        "apps": list(apps),
        "policies": list(policies),
        "acked": sum(c["acked"] for c in per_cycle),
        "refused": sum(c["refused"] for c in per_cycle),
        "resubmitted": sum(c["resubmitted"] for c in per_cycle),
        "lost": lost,
        "mismatched": mismatched,
        "unrecovered_failures": unrecovered,
        "ok": not (lost or mismatched or unrecovered),
        "per_cycle": per_cycle,
    }


def run_soak(
    journal_dir: str | Path,
    cache_dir: str | Path,
    *,
    cycles: int = 3,
    seed: int = 0,
    apps=DEFAULT_APPS,
    policies=DEFAULT_POLICIES,
    jobs: int = 1,
    resubmit_limit: int = DEFAULT_RESUBMIT_LIMIT,
    phase_timeout_s: float = DEFAULT_PHASE_TIMEOUT_S,
) -> dict:
    """Run a full kill-restart-recover soak; returns its report.

    ``journal_dir`` and ``cache_dir`` are shared across all cycles —
    they *are* the durable state under test.  The runner is pointed at
    ``cache_dir`` for the duration and restored afterwards.
    """
    if cycles < 1:
        raise ValueError("cycles must be >= 1")
    journal_dir = Path(journal_dir)
    journal_dir.mkdir(parents=True, exist_ok=True)
    prev_disk, prev_jobs = runner._DISK, runner._JOBS
    runner.configure(jobs=jobs, cache_dir=str(cache_dir))
    try:
        return asyncio.run(
            _soak(
                cycles=cycles,
                seed=seed,
                apps=tuple(apps),
                policies=tuple(policies),
                journal_dir=journal_dir,
                jobs=jobs,
                resubmit_limit=resubmit_limit,
                phase_timeout_s=phase_timeout_s,
            )
        )
    finally:
        runner.clear_cache()
        runner._DISK, runner._JOBS = prev_disk, prev_jobs
