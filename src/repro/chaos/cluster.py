"""Cluster-level chaos: route a plan's worker kills through the router.

The in-process :class:`~repro.chaos.inject.ChaosInjector` simulates a
worker death by raising inside the pool.  At cluster scope the failure
is more honest: :class:`ClusterChaos` installs itself as the router's
``_CHAOS`` hook and, on the ``op``-th *forward* (in router forwarding
order, deterministic for a deterministic request sequence), kills the
very worker subprocess the request was just routed to — after the
worker has journaled whatever it already acknowledged.  What follows
is the real recovery path: the router's heartbeat declares the worker
dead, steals its journal, re-homes the live jobs, and the cluster's
"no acked job is lost" invariant gets exercised end to end.

The kill callback is supplied by the caller (normally
:meth:`repro.cluster.supervisor.LocalCluster.kill_worker`), so the same
plan type drives both the bench and the ``make verify-cluster`` smoke.
"""

from __future__ import annotations

import threading

from repro.chaos.plan import ChaosPlan

_HOOKED_MODULES = ("repro.cluster.router",)


class ClusterChaos:
    """Arm a :class:`ChaosPlan`'s worker kills at the router's forward seam.

    Args:
        plan: the (frozen, seeded) chaos plan; only its ``worker_kills``
            events are meaningful here — each names the forward
            operation index at which the routed-to worker dies.
        kill: callback invoked with the worker *name* to kill.

    Use as a context manager; :attr:`fired` maps worker names to kill
    counts afterwards.
    """

    def __init__(self, plan: ChaosPlan, kill) -> None:
        self.plan = plan
        self._kill = kill
        self._lock = threading.Lock()
        self._forwards = 0
        self._kill_ops = {k.op for k in plan.worker_kills}
        self.fired: dict[str, int] = {}
        self._installed = False

    # -- hook surface (called by the router) -------------------------------

    def on_forward(self, key: str, worker: str) -> None:
        """One forward is about to leave the router for ``worker``."""
        with self._lock:
            op = self._forwards
            self._forwards += 1
            fire = op in self._kill_ops
            if fire:
                self.fired[worker] = self.fired.get(worker, 0) + 1
        if fire:
            self._kill(worker)

    # -- install / uninstall -----------------------------------------------

    def install(self) -> "ClusterChaos":
        if self._installed:
            return self
        for module_name in _HOOKED_MODULES:
            module = __import__(module_name, fromlist=["_CHAOS"])
            if module._CHAOS is not None:
                raise RuntimeError(
                    f"{module_name} already has a chaos hook installed"
                )
            module._CHAOS = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        if not self._installed:
            return
        for module_name in _HOOKED_MODULES:
            module = __import__(module_name, fromlist=["_CHAOS"])
            if module._CHAOS is self:
                module._CHAOS = None
        self._installed = False

    def report(self) -> dict:
        with self._lock:
            return {
                "forwards_seen": self._forwards,
                "kills_planned": len(self._kill_ops),
                "kills_fired": dict(self.fired),
            }

    def __enter__(self) -> "ClusterChaos":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()
