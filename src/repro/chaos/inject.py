"""Runtime application of a :class:`~repro.chaos.plan.ChaosPlan`.

The injector mirrors :class:`repro.faults.inject.FaultInjector` one
layer down: instead of links and frames, it arms the explicit chaos
hooks that :mod:`repro.harness.diskcache`, :mod:`repro.serve.journal`
and :mod:`repro.harness.runner` expose as module-level ``_CHAOS``
globals.  :meth:`ChaosInjector.install` plants the injector into all
three modules; :meth:`ChaosInjector.uninstall` (or the context-manager
form) restores them, so a chaos session can never leak into unrelated
tests or sweeps.

Determinism: every hook advances a per-category operation counter under
a lock and fires exactly the plan events addressed to that index.  No
wall clock, no RNG — the same plan over the same operation stream
always faults the same operations.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from pathlib import Path

from repro.chaos.plan import ChaosPlan


class ChaosWorkerKill(OSError):
    """A simulation attempt died as if its worker process was killed.

    Subclasses :class:`OSError` so the harness's PR-2 retry semantics
    (``_RETRYABLE``) treat it exactly like a real environmental death:
    bounded retries with backoff, then a structured ``RunFailure``.
    """


@dataclass(frozen=True)
class WriteFault:
    """What a hooked write site should do to the current operation."""

    mode: str  # "torn" | "oserror"
    fraction: float = 0.5


class ChaosInjector:
    """Apply one plan's events through the module chaos hooks."""

    def __init__(self, plan: ChaosPlan) -> None:
        self.plan = plan
        self._lock = threading.Lock()
        self._ops = {
            ("result", "write"): 0, ("result", "read"): 0,
            ("blob", "write"): 0, ("blob", "read"): 0,
            ("journal", "write"): 0, ("journal", "read"): 0,
        }
        self._runs = 0
        self._dispatches = 0
        self._installed = False
        self.fired: dict[str, int] = {
            "torn_writes": 0,
            "io_faults": 0,
            "blob_corruptions": 0,
            "worker_kills": 0,
            "dispatch_delays": 0,
        }
        # Index events by their trigger address for O(1) hook dispatch.
        self._torn = {
            (t.category, t.op): t for t in plan.torn_writes
        }
        self._io = {
            (f.category, f.where, f.op): f for f in plan.io_faults
        }
        self._corrupt = {c.op: c for c in plan.blob_corruptions}
        self._kills = {k.op for k in plan.worker_kills}
        self._delays = {d.op: d for d in plan.dispatch_delays}

    # -- hook protocol (called from instrumented modules) ------------------

    def write_fault(self, category: str, path) -> WriteFault | None:
        """Advance the category's write counter; describe any fault."""
        with self._lock:
            op = self._ops[(category, "write")]
            self._ops[(category, "write")] = op + 1
            torn = self._torn.get((category, op))
            if torn is not None:
                self.fired["torn_writes"] += 1
                return WriteFault(mode="torn", fraction=torn.fraction)
            if (category, "write", op) in self._io:
                self.fired["io_faults"] += 1
                return WriteFault(mode="oserror")
        return None

    def read_fault(self, category: str, path) -> None:
        """Raise ``OSError`` when this read operation is targeted."""
        with self._lock:
            op = self._ops[(category, "read")]
            self._ops[(category, "read")] = op + 1
            armed = (category, "read", op) in self._io
            if armed:
                self.fired["io_faults"] += 1
        if armed:
            raise OSError(
                f"chaos: injected read error ({category} op {op})"
            )

    def post_write(self, category: str, path) -> None:
        """Corrupt a just-written blob in place (silent bit rot)."""
        if category != "blob":
            return
        with self._lock:
            # post_write shares the write counter's *previous* index —
            # it describes the operation write_fault just counted.
            op = self._ops[("blob", "write")] - 1
            event = self._corrupt.get(op)
            if event is None:
                return
            self.fired["blob_corruptions"] += 1
        try:
            path = Path(path)
            raw = bytearray(path.read_bytes())
            if not raw:
                return
            offset = event.offset % len(raw)
            raw[offset] ^= 0xFF
            path.write_bytes(bytes(raw))
        except OSError:
            pass

    def run_fault(self, app: str, policy: str) -> None:
        """Kill this simulation attempt when it is targeted."""
        with self._lock:
            op = self._runs
            self._runs = op + 1
            armed = op in self._kills
            if armed:
                self.fired["worker_kills"] += 1
        if armed:
            raise ChaosWorkerKill(
                f"chaos: worker killed running {app}/{policy} "
                f"(attempt {op})"
            )

    def dispatch_delay(self) -> float:
        """Seconds of injected latency ahead of this dispatch round."""
        with self._lock:
            op = self._dispatches
            self._dispatches = op + 1
            event = self._delays.get(op)
            if event is None:
                return 0.0
            self.fired["dispatch_delays"] += 1
            return event.delay_s

    # -- installation ------------------------------------------------------

    def install(self) -> "ChaosInjector":
        """Arm the hooks in diskcache, journal and runner."""
        from repro.harness import diskcache, runner
        from repro.serve import journal

        if self._installed:
            return self
        for module in (diskcache, journal, runner):
            if getattr(module, "_CHAOS", None) is not None:
                raise RuntimeError(
                    "another chaos injector is already installed"
                )
        diskcache._CHAOS = self
        journal._CHAOS = self
        runner._CHAOS = self
        self._installed = True
        return self

    def uninstall(self) -> None:
        from repro.harness import diskcache, runner
        from repro.serve import journal

        if not self._installed:
            return
        for module in (diskcache, journal, runner):
            if getattr(module, "_CHAOS", None) is self:
                module._CHAOS = None
        self._installed = False

    def __enter__(self) -> "ChaosInjector":
        return self.install()

    def __exit__(self, *exc) -> None:
        self.uninstall()

    # -- reporting ---------------------------------------------------------

    def report(self) -> dict:
        """Operations observed and events fired so far."""
        with self._lock:
            ops = {
                f"{category}_{where}s": count
                for (category, where), count in sorted(self._ops.items())
            }
            return {
                "plan": self.plan.digest(),
                "events_planned": len(self.plan.events),
                "events_fired": dict(self.fired),
                "ops": {
                    **ops,
                    "runs": self._runs,
                    "dispatches": self._dispatches,
                },
            }
