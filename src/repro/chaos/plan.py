"""Declarative infrastructure-fault plans (the serve-layer ``FaultPlan``).

:mod:`repro.faults` injects faults into the *simulated machine* — links,
frames, migrations.  This module injects faults into the
*infrastructure that runs the simulations*: the disk cache, the serve
journal, the worker pool and the dispatcher.  The shape deliberately
mirrors :mod:`repro.faults.plan`: a frozen, hashable
:class:`ChaosPlan` of typed events, applied at runtime by
:class:`repro.chaos.inject.ChaosInjector` through explicit hooks in
:mod:`repro.harness.diskcache`, :mod:`repro.serve.journal` and
:mod:`repro.harness.runner`.

Events are addressed by **operation index** within a category — "the
3rd result-cache write", "the 0th simulation attempt" — so a plan is
deterministic by construction: the same plan against the same request
stream fires the same faults, with no wall-clock or RNG dependence at
injection time.  (The seed is used only by :meth:`ChaosPlan.random`,
which *generates* a pseudo-random plan deterministically.)

Event vocabulary (see ``docs/MODEL.md`` §13):

* :class:`TornWrite` — a write persists only a prefix of its payload:
  for ``result``/``blob`` files the final file holds truncated bytes
  (the read side must quarantine-and-recompute); for ``journal`` the
  append raises after tearing, so the service never acks the record.
* :class:`IOFault` — ``OSError`` on the nth read or write of a
  category (disk full, permission, transient device error).
* :class:`BlobCorrupt` — flip a byte of a snapshot blob *after* a
  successful write (silent bit rot under the checksum).
* :class:`WorkerKill` — the nth simulation attempt dies as if its
  worker process was killed (an ``OSError`` subclass, so the PR-2
  retry-with-backoff semantics apply unchanged).
* :class:`DispatchDelay` — injected latency ahead of the nth dispatched
  sweep (slow scheduler / noisy neighbor).
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, fields

#: Instrumented I/O categories.
CATEGORIES = ("result", "blob", "journal")


@dataclass(frozen=True)
class TornWrite:
    """Persist only ``fraction`` of the ``op``-th ``category`` write."""

    category: str
    op: int
    fraction: float = 0.5

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown category {self.category!r}; known: {CATEGORIES}"
            )
        if self.op < 0:
            raise ValueError("op must be non-negative")
        if not 0.0 <= self.fraction < 1.0:
            raise ValueError("fraction must be in [0, 1)")


@dataclass(frozen=True)
class IOFault:
    """Raise ``OSError`` on the ``op``-th ``category`` read or write."""

    category: str
    op: int
    where: str = "write"

    def __post_init__(self) -> None:
        if self.category not in CATEGORIES:
            raise ValueError(
                f"unknown category {self.category!r}; known: {CATEGORIES}"
            )
        if self.op < 0:
            raise ValueError("op must be non-negative")
        if self.where not in ("read", "write"):
            raise ValueError("where must be 'read' or 'write'")


@dataclass(frozen=True)
class BlobCorrupt:
    """Flip one byte of the ``op``-th snapshot blob after it is written."""

    op: int
    offset: int = 0

    def __post_init__(self) -> None:
        if self.op < 0:
            raise ValueError("op must be non-negative")
        if self.offset < 0:
            raise ValueError("offset must be non-negative")


@dataclass(frozen=True)
class WorkerKill:
    """Kill the worker running the ``op``-th simulation attempt."""

    op: int

    def __post_init__(self) -> None:
        if self.op < 0:
            raise ValueError("op must be non-negative")


@dataclass(frozen=True)
class DispatchDelay:
    """Sleep ``delay_s`` ahead of the ``op``-th dispatched sweep."""

    op: int
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if self.op < 0:
            raise ValueError("op must be non-negative")
        if self.delay_s < 0:
            raise ValueError("delay_s must be non-negative")


def _freeze(value):
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


@dataclass(frozen=True)
class ChaosPlan:
    """Every infrastructure fault injected into one soak/serve session.

    Frozen and hashable, like :class:`repro.faults.FaultPlan`.  An empty
    plan is inert: the injector installs no behavior change and every
    hook call is a cheap None check.
    """

    torn_writes: tuple[TornWrite, ...] = ()
    io_faults: tuple[IOFault, ...] = ()
    blob_corruptions: tuple[BlobCorrupt, ...] = ()
    worker_kills: tuple[WorkerKill, ...] = ()
    dispatch_delays: tuple[DispatchDelay, ...] = ()
    #: Seed recorded for provenance (used by :meth:`random`).
    seed: int = 0

    def __post_init__(self) -> None:
        for name in (
            "torn_writes", "io_faults", "blob_corruptions",
            "worker_kills", "dispatch_delays",
        ):
            object.__setattr__(self, name, _freeze(getattr(self, name)))

    @property
    def empty(self) -> bool:
        return not self.events

    @property
    def events(self) -> tuple:
        return (
            *self.torn_writes,
            *self.io_faults,
            *self.blob_corruptions,
            *self.worker_kills,
            *self.dispatch_delays,
        )

    def digest(self) -> str:
        """Short content hash identifying the plan (reports/logs)."""
        blob = json.dumps(self.to_spec(), sort_keys=True)
        return hashlib.sha256(blob.encode()).hexdigest()[:12]

    # -- (de)serialization -------------------------------------------------

    def to_spec(self) -> dict:
        return {
            "torn_writes": [
                {"category": t.category, "op": t.op, "fraction": t.fraction}
                for t in self.torn_writes
            ],
            "io_faults": [
                {"category": f.category, "op": f.op, "where": f.where}
                for f in self.io_faults
            ],
            "blob_corruptions": [
                {"op": c.op, "offset": c.offset}
                for c in self.blob_corruptions
            ],
            "worker_kills": [{"op": k.op} for k in self.worker_kills],
            "dispatch_delays": [
                {"op": d.op, "delay_s": d.delay_s}
                for d in self.dispatch_delays
            ],
            "seed": self.seed,
        }

    @classmethod
    def from_spec(cls, spec: dict | str) -> "ChaosPlan":
        if isinstance(spec, str):
            spec = json.loads(spec)
        if not isinstance(spec, dict):
            raise ValueError("chaos-plan spec must be a JSON object")
        known = {f.name for f in fields(cls)}
        unknown = set(spec) - known
        if unknown:
            raise ValueError(
                f"unknown chaos-plan keys: {sorted(unknown)}; "
                f"known: {sorted(known)}"
            )
        return cls(
            torn_writes=tuple(
                TornWrite(**t) for t in spec.get("torn_writes", ())
            ),
            io_faults=tuple(
                IOFault(**f) for f in spec.get("io_faults", ())
            ),
            blob_corruptions=tuple(
                BlobCorrupt(**c) for c in spec.get("blob_corruptions", ())
            ),
            worker_kills=tuple(
                WorkerKill(**k) for k in spec.get("worker_kills", ())
            ),
            dispatch_delays=tuple(
                DispatchDelay(**d) for d in spec.get("dispatch_delays", ())
            ),
            seed=spec.get("seed", 0),
        )

    # -- generation --------------------------------------------------------

    @classmethod
    def random(
        cls,
        seed: int,
        *,
        ops_horizon: int = 32,
        torn: int = 2,
        io: int = 2,
        corrupt: int = 1,
        kills: int = 2,
        delays: int = 1,
        max_delay_s: float = 0.02,
    ) -> "ChaosPlan":
        """A deterministic pseudo-random plan of the given intensity.

        Operation indices are drawn from ``range(ops_horizon)`` without
        replacement per category, so two events never target the same
        operation and the plan stays reproducible for a given seed.
        """
        rng = random.Random(seed)

        def picks(n: int) -> list[int]:
            n = min(n, ops_horizon)
            return sorted(rng.sample(range(ops_horizon), n))

        return cls(
            torn_writes=tuple(
                TornWrite(
                    category=rng.choice(CATEGORIES),
                    op=op,
                    fraction=round(rng.uniform(0.1, 0.9), 3),
                )
                for op in picks(torn)
            ),
            io_faults=tuple(
                IOFault(
                    category=rng.choice(CATEGORIES),
                    op=op,
                    where=rng.choice(("read", "write")),
                )
                for op in picks(io)
            ),
            blob_corruptions=tuple(
                BlobCorrupt(op=op, offset=rng.randrange(0, 64))
                for op in picks(corrupt)
            ),
            worker_kills=tuple(WorkerKill(op=op) for op in picks(kills)),
            dispatch_delays=tuple(
                DispatchDelay(
                    op=op, delay_s=round(rng.uniform(0.0, max_delay_s), 4)
                )
                for op in picks(delays)
            ),
            seed=seed,
        )
