"""Golden-digest regression: pin every (workload, policy) result.

``tests/golden/golden.json`` holds one entry per (app, policy) pair of
the full registry matrix.  Each entry is content-addressed: the core
sha256 of the whole result (see
:func:`repro.verify.differential.core_digest`), a digest per phase, and
the full canonical counter map.  The counter map is stored verbatim —
not just hashed — so that when a digest moves the diff report can name
*exactly* which counter changed and by how much, instead of "something
differs".

Workflow:

* ``make verify`` (→ :func:`check_golden`) recomputes the matrix and
  compares against the pinned file; any drift fails with a named diff.
* ``make golden-update`` (→ :func:`update_golden`) re-pins after an
  *intentional* model change; the file is committed, so the review diff
  shows every counter the change moved.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.verify.differential import (
    canonical_json,
    core_digest,
    diff_payloads,
    result_payload,
)

#: Pinned digests live in the test tree so CI always has them.
GOLDEN_PATH = Path(__file__).resolve().parents[3] / "tests" / "golden" / "golden.json"

#: Golden file schema version (bump when the entry layout changes).
SCHEMA = 1


def golden_key(app: str, policy: str, seed: int = 0) -> str:
    key = f"{app}/{policy}"
    if seed:
        key += f"#{seed}"
    return key


def entry_for(result) -> dict:
    """The pinned view of one result."""
    import hashlib

    payload = result_payload(result)
    phases = [
        {
            "name": phase["name"],
            "digest": hashlib.sha256(
                canonical_json(phase).encode()
            ).hexdigest(),
        }
        for phase in payload["phases"]
    ]
    return {
        "core": core_digest(result),
        "total_time_ns": payload["total_time_ns"],
        "phases": phases,
        "counters": result.metrics_snapshot().counters,
    }


def entry_diff(pinned: dict, fresh: dict) -> list[str]:
    """Name exactly what moved between a pinned entry and a fresh one."""
    diffs: list[str] = []
    for line in diff_payloads(pinned["counters"], fresh["counters"]):
        diffs.append(f"counter {line}")
    if pinned["total_time_ns"] != fresh["total_time_ns"]:
        diffs.append(
            f"total_time_ns: {pinned['total_time_ns']!r} != "
            f"{fresh['total_time_ns']!r}"
        )
    old_phases = {p["name"]: p["digest"] for p in pinned["phases"]}
    new_phases = {p["name"]: p["digest"] for p in fresh["phases"]}
    for name in sorted(set(old_phases) | set(new_phases)):
        old_digest = old_phases.get(name)
        new_digest = new_phases.get(name)
        if old_digest != new_digest:
            diffs.append(
                f"phase {name!r}: "
                + (
                    "added" if old_digest is None
                    else "removed" if new_digest is None
                    else "digest moved"
                )
            )
    if not diffs:
        # Core digests can differ through fields no sub-view covers
        # (stats breakdowns are in counters, but e.g. policy_histogram
        # is not) — fall back to "core moved" rather than silence.
        diffs.append("core digest moved (non-counter field)")
    return diffs


# -- matrix ----------------------------------------------------------------


def golden_matrix(apps=None, policies=None) -> list[tuple[str, str]]:
    """The (app, policy) pairs the golden file pins (full registry)."""
    from repro import POLICY_FACTORIES
    from repro.workloads.registry import APPLICATION_ORDER

    if apps is None:
        apps = APPLICATION_ORDER
    if policies is None:
        policies = sorted(POLICY_FACTORIES)
    return [(app, policy) for app in apps for policy in policies]


def _compute(pairs, seed: int, jobs: int) -> dict[str, dict]:
    from repro import baseline_config
    from repro.harness import runner
    from repro.sim import SimulationResult

    config = baseline_config()
    requests = [
        (config, app, policy, {"seed": seed}) for app, policy in pairs
    ]
    results = runner.run_sims_parallel(requests, jobs=jobs)
    fresh: dict[str, dict] = {}
    for (app, policy), result in zip(pairs, results):
        key = golden_key(app, policy, seed)
        if not isinstance(result, SimulationResult):
            raise RuntimeError(f"golden run {key} failed: {result}")
        fresh[key] = entry_for(result)
    return fresh


def load_golden(path=None) -> dict:
    path = Path(path) if path is not None else GOLDEN_PATH
    with open(path) as fh:
        return json.load(fh)


def update_golden(path=None, apps=None, policies=None, *, seed: int = 0,
                  jobs: int = 1) -> dict:
    """(Re)compute the matrix and pin it; returns a change summary.

    Pairs outside the requested scope keep their existing entries, so a
    partial update (one app, say) never drops the rest of the matrix.
    """
    path = Path(path) if path is not None else GOLDEN_PATH
    pairs = golden_matrix(apps, policies)
    fresh = _compute(pairs, seed, jobs)
    entries: dict[str, dict] = {}
    changed: list[str] = []
    added: list[str] = []
    if path.exists():
        entries = load_golden(path).get("entries", {})
    for key, entry in fresh.items():
        if key not in entries:
            added.append(key)
        elif entries[key]["core"] != entry["core"]:
            changed.append(key)
        entries[key] = entry
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = {
        "schema": SCHEMA,
        "entries": {key: entries[key] for key in sorted(entries)},
    }
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=1, sort_keys=True)
        fh.write("\n")
    return {"pinned": len(entries), "added": added, "changed": changed}


def check_golden(path=None, apps=None, policies=None, *, seed: int = 0,
                 jobs: int = 1) -> dict:
    """Recompute the matrix and compare against the pinned file.

    Returns ``{"checked": int, "missing": [...], "mismatches": [...]}``;
    each mismatch line names the pair and the exact counters/phases that
    moved.  Raises ``FileNotFoundError`` when the golden file is absent
    (run ``make golden-update`` once to create it).
    """
    path = Path(path) if path is not None else GOLDEN_PATH
    pinned = load_golden(path)
    if pinned.get("schema") != SCHEMA:
        raise ValueError(
            f"golden file {path} has schema {pinned.get('schema')!r}, "
            f"expected {SCHEMA} — regenerate with `make golden-update`"
        )
    entries = pinned.get("entries", {})
    pairs = golden_matrix(apps, policies)
    fresh = _compute(pairs, seed, jobs)
    missing: list[str] = []
    mismatches: list[str] = []
    for key, entry in fresh.items():
        pin = entries.get(key)
        if pin is None:
            missing.append(key)
            continue
        if pin["core"] != entry["core"]:
            mismatches.extend(
                f"{key}: {line}" for line in entry_diff(pin, entry)
            )
    return {
        "checked": len(fresh),
        "missing": missing,
        "mismatches": mismatches,
    }
