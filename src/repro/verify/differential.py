"""Differential oracles: every execution mode must agree bit-for-bit.

The simulator computes the same run through several redundant machines —
the vectorized fast path vs the per-record slow path, the parallel
harness pool vs in-process serial execution, the two-level result cache
vs a fresh computation, an observed (traced/metered) run vs an
unobserved one, a fault-injected run that mixes fast phases with the
forced-slow tail, and a snapshot-resumed run vs a cold replay (the
sweep fast path of :mod:`repro.sim.sweep`).  Each redundancy is
documented as *bit-identical*, so
each one is a free oracle: run both sides and compare canonical digests.
A mismatch means one of the paths silently diverged — the exact class of
bug a single-path test suite can never see.

Digests come in two granularities:

* :func:`core_digest` — sha256 over the canonical JSON of
  :meth:`~repro.sim.results.SimulationResult.to_dict` minus the
  ``metrics`` key (gauges/histograms exist only on observed runs by
  design, so the core digest is the cross-lane comparable identity);
* :func:`counters_digest` — sha256 over the
  :class:`~repro.obs.metrics.MetricsSnapshot` counter map alone, the
  view every report reads through.

When digests disagree, :func:`diff_payloads` names exactly which fields
and counters moved.  Run everything with :func:`run_differential`
(``repro-oasis verify --differential``).
"""

from __future__ import annotations

import hashlib
import json
import os
from contextlib import contextmanager

#: Per-(app, policy) lanes plus the batch-level harness lanes.
LANES = (
    "fast_slow", "cache", "traced", "faultplan", "parallel", "memo",
    "tenancy",
)

#: Default app subset: the two cheapest registry workloads.  The full
#: 11-app matrix is the golden lane's job; the differential lanes re-run
#: every pair 2-3 times each, so they stay on sub-second traces.
DEFAULT_APPS = ("i2c", "mm")

#: Extra apps the memo lane always covers.  The default apps are
#: single-phase, which a phase-boundary snapshot can never shortcut
#: (no interior boundary exists) — a multi-phase app makes the lane
#: exercise a genuine snapshot resume, not just the no-op path.
MEMO_APPS = ("c2d",)


# -- digests ---------------------------------------------------------------


def canonical_json(payload) -> str:
    """Deterministic JSON: sorted keys, no whitespace."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def result_payload(result) -> dict:
    """The cross-lane comparable view of a result.

    Drops the ``metrics`` key: gauges and histograms exist only when a
    registry was attached, and the traced-vs-untraced oracle asserts
    exactly that everything *else* is unaffected by observation.
    """
    payload = result.to_dict()
    payload.pop("metrics", None)
    return payload


def core_digest(result) -> str:
    """Content digest of everything a run produced (minus observation)."""
    return hashlib.sha256(
        canonical_json(result_payload(result)).encode()
    ).hexdigest()


def counters_digest(result) -> str:
    """Content digest of the canonical counter view alone."""
    counters = result.metrics_snapshot().counters
    return hashlib.sha256(canonical_json(counters).encode()).hexdigest()


def diff_payloads(a, b, prefix: str = "") -> list[str]:
    """Dotted paths at which two JSON payloads differ, with both values."""
    diffs: list[str] = []
    if isinstance(a, dict) and isinstance(b, dict):
        for key in sorted(set(a) | set(b)):
            path = f"{prefix}.{key}" if prefix else str(key)
            if key not in a:
                diffs.append(f"{path}: only on right (={b[key]!r})")
            elif key not in b:
                diffs.append(f"{path}: only on left (={a[key]!r})")
            else:
                diffs.extend(diff_payloads(a[key], b[key], path))
    elif isinstance(a, list) and isinstance(b, list):
        if len(a) != len(b):
            diffs.append(f"{prefix}: length {len(a)} != {len(b)}")
        else:
            for i, (left, right) in enumerate(zip(a, b)):
                diffs.extend(diff_payloads(left, right, f"{prefix}[{i}]"))
    elif a != b:
        diffs.append(f"{prefix}: {a!r} != {b!r}")
    return diffs


@contextmanager
def forced_slow_path():
    """Force the exact per-record replay path for the duration."""
    prior = os.environ.get("REPRO_FORCE_SLOW_PATH")
    os.environ["REPRO_FORCE_SLOW_PATH"] = "1"
    try:
        yield
    finally:
        if prior is None:
            os.environ.pop("REPRO_FORCE_SLOW_PATH", None)
        else:
            os.environ["REPRO_FORCE_SLOW_PATH"] = prior


# -- lanes -----------------------------------------------------------------


def _simulate(config, app: str, policy: str, seed: int = 0, **kwargs):
    from repro import get_workload, make_policy, simulate

    trace = get_workload(app, config, seed=seed)
    return simulate(config, trace, make_policy(policy), **kwargs)


def _compare(lane: str, label: str, a, b, limit: int = 6) -> list[str]:
    """Mismatch lines for one comparison (empty when digests agree)."""
    if core_digest(a) == core_digest(b) and (
        counters_digest(a) == counters_digest(b)
    ):
        return []
    diffs = diff_payloads(result_payload(a), result_payload(b))
    if not diffs:
        diffs = ["digests differ but payload diff is empty (?)"]
    shown = diffs[:limit]
    if len(diffs) > limit:
        shown.append(f"... and {len(diffs) - limit} more")
    return [f"{lane} {label}: {d}" for d in shown]


def check_fast_vs_slow(config, app: str, policy: str,
                       seed: int = 0) -> list[str]:
    """The vectorized replayer vs the exact per-record path."""
    fast = _simulate(config, app, policy, seed)
    with forced_slow_path():
        slow = _simulate(config, app, policy, seed)
    return _compare("fast_slow", f"{app}/{policy}", fast, slow)


def check_cached_vs_recomputed(config, app: str, policy: str,
                               seed: int = 0) -> list[str]:
    """A memoized result vs a hit vs a from-scratch recomputation."""
    from repro.harness import runner

    runner.clear_cache()
    first = runner.run_sim(config, app, policy, seed=seed)
    hit = runner.run_sim(config, app, policy, seed=seed)
    runner.clear_cache()
    fresh = runner.run_sim(config, app, policy, seed=seed)
    label = f"{app}/{policy}"
    return (
        _compare("cache(hit)", label, first, hit)
        + _compare("cache(recompute)", label, first, fresh)
    )


def check_traced_vs_untraced(config, app: str, policy: str,
                             seed: int = 0) -> list[str]:
    """An observed run (tracer + metrics registry) vs an unobserved one.

    Observation forces the slow path, so this lane doubles as a second
    fast-vs-slow witness — but its real job is asserting the hooks are
    pure reads.
    """
    from repro.obs import MetricsRegistry, RecordingTracer

    plain = _simulate(config, app, policy, seed)
    observed = _simulate(
        config, app, policy, seed,
        tracer=RecordingTracer(), metrics=MetricsRegistry(),
    )
    return _compare("traced", f"{app}/{policy}", plain, observed)


def default_fault_plan():
    """The injection plan the fault-plan lane replays (phase-1 events)."""
    from repro.faults import FaultPlan, LinkFault, MigrationFlake

    return FaultPlan(
        link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
        migration_flakes=(MigrationFlake(rate=0.15, phase=1),),
    )


def check_faultplan_forced_slow(config, app: str, policy: str,
                                seed: int = 0, plan=None) -> list[str]:
    """A fault-injected run vs the same run forced fully slow.

    With phase-1 events the normal run replays phase 0 vectorized and
    the rest per-record; forcing the slow path makes every phase exact.
    Agreement proves the mid-run fast→slow handoff loses nothing.
    """
    faulted = config.replace(
        fault_plan=plan if plan is not None else default_fault_plan()
    )
    mixed = _simulate(faulted, app, policy, seed)
    with forced_slow_path():
        slow = _simulate(faulted, app, policy, seed)
    return _compare("faultplan", f"{app}/{policy}", mixed, slow)


def check_serial_vs_parallel(config, pairs, seed: int = 0,
                             jobs: int = 2) -> list[str]:
    """One batch through the worker pool vs the same batch in-process.

    Exercises result pickling, worker-side cache writes and request-order
    reassembly; both sweeps start from a cold in-process cache so the
    pool genuinely computes.
    """
    from repro.harness import runner
    from repro.sim import SimulationResult

    requests = [
        (config, app, policy, {"seed": seed}) for app, policy in pairs
    ]
    runner.clear_cache()
    parallel = runner.run_sims_parallel(requests, jobs=jobs)
    runner.clear_cache()
    serial = runner.run_sims_parallel(requests, jobs=1)
    mismatches: list[str] = []
    for (app, policy), left, right in zip(pairs, parallel, serial):
        label = f"{app}/{policy}"
        bad = [
            r for r in (left, right) if not isinstance(r, SimulationResult)
        ]
        if bad:
            mismatches.append(f"parallel {label}: run failed: {bad[0]}")
            continue
        mismatches.extend(_compare("parallel", label, left, right))
    return mismatches


def check_memoized_vs_cold(config, app: str, policy: str,
                           seed: int = 0) -> list[str]:
    """A snapshot-resumed run vs the same run replayed cold.

    Three runs against one in-memory :class:`~repro.sim.sweep.PhaseMemo`:
    a cold reference (no memo), a populate run that captures the
    phase-boundary snapshots, and a warm run that must resume from them.
    All three must agree bit-for-bit; on a multi-phase app the warm run
    must additionally have *hit* — a memo that silently stopped resuming
    would otherwise pass on the strength of the cold path alone.
    """
    from repro.sim.sweep import PhaseMemo

    cold = _simulate(config, app, policy, seed)
    memo = PhaseMemo()
    populate = _simulate(
        config, app, policy, seed,
        memo=memo.session(config, app, policy, seed=seed),
    )
    warm = _simulate(
        config, app, policy, seed,
        memo=memo.session(config, app, policy, seed=seed),
    )
    label = f"{app}/{policy}"
    mismatches = (
        _compare("memo(populate)", label, cold, populate)
        + _compare("memo(warm)", label, cold, warm)
    )
    stats = memo.stats()
    if stats["stores"] > 0 and stats["hits"] == 0:
        mismatches.append(
            f"memo {label}: snapshots were stored but the warm run "
            f"never resumed from one"
        )
    return mismatches


#: Policies the degenerate-tenancy lane covers on every registry app.
TENANCY_LANE_POLICIES = ("oasis", "grit")


def check_degenerate_tenancy(
    config, apps=None, policies=TENANCY_LANE_POLICIES, seed: int = 0,
) -> list[str]:
    """A single-tenant ``TenantMix`` vs the plain solo ``simulate()``.

    The degenerate mix runs through the full tenancy merge machinery
    (window layout with zero shift, the tenant-round-robin interleaver,
    object rebasing) and must come out bit-identical to the solo run —
    trace digest, core digest, and every counter.  Defaults to **all**
    registry workloads: this is the oracle that licenses the machine's
    "no tenant metadata → untouched solo path" fast-path gate.
    """
    from repro import get_workload, make_policy, simulate
    from repro.tenancy.mix import single_tenant_trace, trace_digest
    from repro.workloads.registry import APPLICATION_ORDER

    if apps is None:
        apps = APPLICATION_ORDER
    mismatches: list[str] = []
    for app in apps:
        solo_trace = get_workload(app, config, seed=seed)
        mix_trace = single_tenant_trace(app, config, seed=seed)
        if trace_digest(solo_trace) != trace_digest(mix_trace):
            mismatches.append(
                f"tenancy {app}: single-tenant mix trace digest differs "
                "from the solo trace"
            )
            continue
        for policy in policies:
            solo = simulate(config, solo_trace, make_policy(policy))
            mixed = simulate(config, mix_trace, make_policy(policy))
            mismatches.extend(
                _compare("tenancy", f"{app}/{policy}", solo, mixed)
            )
    return mismatches


# -- the oracle runner -----------------------------------------------------

_PAIR_LANES = {
    "fast_slow": check_fast_vs_slow,
    "cache": check_cached_vs_recomputed,
    "traced": check_traced_vs_untraced,
    "faultplan": check_faultplan_forced_slow,
    "memo": check_memoized_vs_cold,
}


def run_differential(
    apps=DEFAULT_APPS,
    policies=None,
    *,
    seed: int = 0,
    jobs: int = 2,
    lanes=None,
) -> dict:
    """Run every requested oracle lane over the (app, policy) matrix.

    Returns ``{"pairs": int, "comparisons": int, "lanes": [...],
    "mismatches": [str, ...]}`` — empty ``mismatches`` means every
    execution mode agreed bit-for-bit on every pair.
    """
    from repro import POLICY_FACTORIES, baseline_config

    if policies is None:
        policies = sorted(POLICY_FACTORIES)
    if lanes is None:
        lanes = LANES
    unknown = [lane for lane in lanes if lane not in LANES]
    if unknown:
        raise ValueError(f"unknown lanes {unknown}; known: {list(LANES)}")
    config = baseline_config()
    pairs = [(app, policy) for app in apps for policy in policies]
    # The memo lane insists on at least one multi-phase app (see
    # MEMO_APPS): single-phase traces have no interior boundary, so on
    # them memoized-vs-cold only proves the no-op path.
    memo_extra = (
        [
            (app, policy)
            for app in MEMO_APPS
            if app not in apps
            for policy in policies
        ]
        if "memo" in lanes
        else []
    )
    comparisons = 0
    mismatches: list[str] = []
    for app, policy in pairs:
        for lane in lanes:
            check = _PAIR_LANES.get(lane)
            if check is None:
                continue
            mismatches.extend(check(config, app, policy, seed))
            comparisons += 1
    for app, policy in memo_extra:
        mismatches.extend(check_memoized_vs_cold(config, app, policy, seed))
        comparisons += 1
    if "parallel" in lanes and len(pairs) > 1:
        mismatches.extend(
            check_serial_vs_parallel(config, pairs, seed=seed, jobs=jobs)
        )
        comparisons += len(pairs)
    if "tenancy" in lanes:
        # Batch lane over the full registry: a degenerate single-tenant
        # mix must be bit-identical to the solo run for every workload.
        from repro.workloads.registry import APPLICATION_ORDER

        mismatches.extend(check_degenerate_tenancy(config, seed=seed))
        comparisons += len(APPLICATION_ORDER) * len(TENANCY_LANE_POLICIES)
    return {
        "pairs": len(pairs),
        "comparisons": comparisons,
        "lanes": list(lanes),
        "mismatches": mismatches,
    }
