"""Simulator-wide verification: invariants, oracles, fuzzing, goldens.

Four layers, each usable on its own and all wired into
``repro-oasis verify`` / ``make verify``:

* :mod:`repro.verify.invariants` — machine-wide conservation laws
  (structural page-table/TLB/capacity consistency + counter algebra)
  checked at phase boundaries behind a null-object hook.
* :mod:`repro.verify.differential` — one oracle runner asserting
  bit-identical result digests across every execution mode (slow/fast
  path, serial/parallel harness, cached/recomputed, traced/untraced,
  fault-plan forced-slow).
* :mod:`repro.verify.fuzz` — a seeded random trace/config fuzzer with
  greedy delta-debugging shrinking that emits a minimal failing
  :class:`~repro.workloads.base.TraceBuilder` program plus a repro
  command.
* :mod:`repro.verify.golden` — content-addressed digests of per-phase
  results for the full workload × policy matrix, pinned under
  ``tests/golden/``.

Only :mod:`~repro.verify.invariants` is imported eagerly: it is
import-light and :mod:`repro.sim.machine` depends on it for the
null-verifier hook.  The other three import the whole simulator, so
they load lazily (PEP 562) to keep ``repro.sim.machine →
repro.verify`` cycle-free.
"""

from repro.verify.invariants import (
    NULL_VERIFIER,
    InvariantVerifier,
    InvariantViolation,
    Verifier,
    check_counter_laws,
    check_machine_invariants,
    run_invariant_suite,
    verified_simulate,
)

_LAZY_MODULES = ("differential", "fuzz", "golden")

__all__ = [
    "InvariantVerifier",
    "InvariantViolation",
    "NULL_VERIFIER",
    "Verifier",
    "check_counter_laws",
    "check_machine_invariants",
    "differential",
    "fuzz",
    "golden",
    "run_invariant_suite",
    "verified_simulate",
]


def __getattr__(name: str):
    if name in _LAZY_MODULES:
        import importlib

        module = importlib.import_module(f"repro.verify.{name}")
        globals()[name] = module
        return module
    raise AttributeError(f"module 'repro.verify' has no attribute {name!r}")
