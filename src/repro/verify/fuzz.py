"""Seeded trace/config fuzzer with delta-debugging shrinking.

Hand-written tests replay traces someone thought of; the fuzzer replays
traces nobody did — random object layouts, phase structures, access
mixes, oversubscription factors and fault plans — and holds every run to
the same oracles as the curated suites:

* the phase-boundary :class:`~repro.verify.invariants.InvariantVerifier`
  (structural consistency + counter algebra), and
* the fast-vs-slow differential digest.

A :class:`FuzzCase` is pure data (object sizes + a flat record list +
config knobs), deterministically derived from its seed, so any failure
is replayable from the seed alone.  When a case fails it is shrunk with
greedy delta debugging (:func:`shrink_case`): drop record chunks, then
unreferenced objects, then excess phases and weights, re-testing the
oracle after each cut.  The reporter emits the minimal failing case as a
standalone :class:`~repro.workloads.base.TraceBuilder` program
(:func:`case_program`) plus the one-line CLI repro command, so a fuzz
finding lands in a bug report as runnable code, not a seed number.

Entry point: :func:`run_fuzz` (``repro-oasis verify --fuzz``).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field, replace

#: Policies a fuzz case replays: one per resolution style (pure
#: migration, counter-driven, read duplication, object-aware) keeps the
#: oracle surface wide while the per-case cost stays sub-second.
DEFAULT_POLICIES = ("on_touch", "access_counter", "duplication", "oasis")

#: One trace record: (phase, gpu, object index, page offset, write, weight).
Record = tuple[int, int, int, int, bool, int]


@dataclass(frozen=True)
class FuzzCase:
    """One generated scenario — pure data, rebuildable from its seed."""

    seed: int
    n_gpus: int
    #: ``(name, n_pages)`` per object, allocation order = Obj_ID.
    objects: tuple[tuple[str, int], ...]
    n_phases: int
    records: tuple[Record, ...]
    oversubscription: float | None = None
    fault_plan: object = None
    policies: tuple[str, ...] = DEFAULT_POLICIES

    @property
    def n_records(self) -> int:
        return len(self.records)


def generate_case(seed: int, policies=DEFAULT_POLICIES) -> FuzzCase:
    """Derive one random scenario deterministically from ``seed``."""
    rng = random.Random(seed)
    n_gpus = rng.choice((2, 4))
    n_objects = rng.randint(1, 3)
    objects = tuple(
        (f"o{i}", rng.randint(4, 32)) for i in range(n_objects)
    )
    n_phases = rng.randint(1, 3)
    records: list[Record] = []
    for phase in range(n_phases):
        for _ in range(rng.randint(5, 60)):
            obj = rng.randrange(n_objects)
            records.append((
                phase,
                rng.randrange(n_gpus),
                obj,
                rng.randrange(objects[obj][1]),
                rng.random() < 0.3,
                rng.choice((1, 1, 1, 2, 4, 16)),
            ))
    oversubscription = (
        round(rng.uniform(1.2, 2.0), 2) if rng.random() < 0.2 else None
    )
    fault_plan = _random_plan(rng, n_gpus, n_phases) if rng.random() < 0.3 else None
    return FuzzCase(
        seed=seed,
        n_gpus=n_gpus,
        objects=objects,
        n_phases=n_phases,
        records=tuple(records),
        oversubscription=oversubscription,
        fault_plan=fault_plan,
        policies=tuple(policies),
    )


def _random_plan(rng: random.Random, n_gpus: int, n_phases: int):
    from repro.faults import FaultPlan, LinkFault, MigrationFlake

    link_faults = ()
    flakes = ()
    if rng.random() < 0.7:
        a = rng.randrange(n_gpus)
        b = (a + 1 + rng.randrange(n_gpus - 1)) % n_gpus if n_gpus > 1 else a
        if a != b:
            link_faults = (LinkFault(
                a=min(a, b), b=max(a, b),
                phase=rng.randrange(n_phases),
                bandwidth_factor=rng.choice((0.0, 0.25, 0.5)),
            ),)
    if rng.random() < 0.5:
        flakes = (MigrationFlake(
            rate=round(rng.uniform(0.05, 0.3), 2),
            phase=rng.randrange(n_phases),
        ),)
    if not link_faults and not flakes:
        return None
    return FaultPlan(link_faults=link_faults, migration_flakes=flakes)


# -- execution -------------------------------------------------------------


def build_trace(case: FuzzCase):
    """Materialize the case's trace through :class:`TraceBuilder`."""
    from repro.config import baseline_config
    from repro.workloads.base import TraceBuilder

    page_size = baseline_config().page_size
    builder = TraceBuilder(
        f"fuzz{case.seed}", case.n_gpus, page_size, seed=case.seed, burst=4
    )
    objs = [
        builder.alloc(name, n_pages * page_size)
        for name, n_pages in case.objects
    ]
    for phase in range(case.n_phases):
        builder.begin_phase(f"p{phase}", explicit=(phase == 0))
        for rec_phase, gpu, obj, offset, write, weight in case.records:
            if rec_phase == phase:
                builder.emit(gpu, objs[obj], offset, write, weight)
        builder.end_phase()
    return builder.build()


def case_config(case: FuzzCase):
    from repro.config import baseline_config

    return baseline_config(
        n_gpus=case.n_gpus,
        oversubscription=case.oversubscription,
        fault_plan=case.fault_plan,
    )


def run_case(case: FuzzCase) -> str | None:
    """Hold one case to every oracle; the first failure, or ``None``.

    Oracles: trace construction itself, the phase-boundary invariant
    verifier under each policy, and the fast-vs-slow differential
    digest.  Any unexpected exception is a failure too — fuzzing exists
    to find crashes as much as law violations.
    """
    from repro import make_policy
    from repro.sim.machine import Machine
    from repro.verify.differential import (
        core_digest,
        diff_payloads,
        forced_slow_path,
        result_payload,
    )
    from repro.verify.invariants import InvariantVerifier

    try:
        config = case_config(case)
        trace = build_trace(case)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return f"trace construction raised {type(exc).__name__}: {exc}"
    for policy in case.policies:
        verifier = InvariantVerifier(strict=False)
        try:
            result = Machine(
                config, trace, make_policy(policy), verifier=verifier
            ).run()
        except Exception as exc:  # noqa: BLE001
            return f"{policy}: replay raised {type(exc).__name__}: {exc}"
        if verifier.violations:
            return f"{policy}: {verifier.violations[0]}"
        try:
            with forced_slow_path():
                slow = Machine(config, trace, make_policy(policy)).run()
        except Exception as exc:  # noqa: BLE001
            return f"{policy}: slow-path replay raised {type(exc).__name__}: {exc}"
        if core_digest(result) != core_digest(slow):
            diffs = diff_payloads(
                result_payload(result), result_payload(slow)
            )
            head = diffs[0] if diffs else "digest mismatch"
            return f"{policy}: fast/slow divergence: {head}"
    return None


# -- shrinking -------------------------------------------------------------


def _ddmin(items: list, still_fails) -> list:
    """Greedy delta debugging: remove ever-smaller chunks while failing."""
    chunk = max(1, len(items) // 2)
    while chunk >= 1:
        i = 0
        while i < len(items):
            trial = items[:i] + items[i + chunk:]
            if trial and still_fails(trial):
                items = trial
            else:
                i += chunk
        chunk //= 2
    return items


def shrink_case(case: FuzzCase, failure: str) -> FuzzCase:
    """Shrink a failing case while it keeps failing *the same way*.

    Matching on the failure's first token (the policy/oracle) rather
    than the exact message keeps the shrink from wandering onto an
    unrelated bug while still tolerating violation details (counts,
    pages) changing as records disappear.
    """
    marker = failure.split(":", 1)[0]

    def fails_same(candidate: FuzzCase) -> bool:
        found = run_case(candidate)
        return found is not None and found.split(":", 1)[0] == marker

    records = _ddmin(
        list(case.records),
        lambda recs: fails_same(replace(case, records=tuple(recs))),
    )
    case = replace(case, records=tuple(records))

    # Weights to 1 where the failure allows it.
    slim = tuple(
        (ph, gpu, obj, off, wr, 1) for ph, gpu, obj, off, wr, _ in case.records
    )
    if slim != case.records and fails_same(replace(case, records=slim)):
        case = replace(case, records=slim)

    # Drop the config complications when they are not load-bearing.
    for knob in ("fault_plan", "oversubscription"):
        if getattr(case, knob) is not None:
            trial = replace(case, **{knob: None})
            if fails_same(trial):
                case = trial

    # Compact the phase structure: without a fault plan, phase numbers
    # carry no meaning beyond ordering, so renumber the surviving ones
    # consecutively; with a plan (or when compaction changes behavior)
    # fall back to just trimming empty trailing phases.
    used_phases = sorted({rec[0] for rec in case.records})
    if used_phases:
        if case.fault_plan is None and used_phases != list(
            range(len(used_phases))
        ):
            remap = {ph: i for i, ph in enumerate(used_phases)}
            recs = tuple(
                (remap[ph], gpu, obj, off, wr, wt)
                for ph, gpu, obj, off, wr, wt in case.records
            )
            trial = replace(
                case, records=recs, n_phases=len(used_phases)
            )
            if fails_same(trial):
                case = trial
        trimmed = max(rec[0] for rec in case.records) + 1
        if trimmed < case.n_phases:
            trial = replace(case, n_phases=trimmed)
            if fails_same(trial):
                case = trial

    # Drop unreferenced trailing objects (interior ones shift Obj_IDs
    # and page layout, so only a suffix cut preserves the scenario).
    used_objects = {rec[2] for rec in case.records}
    keep = max(used_objects) + 1 if used_objects else 1
    if keep < len(case.objects):
        trial = replace(case, objects=case.objects[:keep])
        if fails_same(trial):
            case = trial

    # One policy is enough for the report when it still fails alone.
    marker_policy = marker.strip()
    if marker_policy in case.policies and len(case.policies) > 1:
        trial = replace(case, policies=(marker_policy,))
        if fails_same(trial):
            case = trial
    return case


# -- reporting -------------------------------------------------------------


def case_program(case: FuzzCase) -> str:
    """The minimal failing case as a standalone TraceBuilder program."""
    lines = [
        "from repro import baseline_config, make_policy",
        "from repro.sim.machine import Machine",
        "from repro.verify.invariants import InvariantVerifier",
        "from repro.workloads.base import TraceBuilder",
    ]
    if case.fault_plan is not None:
        lines.append(
            "from repro.faults import FaultPlan, LinkFault, "
            "MigrationFlake, PageRetirement"
        )
    lines.append("")
    knobs = [f"n_gpus={case.n_gpus}"]
    if case.oversubscription is not None:
        knobs.append(f"oversubscription={case.oversubscription!r}")
    if case.fault_plan is not None:
        knobs.append(f"fault_plan={case.fault_plan!r}")
    lines.append(f"config = baseline_config({', '.join(knobs)})")
    lines.append(
        f"builder = TraceBuilder({f'fuzz{case.seed}'!r}, {case.n_gpus}, "
        f"config.page_size, seed={case.seed}, burst=4)"
    )
    for i, (name, n_pages) in enumerate(case.objects):
        lines.append(
            f"o{i} = builder.alloc({name!r}, {n_pages} * config.page_size)"
        )
    for phase in range(case.n_phases):
        lines.append(
            f"builder.begin_phase('p{phase}', explicit={phase == 0})"
        )
        for rec_phase, gpu, obj, offset, write, weight in case.records:
            if rec_phase == phase:
                lines.append(
                    f"builder.emit({gpu}, o{obj}, {offset}, {write}, "
                    f"{weight})"
                )
        lines.append("builder.end_phase()")
    lines.append("trace = builder.build()")
    lines.append(f"for policy in {list(case.policies)!r}:")
    lines.append("    verifier = InvariantVerifier(strict=False)")
    lines.append(
        "    Machine(config, trace, make_policy(policy), "
        "verifier=verifier).run()"
    )
    lines.append("    assert not verifier.violations, verifier.violations")
    return "\n".join(lines) + "\n"


def repro_command(case: FuzzCase) -> str:
    """The one-liner that regenerates and re-runs exactly this case."""
    return (
        f"PYTHONPATH=src python -m repro.cli verify --fuzz "
        f"--seed {case.seed} --cases 1"
    )


# -- tenancy fuzzing -------------------------------------------------------

#: Policies a tenant-mix case replays: migration-only plus the two
#: object-aware contenders, whose per-object bits are the state most
#: likely to bleed across interleaved address spaces.
TENANCY_POLICIES = ("on_touch", "oasis", "grit")


@dataclass(frozen=True)
class TenantFuzzCase:
    """A 2-tenant mix of two independently generated sub-cases.

    Both halves share a GPU count and carry no config complications
    (fault plans / oversubscription stay on the solo fuzzer); the mix
    machinery under test is the window layout, the interleaver, and the
    per-tenant attribution laws.
    """

    seed: int
    a: FuzzCase
    b: FuzzCase
    policies: tuple[str, ...] = TENANCY_POLICIES

    @property
    def n_records(self) -> int:
        return len(self.a.records) + len(self.b.records)


def _tenant_half(rng: random.Random, seed: int, n_gpus: int) -> FuzzCase:
    n_objects = rng.randint(1, 3)
    objects = tuple(
        (f"o{i}", rng.randint(4, 32)) for i in range(n_objects)
    )
    n_phases = rng.randint(1, 3)
    records: list[Record] = []
    for phase in range(n_phases):
        for _ in range(rng.randint(5, 40)):
            obj = rng.randrange(n_objects)
            records.append((
                phase,
                rng.randrange(n_gpus),
                obj,
                rng.randrange(objects[obj][1]),
                rng.random() < 0.3,
                rng.choice((1, 1, 1, 2, 4, 16)),
            ))
    return FuzzCase(
        seed=seed,
        n_gpus=n_gpus,
        objects=objects,
        n_phases=n_phases,
        records=tuple(records),
    )


def generate_tenant_case(
    seed: int, policies=TENANCY_POLICIES,
) -> TenantFuzzCase:
    """Derive one 2-tenant scenario deterministically from ``seed``."""
    rng = random.Random(seed ^ 0x7E4A9C1)
    n_gpus = rng.choice((2, 4))
    return TenantFuzzCase(
        seed=seed,
        a=_tenant_half(rng, seed, n_gpus),
        b=_tenant_half(rng, seed + 1_000_003, n_gpus),
        policies=tuple(policies),
    )


def build_tenant_trace(case: TenantFuzzCase):
    """Materialize both halves and merge them into one 2-tenant trace."""
    from repro.tenancy.mix import merge_traces

    return merge_traces(
        [build_trace(case.a), build_trace(case.b)],
        ["a", "b"],
        burst=4,
        name=f"tfuzz{case.seed}",
    )


def run_tenant_case(case: TenantFuzzCase) -> str | None:
    """Hold one tenant mix to every oracle; first failure or ``None``.

    Oracles: the merge itself (windows disjoint, record counts conserve,
    re-merging is bit-identical), the phase-boundary invariant verifier
    under each policy — which now includes the per-tenant counter
    conservation laws — and replay determinism (two runs, one digest).
    """
    from repro import make_policy
    from repro.sim.machine import Machine
    from repro.tenancy.mix import trace_digest
    from repro.verify.differential import core_digest, counters_digest
    from repro.verify.invariants import InvariantVerifier

    try:
        config = case_config(case.a)
        trace = build_tenant_trace(case)
    except Exception as exc:  # noqa: BLE001 — any crash is a finding
        return f"merge: trace merge raised {type(exc).__name__}: {exc}"
    tenants = trace.tenants
    if tenants is None or len(tenants) != 2:
        return "merge: merged trace lost its tenant metadata"
    a, b = tenants
    if a.first_page + a.n_pages > b.first_page:
        return (
            f"merge: tenant windows overlap "
            f"([{a.first_page}, +{a.n_pages}) vs {b.first_page})"
        )
    want = len(case.a.records) + len(case.b.records)
    got = trace.total_records
    if got != want:
        return f"merge: merged {got} records != sum of inputs {want}"
    if trace_digest(trace) != trace_digest(build_tenant_trace(case)):
        return "merge: re-merging the same inputs changed the trace digest"
    for policy in case.policies:
        verifier = InvariantVerifier(strict=False)
        try:
            result = Machine(
                config, trace, make_policy(policy), verifier=verifier
            ).run()
        except Exception as exc:  # noqa: BLE001
            return f"{policy}: replay raised {type(exc).__name__}: {exc}"
        if verifier.violations:
            return f"{policy}: {verifier.violations[0]}"
        try:
            again = Machine(config, trace, make_policy(policy)).run()
        except Exception as exc:  # noqa: BLE001
            return f"{policy}: re-replay raised {type(exc).__name__}: {exc}"
        if core_digest(result) != core_digest(again) or (
            counters_digest(result) != counters_digest(again)
        ):
            return f"{policy}: multi-tenant replay is nondeterministic"
    return None


def shrink_tenant_case(
    case: TenantFuzzCase, failure: str,
) -> TenantFuzzCase:
    """ddmin both halves while the mix keeps failing the same way."""
    marker = failure.split(":", 1)[0]

    def fails_same(candidate: TenantFuzzCase) -> bool:
        found = run_tenant_case(candidate)
        return found is not None and found.split(":", 1)[0] == marker

    for half in ("a", "b"):
        sub = getattr(case, half)
        records = _ddmin(
            list(sub.records),
            lambda recs, h=half, s=sub: fails_same(
                replace(case, **{h: replace(s, records=tuple(recs))})
            ),
        )
        trial = replace(
            case, **{half: replace(sub, records=tuple(records))}
        )
        if fails_same(trial):
            case = trial

    for half in ("a", "b"):
        sub = getattr(case, half)
        slim = tuple(
            (ph, gpu, obj, off, wr, 1)
            for ph, gpu, obj, off, wr, _ in sub.records
        )
        if slim != sub.records:
            trial = replace(case, **{half: replace(sub, records=slim)})
            if fails_same(trial):
                case = trial
        used = {rec[2] for rec in getattr(case, half).records}
        keep = max(used) + 1 if used else 1
        sub = getattr(case, half)
        if keep < len(sub.objects):
            trial = replace(
                case, **{half: replace(sub, objects=sub.objects[:keep])}
            )
            if fails_same(trial):
                case = trial

    marker_policy = marker.strip()
    if marker_policy in case.policies and len(case.policies) > 1:
        trial = replace(case, policies=(marker_policy,))
        if fails_same(trial):
            case = trial
    return case


def tenant_case_program(case: TenantFuzzCase) -> str:
    """The minimal failing mix as a standalone two-builder program."""
    lines = [
        "from repro import baseline_config, make_policy",
        "from repro.sim.machine import Machine",
        "from repro.tenancy.mix import merge_traces",
        "from repro.verify.invariants import InvariantVerifier",
        "from repro.workloads.base import TraceBuilder",
        "",
        f"config = baseline_config(n_gpus={case.a.n_gpus})",
    ]
    for tag, sub in (("a", case.a), ("b", case.b)):
        lines.append(
            f"b_{tag} = TraceBuilder({f'fuzz{sub.seed}'!r}, {sub.n_gpus}, "
            f"config.page_size, seed={sub.seed}, burst=4)"
        )
        for i, (name, n_pages) in enumerate(sub.objects):
            lines.append(
                f"{tag}o{i} = b_{tag}.alloc({name!r}, "
                f"{n_pages} * config.page_size)"
            )
        for phase in range(sub.n_phases):
            lines.append(
                f"b_{tag}.begin_phase('p{phase}', explicit={phase == 0})"
            )
            for rec_phase, gpu, obj, offset, write, weight in sub.records:
                if rec_phase == phase:
                    lines.append(
                        f"b_{tag}.emit({gpu}, {tag}o{obj}, {offset}, "
                        f"{write}, {weight})"
                    )
            lines.append(f"b_{tag}.end_phase()")
    lines.append(
        "trace = merge_traces([b_a.build(), b_b.build()], ['a', 'b'], "
        "burst=4)"
    )
    lines.append(f"for policy in {list(case.policies)!r}:")
    lines.append("    verifier = InvariantVerifier(strict=False)")
    lines.append(
        "    Machine(config, trace, make_policy(policy), "
        "verifier=verifier).run()"
    )
    lines.append("    assert not verifier.violations, verifier.violations")
    return "\n".join(lines) + "\n"


def tenant_repro_command(case: TenantFuzzCase) -> str:
    """The one-liner that regenerates and re-runs exactly this mix."""
    return (
        f"PYTHONPATH=src python -m repro.cli verify --fuzz --tenancy "
        f"--seed {case.seed} --cases 1"
    )


@dataclass
class FuzzFailure:
    """One shrunk finding, ready for a bug report."""

    seed: int
    failure: str
    n_records: int
    program: str
    command: str


def run_fuzz(
    seed: int = 0,
    *,
    cases: int | None = None,
    budget_s: float | None = None,
    policies=DEFAULT_POLICIES,
    stop_at: int = 1,
    on_case=None,
) -> dict:
    """Fuzz until ``cases`` cases ran or ``budget_s`` seconds elapsed.

    Case *i* uses seed ``seed + i``, so ``--seed S --cases 1``
    regenerates exactly the case a longer campaign found.  Stops early
    after ``stop_at`` failures (each reported shrunk).  ``on_case`` is an
    optional test hook called with each generated case's run result.

    Returns ``{"cases": int, "elapsed_s": float,
    "failures": [FuzzFailure, ...]}``.
    """
    if cases is None and budget_s is None:
        cases = 50
    started = time.monotonic()
    ran = 0
    failures: list[FuzzFailure] = []
    index = 0
    while True:
        if cases is not None and ran >= cases:
            break
        if budget_s is not None and time.monotonic() - started >= budget_s:
            break
        case = generate_case(seed + index, policies=policies)
        index += 1
        ran += 1
        failure = run_case(case)
        if on_case is not None:
            on_case(case, failure)
        if failure is None:
            continue
        shrunk = shrink_case(case, failure)
        final = run_case(shrunk) or failure
        failures.append(FuzzFailure(
            seed=shrunk.seed,
            failure=final,
            n_records=shrunk.n_records,
            program=case_program(shrunk),
            command=repro_command(shrunk),
        ))
        if len(failures) >= stop_at:
            break
    return {
        "cases": ran,
        "elapsed_s": time.monotonic() - started,
        "failures": failures,
    }


def run_tenancy_fuzz(
    seed: int = 0,
    *,
    cases: int | None = None,
    budget_s: float | None = None,
    policies=TENANCY_POLICIES,
    stop_at: int = 1,
    on_case=None,
) -> dict:
    """Fuzz 2-tenant mixes (``repro-oasis verify --fuzz --tenancy``).

    Same contract as :func:`run_fuzz`: case *i* uses seed ``seed + i``,
    failures are ddmin-shrunk (both halves) and reported as standalone
    two-builder programs.
    """
    if cases is None and budget_s is None:
        cases = 50
    started = time.monotonic()
    ran = 0
    failures: list[FuzzFailure] = []
    index = 0
    while True:
        if cases is not None and ran >= cases:
            break
        if budget_s is not None and time.monotonic() - started >= budget_s:
            break
        case = generate_tenant_case(seed + index, policies=policies)
        index += 1
        ran += 1
        failure = run_tenant_case(case)
        if on_case is not None:
            on_case(case, failure)
        if failure is None:
            continue
        shrunk = shrink_tenant_case(case, failure)
        final = run_tenant_case(shrunk) or failure
        failures.append(FuzzFailure(
            seed=shrunk.seed,
            failure=final,
            n_records=shrunk.n_records,
            program=tenant_case_program(shrunk),
            command=tenant_repro_command(shrunk),
        ))
        if len(failures) >= stop_at:
            break
    return {
        "cases": ran,
        "elapsed_s": time.monotonic() - started,
        "failures": failures,
    }
