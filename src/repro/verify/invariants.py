"""Machine-wide invariants: structural consistency + counter algebra.

The simulator's credibility rests on two families of laws that must hold
at every quiescent point (phase boundaries, end of run):

**Structural invariants** (:func:`check_machine_invariants`) — the
cross-component state is consistent: every PTE points at a live copy,
copy-holder sets agree with page ownership, capacity accounting mirrors
the page tables, TLBs never cache translations for unmapped pages,
retired frames stay empty.

**Counter algebra** (:func:`check_counter_laws`) — the recorded event
counts obey exact conservation laws derived from the access path:

* ``fault.page + fault.protection == Σ fault.by_gpu.*`` — every serviced
  fault is attributed to exactly one GPU;
* ``Σ fault.by_object.* <= total faults`` (equality when every traced
  page belongs to an object);
* **access conservation**: every dynamic access replayed so far is
  accounted exactly once —
  ``replayed == access.local + access.remote + access.host + fault.page``
  (the faulting access of a page fault is the one access that never
  reaches a data branch);
* **link-traffic conservation**: on reroute-free runs the per-link byte
  totals equal the driver's transfer counters plus the remote-access
  granules — ``nvlink_bytes == traffic.nvlink_bytes + 128·access.remote``
  and ``pcie_bytes == traffic.pcie_bytes + 128·access.host``; with
  reroutes the per-link totals may only exceed that floor (each rerouted
  message is charged on both hop links);
* **resolution accounting**: every fault installs a translation through
  exactly one driver primitive, so
  ``migration.count + duplication.count + duplication.remap +
  collapse.count + remote_map.count >= total faults`` (counter-threshold
  migrations add installs without faults; the hypothetical ideal policy
  is exempt — it can re-map a still-resident copy without any counter);
* **per-policy laws** where the resolution path is fixed: plain on-touch
  resolves every page fault with exactly one migration (or one injected
  fallback), and never sees a protection fault.

Checks run behind a null-object hook (:data:`NULL_VERIFIER`, the same
pattern as :data:`repro.obs.tracer.NULL_TRACER`): an unverified run pays
one attribute test per phase and stays bit-identical, and because all
checks happen at quiescent points the vectorized fast path stays engaged
even *with* verification on.

This module is import-light on purpose (no top-level ``repro`` imports
beyond nothing at all): :mod:`repro.sim.machine` imports it, and the
wider verify package (differential/fuzz/golden) imports the simulator.
"""

from __future__ import annotations


class InvariantViolation(AssertionError):
    """A machine-wide invariant or counter law does not hold."""


class Verifier:
    """Null-object verification hook (default: every check disabled).

    The machine calls :meth:`after_phase` at every phase boundary (after
    clocks re-synchronize and frees run) and :meth:`after_run` once the
    result is assembled.  With this base class both are no-ops and
    ``enabled`` is ``False``, so the unverified path costs one attribute
    test per phase.
    """

    enabled = False

    #: Violations collected so far (always empty on the null verifier).
    violations: tuple = ()

    def after_phase(self, machine, phase_index: int,
                    replayed_accesses: int) -> None:
        """Called at each phase boundary (quiescent machine)."""

    def after_run(self, machine, result) -> None:
        """Called once after the :class:`SimulationResult` is built."""


#: The shared do-nothing verifier (attach-nothing default).
NULL_VERIFIER = Verifier()


class InvariantVerifier(Verifier):
    """Checks structural invariants and counter laws at phase boundaries.

    Args:
        structural: run :func:`check_machine_invariants` (skipped
            automatically for policies that require incoherent page
            tables — the hypothetical ideal configuration violates the
            single-writer invariants by design).
        counters: run :func:`check_counter_laws`.
        strict: raise :class:`InvariantViolation` at the first violating
            phase instead of collecting silently (violations are
            recorded either way).
    """

    enabled = True

    def __init__(self, *, structural: bool = True, counters: bool = True,
                 strict: bool = True) -> None:
        self.structural = structural
        self.counters = counters
        self.strict = strict
        self.violations: list[str] = []
        #: Phase boundaries actually checked (for "did it run" asserts).
        self.checked_phases = 0

    def _check(self, machine, where: str, replayed_accesses: int | None) -> None:
        found: list[str] = []
        if self.structural and not getattr(
            machine.policy, "requires_incoherent_page_tables", False
        ):
            found.extend(check_machine_invariants(machine))
        if self.counters:
            found.extend(
                check_counter_laws(machine, replayed_accesses=replayed_accesses)
            )
        if found:
            self.violations.extend(f"{where}: {v}" for v in found)
            if self.strict:
                raise InvariantViolation(
                    f"{len(found)} invariant violation(s) at {where}:\n  "
                    + "\n  ".join(found)
                )

    def after_phase(self, machine, phase_index: int,
                    replayed_accesses: int) -> None:
        self.checked_phases += 1
        self._check(machine, f"phase {phase_index}", replayed_accesses)

    def after_run(self, machine, result) -> None:
        self._check(machine, "end of run", machine.trace.total_accesses)


# -- structural invariants -------------------------------------------------


def check_machine_invariants(machine) -> list[str]:
    """Every structural invariant violation currently present.

    Returns an empty list on a consistent machine.  Meant to be called
    at quiescent points (between driver primitives, at phase boundaries,
    after a run) — mid-primitive the tables are legitimately in flux.
    """
    from repro.config import HOST

    violations: list[str] = []
    pt = machine.page_tables
    trace = machine.trace
    n_gpus = machine.config.n_gpus

    try:
        pt.check_invariants()
    except AssertionError as exc:
        violations.append(f"page-table structure: {exc}")

    injector = machine.injector
    retired = (
        {(g, p) for (g, p) in injector._retired} if injector is not None else set()
    )

    pages = range(trace.first_page, trace.first_page + trace.n_pages)
    for page in pages:
        owner = pt.location(page)
        holders = pt.copy_holders(page)
        if owner != HOST and owner not in holders:
            violations.append(
                f"page {page}: owner GPU {owner} not in copy set {holders}"
            )
        for gpu in range(n_gpus):
            mapped = pt.is_mapped(gpu, page)
            has_copy = pt.has_copy(gpu, page)
            if mapped and not has_copy:
                # Remote mapping: the data it points at must be live
                # (host memory always is; a GPU owner must hold a copy).
                if owner != HOST and owner not in holders:
                    violations.append(
                        f"page {page}: GPU {gpu} remote-maps a dead copy"
                    )
            if has_copy and (gpu, page) in retired:
                violations.append(
                    f"page {page}: copy on GPU {gpu}'s retired frame"
                )

    # Capacity accounting mirrors the copy sets.  (Only exact under host
    # initial placement: distributed placement seeds copies the capacity
    # manager learns about lazily.)
    if machine.config.initial_placement == "host":
        for gpu in range(n_gpus):
            resident = machine.capacity.resident_pages(gpu)
            holding = {
                page for page in pages if pt.has_copy(gpu, page)
            }
            if resident != holding:
                extra = sorted(resident - holding)[:5]
                missing = sorted(holding - resident)[:5]
                violations.append(
                    f"GPU {gpu}: capacity residency != copy set "
                    f"(extra={extra}, missing={missing})"
                )

    if machine.capacity.enabled:
        cap = machine.capacity.capacity_pages
        for gpu in range(n_gpus):
            count = machine.capacity.resident_count(gpu)
            if count > cap:
                violations.append(
                    f"GPU {gpu}: {count} resident pages over capacity {cap}"
                )

    # A cached translation must correspond to a live mapping: shootdowns
    # on unmap are what keep TLBs coherent.
    first, last = trace.first_page, trace.first_page + trace.n_pages
    for gpu in range(n_gpus):
        for page in machine.tlbs[gpu].cached_pages():
            if first <= page < last and not pt.is_mapped(gpu, page):
                violations.append(
                    f"GPU {gpu}: TLB caches unmapped page {page}"
                )

    return violations


# -- counter algebra -------------------------------------------------------

#: Install primitives: each one maps a translation on the requesting GPU.
_INSTALL_COUNTERS = (
    "migration.count",
    "duplication.count",
    "duplication.remap",
    "collapse.count",
    "remote_map.count",
)


def check_counter_laws(machine, replayed_accesses: int | None = None) -> list[str]:
    """Every counter-algebra violation currently present.

    Args:
        machine: the (quiescent) machine to check.
        replayed_accesses: dynamic accesses replayed so far (cumulative
            sum of phase weights).  ``None`` skips the access- and
            traffic-conservation laws, which need it.
    """
    from repro.sim.machine import REMOTE_ACCESS_BYTES

    stats = machine.stats
    violations: list[str] = []

    for name, value in stats.items():
        if value < 0:
            violations.append(f"counter {name} is negative ({value})")

    page_faults = stats["fault.page"]
    protection_faults = stats["fault.protection"]
    total_faults = page_faults + protection_faults

    by_gpu = stats.total("fault.by_gpu.")
    if by_gpu != total_faults:
        violations.append(
            f"fault attribution: sum(fault.by_gpu.*)={by_gpu:g} != "
            f"fault.page+fault.protection={total_faults:g}"
        )

    by_object = stats.total("fault.by_object.")
    fully_covered = all(obj >= 0 for obj in machine._obj_of_page)
    if fully_covered:
        if by_object != total_faults:
            violations.append(
                f"fault attribution: sum(fault.by_object.*)={by_object:g} "
                f"!= total faults {total_faults:g}"
            )
    elif by_object > total_faults:
        violations.append(
            f"fault attribution: sum(fault.by_object.*)={by_object:g} > "
            f"total faults {total_faults:g}"
        )

    local = stats["access.local"]
    remote = stats["access.remote"]
    host = stats["access.host"]
    if replayed_accesses is not None:
        accounted = local + remote + host + page_faults
        if accounted != replayed_accesses:
            violations.append(
                "access conservation: local+remote+host+fault.page="
                f"{accounted:g} != replayed accesses {replayed_accesses:g}"
            )
        if stats["access.degraded"] > remote + host:
            violations.append(
                f"access.degraded={stats['access.degraded']:g} exceeds "
                f"remote+host accesses {remote + host:g}"
            )

        # Link-traffic conservation.  Degraded (zero-copy) accesses and
        # driver page moves are the only traffic sources; reroutes charge
        # both hop links, so with reroutes the law relaxes to a floor.
        nvlink = machine.topology.nvlink_bytes()
        pcie = machine.topology.pcie_bytes()
        nvlink_floor = (
            stats["traffic.nvlink_bytes"] + REMOTE_ACCESS_BYTES * remote
        )
        pcie_floor = stats["traffic.pcie_bytes"] + REMOTE_ACCESS_BYTES * host
        if stats["fault_inject.reroutes"] == 0:
            if nvlink != nvlink_floor:
                violations.append(
                    f"traffic conservation: nvlink bytes {nvlink:g} != "
                    f"traffic.nvlink_bytes + {REMOTE_ACCESS_BYTES}*"
                    f"access.remote = {nvlink_floor:g}"
                )
            if pcie != pcie_floor:
                violations.append(
                    f"traffic conservation: pcie bytes {pcie:g} != "
                    f"traffic.pcie_bytes + {REMOTE_ACCESS_BYTES}*"
                    f"access.host = {pcie_floor:g}"
                )
        elif nvlink + pcie < nvlink_floor + pcie_floor:
            violations.append(
                "traffic conservation: rerouted link bytes "
                f"{nvlink + pcie:g} below the transfer floor "
                f"{nvlink_floor + pcie_floor:g}"
            )

    # Resolution accounting: every fault installs a translation through
    # one driver primitive.  Ideal is exempt: it can re-map a page whose
    # copy is still resident without touching any install counter.
    if not getattr(machine.policy, "requires_incoherent_page_tables", False):
        installs = sum(stats[name] for name in _INSTALL_COUNTERS)
        if installs < total_faults:
            violations.append(
                f"resolution accounting: {installs:g} installs < "
                f"{total_faults:g} faults"
            )

    # TLB stats conservation: every probe is a hit or a miss, and the L2
    # is probed exactly once per L1 miss (inclusive two-level hierarchy).
    for gpu, hierarchy in enumerate(machine.tlbs):
        for level, tlb in (("l1", hierarchy.l1), ("l2", hierarchy.l2)):
            if tlb.hits + tlb.misses != tlb.lookups:
                violations.append(
                    f"tlb conservation: gpu{gpu} {level} hits+misses="
                    f"{tlb.hits + tlb.misses} != lookups {tlb.lookups}"
                )
        if hierarchy.l2.lookups != hierarchy.l1.misses:
            violations.append(
                f"tlb conservation: gpu{gpu} l2 lookups "
                f"{hierarchy.l2.lookups} != l1 misses {hierarchy.l1.misses}"
            )

    # Multi-tenant attribution conservation: tenant-namespaced counters
    # are strictly additive decompositions of their aggregate families.
    tenancy = getattr(machine, "_tenancy", None)
    if tenancy is not None:
        def tenant_sum(suffix: str) -> float:
            return sum(
                stats[f"tenant.{name}.{suffix}"] for name in tenancy.names
            )

        for family in (
            "fault.page", "fault.protection", "access.local",
            "access.remote", "access.host", "migration.count",
            "migration.bytes", "duplication.count", "eviction.count",
        ):
            attributed = tenant_sum(family)
            aggregate = stats[family]
            if attributed != aggregate:
                violations.append(
                    f"tenancy conservation: sum(tenant.*.{family})="
                    f"{attributed:g} != {family}={aggregate:g}"
                )
        l1_probes = sum(
            h.l1.hits + h.l1.misses for h in machine.tlbs
        )
        attributed_lookups = tenant_sum("tlb.lookups")
        if attributed_lookups != l1_probes:
            violations.append(
                "tenancy conservation: sum(tenant.*.tlb.lookups)="
                f"{attributed_lookups:g} != L1 probes {l1_probes:g}"
            )
        walks = sum(h.l2.misses for h in machine.tlbs)
        attributed_walks = tenant_sum("tlb.walks")
        if attributed_walks != walks:
            violations.append(
                "tenancy conservation: sum(tenant.*.tlb.walks)="
                f"{attributed_walks:g} != page-table walks {walks:g}"
            )

    if machine.policy.name == "on_touch":
        if protection_faults:
            violations.append(
                f"on_touch law: {protection_faults:g} protection faults "
                "(on-touch never creates read duplicates)"
            )
        resolved = stats["migration.count"] + stats["driver.migration_fallbacks"]
        if resolved != page_faults:
            violations.append(
                "on_touch law: migration.count+driver.migration_fallbacks="
                f"{resolved:g} != fault.page={page_faults:g}"
            )

    return violations


# -- suite runners ---------------------------------------------------------


def verified_simulate(config, trace, policy, *, strict: bool = True):
    """Run one simulation with a phase-boundary verifier attached.

    Returns ``(result, verifier)``; with ``strict=False`` violations are
    collected on ``verifier.violations`` instead of raising.
    """
    from repro import make_policy
    from repro.sim.machine import Machine

    if isinstance(policy, str):
        policy = make_policy(policy)
    verifier = InvariantVerifier(strict=strict)
    result = Machine(config, trace, policy, verifier=verifier).run()
    return result, verifier


#: Default (workload, policy) scope of :func:`run_invariant_suite` — the
#: three cheapest registry apps, every policy.  The heavyweight matrix
#: lives in the golden/differential lanes.
SUITE_APPS = ("i2c", "mm", "lenet")


def run_invariant_suite(
    apps=SUITE_APPS,
    policies=None,
    *,
    fault_plans: bool = True,
    oversubscription: bool = True,
) -> dict:
    """Replay registry workloads with the phase-boundary verifier.

    Covers every policy on each app, plus (optionally) one injected
    fault plan and one oversubscribed configuration per app.  Returns
    ``{"checks": int, "phases": int, "violations": [str, ...]}``.
    """
    from repro import POLICY_FACTORIES, baseline_config, get_workload
    from repro.faults import FaultPlan, LinkFault, MigrationFlake

    if policies is None:
        policies = sorted(POLICY_FACTORIES)
    checks = 0
    phases = 0
    violations: list[str] = []

    def run_one(config, trace, policy, label):
        nonlocal checks, phases
        _, verifier = verified_simulate(config, trace, policy, strict=False)
        checks += 1
        phases += verifier.checked_phases
        violations.extend(f"{label}: {v}" for v in verifier.violations)

    plan = FaultPlan(
        link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),),
        migration_flakes=(MigrationFlake(rate=0.15, phase=1),),
    )
    for app in apps:
        config = baseline_config()
        trace = get_workload(app, config)
        for policy in policies:
            run_one(config, trace, policy, f"{app}/{policy}")
        if fault_plans:
            faulted = config.replace(fault_plan=plan)
            for policy in policies:
                run_one(
                    faulted, trace, policy, f"{app}/{policy}+plan"
                )
        if oversubscription:
            pressured = config.replace(oversubscription=1.5)
            trace_p = get_workload(app, pressured)
            for policy in policies:
                run_one(
                    pressured, trace_p, policy, f"{app}/{policy}@1.5x"
                )
    return {"checks": checks, "phases": phases, "violations": violations}
