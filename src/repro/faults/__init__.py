"""Deterministic fault injection for the simulated multi-GPU system.

Three layers:

* :mod:`repro.faults.plan` — :class:`FaultPlan`, the frozen, hashable
  description of what to inject (link degradations/severs, ECC page
  retirements, transient migration failures).  Part of
  ``SystemConfig`` and therefore of the result cache key.
* :mod:`repro.faults.inject` — :class:`FaultInjector`, the runtime that
  applies a plan to one machine and answers the driver's per-operation
  gating queries.
* :mod:`repro.faults.audit` — property-style invariant audit asserting
  page-table/capacity/TLB consistency after randomized primitive
  sequences, with and without injected faults (import it explicitly:
  ``from repro.faults import audit``).

Presets for the CLI live in :mod:`repro.faults.presets`.
"""

from repro.faults.inject import FaultInjector, MigrationVerdict
from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    MigrationFlake,
    PageRetirement,
)
from repro.faults.presets import PRESETS, preset_plan

__all__ = [
    "PRESETS",
    "FaultInjector",
    "FaultPlan",
    "LinkFault",
    "MigrationFlake",
    "MigrationVerdict",
    "PageRetirement",
    "preset_plan",
]
