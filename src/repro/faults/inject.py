"""Runtime fault injection: applies a :class:`FaultPlan` to one machine.

The :class:`FaultInjector` is the single mutable object behind a plan.
The machine calls :meth:`FaultInjector.start_phase` at every phase
boundary to apply scheduled link faults and page retirements; the UVM
driver consults :meth:`gate_migration` / :meth:`is_retired` before
installing data on a GPU, and the machine consults :meth:`is_degraded`
to keep servicing zero-copy fallback pages without re-entering the
policy.

Everything the injector does is deterministic: scheduled events fire at
fixed phase indices and transient failures draw from one
``random.Random(plan.seed)`` stream consumed in replay order.  Because
the replay order is itself deterministic (and the fast path is disabled
from the first fault phase on — see :mod:`repro.sim.fastpath`), a run
under a fault plan is exactly reproducible and bit-identical between the
vectorized and per-record replay paths.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.config import HOST
from repro.faults.plan import FaultPlan
from repro.obs.tracer import NULL_TRACER, Tracer

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine import StatCounters
    from repro.interconnect import Topology
    from repro.memory import CapacityManager, PageTables
    from repro.uvm.driver import UVMDriver


@dataclass
class MigrationVerdict:
    """Outcome of gating one migration against the active plan."""

    #: False when the driver must degrade to a zero-copy remote mapping.
    proceed: bool
    #: Transient attempts that failed before success/giving up.
    retries: int = 0
    #: Simulated exponential-backoff latency accumulated by the retries.
    backoff_ns: float = 0.0
    #: Why the migration was blocked ("" when it proceeds).
    reason: str = ""


_ALLOW = MigrationVerdict(proceed=True)


class FaultInjector:
    """Applies one :class:`FaultPlan` to a running machine."""

    def __init__(
        self,
        plan: FaultPlan,
        topology: "Topology",
        page_tables: "PageTables",
        capacity: "CapacityManager",
        stats: "StatCounters",
        n_gpus: int,
        tracer: Tracer = NULL_TRACER,
    ) -> None:
        self.plan = plan
        self.topology = topology
        self.page_tables = page_tables
        self.capacity = capacity
        self.stats = stats
        self.n_gpus = n_gpus
        self.tracer = tracer
        self._rng = random.Random(plan.seed)
        self._phase = -1
        self._pending_links = list(plan.link_faults)
        self._pending_retirements = list(plan.page_retirements)
        #: (gpu, page) frames flagged bad — can never hold data again.
        self._retired: set[tuple[int, int]] = set()
        #: (gpu, page) mappings degraded to zero-copy after a failed
        #: migration; the machine services their remote accesses without
        #: re-entering the policy.
        self._degraded: set[tuple[int, int]] = set()
        self._validate()

    def _validate(self) -> None:
        for event in self.plan.link_faults:
            # Raises ValueError for unknown pairs (e.g. GPU id >= n_gpus).
            self.topology.link(event.a, event.b)
        for event in self.plan.page_retirements:
            if event.gpu >= self.n_gpus:
                raise ValueError(
                    f"cannot retire a frame on GPU {event.gpu}: "
                    f"only {self.n_gpus} GPUs configured"
                )
        for flake in self.plan.migration_flakes:
            for gpu in flake.gpus:
                if not 0 <= gpu < self.n_gpus:
                    raise ValueError(f"flake names unknown GPU {gpu}")

    # -- scheduling --------------------------------------------------------

    @property
    def first_fault_phase(self) -> int:
        """Phase index of the earliest scheduled event."""
        first = self.plan.first_fault_phase
        return 0 if first is None else first

    def fast_path_allowed(self, phase_index: int) -> bool:
        """True while no fault has activated yet (bulk replay is exact)."""
        return phase_index < self.first_fault_phase

    def start_phase(self, phase_index: int, now: float, driver: "UVMDriver") -> None:
        """Apply every event scheduled at (or before) ``phase_index``.

        Page-retirement relocations are real driver work: their service
        time is submitted to the driver FIFO at ``now`` so a retirement
        storm shows up as driver busy time in the phase breakdown.
        """
        self._phase = phase_index
        for event in [e for e in self._pending_links if e.phase <= phase_index]:
            self._pending_links.remove(event)
            self.topology.apply_link_fault(event.a, event.b, event.bandwidth_factor)
            if event.severed:
                self.stats.add("fault_inject.link_severed")
            else:
                self.stats.add("fault_inject.link_degraded")
            if self.tracer.enabled:
                self.tracer.instant(
                    "faults",
                    "fault_inject",
                    now,
                    {
                        "what": "link_severed" if event.severed else "link_degraded",
                        "a": event.a,
                        "b": event.b,
                        "bandwidth_factor": event.bandwidth_factor,
                    },
                )
        for event in [
            e for e in self._pending_retirements if e.phase <= phase_index
        ]:
            self._pending_retirements.remove(event)
            if self.tracer.enabled:
                self.tracer.instant(
                    "faults",
                    "fault_inject",
                    now,
                    {
                        "what": "page_retired",
                        "gpu": event.gpu,
                        "page": event.page,
                    },
                )
            self._retire(event.gpu, event.page, now, driver)

    def _retire(self, gpu: int, page: int, now: float, driver: "UVMDriver") -> None:
        self._retired.add((gpu, page))
        self.capacity.mark_retired(gpu, page)
        self.stats.add("fault_inject.page_retired")
        pt = self.page_tables
        try:
            has_copy = pt.has_copy(gpu, page)
        except IndexError:
            self.stats.add("fault_inject.retired_untracked")
            return
        if has_copy:
            # The ECC scrubber found the frame bad while occupied: the
            # driver relocates the data (ownership handoff to another
            # holder, or writeback to host for a sole copy).
            service = driver.evict_from(gpu, page)
            driver.queue.submit(now, service)
            self.stats.add("fault_inject.retired_relocations")

    # -- per-operation queries ---------------------------------------------

    def is_retired(self, gpu: int, page: int) -> bool:
        """True when ``gpu``'s frame for ``page`` is ECC-retired."""
        return (gpu, page) in self._retired

    def note_degraded(self, gpu: int, page: int) -> None:
        """Record that (gpu, page) fell back to a zero-copy mapping."""
        self._degraded.add((gpu, page))

    def is_degraded(self, gpu: int, page: int) -> bool:
        """True when (gpu, page) is being served zero-copy after a fault."""
        return (gpu, page) in self._degraded

    def clear_degraded(self, gpu: int, page: int) -> None:
        """Drop the zero-copy flag (a later install succeeded)."""
        self._degraded.discard((gpu, page))

    def gate_migration(self, gpu: int, page: int) -> MigrationVerdict:
        """Decide whether a data-moving install on ``gpu`` may proceed.

        Checks, in order: a retired destination frame (permanent — no
        retry can help), then transient migration failures with bounded
        exponential-backoff retries.  The returned verdict carries the
        simulated backoff latency so the driver can charge it to the
        faulting GPU.
        """
        if (gpu, page) in self._retired:
            return MigrationVerdict(proceed=False, reason="retired")
        flakes = [
            f
            for f in self.plan.migration_flakes
            if f.phase <= self._phase and f.applies_to(gpu)
        ]
        if not flakes:
            return _ALLOW
        fail_rate = 1.0
        for flake in flakes:
            fail_rate *= 1.0 - flake.rate
        fail_rate = 1.0 - fail_rate
        if fail_rate <= 0.0:
            return _ALLOW
        backoff = 0.0
        for attempt in range(self.plan.max_retries + 1):
            if self._rng.random() >= fail_rate:
                return MigrationVerdict(
                    proceed=True, retries=attempt, backoff_ns=backoff
                )
            if attempt < self.plan.max_retries:
                backoff += self.plan.backoff_base_ns * (2.0 ** attempt)
        return MigrationVerdict(
            proceed=False,
            retries=self.plan.max_retries,
            backoff_ns=backoff,
            reason="flake",
        )

    def destination_reachable(self, src: int, dst: int) -> bool:
        """True when data can still flow ``src`` → ``dst`` (any route)."""
        return self.topology.reachable(src, dst)

    # -- reporting ---------------------------------------------------------

    def summary(self) -> dict[str, float]:
        """The injection/resilience counters accumulated so far."""
        return {
            key: value
            for key, value in self.stats.items()
            if key.startswith(("fault_inject.", "driver."))
        }
