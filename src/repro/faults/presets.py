"""Named fault-plan presets for the CLI and quick experiments.

Each preset is a recipe that, given the run's configuration and trace,
produces a concrete :class:`~repro.faults.plan.FaultPlan`.  Presets that
retire pages need the trace (page numbers are trace-relative), which is
why these are functions rather than constants.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.faults.plan import (
    FaultPlan,
    LinkFault,
    MigrationFlake,
    PageRetirement,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.config import SystemConfig
    from repro.workloads.base import Trace

#: Host device id (mirrors repro.config.HOST).
_HOST = -1


def _degraded_link(config, trace) -> FaultPlan:
    """GPU0-GPU1 NVLink drops to 25% bandwidth from phase 1."""
    return FaultPlan(
        link_faults=(LinkFault(a=0, b=1, phase=1, bandwidth_factor=0.25),)
    )


def _severed_link(config, trace) -> FaultPlan:
    """GPU0-GPU1 NVLink dies outright from phase 1 (reroute via host)."""
    return FaultPlan(link_faults=(LinkFault(a=0, b=1, phase=1),))


def _degraded_pcie(config, trace) -> FaultPlan:
    """GPU0's host link drops to half bandwidth from phase 0."""
    return FaultPlan(
        link_faults=(LinkFault(a=_HOST, b=0, phase=0, bandwidth_factor=0.5),)
    )


def _flaky_migrations(config, trace) -> FaultPlan:
    """5% of migrations transiently fail (retried with backoff)."""
    return FaultPlan(migration_flakes=(MigrationFlake(rate=0.05, phase=0),))


def _retired_pages(config, trace) -> FaultPlan:
    """ECC retires GPU0's frames for the first 16 pages of the largest
    object at phase 1 (forcing relocation + permanent zero-copy)."""
    if trace is None:
        raise ValueError(
            "preset 'retired-pages' retires trace-relative pages and "
            "needs a concrete trace; it cannot be applied trace-free "
            "(e.g. across a sweep)"
        )
    obj = max(trace.objects, key=lambda o: o.n_pages)
    pages = range(obj.first_page, obj.first_page + min(16, obj.n_pages))
    return FaultPlan(
        page_retirements=tuple(
            PageRetirement(gpu=0, page=page, phase=1) for page in pages
        )
    )


PRESETS = {
    "degraded-link": _degraded_link,
    "severed-link": _severed_link,
    "degraded-pcie": _degraded_pcie,
    "flaky-migrations": _flaky_migrations,
    "retired-pages": _retired_pages,
}


def preset_plan(
    name: str, config: "SystemConfig", trace: "Trace | None" = None
) -> FaultPlan:
    """Build the named preset for one concrete (config, trace) pair."""
    try:
        recipe = PRESETS[name]
    except KeyError:
        known = ", ".join(sorted(PRESETS))
        raise ValueError(f"unknown fault preset {name!r}; known: {known}") from None
    return recipe(config, trace)
